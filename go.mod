module locat

go 1.24
