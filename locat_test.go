package locat

import (
	"testing"
)

// fastOpts keep the public-API tests quick while exercising the whole
// pipeline.
func fastOpts() Options {
	return Options{
		Cluster:       "arm",
		Benchmark:     "TPC-H",
		DataSizeGB:    100,
		Seed:          3,
		NQCSA:         10,
		NIICP:         8,
		MaxIterations: 8,
		Quiet:         true,
	}
}

func TestTunePublicAPI(t *testing.T) {
	res, err := Tune(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestParams) != 38 {
		t.Fatalf("BestParams has %d entries; want 38", len(res.BestParams))
	}
	if _, ok := res.BestParams["spark.sql.shuffle.partitions"]; !ok {
		t.Fatal("missing shuffle.partitions in BestParams")
	}
	if res.TunedSeconds <= 0 || res.TunedSeconds >= res.DefaultSeconds {
		t.Fatalf("tuned %v vs default %v", res.TunedSeconds, res.DefaultSeconds)
	}
	if res.OverheadSeconds <= 0 || res.Runs == 0 {
		t.Fatal("missing overhead accounting")
	}
	if len(res.SensitiveQueries) == 0 || len(res.ImportantParams) == 0 {
		t.Fatal("missing analysis artifacts")
	}
	if res.Elapsed <= 0 {
		t.Fatal("missing elapsed time")
	}
	if len(res.Phases) == 0 {
		t.Fatal("missing phase timeline")
	}
	phases := map[string]Phase{}
	var phaseCluster float64
	for _, p := range res.Phases {
		phases[p.Name] = p
		phaseCluster += p.ClusterSeconds
	}
	for _, want := range []string{"phase1/sampling", "qcsa/reduce", "iicp/select", "phase2/search", "gp/hyper-resample", "final/select"} {
		if _, ok := phases[want]; !ok {
			t.Fatalf("phase timeline missing %q: %+v", want, res.Phases)
		}
	}
	// Every simulated second of tuning overhead is charged to some phase.
	if diff := phaseCluster - res.OverheadSeconds; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("phases account for %.3f cluster seconds; overhead is %.3f", phaseCluster, res.OverheadSeconds)
	}
}

func TestTuneDefaults(t *testing.T) {
	o := Options{NQCSA: 8, NIICP: 6, MaxIterations: 6, Benchmark: "Scan", Quiet: true}
	res, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TunedSeconds <= 0 {
		t.Fatal("defaults did not tune")
	}
}

func TestTuneErrors(t *testing.T) {
	if _, err := Tune(Options{Cluster: "sparc"}); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if _, err := Tune(Options{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Tune(Options{DataSizeGB: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestAblationToggles(t *testing.T) {
	o := fastOpts()
	o.DisableQCSA = true
	o.DisableIICP = true
	res, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SensitiveQueries != nil {
		t.Fatal("QCSA artifact present despite DisableQCSA")
	}
	if res.ImportantParams != nil {
		t.Fatal("IICP artifact present despite DisableIICP")
	}
}

func TestScheduleOnline(t *testing.T) {
	o := fastOpts()
	sizes := []float64{100, 200, 300}
	o.Schedule = func(run int) float64 { return sizes[run%len(sizes)] }
	o.DataSizeGB = 200
	res, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TunedSeconds <= 0 {
		t.Fatal("online tuning failed")
	}
}

func TestInventories(t *testing.T) {
	if len(Benchmarks()) != 5 || len(Clusters()) != 2 {
		t.Fatal("inventories wrong")
	}
}

func TestCompareBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full baseline budgets")
	}
	o := Options{Benchmark: "Aggregation", DataSizeGB: 100, Seed: 2, Quiet: true}
	rs, err := CompareBaselines(o)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Tuneful", "DAC", "GBO-RL", "QTune"}
	if len(rs) != len(want) {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.Tuner != want[i] {
			t.Fatalf("result %d = %q", i, r.Tuner)
		}
		if r.TunedSeconds <= 0 || r.OverheadSeconds <= 0 || r.Runs == 0 {
			t.Fatalf("%s: incomplete result %+v", r.Tuner, r)
		}
	}
}

func TestSparkConfExport(t *testing.T) {
	res, err := Tune(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := res.SparkConf()
	if len(out) == 0 {
		t.Fatal("empty spark conf")
	}
	for _, want := range []string{"spark.sql.shuffle.partitions", "spark.executor.memory"} {
		if !containsLine(out, want) {
			t.Fatalf("SparkConf missing %s:\n%s", want, out)
		}
	}
}

func containsLine(out, key string) bool {
	for _, line := range splitLines(out) {
		if len(line) >= len(key) && line[:len(key)] == key {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
