// Benchmarks: one target per figure and table of the paper's evaluation
// (Section 5), plus ablation benches for the design choices DESIGN.md §4
// calls out. Each benchmark regenerates the corresponding experiment on the
// simulated clusters in the experiments package's Quick mode; run
//
//	go run ./cmd/locat-bench -all
//
// for the full-budget rows recorded in EXPERIMENTS.md.
package locat

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"locat/internal/bo"
	"locat/internal/conf"
	"locat/internal/experiments"
	"locat/internal/gp"
	"locat/internal/kpca"
	"locat/internal/mat"
	"locat/internal/qcsa"
	"locat/internal/sparksim"
	"locat/internal/stat"
	"locat/internal/workloads"
)

// runExperiment executes one registered experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	driver, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(int64(i+1), true)
		tables, err := driver(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

// BenchmarkFig02MotivationOverhead regenerates Figure 2: the hours Tuneful,
// DAC, GBO-RL and QTune need to tune TPC-DS as the input grows.
func BenchmarkFig02MotivationOverhead(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig06KernelComparison regenerates Figure 6: the S.D. of execution
// times under the parameters selected by each KPCA kernel.
func BenchmarkFig06KernelComparison(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig07NQCSA regenerates Figure 7: CV convergence in the QCSA
// sample count (the N_QCSA = 30 calibration).
func BenchmarkFig07NQCSA(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig08QueryCV regenerates Figure 8: the per-query CV of TPC-DS and
// the CSQ/CIQ classification (23 of 104 kept in the paper).
func BenchmarkFig08QueryCV(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig09NIICP regenerates Figure 9: important-parameter count versus
// N_IICP (the N_IICP = 20 calibration).
func BenchmarkFig09NIICP(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10CPSCPE regenerates Figure 10: parameter counts through
// CPS and CPE.
func BenchmarkFig10CPSCPE(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTable3TopParams regenerates Table 3: the top-5 important
// parameters of TPC-DS at 100 GB / 500 GB / 1 TB.
func BenchmarkTable3TopParams(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig11OptTimeARM regenerates Figure 11: optimization-time
// reduction over the four SOTA tuners on the ARM cluster.
func BenchmarkFig11OptTimeARM(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12OptTimeX86 regenerates Figure 12: the same on x86.
func BenchmarkFig12OptTimeX86(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13SpeedupARM regenerates Figure 13: speedups of LOCAT-tuned
// over SOTA-tuned configurations across program-input pairs on ARM.
func BenchmarkFig13SpeedupARM(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14SpeedupX86 regenerates Figure 14: the same on x86.
func BenchmarkFig14SpeedupX86(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15APvsIP regenerates Figure 15: tuning all 38 parameters
// versus the IICP-selected important ones.
func BenchmarkFig15APvsIP(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16ModelMSE regenerates Figure 16: performance-model accuracy
// of GBRT, SVR, LinearR, LR and KNNAR.
func BenchmarkFig16ModelMSE(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17IICPvsGBRT regenerates Figure 17: parameter-importance
// quality of IICP versus GBRT feature importance.
func BenchmarkFig17IICPvsGBRT(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18CSQCIQ regenerates Figure 18: CSQ/CIQ execution-time split
// of each tuner's final configuration.
func BenchmarkFig18CSQCIQ(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19GCTime regenerates Figure 19: JVM GC time under each
// tuner's final configuration.
func BenchmarkFig19GCTime(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkFig20OverheadGrowth regenerates Figure 20: tuning overhead versus
// input data size.
func BenchmarkFig20OverheadGrowth(b *testing.B) { runExperiment(b, "fig20") }

// BenchmarkFig21Hybrid regenerates Figure 21: QCSA and IICP grafted onto the
// SOTA tuners.
func BenchmarkFig21Hybrid(b *testing.B) { runExperiment(b, "fig21") }

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblationCVRule compares QCSA's relative three-partition rule
// against a fixed absolute CV threshold across two benchmarks whose CV
// ranges differ widely; the reported metrics are the kept-query counts.
func BenchmarkAblationCVRule(b *testing.B) {
	cl := sparksim.ARM()
	apps := []*sparksim.Application{workloads.TPCDS(), workloads.TPCH()}
	var relKept, absKept int
	for i := 0; i < b.N; i++ {
		sim := sparksim.New(cl, int64(i+1))
		space := cl.Space()
		rng := newBenchRng(int64(i + 1))
		relKept, absKept = 0, 0
		for _, app := range apps {
			runs := make([]sparksim.AppResult, 0, 12)
			for j := 0; j < 12; j++ {
				runs = append(runs, sim.RunApp(app, space.Random(rng), 100))
			}
			res, err := qcsa.Analyze(app, runs)
			if err != nil {
				b.Fatal(err)
			}
			relKept += len(res.Sensitive)
			for _, q := range res.Queries {
				if q.CV >= 1.0 { // absolute threshold variant
					absKept++
				}
			}
		}
	}
	b.ReportMetric(float64(relKept), "kept-relative")
	b.ReportMetric(float64(absKept), "kept-absolute")
}

// BenchmarkAblationEIMCMC compares plain EI (one hyperparameter sample)
// against EI-MCMC marginalization on a smooth synthetic objective; the
// reported metric is each variant's best objective after 20 evaluations.
func BenchmarkAblationEIMCMC(b *testing.B) {
	obj := func(x, ctx []float64) float64 {
		d0 := x[0] - 0.3
		d1 := x[1] - 0.7
		return d0*d0 + d1*d1
	}
	var plain, mcmc float64
	for i := 0; i < b.N; i++ {
		o := bo.DefaultOptions()
		o.MaxIter = 20
		o.EIStopFrac = 0
		o.Seed = int64(i + 1)
		o.MCMCSamples = 1
		plain = bo.Minimize(bo.Problem{Dim: 2, Eval: obj}, o).BestY
		o.MCMCSamples = 6
		mcmc = bo.Minimize(bo.Problem{Dim: 2, Eval: obj}, o).BestY
	}
	b.ReportMetric(plain, "bestY-EI")
	b.ReportMetric(mcmc, "bestY-EI-MCMC")
}

// BenchmarkAblationDAGP compares datasize-aware tuning against a
// configuration-only GP under a changing-size schedule (the CherryPick
// limitation the paper highlights); the reported metrics are the tuned
// latencies at the target size.
func BenchmarkAblationDAGP(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		sizes := []float64{100, 200, 300}
		sched := func(run int) float64 { return sizes[run%len(sizes)] }
		o := Options{
			Benchmark: "TPC-H", DataSizeGB: 300, Schedule: sched,
			Seed: int64(i + 1), NQCSA: 10, NIICP: 8, MaxIterations: 8,
			Quiet: true,
		}
		r1, err := Tune(o)
		if err != nil {
			b.Fatal(err)
		}
		o.DisableDAGP = true
		r2, err := Tune(o)
		if err != nil {
			b.Fatal(err)
		}
		with, without = r1.TunedSeconds, r2.TunedSeconds
	}
	b.ReportMetric(with, "tuned-DAGP")
	b.ReportMetric(without, "tuned-confonly")
}

// --- Incremental surrogate benches ---
//
// One BO iteration must update the surrogate with the newest observation.
// BenchmarkSurrogateRefit measures the old path — refitting the GP from
// scratch, an O(n³) Cholesky — and BenchmarkSurrogateIncremental the new
// one: gp.Append's O(n²) rank-1 border extension of the cached factor. The
// incremental figure includes a full Clone of the base model per iteration
// (so each append starts from exactly n points), which overstates the real
// in-loop cost; the speedup below is therefore a floor. n is the training-
// set size — warm-started service sessions land at 50+ immediately, and
// long baseline budgets push past 150.

// surrogateTrainingSet draws n observations of a smooth objective over the
// unit cube with a data-size context appended — the DAGP input shape.
func surrogateTrainingSet(n, dim int) ([][]float64, []float64) {
	rng := newBenchRng(42)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		var s float64
		for j := range x {
			x[j] = rng.Float64()
			s += math.Sin(3 * x[j] * float64(j+1))
		}
		xs[i] = x
		ys[i] = s + rng.NormFloat64()*0.05
	}
	return xs, ys
}

// surrogateSizes are the training-set scales of the per-iteration cost
// comparison (ISSUE 2 acceptance: ≥3× at n=300).
var surrogateSizes = []int{50, 150, 300}

func BenchmarkSurrogateRefit(b *testing.B) {
	for _, n := range surrogateSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs, ys := surrogateTrainingSet(n, 9)
			h := gp.DefaultHyper()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gp.Fit(xs, ys, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSurrogateIncremental(b *testing.B) {
	for _, n := range surrogateSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs, ys := surrogateTrainingSet(n, 9)
			base, err := gp.Fit(xs[:n-1], ys[:n-1], gp.DefaultHyper())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := base.Clone()
				if err := g.Append(xs[n-1], ys[n-1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Batched surrogate math and parallel sampling benches (ISSUE 3) ---

// BenchmarkPredictBatch compares the two ways of scoring an EI candidate
// pool (512 points) against an n=300 GP: the old per-candidate Predict loop
// (two fresh vectors per candidate) versus one PredictBatch call that
// assembles the cross-kernel matrix once and reuses a workspace across
// iterations. The acceptance criterion is the allocs/op column: the batched
// path must cut it by ≥5×.
func BenchmarkPredictBatch(b *testing.B) {
	xs, ys := surrogateTrainingSet(300, 9)
	g, err := gp.Fit(xs, ys, gp.DefaultHyper())
	if err != nil {
		b.Fatal(err)
	}
	rng := newBenchRng(7)
	cands := make([][]float64, 512)
	for i := range cands {
		x := make([]float64, 9)
		for j := range x {
			x[j] = rng.Float64()
		}
		cands[i] = x
	}
	b.Run("PerCandidate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				g.Predict(c)
			}
		}
	})
	b.Run("Batched", func(b *testing.B) {
		var ws gp.PredictWorkspace
		g.PredictBatch(cands, &ws) // warm the workspace buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.PredictBatch(cands, &ws)
		}
	})
}

// --- Amortized hyperparameter inference benches (ISSUE 5) ---

// BenchmarkSampleHyper measures one full hyperparameter resample — the
// dominant training-side cost of the surrogate: 6 posterior samples (the
// EI-MCMC marginalization width) at each training-set scale.
//
//   - Serial is the pre-PR reference path: one slice-sampling chain whose
//     every posterior evaluation runs a fresh gp.Fit (O(n²·d) kernel
//     assembly + freshly allocated O(n³) Cholesky).
//   - Amortized is the production path end to end: build the distance cache
//     (gp.NewTrainSet), then run 6 independent chains over it on the worker
//     pool — each slice step an allocation-free in-place refit. The
//     allocs/op column collapses from thousands to the fixed setup cost; on
//     a multicore box the chains also run concurrently (this is the row the
//     ≥5× acceptance criterion reads; on a single-core box the win is the
//     amortization alone).
//   - Workers1 pins the chain pool to one worker: the pure amortization
//     win, independent of core count.
func BenchmarkSampleHyper(b *testing.B) {
	const samples = 6
	for _, n := range surrogateSizes {
		xs, ys := surrogateTrainingSet(n, 9)
		b.Run(fmt.Sprintf("Serial/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := gp.SampleHyperSerial(xs, ys, samples, newBenchRng(17)); len(got) != samples {
					b.Fatal("short sample")
				}
			}
		})
		b.Run(fmt.Sprintf("Amortized/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ts, err := gp.NewTrainSet(xs, ys, 0)
				if err != nil {
					b.Fatal(err)
				}
				if got := ts.SampleHyper(samples, newBenchRng(17), 0); len(got) != samples {
					b.Fatal("short sample")
				}
			}
		})
		b.Run(fmt.Sprintf("Workers1/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ts, err := gp.NewTrainSet(xs, ys, 1)
				if err != nil {
					b.Fatal(err)
				}
				if got := ts.SampleHyper(samples, newBenchRng(17), 1); len(got) != samples {
					b.Fatal("short sample")
				}
			}
		})
	}
}

// BenchmarkKPCAFit measures the CPE hot path: a full kernel-PCA fit over an
// IICP-scale sample matrix (parallel Gram assembly, in-place centering, QL
// eigensolver), plus the eigensolver swap in isolation — implicit-shift QL
// versus the cyclic Jacobi reference it replaced as the default.
func BenchmarkKPCAFit(b *testing.B) {
	rng := newBenchRng(5)
	n, d := 160, 38
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
	}
	b.Run("Fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kpca.Fit(xs, kpca.Kernel{Kind: kpca.Gaussian}, kpca.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The Gram matrix the eigensolvers factor.
	kern := kpca.Kernel{Kind: kpca.Gaussian}
	gram := mat.NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kern.Eval(xs[i], xs[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	b.Run("EigenQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mat.SymEigen(gram); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EigenJacobi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mat.SymEigenJacobi(gram); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSampling measures a phase-1-shaped batch — 16 independent
// full TPC-DS executions — through sparksim.RunBatch at one worker versus
// all cores. Per-run noise streams make the two rows produce identical
// results; the delta is pure wall-clock.
func BenchmarkParallelSampling(b *testing.B) {
	cl := sparksim.ARM()
	app := workloads.TPCDS()
	space := cl.Space()
	rng := newBenchRng(11)
	cs := make([]conf.Config, 16)
	for i := range cs {
		cs[i] = space.Random(rng)
	}
	gb := func(int) float64 { return 300 }
	// 8 slots rather than GOMAXPROCS so the row means the same thing on any
	// machine; on a single-core box it measures pure pool overhead (results
	// are identical either way).
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sim := sparksim.New(cl, 1)
			for i := 0; i < b.N; i++ {
				if _, done := sim.RunBatch(app, cs, gb, workers, nil); done != len(cs) {
					b.Fatal("incomplete batch")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: full TPC-DS
// executions per second — the substrate cost every tuner pays.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 1)
	app := workloads.TPCDS()
	c := cl.Space().Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunApp(app, c, 300)
	}
}

// BenchmarkCVConvergence measures the QCSA statistic itself: the cost of a
// full 104-query CV analysis over 30 runs.
func BenchmarkCVConvergence(b *testing.B) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 1)
	space := cl.Space()
	app := workloads.TPCDS()
	rng := newBenchRng(9)
	runs := make([]sparksim.AppResult, 0, 30)
	for j := 0; j < 30; j++ {
		runs = append(runs, sim.RunApp(app, space.Random(rng), 100))
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := qcsa.Analyze(app, runs)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanCV()
	}
	_ = stat.CV // keep the import honest if the metric below changes
	b.ReportMetric(mean, "meanCV")
}

// newBenchRng returns a seeded RNG for benchmark workload generation.
func newBenchRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
