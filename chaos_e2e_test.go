package locat_test

import (
	"strings"
	"testing"

	"locat"
)

// Fault injection under the healing retry layer must be invisible in the
// outcome: every drop re-executes at the same run index, so a chaotic
// session pins to the same committed expectations as the fault-free fixture
// — at every parallelism level, since the injection schedule is a pure
// function of (seed, run index, attempt), not of execution order.
func TestChaosTuneMatchesCommittedExpectation(t *testing.T) {
	var want tuneExpectation
	readJSON(t, tuneExpected, &want)
	for _, workers := range []int{1, 2, 4} {
		o := quickTuneOptions("")
		o.Chaos = "drop=0.25,maxfail=2,seed=7"
		o.Parallelism = workers
		res, err := locat.Tune(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Degraded != "" {
			t.Fatalf("workers=%d: healed session flagged degraded: %s", workers, res.Degraded)
		}
		if len(res.BestParams) != len(want.BestParams) {
			t.Fatalf("workers=%d: selected %d params, committed %d", workers, len(res.BestParams), len(want.BestParams))
		}
		for name, v := range want.BestParams {
			if got, ok := res.BestParams[name]; !ok || !feq(got, v) {
				t.Fatalf("workers=%d: selected %s=%v, committed expectation %v", workers, name, res.BestParams[name], v)
			}
		}
		if !feq(res.TunedSeconds, want.TunedSec) || !feq(res.DefaultSeconds, want.DefaultSec) {
			t.Fatalf("workers=%d: cost (%.6f, %.6f), committed (%.6f, %.6f)",
				workers, res.TunedSeconds, res.DefaultSeconds, want.TunedSec, want.DefaultSec)
		}
		if !feq(res.OverheadSeconds, want.OverheadSec) {
			t.Fatalf("workers=%d: overhead %.6f, committed %.6f", workers, res.OverheadSeconds, want.OverheadSec)
		}
		if res.Runs != want.Runs {
			t.Fatalf("workers=%d: %d runs, committed %d", workers, res.Runs, want.Runs)
		}
	}
}

// A backend that dies mid-session degrades gracefully through the facade:
// the session returns the best configuration measured before death instead
// of an error, and the guardrail keeps it no worse than the defaults.
func TestChaosStickyDeathDegradesTune(t *testing.T) {
	o := quickTuneOptions("")
	o.Chaos = "failafter=15,seed=3"
	res, err := locat.Tune(o)
	if err != nil {
		t.Fatalf("mid-session backend death failed the session: %v", err)
	}
	if !strings.Contains(res.Degraded, "chaos") {
		t.Fatalf("Degraded = %q; want the injected failure cause", res.Degraded)
	}
	if res.TunedSeconds > res.DefaultSeconds {
		t.Fatalf("degraded recommendation (%.3f s) worse than defaults (%.3f s)",
			res.TunedSeconds, res.DefaultSeconds)
	}
}

// Malformed chaos specs are rejected up front, not silently ignored.
func TestChaosSpecValidation(t *testing.T) {
	o := quickTuneOptions("")
	o.Chaos = "drop=nope"
	if _, err := locat.Tune(o); err == nil {
		t.Fatal("malformed chaos spec accepted")
	}
	if _, err := locat.NewService(locat.ServiceOptions{Chaos: "frobnicate=1"}); err == nil {
		t.Fatal("malformed service chaos spec accepted")
	}
}
