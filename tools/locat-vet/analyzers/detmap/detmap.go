// Package detmap flags map iteration whose (randomized) order can escape
// a deterministic package.
//
// Go randomizes map iteration order per run. Inside the deterministic
// packages that is fine for commutative folds (sums, max, set building),
// but the moment iteration order reaches an appended slice that is not
// subsequently sorted, a channel send, or a value returned from inside the
// loop, the package's output depends on the runtime's hash seed and the
// bit-for-bit replay contract is broken.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"locat/tools/locat-vet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flags range-over-map whose iteration order can reach an appended slice (without a later sort), " +
		"a channel send, or a returned value in deterministic packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkBody(pass, body)
		}
	}
	return nil
}

// functionBodies returns every function body in file: declarations and
// literals. Each is analyzed independently so escape checks stay local.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		}
		return true
	})
	return bodies
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Find range-over-map statements directly in this body (nested
	// function literals are separate bodies).
	inspectLocal(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		checkRange(pass, body, rng)
	})
}

func checkRange(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt) {
	loopVars := rangeVarObjects(pass.TypesInfo, rng)

	type appendTarget struct {
		obj  types.Object // nil when the target is not a plain identifier
		name string
		pos  token.Pos
	}
	var appends []appendTarget

	inspectLocal(rng.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map publishes values in randomized iteration order; iterate sorted keys instead")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAnyObject(pass.TypesInfo, res, loopVars) {
					pass.Reportf(n.Pos(),
						"return of a loop variable from inside range over map picks an arbitrary element; iterate sorted keys or select deterministically")
					break
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
					continue
				}
				// Pair each append with its assignment target.
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				} else if len(n.Lhs) == 1 {
					lhs = n.Lhs[0]
				}
				if lhs == nil {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					appends = append(appends, appendTarget{obj: obj, name: id.Name, pos: call.Pos()})
				} else {
					appends = append(appends, appendTarget{name: analysis.ExprString(lhs), pos: call.Pos()})
				}
			}
		}
	})

	for _, a := range appends {
		if sortedAfter(pass.TypesInfo, body, rng.End(), a.obj, a.name) {
			continue
		}
		pass.Reportf(a.pos,
			"append to %s inside range over map accumulates in randomized iteration order and %s is never sorted afterwards; sort it or iterate sorted keys",
			a.name, a.name)
	}
}

// sortedAfter reports whether a call into package sort or slices that
// mentions the append target appears after the loop in the same function.
func sortedAfter(info *types.Info, body *ast.BlockStmt, after token.Pos, obj types.Object, name string) bool {
	found := false
	inspectLocal(body, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return
		}
		fn := analysis.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return
		}
		for _, arg := range call.Args {
			if obj != nil && usesAnyObject(info, arg, map[types.Object]bool{obj: true}) {
				found = true
				return
			}
			if obj == nil && analysis.ExprString(arg) == name {
				found = true
				return
			}
		}
	})
	return found
}

// rangeVarObjects collects the objects bound to the range's key and value.
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if e == nil {
			continue
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				objs[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				objs[obj] = true
			}
		}
	}
	return objs
}

func usesAnyObject(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				used = true
				return false
			}
		}
		return !used
	})
	return used
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// inspectLocal walks n in source order without descending into nested
// function literals, whose bodies are analyzed on their own.
func inspectLocal(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}
