package detmap_test

import (
	"testing"

	"locat/tools/locat-vet/analysistest"
	"locat/tools/locat-vet/analyzers/detmap"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "qcsa")
}

func TestNonDeterministicPackageIgnored(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "service")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "core")
}

func TestCatchesSeededViolation(t *testing.T) {
	analysistest.MustFail(t, detmap.Analyzer, "qcsa")
}
