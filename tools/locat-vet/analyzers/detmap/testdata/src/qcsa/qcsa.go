// Package qcsa is a fixture named after a deterministic package: map
// iteration order must never reach an output here.
package qcsa

import "sort"

// Appended result returned without a sort: order escapes.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// Canonical safe pattern: collect then sort before use.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sort through a wrapper type still references the slice: safe.
func keysSortWrapped(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.StringSlice(keys))
	return keys
}

// Channel send publishes values in iteration order.
func publish(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k // want `channel send inside range over map`
	}
}

// Returning a loop variable picks a hash-seed-dependent element.
func anyValue(m map[string]int) int {
	for _, v := range m {
		return v // want `return of a loop variable`
	}
	return 0
}

// Commutative folds over maps are fine.
func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Building another map is order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Ranging over a slice is always ordered: appends are fine.
func double(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
