// Package service is outside the deterministic set: HTTP handlers may
// enumerate maps in any order.
package service

func jobIDs(jobs map[string]int) []string {
	var ids []string
	for id := range jobs {
		ids = append(ids, id)
	}
	return ids
}
