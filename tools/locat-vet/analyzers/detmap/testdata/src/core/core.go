// Package core exercises //locat:allow suppression for detmap findings.
package core

func debugDump(m map[string]int) []string {
	var lines []string
	for k := range m {
		lines = append(lines, k) //locat:allow detmap debug output, ordering is cosmetic only
	}
	return lines
}
