package wallclock_test

import (
	"testing"

	"locat/tools/locat-vet/analysistest"
	"locat/tools/locat-vet/analyzers/wallclock"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "sparksim")
}

func TestAllowlistedPackageIgnored(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "progress")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "mat")
}

func TestCatchesSeededViolation(t *testing.T) {
	analysistest.MustFail(t, wallclock.Analyzer, "sparksim")
}
