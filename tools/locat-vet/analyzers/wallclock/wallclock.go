// Package wallclock forbids reading or waiting on the wall clock in
// deterministic packages.
//
// Simulated cluster seconds are the tuner's only time axis inside the
// deterministic core: replaying a recorded trace, re-running with more
// workers, or re-running on faster hardware must produce bit-identical
// trajectories. time.Now/Since/Sleep smuggle the host's clock into that
// computation. Wall timing belongs to the allowlisted observability and
// fault-tolerance edges — internal/obs, internal/progress, and the
// internal/runner + internal/service layers (the meter's wall histograms,
// the retry wrapper's backoff sleeps, the checkpoint writer's persistence
// latency) — which are outside the deterministic package set. Those edges
// stay determinism-safe by construction: backoff only delays a re-execution
// whose result is a pure function of its run index, and checkpoint
// timestamps never feed back into the search.
package wallclock

import (
	"go/ast"

	"locat/tools/locat-vet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Sleep (and friends) in deterministic packages; " +
		"wall timing belongs in obs, progress, runner's meter, or service",
	Run: run,
}

// banned lists the package-level time functions that read or wait on the
// host clock. Pure construction/formatting (time.Duration arithmetic,
// time.Unix, ParseDuration) stays legal.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || !analysis.PkgFunc(fn, "time") || !banned[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock inside a deterministic package; simulated cluster seconds are the only time axis here (wall timing lives in obs/progress/runner's meter/service)",
				fn.Name())
			return true
		})
	}
	return nil
}
