// Package mat exercises //locat:allow suppression for wallclock findings
// in a deterministic package.
package mat

import "time"

func debugTimer() time.Time {
	//locat:allow wallclock one-off debug timing helper, not on any tuning path
	return time.Now()
}
