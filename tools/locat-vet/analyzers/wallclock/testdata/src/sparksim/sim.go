// Package sparksim is a fixture named after a deterministic package: the
// simulator's only time axis is simulated cluster seconds, so every wall
// clock read below must be flagged.
package sparksim

import "time"

func timedRun() float64 {
	start := time.Now() // want `time.Now reads the wall clock`
	doWork()
	return time.Since(start).Seconds() // want `time.Since reads the wall clock`
}

func throttle() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep reads the wall clock`
}

func poll(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second): // want `time.After reads the wall clock`
	}
}

// Pure duration arithmetic and formatting stay legal.
func legal() time.Duration {
	d, _ := time.ParseDuration("3s")
	return d * 2
}

func doWork() {}
