// Package progress sits on the observability edge, outside the
// deterministic set: wall timing is its whole job and must pass.
package progress

import "time"

func stamp() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
