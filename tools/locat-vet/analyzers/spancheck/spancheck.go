// Package spancheck enforces that every tracing span is ended on every
// path out of the function that started it.
//
// The phase cluster-second accounting (obs.Tracer / obs.Timeline) only
// adds up when spans close: a leaked span reports an open phase forever,
// skews the /v1/jobs/{id}/trace endpoint, and silently breaks the
// "phase sums equal OverheadSec" pin. The check is structural: a value
// returned by a method named Start whose type has an End() method must be
// ended via `defer s.End()`, an `s.End()` preceding every later return,
// or by returning the span itself (ownership transfer).
package spancheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"locat/tools/locat-vet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "spancheck",
	Doc: "every Tracer.Start/Timeline.Start span must be End()ed on all return paths " +
		"so phase cluster-second accounting never leaks an open span",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

type startEvent struct {
	obj  types.Object
	name string
	pos  token.Pos
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var starts []startEvent
	ends := map[types.Object][]token.Pos{} // s.End() call sites
	deferred := map[types.Object]bool{}    // defer s.End() (directly or in a deferred closure)
	var returns []*ast.ReturnStmt

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals are their own scope, except that End calls
			// inside them still close the span (e.g. goroutine-joined or
			// deferred helper closures); record those but nothing else.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if obj := endCallee(pass, call); obj != nil {
						ends[obj] = append(ends[obj], call.Pos())
					}
				}
				return true
			})
			return false
		case *ast.DeferStmt:
			if obj := endCallee(pass, n.Call); obj != nil {
				deferred[obj] = true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if obj := endCallee(pass, call); obj != nil {
							deferred[obj] = true
						}
					}
					return true
				})
				return false
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if ev, ok := startAssign(pass, n); ok {
					starts = append(starts, ev)
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			if obj := endCallee(pass, n); obj != nil {
				ends[obj] = append(ends[obj], n.Pos())
			}
		}
		return true
	})

	for _, st := range starts {
		if deferred[st.obj] {
			continue
		}
		covered := func(upto token.Pos) bool {
			for _, e := range ends[st.obj] {
				if e > st.pos && e < upto {
					return true
				}
			}
			return false
		}
		leaked := false
		returnsAfter := 0
		for _, ret := range returns {
			if ret.Pos() <= st.pos {
				continue
			}
			returnsAfter++
			if covered(ret.Pos()) {
				continue
			}
			if transfersSpan(pass, ret, st.obj) {
				continue
			}
			pass.Reportf(ret.Pos(),
				"return may leak span %s started here: %s; End() it before returning or defer %s.End()",
				st.name, pass.Fset.Position(st.pos).String(), st.name)
			leaked = true
		}
		// With no return after the start, control falls off the end of the
		// function: the span must have been ended (or handed to a deferred
		// closure) by then. Functions ending in a return were already
		// checked per-path above.
		if !leaked && returnsAfter == 0 && !covered(body.End()) {
			pass.Reportf(st.pos,
				"span %s is started but never ended in this function; phase accounting will leak an open span",
				st.name)
		}
	}
}

// startAssign recognizes `s := x.Start(...)` / `s = x.Start(...)` where the
// result type has an End() method in its method set.
func startAssign(pass *analysis.Pass, assign *ast.AssignStmt) (startEvent, bool) {
	id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return startEvent{}, false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return startEvent{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return startEvent{}, false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !hasEndMethod(tv.Type) {
		return startEvent{}, false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return startEvent{}, false
	}
	return startEvent{obj: obj, name: id.Name, pos: assign.Pos()}, true
}

// endCallee returns the span object when call is `s.End()` on an
// identifier, or nil.
func endCallee(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// hasEndMethod reports whether t's method set contains End() with no
// parameters and no results — the span-shaped contract. This keeps the
// check structural: any tracer implementation qualifies, while
// exec.Cmd.Start (returns error) and friends do not.
func hasEndMethod(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() != 1 {
			return false
		}
		t = tuple.At(0).Type()
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "End" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		return sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	return false
}

// transfersSpan reports whether ret returns the span object itself,
// transferring End responsibility to the caller.
func transfersSpan(pass *analysis.Pass, ret *ast.ReturnStmt, obj types.Object) bool {
	for _, res := range ret.Results {
		found := false
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
