package spancheck_test

import (
	"testing"

	"locat/tools/locat-vet/analysistest"
	"locat/tools/locat-vet/analyzers/spancheck"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, spancheck.Analyzer, "tuner")
}

func TestDiscipline(t *testing.T) {
	analysistest.Run(t, spancheck.Analyzer, "clean")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, spancheck.Analyzer, "allowed")
}

func TestCatchesSeededViolation(t *testing.T) {
	analysistest.MustFail(t, spancheck.Analyzer, "tuner")
}
