// Package tuner seeds span leaks: spans started but not ended on every
// path. The tracer shapes mirror internal/obs without importing it — the
// analyzer is structural (method named Start returning a value with an
// End() method).
package tuner

type Span interface {
	Add(runs int64, clusterSec float64)
	End()
}

type Tracer interface {
	Start(name string) Span
}

// Span never ended at all.
func leakForever(tr Tracer) {
	sp := tr.Start("phase1/sampling") // want `started but never ended`
	sp.Add(1, 0.5)
	doWork()
}

// Early error return skips the End.
func leakOnError(tr Tracer, fail bool) error {
	sp := tr.Start("phase2/search")
	if fail {
		return errFailed // want `return may leak span sp`
	}
	sp.End()
	return nil
}

// Reassignment: the second span leaks even though the first was ended.
func leakSecond(tr Tracer) {
	sp := tr.Start("qcsa/reduce")
	doWork()
	sp.End()
	sp = tr.Start("iicp/select") // want `started but never ended`
	doWork()
}

func doWork() {}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
