// Package allowed exercises //locat:allow suppression for spancheck.
package allowed

type Span interface {
	End()
}

type Tracer interface {
	Start(name string) Span
}

func process(tr Tracer, helper func(Span)) {
	//locat:allow spancheck helper takes ownership of the span and ends it
	sp := tr.Start("handoff")
	helper(sp)
}
