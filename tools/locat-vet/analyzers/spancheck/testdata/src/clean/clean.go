// Package clean shows the sanctioned span shapes: none may be flagged.
package clean

type Span interface {
	Add(runs int64, clusterSec float64)
	End()
}

type Tracer interface {
	Start(name string) Span
}

// Deferred end covers every path.
func deferred(tr Tracer, fail bool) error {
	sp := tr.Start("phase1/sampling")
	defer sp.End()
	if fail {
		return errFailed
	}
	return nil
}

// Explicit end before each return.
func explicit(tr Tracer, fail bool) error {
	sp := tr.Start("phase2/search")
	if fail {
		sp.End()
		return errFailed
	}
	sp.End()
	return nil
}

// Sequential phases, each ended before the next begins.
func phases(tr Tracer) {
	sp := tr.Start("qcsa/reduce")
	doWork()
	sp.End()
	sp = tr.Start("iicp/select")
	doWork()
	sp.End()
}

// Returning the span transfers End responsibility to the caller.
func open(tr Tracer, name string) Span {
	sp := tr.Start(name)
	sp.Add(0, 0)
	return sp
}

// End inside a deferred closure still counts.
func deferredClosure(tr Tracer) {
	sp := tr.Start("final/select")
	defer func() {
		sp.Add(1, 0)
		sp.End()
	}()
	doWork()
}

// exec.Cmd-shaped Start (returns error) is not a span: no findings.
type cmd struct{}

func (cmd) Start() error { return nil }

func runCmd() error {
	c := cmd{}
	err := c.Start()
	return err
}

func doWork() {}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
