// Package lockcheck guards the tuner's mutex discipline, in particular the
// internal/service read/write-lock split: every sync.Mutex/RWMutex Lock
// must be paired with an Unlock on every path out of the function, early
// returns must not leak a held lock, and nothing that can block —
// channel operations, Runner executions, network calls, sleeps — may run
// inside a critical section.
//
// The analysis is lexical (statement order approximates execution order),
// which catches the overwhelmingly common shapes — forgotten unlock,
// early return before the unlock, blocking call under a held or deferred
// lock — without a full CFG. Intentional exceptions carry a
// `//locat:allow lockcheck <reason>` directive.
package lockcheck

import (
	"go/ast"
	"go/token"

	"locat/tools/locat-vet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "flags Lock without a paired Unlock on every path, returns while a lock may be held, " +
		"and blocking operations (channels, Runner.RunApp*, network, sleeps) inside critical sections",
	Run: run,
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evReturn
	evBlocking
)

type event struct {
	kind eventKind
	pos  token.Pos
	recv string // lock receiver, e.g. "s.mu"; "" for return/blocking events
	read bool   // RLock/RUnlock variant
	desc string // blocking operation description
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	events := collect(pass, body)

	// Group lock/unlock events per (receiver, variant) stream; returns and
	// blocking operations apply to every stream.
	type stream struct {
		recv string
		read bool
	}
	streams := make(map[stream]bool)
	for _, e := range events {
		if e.kind == evLock {
			streams[stream{e.recv, e.read}] = true
		}
	}

	// One lexical simulation per stream: a held counter tracks explicit
	// Lock/Unlock pairs in statement order, while deferred unlocks are
	// credited only where they actually fire — at returns and at function
	// exit — so a critical section closed explicitly earlier in the
	// function is not confused with a later defer-held one.
	for s := range streams {
		verb := "Lock"
		if s.read {
			verb = "RLock"
		}

		held, deferredUnlocks := 0, 0
		var lastLockPos token.Pos
		for _, e := range events {
			switch e.kind {
			case evLock:
				if e.recv == s.recv && e.read == s.read {
					held++
					lastLockPos = e.pos
				}
			case evUnlock:
				if e.recv == s.recv && e.read == s.read && held > 0 {
					held--
				}
			case evDeferUnlock:
				if e.recv == s.recv && e.read == s.read {
					deferredUnlocks++
				}
			case evReturn:
				if held-deferredUnlocks > 0 {
					pass.Reportf(e.pos,
						"return while %s.%s() may still be held; unlock before returning or defer the unlock",
						s.recv, verb)
					held = deferredUnlocks // one report per leak site, not per later return
				}
			case evBlocking:
				if held > 0 {
					pass.Reportf(e.pos,
						"%s while %s.%s() is held; move it outside the critical section",
						e.desc, s.recv, verb)
				}
			}
		}
		if held-deferredUnlocks > 0 {
			pass.Reportf(lastLockPos,
				"%s.%s() is never unlocked in this function; pair it with an unlock or defer one",
				s.recv, verb)
		}
	}
}

// collect walks body in source order, recording lock events, returns, and
// blocking operations. Nested function literals are skipped (they are
// analyzed as their own bodies) except inside defer statements, where a
// closure wrapping an Unlock is the common idiom.
func collect(pass *analysis.Pass, body *ast.BlockStmt) []event {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if recv, name, ok := lockMethod(pass, n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				events = append(events, event{kind: evDeferUnlock, pos: n.Pos(), recv: recv, read: name == "RUnlock"})
				return false
			}
			// defer func() { ... mu.Unlock() ... }()
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if recv, name, ok := lockMethod(pass, call); ok && (name == "Unlock" || name == "RUnlock") {
							events = append(events, event{kind: evDeferUnlock, pos: n.Pos(), recv: recv, read: name == "RUnlock"})
						}
					}
					return true
				})
				return false
			}
			return true
		case *ast.ReturnStmt:
			events = append(events, event{kind: evReturn, pos: n.Pos()})
		case *ast.SendStmt:
			events = append(events, event{kind: evBlocking, pos: n.Pos(), desc: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{kind: evBlocking, pos: n.Pos(), desc: "channel receive"})
			}
		case *ast.SelectStmt:
			events = append(events, event{kind: evBlocking, pos: n.Pos(), desc: "select"})
			return true
		case *ast.CallExpr:
			if recv, name, ok := lockMethod(pass, n); ok {
				switch name {
				case "Lock", "RLock":
					events = append(events, event{kind: evLock, pos: n.Pos(), recv: recv, read: name == "RLock"})
				case "Unlock", "RUnlock":
					events = append(events, event{kind: evUnlock, pos: n.Pos(), recv: recv, read: name == "RUnlock"})
				}
				return true
			}
			if desc, ok := blockingCall(pass, n); ok {
				events = append(events, event{kind: evBlocking, pos: n.Pos(), desc: desc})
			}
		}
		return true
	})
	return events
}

// lockMethod reports whether call is a sync.Mutex/RWMutex method call
// (possibly through an embedded field) and returns the rendered receiver.
func lockMethod(pass *analysis.Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	named := analysis.MethodRecvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	tn := named.Obj().Name()
	if tn != "Mutex" && tn != "RWMutex" {
		return "", "", false
	}
	return analysis.ExprString(sel.X), fn.Name(), true
}

// runnerBlocking names methods/functions that execute workload runs — by
// contract they may take (simulated or real) minutes.
var runnerBlocking = map[string]bool{
	"RunApp":     true,
	"RunAppAt":   true,
	"RunQuery":   true,
	"RunQueryAt": true,
	"RunBatch":   true,
}

// blockingCall classifies calls that can stall a critical section.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if runnerBlocking[name] {
		return "Runner execution " + name, true
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "time":
			if name == "Sleep" {
				return "time.Sleep", true
			}
		case "net/http", "net":
			return pkg.Path() + " call " + name, true
		case "sync":
			if name == "Wait" { // WaitGroup.Wait / Cond.Wait
				return "sync wait", true
			}
		}
	}
	return "", false
}
