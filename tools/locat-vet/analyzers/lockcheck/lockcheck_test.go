package lockcheck_test

import (
	"testing"

	"locat/tools/locat-vet/analysistest"
	"locat/tools/locat-vet/analyzers/lockcheck"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "service")
}

func TestDiscipline(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "clean")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "allowed")
}

func TestCatchesSeededViolation(t *testing.T) {
	analysistest.MustFail(t, lockcheck.Analyzer, "service")
}
