// Package service seeds every lock-discipline violation lockcheck knows:
// missing unlocks, early returns under a held lock, and blocking
// operations inside critical sections.
package service

import (
	"sync"
	"time"
)

type runner struct{}

func (runner) RunApp(cfg []float64) float64 { return 0 }

type state struct {
	mu   sync.RWMutex
	jobs map[string]int
	ch   chan int
	r    runner
}

// Lock with no unlock anywhere.
func (s *state) leak() {
	s.mu.Lock() // want `never unlocked`
	s.jobs["x"] = 1
}

// Early return leaves the lock held on the error path.
func (s *state) earlyReturn(id string) (int, error) {
	s.mu.Lock()
	v, ok := s.jobs[id]
	if !ok {
		return 0, errNotFound // want `may still be held`
	}
	s.mu.Unlock()
	return v, nil
}

// Blocking operations inside an explicit critical section.
func (s *state) blockingHeld() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while s.mu.Lock\(\) is held`
	s.mu.Unlock()
}

// Runner executions take (simulated) minutes; never under a lock.
func (s *state) runHeld(cfg []float64) float64 {
	s.mu.Lock()
	cost := s.r.RunApp(cfg) // want `Runner execution RunApp while s.mu.Lock\(\) is held`
	s.mu.Unlock()
	return cost
}

// With the unlock deferred, the lock is held for the whole function: the
// sleep stalls every waiter.
func (s *state) sleepDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu.Lock\(\) is held`
}

// Read locks are tracked as their own stream.
func (s *state) readLeak(id string) int {
	s.mu.RLock()
	return s.jobs[id] // want `return while s.mu.RLock\(\) may still be held`
}

var errNotFound = errorString("not found")

type errorString string

func (e errorString) Error() string { return string(e) }
