// Package clean shows the sanctioned lock shapes: none may be flagged.
package clean

import "sync"

type store struct {
	mu   sync.RWMutex
	data map[string]int
	ch   chan int
}

// Deferred unlock with no blocking work.
func (s *store) get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

// Explicit unlock on both paths.
func (s *store) lookup(k string) (int, bool) {
	s.mu.RLock()
	v, ok := s.data[k]
	if !ok {
		s.mu.RUnlock()
		return 0, false
	}
	s.mu.RUnlock()
	return v, true
}

// Unlock wrapped in a deferred closure.
func (s *store) update(k string, v int) {
	s.mu.Lock()
	defer func() {
		s.data[k] = v
		s.mu.Unlock()
	}()
}

// Blocking work after the critical section closes is fine.
func (s *store) publish(k string) {
	s.mu.Lock()
	v := s.data[k]
	s.mu.Unlock()
	s.ch <- v
}

// Write lock and read lock used in sequence, both balanced.
func (s *store) bump(k string) int {
	s.mu.Lock()
	s.data[k]++
	s.mu.Unlock()
	s.mu.RLock()
	v := s.data[k]
	s.mu.RUnlock()
	return v
}
