// Package allowed exercises //locat:allow suppression for lockcheck.
package allowed

import "sync"

type notifier struct {
	mu sync.Mutex
	ch chan int
}

func (n *notifier) signal(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//locat:allow lockcheck channel is buffered and drained by a dedicated goroutine, send cannot block
	n.ch <- v
}
