package detrand_test

import (
	"testing"

	"locat/tools/locat-vet/analysistest"
	"locat/tools/locat-vet/analyzers/detrand"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "gp")
}

func TestNonDeterministicPackageIgnored(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "obs")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "stat")
}

// TestCatchesSeededViolation proves the analyzer fails a tree with a real
// violation: a fixture that reports nothing here means the check is dead.
func TestCatchesSeededViolation(t *testing.T) {
	analysistest.MustFail(t, detrand.Analyzer, "gp")
}
