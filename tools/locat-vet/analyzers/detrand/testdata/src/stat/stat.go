// Package stat exercises the //locat:allow suppression path inside a
// deterministic package: every violation below carries a directive, so the
// analyzer must stay silent.
package stat

import "math/rand"

func trailing() float64 {
	return rand.Float64() //locat:allow detrand fixture demonstrates trailing-comment suppression
}

func preceding() int {
	//locat:allow detrand fixture demonstrates preceding-line suppression
	return rand.Intn(7)
}
