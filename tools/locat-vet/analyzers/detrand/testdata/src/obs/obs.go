// Package obs is outside the deterministic set: the same constructs that
// fail in gp must pass unremarked here.
package obs

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	_ = rand.New(rand.NewSource(time.Now().UnixNano()))
	return rand.Float64()
}
