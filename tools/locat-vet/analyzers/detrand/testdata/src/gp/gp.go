// Package gp is a fixture named after a deterministic package: detrand
// must flag every ambient-randomness use here.
package gp

import (
	"math/rand"
	"time"
)

func globalDraws() float64 {
	x := rand.Float64()                // want `global math/rand.Float64`
	n := rand.Intn(10)                 // want `global math/rand.Intn`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand.Shuffle`
	rand.Seed(42)                      // want `global math/rand.Seed`
	return x + float64(n)
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

// Injected sources are the sanctioned pattern: no findings below.
func injected(rng *rand.Rand) float64 {
	return rng.Float64() + float64(rng.Intn(3))
}

func seededConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
