// Package detrand forbids ambient randomness in deterministic packages.
//
// The tuner's reproducibility contract (parallel sampling, multi-chain
// MCMC, batched surrogate math all bit-identical to serial) only holds if
// every random draw flows from an injected *rand.Rand or a splitmix64
// stream derived from the run seed. The package-level math/rand functions
// share one mutable global source, so any call to them breaks replay; a
// source seeded from the wall clock breaks it even when local.
package detrand

import (
	"go/ast"
	"go/token"

	"locat/tools/locat-vet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbids global math/rand functions and time-seeded sources in deterministic packages; " +
		"inject a *rand.Rand or derive a splitmix64 stream instead",
	Run: run,
}

// Constructors are fine: they produce an explicitly seeded local source.
var allowedCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			isRand := analysis.PkgFunc(fn, "math/rand") || analysis.PkgFunc(fn, "math/rand/v2")
			if !isRand {
				return true
			}
			name := fn.Name()
			if !allowedCtors[name] {
				pass.Reportf(call.Pos(),
					"call to global %s.%s shares a mutable package-level source; deterministic packages must draw from an injected *rand.Rand or a seed-derived splitmix64 stream",
					fn.Pkg().Path(), name)
				return true
			}
			// Seed-taking constructor: the seed must not come from the wall
			// clock. rand.New is skipped: its source argument is itself a
			// constructor call that gets its own check, and reporting both
			// would double up at the same position.
			if name == "New" {
				return true
			}
			if wallPos := wallClockArg(pass, call); wallPos.IsValid() {
				pass.Reportf(wallPos,
					"%s.%s seeded from the wall clock is irreproducible; derive the seed from the run's configuration seed",
					fn.Pkg().Path(), name)
			}
			return true
		})
	}
	return nil
}

// wallClockArg returns the position of a time.Now call feeding the
// constructor's arguments, or NoPos.
func wallClockArg(pass *analysis.Pass, call *ast.CallExpr) token.Pos {
	pos := token.NoPos
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, inner)
			if fn != nil && analysis.PkgFunc(fn, "time") && fn.Name() == "Now" {
				pos = inner.Pos()
				return false
			}
			return true
		})
		if pos.IsValid() {
			break
		}
	}
	return pos
}
