// Package unitchecker implements the (unpublished) command-line protocol
// that `go vet -vettool=<tool>` speaks, using only the standard library.
// It mirrors golang.org/x/tools/go/analysis/unitchecker: the go command
// first interrogates the tool with -V=full (cache key) and -flags
// (analyzer flag discovery), then invokes it once per package with a JSON
// config file argument describing the sources, the import map, and the
// export-data files of every dependency that the build step already
// compiled. Type-checking therefore needs no network and no source
// re-analysis of dependencies: the gc importer reads export data straight
// from the build cache via the lookup hook.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"locat/tools/locat-vet/analysis"
)

// Config is the JSON schema of the file the go command passes as the sole
// positional argument. Field names must match cmd/go/internal/work's
// vetConfig exactly.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of the locat-vet binary. Besides the vet
// protocol, it accepts package patterns directly (`locat-vet ./...`) and
// re-executes itself through `go vet -vettool=` so local runs and CI runs
// share one code path.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Handshake flags arrive alone, ahead of any config run.
	for _, arg := range args {
		switch {
		case arg == "-V=full":
			fmt.Println(versionLine(progname))
			return
		case arg == "-V":
			fmt.Printf("%s version devel\n", progname)
			return
		case arg == "-flags":
			// We expose no analyzer flags; the suite always runs whole.
			fmt.Println("[]")
			return
		case arg == "help" || arg == "-h" || arg == "-help" || arg == "--help":
			printUsage(progname, analyzers)
			return
		}
	}

	// go vet invokes: <tool> [flags] <dir>/vet.cfg
	for _, arg := range args {
		if strings.HasSuffix(arg, ".cfg") {
			os.Exit(runConfig(arg, analyzers))
		}
	}

	if len(args) == 0 {
		printUsage(progname, analyzers)
		os.Exit(2)
	}

	// Package patterns: delegate to the go command with ourselves as the
	// vet tool, so package loading, caching and test-variant expansion are
	// exactly what CI gets.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
}

// versionLine prints the form cmd/go's toolID parser accepts for an
// external vet tool: `<name> version devel ... buildID=<contentID>`. The
// content ID is a hash of the executable, so rebuilding the tool correctly
// invalidates the go command's vet result cache.
func versionLine(progname string) string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel buildID=%x", progname, h.Sum(nil))
}

func printUsage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: static invariants for the LOCAT tuner (determinism, locks, spans)\n\n", progname)
	fmt.Fprintf(os.Stderr, "usage: %s package...   (e.g. %s ./...)\n", progname, progname)
	fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(command -v %s) package...\n\n", progname)
	fmt.Fprintf(os.Stderr, "Suppress a finding with a trailing or preceding comment:\n")
	fmt.Fprintf(os.Stderr, "  //locat:allow <analyzer> <reason>\n\nanalyzers:\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
	}
}

func runConfig(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locat-vet: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "locat-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the facts file to exist afterwards; the suite
	// uses no cross-package facts, so an empty one satisfies the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "locat-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: nothing to analyze, facts written above.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var parseErrs []error
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			parseErrs = append(parseErrs, err)
			continue
		}
		files = append(files, f)
	}
	if len(parseErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, err := range parseErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return 1
	}

	pkg, info, err := typecheck(fset, &cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "locat-vet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings := RunAnalyzers(fset, files, pkg, info, analyzers)
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(f.Pos), f.Message, f.Analyzer)
	}
	return 2
}

// typecheck loads the package from the parsed files, resolving imports
// through the export-data files the go command listed in the config.
func typecheck(fset *token.FileSet, cfg *Config, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		path := importPath
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}

	var hardErr error
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, goarch),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if hardErr == nil {
				hardErr = err
			}
		},
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if hardErr == nil {
		hardErr = err
	}
	return pkg, info, hardErr
}

// RunAnalyzers executes the suite over one type-checked package, applies
// the //locat:allow suppression filter, and returns surviving findings in
// source order. The analysistest harness shares this path with the driver
// so suppression behaves identically in tests and in CI.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []analysis.Finding {
	known := map[string]bool{"locatvet": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, findings := analysis.CollectAllows(fset, files, known)

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, analysis.Finding{Analyzer: name, Diagnostic: d})
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, analysis.Finding{
				Analyzer:   name,
				Diagnostic: analysis.Diagnostic{Pos: token.NoPos, Message: "analyzer error: " + err.Error()},
			})
		}
	}

	findings = analysis.FilterAllowed(fset, findings, allows)
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].Pos), fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings
}
