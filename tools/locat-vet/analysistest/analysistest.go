// Package analysistest is a small analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture package
// from a testdata/src tree, runs one analyzer over it through the same
// driver path CI uses (including //locat:allow suppression), and matches
// reported findings against `// want "regexp"` comments in the fixtures.
//
// Fixture packages are type-checked with the source importer, so they may
// import standard-library packages (sync, time, math/rand, sort) but
// nothing outside GOROOT.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"locat/tools/locat-vet/analysis"
	"locat/tools/locat-vet/unitchecker"
)

// One source importer per test process: it type-checks stdlib dependencies
// from source, which is slow enough to be worth sharing across fixtures.
var (
	fsetOnce sync.Once
	fset     *token.FileSet
	imp      types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	fsetOnce.Do(func() {
		fset = token.NewFileSet()
		imp = importer.ForCompiler(fset, "source", nil)
	})
	return fset, imp
}

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// Run loads testdata/src/<pkgPath> relative to the test's working
// directory, applies the analyzer, and reports mismatches between findings
// and `// want` expectations on t.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}

	fset, imp := sharedImporter()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixtures in %s", dir)
	}

	tc := &types.Config{Importer: imp}
	info := analysis.NewInfo()
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	findings := unitchecker.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})

	expects := parseExpectations(t, fset, files)

	for _, f := range findings {
		pos := fset.Position(f.Pos)
		matched := false
		for _, e := range expects {
			if e.met || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.rx.MatchString(f.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s]: %s", pos, f.Analyzer, f.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

// parseExpectations extracts `// want "rx" "rx"...` comments. The
// expectation applies to the line the comment sits on.
func parseExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			t.Fatalf("want patterns must be quoted, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("unterminated want pattern in %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	return out
}

// MustFail asserts the analyzer reports at least one finding on the given
// fixture package when the //locat:allow filter is bypassed — the
// "analyzer actually catches the seeded violation" guard demanded by the
// acceptance criteria, immune to fixtures accidentally matching nothing.
func MustFail(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset, imp := sharedImporter()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	tc := &types.Config{Importer: imp}
	info := analysis.NewInfo()
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}
	n := 0
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(analysis.Diagnostic) { n++ },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer error: %v", err)
	}
	if n == 0 {
		t.Fatalf("analyzer %s reported nothing on %s; the seeded violation went undetected", a.Name, pkgPath)
	}
}
