module locat/tools/locat-vet

go 1.24
