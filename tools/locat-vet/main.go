// Command locat-vet is the LOCAT repository's custom static-analysis
// suite: five analyzers that make the tuner's engineering invariants —
// bit-for-bit determinism, lock discipline, span hygiene — compile-time
// properties instead of test-time ones.
//
// Usage:
//
//	locat-vet ./...                       # from the main module root
//	go vet -vettool=$(command -v locat-vet) ./...
//
// Suppress an intentional finding with a trailing or preceding comment:
//
//	//locat:allow <analyzer> <reason>
package main

import (
	"locat/tools/locat-vet/analysis"
	"locat/tools/locat-vet/analyzers/detmap"
	"locat/tools/locat-vet/analyzers/detrand"
	"locat/tools/locat-vet/analyzers/lockcheck"
	"locat/tools/locat-vet/analyzers/spancheck"
	"locat/tools/locat-vet/analyzers/wallclock"
	"locat/tools/locat-vet/unitchecker"
)

// Suite is the full analyzer set, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		wallclock.Analyzer,
		detmap.Analyzer,
		lockcheck.Analyzer,
		spancheck.Analyzer,
	}
}

func main() {
	unitchecker.Main(Suite()...)
}
