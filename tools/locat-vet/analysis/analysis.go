// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that locat-vet's checkers
// need. The shapes (Analyzer, Pass, Diagnostic) deliberately mirror the
// upstream package so the analyzers can be ported to the real multichecker
// verbatim if an external dependency ever becomes acceptable; today the
// main module and this tools module both build with zero requirements,
// which keeps `go vet -vettool=locat-vet` hermetic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// Analyzer describes one invariant checker of the suite.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//locat:allow <name> <reason>` suppression directives.
	Name string
	// Doc is the one-paragraph description printed by `locat-vet help`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives every finding. The driver fills it in.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with all the maps the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Callee resolves the static callee of call, or nil for indirect calls,
// conversions, and builtins. Method values and promoted (embedded) methods
// resolve to the declared *types.Func.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// PkgFunc reports whether fn is a package-level function (no receiver)
// declared in the package with the given import path.
func PkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// MethodRecvNamed returns the named type of fn's receiver (unwrapping a
// pointer), or nil when fn is not a method.
func MethodRecvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// DeterministicPackages is the set of package basenames whose code must
// reproduce bit-for-bit across runs and worker counts: parallel sampling,
// multi-chain MCMC, and batched surrogate math all promise serial-identical
// results, so any ambient source of nondeterminism (global rngs, wall
// clocks, map iteration order) is banned there outright.
var DeterministicPackages = map[string]bool{
	"sparksim":  true,
	"gp":        true,
	"bo":        true,
	"dagp":      true,
	"core":      true,
	"qcsa":      true,
	"iicp":      true,
	"kpca":      true,
	"mat":       true,
	"stat":      true,
	"baselines": true,
}

// IsDeterministic reports whether pkgPath names a package under the
// determinism contract. External test packages (`<pkg>_test`) inherit the
// classification of the package they test.
func IsDeterministic(pkgPath string) bool {
	base := path.Base(pkgPath)
	base = strings.TrimSuffix(base, "_test")
	return DeterministicPackages[base]
}

// ExprString renders a (selector chain of a) lock or span receiver
// expression compactly for diagnostics and event matching: `s.mu.Lock()`
// yields "s.mu". Unrenderable expressions collapse to a positional key so
// distinct receivers never alias.
func ExprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}
