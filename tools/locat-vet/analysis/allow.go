package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowDirective is one parsed `//locat:allow <analyzer> <reason>` comment.
// It suppresses findings of the named analyzer on the directive's own line
// (trailing comment form) and on the line immediately below (standalone
// comment form).
type AllowDirective struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// Finding pairs a diagnostic with the analyzer that produced it, which the
// suppression filter needs.
type Finding struct {
	Analyzer string
	Diagnostic
}

const allowPrefix = "//locat:allow"

// CollectAllows scans every comment of files for allow directives. Malformed
// directives (missing analyzer name, missing reason, or naming an analyzer
// not in known) are returned as findings of the pseudo-analyzer
// "locatvet" so they fail the build instead of silently suppressing nothing.
func CollectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]AllowDirective, []Finding) {
	var allows []AllowDirective
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //locat:allowlist — not ours
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Finding{
						Analyzer:   "locatvet",
						Diagnostic: Diagnostic{Pos: c.Pos(), Message: "malformed //locat:allow: missing analyzer name and reason"},
					})
				case len(fields) == 1:
					malformed = append(malformed, Finding{
						Analyzer:   "locatvet",
						Diagnostic: Diagnostic{Pos: c.Pos(), Message: "malformed //locat:allow " + fields[0] + ": a reason is required"},
					})
				case known != nil && !known[fields[0]]:
					malformed = append(malformed, Finding{
						Analyzer:   "locatvet",
						Diagnostic: Diagnostic{Pos: c.Pos(), Message: "//locat:allow names unknown analyzer " + fields[0]},
					})
				default:
					allows = append(allows, AllowDirective{
						Pos:      c.Pos(),
						File:     pos.Filename,
						Line:     pos.Line,
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return allows, malformed
}

// FilterAllowed drops findings suppressed by a directive on the same line or
// the line directly above, and returns the survivors.
func FilterAllowed(fset *token.FileSet, findings []Finding, allows []AllowDirective) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool, 2*len(allows))
	for _, a := range allows {
		covered[key{a.File, a.Line, a.Analyzer}] = true
		covered[key{a.File, a.Line + 1, a.Analyzer}] = true
	}
	var kept []Finding
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		if covered[key{pos.Filename, pos.Line, f.Analyzer}] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
