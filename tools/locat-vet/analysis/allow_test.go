package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectAllows(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //locat:allow detrand benchmark helper, off the tuning path
}

func b() {
	//locat:allow wallclock progress display only
	_ = 2
}
`
	fset, files := parseOne(t, src)
	known := map[string]bool{"detrand": true, "wallclock": true}
	allows, malformed := CollectAllows(fset, files, known)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	if len(allows) != 2 {
		t.Fatalf("got %d allows, want 2", len(allows))
	}
	if allows[0].Analyzer != "detrand" || !strings.Contains(allows[0].Reason, "benchmark helper") {
		t.Errorf("allow[0] = %+v", allows[0])
	}
	if allows[1].Analyzer != "wallclock" || allows[1].Line != 8 {
		t.Errorf("allow[1] = %+v", allows[1])
	}
}

func TestMalformedAllows(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //locat:allow
	_ = 2 //locat:allow detrand
	_ = 3 //locat:allow nosuchanalyzer because reasons
}
`
	fset, files := parseOne(t, src)
	known := map[string]bool{"detrand": true}
	allows, malformed := CollectAllows(fset, files, known)
	if len(allows) != 0 {
		t.Fatalf("malformed directives must not suppress anything, got %v", allows)
	}
	if len(malformed) != 3 {
		t.Fatalf("got %d malformed findings, want 3: %v", len(malformed), malformed)
	}
	for i, want := range []string{"missing analyzer name", "a reason is required", "unknown analyzer"} {
		if !strings.Contains(malformed[i].Message, want) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, malformed[i].Message, want)
		}
	}
}

func TestFilterAllowed(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //locat:allow detrand same-line suppression
	_ = 2
	_ = 3
	//locat:allow detrand next-line suppression
	_ = 4
}
`
	fset, files := parseOne(t, src)
	allows, _ := CollectAllows(fset, files, map[string]bool{"detrand": true})

	file := fset.File(files[0].Pos())
	at := func(line int) token.Pos { return file.LineStart(line) }

	findings := []Finding{
		{Analyzer: "detrand", Diagnostic: Diagnostic{Pos: at(4), Message: "on directive line"}},
		{Analyzer: "detrand", Diagnostic: Diagnostic{Pos: at(6), Message: "no directive"}},
		{Analyzer: "wallclock", Diagnostic: Diagnostic{Pos: at(4), Message: "wrong analyzer"}},
		{Analyzer: "detrand", Diagnostic: Diagnostic{Pos: at(8), Message: "below directive"}},
	}
	kept := FilterAllowed(fset, findings, allows)
	if len(kept) != 2 {
		t.Fatalf("got %d findings after filter, want 2: %v", len(kept), kept)
	}
	if kept[0].Message != "no directive" || kept[1].Message != "wrong analyzer" {
		t.Errorf("kept = %v", kept)
	}
}

func TestIsDeterministic(t *testing.T) {
	cases := map[string]bool{
		"locat/internal/gp":        true,
		"locat/internal/gp_test":   true,
		"locat/internal/sparksim":  true,
		"locat/internal/obs":       false,
		"locat/internal/service":   false,
		"locat/internal/runner":    false,
		"gp":                       true,
		"locat/internal/progress":  false,
		"locat/internal/baselines": true,
	}
	for path, want := range cases {
		if got := IsDeterministic(path); got != want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
