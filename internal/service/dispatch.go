package service

import "sync"

// dispatcher is the priority-aware job queue between Submit and the worker
// pool. Two FIFO lanes — interactive ahead of batch — share one capacity
// bound, so cheap interactive work (recommend refinements, deadline-bounded
// tuning) never waits behind a backlog of batch sessions. When the queue is
// full, an interactive submission displaces the youngest queued batch job
// (returned to the caller for shed bookkeeping) instead of being refused;
// batch submissions against a full queue are refused outright.
//
// The dispatcher replaces the old buffered channel: lanes under a mutex
// cannot panic on a send-after-close race, and Close can inspect and drain
// the backlog atomically instead of cancelling whatever happens to still be
// buffered.
//
// Locking: enqueue and drain are called with the service mutex held (they
// read job fields the service mutex guards); dequeue is called bare by the
// workers. Nothing under d.mu ever takes the service mutex, so the order
// s.mu → d.mu is acyclic.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	inter  []*job // interactive lane, FIFO
	batch  []*job // batch lane, FIFO
	held   bool   // hold intake open but park dequeues (deterministic load tests)
	closed bool
}

func newDispatcher(capacity int) *dispatcher {
	d := &dispatcher{cap: capacity}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// enqueue admits j into its priority lane. When the queue is full and j is
// interactive, the youngest queued batch job is evicted and returned as
// shed — the caller settles its lifecycle (the evicted job may already be
// terminal if it was cancelled while queued; eviction then just frees the
// slot). ok is false when the dispatcher is closed or the submission must
// be refused.
func (d *dispatcher) enqueue(j *job) (shed *job, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false
	}
	if len(d.inter)+len(d.batch) >= d.cap {
		if j.spec.Priority != PriorityInteractive || len(d.batch) == 0 {
			return nil, false
		}
		shed = d.batch[len(d.batch)-1]
		d.batch = d.batch[:len(d.batch)-1]
	}
	if j.spec.Priority == PriorityInteractive {
		d.inter = append(d.inter, j)
	} else {
		d.batch = append(d.batch, j)
	}
	d.cond.Signal()
	return shed, true
}

// dequeue blocks until a job is available (interactive lane first) and
// returns it. ok is false once the dispatcher is closed and both lanes are
// empty — the worker-pool shutdown signal. A held dispatcher parks dequeues
// while still admitting enqueues; close overrides hold so shutdown never
// deadlocks behind a forgotten release.
func (d *dispatcher) dequeue() (j *job, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed || !d.held {
			if len(d.inter) > 0 {
				j = d.inter[0]
				d.inter = d.inter[1:]
				return j, true
			}
			if len(d.batch) > 0 {
				j = d.batch[0]
				d.batch = d.batch[1:]
				return j, true
			}
		}
		if d.closed {
			return nil, false
		}
		d.cond.Wait() //locat:allow lockcheck Cond.Wait releases d.mu while parked; holding it is the Cond contract
	}
}

// requeue re-admits a retried job into its lane without ever evicting:
// false when the dispatcher is closed or full.
func (d *dispatcher) requeue(j *job) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || len(d.inter)+len(d.batch) >= d.cap {
		return false
	}
	if j.spec.Priority == PriorityInteractive {
		d.inter = append(d.inter, j)
	} else {
		d.batch = append(d.batch, j)
	}
	d.cond.Signal()
	return true
}

// drain removes and returns every queued job (interactive first, each lane
// in FIFO order) without waking workers — the graceful-shutdown path that
// checkpoints the backlog instead of running it.
func (d *dispatcher) drain() []*job {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*job, 0, len(d.inter)+len(d.batch))
	out = append(out, d.inter...)
	out = append(out, d.batch...)
	d.inter, d.batch = nil, nil
	return out
}

// close stops intake and wakes every parked worker so the pool can exit.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// hold parks the workers without refusing submissions: jobs accumulate in
// the lanes until release. Deterministic load tests submit a whole workload
// under hold, so admission and shedding become a pure function of the
// submission order — the worker count cannot influence them.
func (d *dispatcher) hold() {
	d.mu.Lock()
	d.held = true
	d.mu.Unlock()
}

// release reopens dequeues after hold and wakes the workers.
func (d *dispatcher) release() {
	d.mu.Lock()
	d.held = false
	d.mu.Unlock()
	d.cond.Broadcast()
}
