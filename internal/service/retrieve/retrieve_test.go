package retrieve

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func wl(log2GB float64) Workload {
	return Workload{
		Log2GB: log2GB, Queries: 22, JoinFrac: 0.5, AggFrac: 0.3,
		ShuffleFrac: 0.4, InputFrac: 0.5, Stages: 3, CPUWeight: 1,
		TotalCores: 384, QCSA: 1, IICP: 1, DAGP: 1,
	}
}

func TestVectorDistances(t *testing.T) {
	base := wl(6.6)
	if d := Distance(base.Vector(), base.Vector()); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	// One power of two away: a near neighbor, inside the default radius.
	near := Distance(base.Vector(), wl(7.6).Vector())
	if near <= 0 || near > 0.3 {
		t.Fatalf("adjacent-size distance = %v, want (0, 0.3]", near)
	}
	// A different cluster architecture is far outside any sane radius.
	other := base
	other.ClusterCode = 1
	if d := Distance(base.Vector(), other.Vector()); d < 1.5 {
		t.Fatalf("cross-cluster distance = %v, want >= 1.5", d)
	}
	// A disabled technique bit pushes past the default radius too.
	noQCSA := base
	noQCSA.QCSA = 0
	if d := Distance(base.Vector(), noQCSA.Vector()); d < 0.9 {
		t.Fatalf("technique-mismatch distance = %v, want >= 0.9", d)
	}
	// Mismatched dimensionality is incomparable.
	if d := Distance(base.Vector(), []float64{1, 2}); !math.IsInf(d, 1) {
		t.Fatalf("mismatched dims distance = %v, want +Inf", d)
	}
}

func TestNearestDeterministicOrder(t *testing.T) {
	ix := NewIndex()
	// Two items at the identical distance: the tie must break on ID no
	// matter the insertion order.
	ix.Upsert(Item{ID: "b", Key: "k", Vec: []float64{1, 0}})
	ix.Upsert(Item{ID: "a", Key: "k", Vec: []float64{0, 1}})
	ix.Upsert(Item{ID: "c", Key: "k", Vec: []float64{3, 0}})
	got := ix.Nearest([]float64{0, 0}, 2, 0)
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("Nearest = %+v, want a then b", got)
	}
	// The radius cut excludes the far item even with room in k.
	got = ix.Nearest([]float64{0, 0}, 10, 2)
	if len(got) != 2 {
		t.Fatalf("radius cut kept %d items, want 2", len(got))
	}
	if got := ix.Nearest([]float64{0, 0}, 0, 0); got != nil {
		t.Fatalf("k=0 returned %+v", got)
	}
}

func TestUpsertRemoveCompact(t *testing.T) {
	ix := NewIndex()
	ix.Upsert(Item{ID: "x", Key: "k1", Vec: []float64{1}})
	ix.Upsert(Item{ID: "x", Key: "k1", Vec: []float64{2}}) // replace
	ix.Upsert(Item{ID: "y", Key: "k2", Vec: []float64{3}})
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	if got := ix.Nearest([]float64{2}, 1, 0); got[0].ID != "x" || got[0].Dist != 0 {
		t.Fatalf("upsert did not replace: %+v", got)
	}
	if n := ix.Compact(func(it Item) bool { return it.Key != "k2" }); n != 1 {
		t.Fatalf("Compact dropped %d, want 1", n)
	}
	ix.Remove("x")
	ix.Remove("x") // no-op
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after removals, want 0", ix.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "knn.index")
	ix := NewIndex()
	ix.Upsert(Item{ID: "a", Key: "k1", Vec: wl(6.6).Vector()})
	ix.Upsert(Item{ID: "b", Key: "k2", Vec: wl(7.6).Vector()})
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got := Load(path)
	if got.Len() != 2 {
		t.Fatalf("loaded %d items, want 2", got.Len())
	}
	a, b := ix.Items(), got.Items()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Key != b[i].Key || Distance(a[i].Vec, b[i].Vec) != 0 {
			t.Fatalf("round trip diverged: %+v vs %+v", a[i], b[i])
		}
	}
	// Removal compacts on the next Save: the file holds only live items.
	ix.Remove("a")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	if got := Load(path); got.Len() != 1 || !got.Has("b") {
		t.Fatalf("compacted index = %+v", got.Items())
	}
}

func TestLoadToleratesMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if ix := Load(filepath.Join(dir, "absent")); ix.Len() != 0 {
		t.Fatal("missing file must load empty")
	}
	bad := filepath.Join(dir, "corrupt")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ix := Load(bad); ix.Len() != 0 {
		t.Fatal("corrupt file must load empty")
	}
	// A schema bump invalidates older files wholesale.
	old := filepath.Join(dir, "oldschema")
	if err := os.WriteFile(old, []byte(`{"schema":0,"items":[{"id":"a","key":"k","vec":[1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if ix := Load(old); ix.Len() != 0 {
		t.Fatal("schema-mismatched file must load empty")
	}
}

func TestWeightsBlendConfidence(t *testing.T) {
	ws := Weights([]float64{0, 0.5})
	if math.Abs(ws[0]+ws[1]-1) > 1e-12 || ws[0] <= ws[1] {
		t.Fatalf("Weights = %v, want normalized and nearest-heavy", ws)
	}
	blend := Blend([][]float64{{0, 1}, {1, 0}}, []float64{0.75, 0.25})
	if math.Abs(blend[0]-0.25) > 1e-12 || math.Abs(blend[1]-0.75) > 1e-12 {
		t.Fatalf("Blend = %v", blend)
	}
	if Blend(nil, nil) != nil {
		t.Fatal("empty blend must be nil")
	}
	// One perfect neighbor is thin evidence; three saturate.
	if c := Confidence([]float64{0}, 5, 0.75); math.Abs(c-1.0/3) > 1e-12 {
		t.Fatalf("single-neighbor confidence = %v, want 1/3", c)
	}
	if c := Confidence([]float64{0, 0, 0}, 5, 0.75); c != 1 {
		t.Fatalf("three-neighbor confidence = %v, want 1", c)
	}
	// Out-of-radius distances contribute nothing; degenerate inputs score 0.
	if c := Confidence([]float64{2}, 5, 0.75); c != 0 {
		t.Fatalf("far-neighbor confidence = %v, want 0", c)
	}
	if Confidence(nil, 0, 0.75) != 0 || Confidence(nil, 5, 0) != 0 {
		t.Fatal("degenerate confidence must be 0")
	}
}
