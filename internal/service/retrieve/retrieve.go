// Package retrieve implements the zero-execution retrieval tier of the
// tuning service: workload feature vectors, an exact-scan k-nearest-neighbor
// index over the history store, and the distance weighting that blends the
// retrieved configurations into an instant recommendation. The design
// follows the retrieval-augmented configuration-tuning line of work — serve
// a config from similar past workloads with zero sample runs, and fall back
// to a real tuning session only when no past workload is close enough.
//
// The package is deliberately free of tuning-domain imports: the service
// layer maps job specs and history entries onto Workload feature structs,
// and everything here operates on plain vectors. The index is an exact
// linear scan — the store is capped at a few thousand entries, where a scan
// over 16-dimensional vectors is microseconds and beats any tree structure
// on simplicity and determinism.
package retrieve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// Workload is the feature view of one tuning workload: the cluster it runs
// on, its input scale, the structural mix of its query plans, the technique
// set its artifacts were produced under, and how well-observed it is. Two
// workloads whose Workload vectors are close produce mutually transferable
// configurations; the field weights in Vector encode how strongly each
// property gates that transfer.
type Workload struct {
	// ClusterCode distinguishes cluster types (0 = arm, 1 = x86). Weighted
	// far past MaxDistance: resource configurations never transfer across
	// cluster architectures.
	ClusterCode float64
	// TotalCores is the cluster's core count (a secondary size signal).
	TotalCores float64
	// Log2GB is log2 of the input data size; adjacent power-of-two sizes
	// are near neighbors, mirroring the fingerprint's bucket adjacency.
	Log2GB float64
	// Queries is the benchmark's query count.
	Queries float64
	// JoinFrac and AggFrac are the fractions of join / aggregation queries
	// (the configuration-sensitive classes).
	JoinFrac, AggFrac float64
	// ShuffleFrac and InputFrac are the scan-weighted mean shuffle volume
	// and the mean scanned fraction — the plan features that dominate how a
	// configuration performs.
	ShuffleFrac, InputFrac float64
	// Stages is the mean stage depth; CPUWeight and Skew are the mean
	// compute intensity and key-skew severity.
	Stages, CPUWeight, Skew float64
	// QCSA, IICP and DAGP are the technique bits (1 = enabled). Artifacts
	// produced under a different technique set have a different shape, so a
	// mismatch is weighted past MaxDistance.
	QCSA, IICP, DAGP float64
	// ObsDeficit in [0,1] penalizes thinly-observed history entries: 0 for
	// a well-observed entry (>= 16 runs), approaching 1 for an empty one.
	// Queries under construction use 0, so richer entries rank closer.
	ObsDeficit float64
}

// Feature weights. The scale is calibrated so that, under the default
// MaxDistance of 0.75, the same benchmark one size bucket away is a good
// neighbor (distance ~0.25) while a different benchmark, cluster or
// technique set falls outside the radius.
const (
	wCluster = 2.0  // architecture mismatch: never transferable
	wCores   = 0.5  // per 256 cores
	wLog2GB  = 0.25 // per power of two of input size
	wQueries = 1.0  // per 64 queries
	wClass   = 0.5  // join/agg class-mix fractions
	wShuffle = 0.5
	wInput   = 0.3
	wStages  = 0.3 // per 6 stages
	wCPU     = 0.2
	wSkew    = 0.2
	wTech    = 1.0 // per technique bit
	wObs     = 0.15
)

// Vector renders the workload as its weighted feature vector. The weighting
// bakes the distance metric into the vectors themselves, so Distance is a
// plain Euclidean norm and persisted vectors stay comparable as long as the
// weights do not change (IndexSchema tracks that).
func (w Workload) Vector() []float64 {
	return []float64{
		wCluster * w.ClusterCode,
		wCores * w.TotalCores / 256,
		wLog2GB * w.Log2GB,
		wQueries * w.Queries / 64,
		wClass * w.JoinFrac,
		wClass * w.AggFrac,
		wShuffle * w.ShuffleFrac,
		wInput * w.InputFrac,
		wStages * w.Stages / 6,
		wCPU * w.CPUWeight,
		wSkew * w.Skew,
		wTech * w.QCSA,
		wTech * w.IICP,
		wTech * w.DAGP,
		wObs * w.ObsDeficit,
	}
}

// Distance is the Euclidean distance between two feature vectors. Vectors
// of different dimensionality (an index persisted under an older feature
// schema) are incomparable and report +Inf, so they can never be retrieved.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Item is one indexed history entry: a stable ID, the history-store key the
// entry lives under, and its feature vector.
type Item struct {
	ID  string    `json:"id"`
	Key string    `json:"key"`
	Vec []float64 `json:"vec"`
}

// Match is one retrieval result.
type Match struct {
	Item
	Dist float64
}

// Index is the k-NN index: an exact-scan set of feature-vector items, safe
// for concurrent use. It persists to a single JSON file (Save/Load); every
// Save writes only the live items, so the on-disk index compacts itself —
// tombstones never accumulate.
type Index struct {
	mu    sync.RWMutex
	items map[string]Item
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{items: map[string]Item{}}
}

// Upsert inserts the item, replacing any previous item with the same ID.
func (ix *Index) Upsert(it Item) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.items[it.ID] = it
}

// Remove deletes the item with the given ID (a no-op when absent).
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.items, id)
}

// Has reports whether an item with the given ID is indexed.
func (ix *Index) Has(id string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.items[id]
	return ok
}

// Len returns the number of indexed items.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.items)
}

// Items returns the indexed items sorted by ID.
func (ix *Index) Items() []Item {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Item, 0, len(ix.items))
	for _, it := range ix.items {
		out = append(out, it)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Compact removes every item the alive predicate rejects and returns how
// many were dropped — the hook that keeps the index in step with store
// eviction.
func (ix *Index) Compact(alive func(Item) bool) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	dropped := 0
	for id, it := range ix.items {
		if !alive(it) {
			delete(ix.items, id)
			dropped++
		}
	}
	return dropped
}

// Nearest returns up to k items within maxDist of vec, nearest first. Ties
// break on ID, so retrieval is deterministic regardless of insertion order
// or map iteration. maxDist <= 0 disables the radius cut; k <= 0 returns
// nothing.
func (ix *Index) Nearest(vec []float64, k int, maxDist float64) []Match {
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	matches := make([]Match, 0, len(ix.items))
	for _, it := range ix.items {
		d := Distance(vec, it.Vec)
		if math.IsInf(d, 1) || (maxDist > 0 && d > maxDist) {
			continue
		}
		matches = append(matches, Match{Item: it, Dist: d})
	}
	ix.mu.RUnlock()
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].Dist != matches[b].Dist {
			return matches[a].Dist < matches[b].Dist
		}
		return matches[a].ID < matches[b].ID
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// IndexSchema versions the persisted index file. Bump it when the feature
// weights or the Workload layout change: Load discards files written under
// a different schema, and the caller rebuilds from the store.
const IndexSchema = 1

// indexFile is the on-disk shape.
type indexFile struct {
	Schema int    `json:"schema"`
	Items  []Item `json:"items"`
}

// Save writes the index to path atomically (temp file + rename). The file
// holds exactly the live items — removed entries vanish on the next Save,
// which is the index's compaction.
func (ix *Index) Save(path string) error {
	data, err := json.MarshalIndent(indexFile{Schema: IndexSchema, Items: ix.Items()}, "", " ")
	if err != nil {
		return fmt.Errorf("retrieve: encode index: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("retrieve: write index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("retrieve: commit index: %w", err)
	}
	return nil
}

// Load reads a persisted index. A missing file, a corrupt file or a schema
// mismatch all yield an empty index and no error: the index is a cache of
// the store, so the correct recovery is always a rebuild, never a failure.
func Load(path string) *Index {
	ix := NewIndex()
	data, err := os.ReadFile(path)
	if err != nil {
		return ix
	}
	var f indexFile
	if err := json.Unmarshal(data, &f); err != nil || f.Schema != IndexSchema {
		return ix
	}
	for _, it := range f.Items {
		if it.ID != "" {
			ix.items[it.ID] = it
		}
	}
	return ix
}

// Weights converts neighbor distances to normalized inverse-distance
// weights: the nearest neighbors dominate the blend, and an exact match
// (distance 0) still shares weight with its peers through the epsilon.
func Weights(dists []float64) []float64 {
	const eps = 0.05
	out := make([]float64, len(dists))
	var sum float64
	for i, d := range dists {
		out[i] = 1 / (d + eps)
		sum += out[i]
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// Blend returns the weighted mean of the vectors (configurations in the
// knob space's unit encoding). The caller snaps the blend back onto the
// discrete knob space by decoding it.
func Blend(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for i, v := range vecs {
		w := weights[i]
		for j := range out {
			out[j] += w * v[j]
		}
	}
	return out
}

// Confidence scores a retrieval in [0,1]: each neighbor contributes its
// similarity 1 - dist/maxDist, and the sum is normalized by the evidence
// target min(k, 3) — one perfect neighbor alone is thin evidence (~0.33),
// three near neighbors saturate the score. The threshold between serving
// instantly and falling back to a real tuning session compares against this.
func Confidence(dists []float64, k int, maxDist float64) float64 {
	if maxDist <= 0 || k <= 0 {
		return 0
	}
	var sum float64
	for _, d := range dists {
		if s := 1 - d/maxDist; s > 0 {
			sum += s
		}
	}
	want := k
	if want > 3 {
		want = 3
	}
	c := sum / float64(want)
	if c > 1 {
		c = 1
	}
	return c
}
