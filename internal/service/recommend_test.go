package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"locat/internal/obs"
	"locat/internal/service/retrieve"
)

// seedHistory runs quick tuning jobs so the history store holds real
// sessions for retrieval, and returns their IDs in submission order.
func seedHistory(t *testing.T, s *Service, sizes []float64) []string {
	t.Helper()
	var ids []string
	for i, gb := range sizes {
		id, err := s.Submit(quickSpec(gb, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		// Await each job before submitting the next: the store contents (and
		// therefore the index) are identical no matter how many workers the
		// service runs.
		if _, err := s.Result(id); err != nil {
			t.Fatalf("seed job %s: %v", id, err)
		}
		ids = append(ids, id)
	}
	return ids
}

// runTally extracts the execution counters from a metrics scrape — the
// ground truth for "zero sample runs".
func runTally(t *testing.T, s *Service) string {
	t.Helper()
	var buf bytes.Buffer
	s.Metrics().WritePrometheus(&buf)
	var lines []string
	for _, ln := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(ln, "locat_runs_total") ||
			strings.HasPrefix(ln, "locat_run_cluster_seconds_total") {
			lines = append(lines, ln)
		}
	}
	if len(lines) == 0 {
		t.Fatal("no run counters in scrape")
	}
	return strings.Join(lines, "\n")
}

// TestRecommendHTTP drives POST /v1/recommend through its outcomes.
func TestRecommendHTTP(t *testing.T) {
	svc := New(Config{Workers: 2, Metrics: obs.NewRegistry()})
	defer svc.Close()
	seedHistory(t, svc, []float64{100, 140})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	empty := New(Config{Workers: 1, Metrics: obs.NewRegistry()})
	defer empty.Close()
	emptySrv := httptest.NewServer(empty.Handler())
	defer emptySrv.Close()

	quickDS := quickSpec(120, 9)
	quickDS.Benchmark = "TPC-DS"

	cases := []struct {
		name        string
		url         string
		req         RecommendRequest
		wantOutcome string
		wantRefine  bool // refine_job_id present
	}{
		{
			name:        "hit",
			url:         srv.URL,
			req:         RecommendRequest{JobSpec: quickSpec(120, 9), NoFallback: true},
			wantOutcome: "hit",
		},
		{
			name: "low confidence falls back to a tuning job",
			url:  srv.URL,
			// A different benchmark sits past the neighbor radius: no usable
			// neighbors, a real job is submitted instead.
			req:         RecommendRequest{JobSpec: quickDS},
			wantOutcome: "fallback",
			wantRefine:  true,
		},
		{
			name:        "empty store is a miss with no_fallback",
			url:         emptySrv.URL,
			req:         RecommendRequest{JobSpec: quickSpec(120, 9), NoFallback: true},
			wantOutcome: "miss",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rec Recommendation
			doJSON(t, client, "POST", tc.url+"/v1/recommend", tc.req, http.StatusOK, &rec)
			if rec.Outcome != tc.wantOutcome {
				t.Fatalf("outcome = %q, want %q (%+v)", rec.Outcome, tc.wantOutcome, rec)
			}
			if got := rec.RefineJobID != ""; got != tc.wantRefine {
				t.Fatalf("refine_job_id = %q, want present=%v", rec.RefineJobID, tc.wantRefine)
			}
			if tc.wantOutcome == "hit" {
				if rec.Confidence < DefaultRecommendConfidence || len(rec.Neighbors) != 2 {
					t.Fatalf("hit evidence: confidence %.2f, %d neighbors", rec.Confidence, len(rec.Neighbors))
				}
				if len(rec.BestParams) == 0 || !strings.Contains(rec.SparkConf, "spark.executor.cores") {
					t.Fatalf("hit has no config: %+v", rec)
				}
				if rec.EstimatedSec <= 0 {
					t.Fatalf("hit has no latency estimate: %+v", rec)
				}
			}
			if tc.wantOutcome == "miss" && len(rec.Neighbors) != 0 {
				t.Fatalf("miss with neighbors: %+v", rec.Neighbors)
			}
		})
	}

	// Malformed spec: unknown cluster is 422 with the envelope.
	bad := RecommendRequest{JobSpec: JobSpec{Cluster: "sparc"}}
	var env apiError
	doJSON(t, client, "POST", srv.URL+"/v1/recommend", bad, http.StatusUnprocessableEntity, &env)
	if env.Error.Code != "invalid_spec" {
		t.Fatalf("envelope = %+v", env)
	}

	// Non-JSON content type is refused before decoding.
	resp, err := client.Post(srv.URL+"/v1/recommend", "text/plain", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain recommend = %d, want 415", resp.StatusCode)
	}
}

// TestRecommendZeroExecutions is the acceptance check of the tier: a
// repeat-neighborhood workload served via Recommend consumes zero simulated
// cluster seconds — the run tally in the metrics registry does not move.
func TestRecommendZeroExecutions(t *testing.T) {
	svc := New(Config{Workers: 2, Metrics: obs.NewRegistry()})
	defer svc.Close()
	seedHistory(t, svc, []float64{100, 140})

	before := runTally(t, svc)
	for _, gb := range []float64{100, 110, 120, 130, 140} {
		rec, err := svc.Recommend(RecommendRequest{JobSpec: quickSpec(gb, 7), NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Outcome != "hit" {
			t.Fatalf("%g GB: outcome %q (confidence %.2f)", gb, rec.Outcome, rec.Confidence)
		}
	}
	if after := runTally(t, svc); after != before {
		t.Fatalf("recommendations executed runs:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestRecommendDeterministicAcrossWorkers pins the determinism discipline:
// the same seeded history and the same request produce bit-identical
// recommendations no matter the worker count.
func TestRecommendDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		params     map[string]float64
		confidence float64
		keys       []string
		dists      []float64
	}
	var base *snapshot
	for _, workers := range []int{1, 2, 4} {
		svc := New(Config{Workers: workers, Metrics: obs.NewRegistry()})
		seedHistory(t, svc, []float64{100, 140, 100})
		rec, err := svc.Recommend(RecommendRequest{JobSpec: quickSpec(120, 5), NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		svc.Close()
		got := &snapshot{params: rec.BestParams, confidence: rec.Confidence}
		for _, n := range rec.Neighbors {
			got.keys = append(got.keys, n.Key+"/"+n.JobID)
			got.dists = append(got.dists, n.Distance)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got.params, base.params) ||
			got.confidence != base.confidence ||
			!reflect.DeepEqual(got.keys, base.keys) ||
			!reflect.DeepEqual(got.dists, base.dists) {
			t.Fatalf("workers=%d diverges:\n%+v\nvs workers=1:\n%+v", workers, got, base)
		}
	}
}

// TestRecommendRefineSeedsSession: a refine=true hit answers immediately and
// additionally starts a background session warm-started from the retrieved
// neighbors, with the provenance recorded on the job result.
func TestRecommendRefineSeedsSession(t *testing.T) {
	svc := New(Config{Workers: 1, Metrics: obs.NewRegistry()})
	defer svc.Close()
	seedHistory(t, svc, []float64{100, 140})

	rec, err := svc.Recommend(RecommendRequest{JobSpec: quickSpec(120, 6), Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != "hit" || rec.RefineJobID == "" || rec.RefineError != "" {
		t.Fatalf("refine hit = %+v", rec)
	}
	res, err := svc.Result(rec.RefineJobID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmStarted || res.PriorObsUsed == 0 {
		t.Fatalf("refine session not warm-started: %+v", res)
	}
	if len(res.SeededFrom) != len(rec.Neighbors) {
		t.Fatalf("refine provenance: %d seeded_from, want %d", len(res.SeededFrom), len(rec.Neighbors))
	}
}

// TestRecommendIndexPersistence: the k-NN index file survives a store
// reopen, its persisted vectors are reused rather than recomputed, and
// entries deleted from the store are compacted out on the next build.
func TestRecommendIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 1, Store: fs, Metrics: obs.NewRegistry()})
	seedHistory(t, svc, []float64{100})
	if n := svc.Recommender().Len(); n != 1 {
		t.Fatalf("index has %d items, want 1", n)
	}
	svc.Close()
	if _, err := os.Stat(fs.IndexPath()); err != nil {
		t.Fatalf("index file not persisted: %v", err)
	}
	// The index must never surface as a history shard.
	keys, err := fs.Keys()
	if err != nil || len(keys) != 1 {
		t.Fatalf("store keys = %v, %v", keys, err)
	}

	// Reopen: the recommender comes back with the entry indexed.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRecommender(fs2)
	if rc.Len() != 1 {
		t.Fatalf("reopened index has %d items, want 1", rc.Len())
	}

	// Persisted vectors are reused, not recomputed: plant a sentinel vector
	// for the stored entry, rebuild, and watch retrieval honor the sentinel.
	entries, err := fs2.Get(keys[0])
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %d, %v", len(entries), err)
	}
	far := retrieve.NewIndex()
	sentinel := make([]float64, len(retrieve.Workload{}.Vector()))
	for i := range sentinel {
		sentinel[i] = 1e6
	}
	far.Upsert(retrieve.Item{ID: entryID(entries[0]), Key: keys[0], Vec: sentinel})
	if err := far.Save(fs2.IndexPath()); err != nil {
		t.Fatal(err)
	}
	rc = NewRecommender(fs2)
	rec, _, err := rc.Recommend(quickSpec(100, 1), RecommendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Neighbors) != 0 {
		t.Fatalf("sentinel vector was recomputed: %+v", rec.Neighbors)
	}

	// Deleting the shard compacts the index on the next build.
	if err := os.Remove(filepath.Join(dir, keys[0]+".json")); err != nil {
		t.Fatal(err)
	}
	if rc = NewRecommender(fs2); rc.Len() != 0 {
		t.Fatalf("index kept %d items after shard delete", rc.Len())
	}
}

// TestRecommendRequestJSONShape pins the flattened wire format of the
// request: spec fields, retrieval options and mode flags all at top level.
func TestRecommendRequestJSONShape(t *testing.T) {
	var req RecommendRequest
	blob := `{"benchmark":"TPC-H","data_size_gb":120,"k":3,"max_distance":0.5,"refine":true}`
	if err := json.Unmarshal([]byte(blob), &req); err != nil {
		t.Fatal(err)
	}
	if req.Benchmark != "TPC-H" || req.DataSizeGB != 120 || req.K != 3 ||
		req.MaxDistance != 0.5 || !req.Refine {
		t.Fatalf("decoded %+v", req)
	}
}
