package service

import (
	"sync"
	"testing"
	"time"
)

// quickSpec keeps a tuning session fast while exercising the full pipeline.
func quickSpec(gb float64, seed int64) JobSpec {
	return JobSpec{
		Cluster:       "arm",
		Benchmark:     "TPC-H",
		DataSizeGB:    gb,
		Seed:          seed,
		NQCSA:         10,
		NIICP:         8,
		MaxIterations: 8,
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(JobSpec{Cluster: "sparc"}); err == nil {
		t.Fatal("bad cluster accepted")
	}
	if _, err := s.Submit(JobSpec{Benchmark: "nope"}); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if _, err := s.Submit(JobSpec{DataSizeGB: -4}); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := s.Status("job-999999"); err == nil {
		t.Fatal("unknown job status accepted")
	}
	if err := s.Cancel("job-999999"); err == nil {
		t.Fatal("unknown job cancel accepted")
	}
}

func TestConcurrentSubmitBoundedPool(t *testing.T) {
	const workers, jobs = 3, 8
	s := New(Config{Workers: workers})
	defer s.Close()

	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		id, err := s.Submit(quickSpec(100+float64(i), int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Watch pool occupancy while the jobs drain.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	maxRunning := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := s.Stats(); st.Running > maxRunning {
				maxRunning = st.Running
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for _, id := range ids {
		res, err := s.Result(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if res.TunedSec <= 0 || res.OverheadSec <= 0 {
			t.Fatalf("job %s: degenerate result %+v", id, res)
		}
		if res.TunedSec >= res.DefaultSec {
			t.Fatalf("job %s: tuned %v not better than default %v", id, res.TunedSec, res.DefaultSec)
		}
	}
	close(stop)
	wg.Wait()

	if maxRunning > workers {
		t.Fatalf("observed %d concurrent sessions; pool bound is %d", maxRunning, workers)
	}
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 || st.Finished() != jobs {
		t.Fatalf("final stats %+v", st)
	}
}

func TestWarmStartFromHistoryStore(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	// Cold session at 100 GB populates the history store.
	idA, err := s.Submit(quickSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	resA, err := s.Result(idA)
	if err != nil {
		t.Fatal(err)
	}
	if resA.WarmStarted {
		t.Fatal("first session cannot be warm")
	}
	if keys, _ := s.Store().Keys(); len(keys) != 1 {
		t.Fatalf("history keys = %v, want one", keys)
	}

	// A neighboring size warm-starts from it...
	idB, err := s.Submit(quickSpec(140, 2))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := s.Result(idB)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.WarmStarted || resB.PriorObsUsed == 0 {
		t.Fatalf("second session not warm-started: %+v", resB)
	}

	// ...and a cold control at the same size shows what that saved.
	cold := quickSpec(140, 2)
	cold.ColdStart = true
	idC, err := s.Submit(cold)
	if err != nil {
		t.Fatal(err)
	}
	resC, err := s.Result(idC)
	if err != nil {
		t.Fatal(err)
	}
	if resC.WarmStarted {
		t.Fatal("ColdStart job consumed history")
	}
	if resB.OverheadSec >= resC.OverheadSec {
		t.Fatalf("warm overhead %.0f s not below cold overhead %.0f s",
			resB.OverheadSec, resC.OverheadSec)
	}
	if resB.FullRuns >= resC.FullRuns {
		t.Fatalf("warm session ran %d full apps, cold %d", resB.FullRuns, resC.FullRuns)
	}
	// The warm session must still deliver a real tuning result.
	if resB.TunedSec >= resB.DefaultSec {
		t.Fatalf("warm-tuned %v not better than default %v", resB.TunedSec, resB.DefaultSec)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	// Occupy the single worker...
	idA, err := s.Submit(quickSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	// ...then cancel a job that is still queued behind it.
	idB, err := s.Submit(quickSpec(200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(idB); err != nil {
		t.Fatal(err)
	}
	// A queued job is cancelled immediately — no waiting for a worker to
	// dequeue it.
	st, err := s.Status(idB)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state right after cancel = %s, want cancelled", st.State)
	}
	if _, err := s.Result(idB); err == nil {
		t.Fatal("cancelled job returned a result")
	}
	if _, err := s.Result(idA); err != nil {
		t.Fatalf("unrelated job affected: %v", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	id, err := s.Submit(quickSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it starts, then cancel mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning || st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(id); err == nil {
		// The job may have finished before the cancellation landed — that
		// is legal; only a still-running job must end up cancelled.
		st, _ := s.Status(id)
		if st.State != StateSucceeded {
			t.Fatalf("non-terminal state %s after Result", st.State)
		}
		return
	}
	st, _ := s.Status(id)
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if _, err := s.Submit(quickSpec(100, 1)); err == nil {
		t.Fatal("submit after close accepted")
	}
}

func TestCloseCancelsBacklog(t *testing.T) {
	// Checkpointing disabled: with no checkpoint to park behind, Close falls
	// back to cancelling the backlog (the graceful-drain suspend path has its
	// own conservation test in drain_test.go).
	s := New(Config{Workers: 1, CheckpointEvery: -1})
	// One job occupies the worker; the rest sit in the queue when Close
	// lands and must come out cancelled, not executed.
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := s.Submit(quickSpec(100+float64(10*i), int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Close()
	var ran, cancelled int
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateSucceeded:
			ran++
		case StateCancelled:
			cancelled++
		default:
			t.Fatalf("job %s left in state %s after Close", id, st.State)
		}
	}
	if cancelled == 0 {
		t.Fatalf("no queued jobs cancelled by Close (ran=%d)", ran)
	}
}

func TestFileStoreBackedServiceWarmStartsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, Store: fs})
	id, err := s1.Submit(quickSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Result(id); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// A brand-new service over the same directory — a restart — still
	// warm-starts.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Store: fs2})
	defer s2.Close()
	id2, err := s2.Submit(quickSpec(120, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmStarted {
		t.Fatal("restarted service did not warm-start from persisted history")
	}
}

// TestConcurrentReadsUnderSubmit hammers the read-only paths (Status, Jobs,
// Stats) from many goroutines while jobs are being submitted and executed.
// Under -race this pins the RWMutex split: reads must be safe against the
// write paths, and read-path snapshots must never observe a job map entry
// without its submission fields. (Before the split every read serialized
// behind the single write mutex; now they only exclude writers.)
func TestConcurrentReadsUnderSubmit(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	var ids []string
	var idMu sync.Mutex
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, js := range s.Jobs() {
					if js.ID == "" || js.Submitted.IsZero() {
						t.Errorf("snapshot missing submission fields: %+v", js)
						return
					}
				}
				s.Stats()
				idMu.Lock()
				snapshot := append([]string(nil), ids...)
				idMu.Unlock()
				for _, id := range snapshot {
					if _, err := s.Status(id); err != nil {
						t.Errorf("Status(%s): %v", id, err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		id, err := s.Submit(quickSpec(40+float64(i), int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		idMu.Lock()
		ids = append(ids, id)
		idMu.Unlock()
	}
	idMu.Lock()
	all := append([]string(nil), ids...)
	idMu.Unlock()
	for _, id := range all {
		if _, err := s.Result(id); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 || st.Finished() != len(all) {
		t.Fatalf("stats after drain: %+v", st)
	}
}
