package service

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"locat/internal/conf"
	"locat/internal/core"
	"locat/internal/dagp"
	"locat/internal/progress"
	"locat/internal/service/retrieve"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// Defaults of the zero-execution recommendation tier. MaxDistance is
// calibrated against the retrieve package's feature weights: the same
// workload one size bucket away sits around 0.25, a different benchmark,
// cluster or technique set well past 0.75.
const (
	DefaultRecommendK           = 5
	DefaultRecommendMaxDistance = 0.75
	DefaultRecommendConfidence  = 0.5
)

// RecommendOptions tune one recommendation: how many neighbors to retrieve,
// how far a workload may be and still count as a neighbor, and the
// confidence below which the request falls back to a real tuning session.
// Zero values pick the service's configured defaults.
type RecommendOptions struct {
	K             int     `json:"k,omitempty"`
	MaxDistance   float64 `json:"max_distance,omitempty"`
	MinConfidence float64 `json:"min_confidence,omitempty"`
}

func (o RecommendOptions) withDefaults() RecommendOptions {
	if o.K <= 0 {
		o.K = DefaultRecommendK
	}
	if o.MaxDistance <= 0 {
		o.MaxDistance = DefaultRecommendMaxDistance
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = DefaultRecommendConfidence
	}
	return o
}

// RecommendRequest is the wire format of POST /v1/recommend: the workload
// spec, optional retrieval overrides, and the two mode flags.
type RecommendRequest struct {
	JobSpec
	RecommendOptions
	// Refine, on a confident hit, additionally submits a background tuning
	// job seeded with the retrieved neighbors (reported as RefineJobID) —
	// serve the blended config now, converge to a tuned one later.
	Refine bool `json:"refine,omitempty"`
	// NoFallback suppresses the automatic tuning-job submission when
	// confidence is low: the response reports outcome "miss" instead.
	NoFallback bool `json:"no_fallback,omitempty"`
}

// Neighbor is the provenance of one retrieved history entry.
type Neighbor struct {
	JobID    string  `json:"job_id"`
	Key      string  `json:"key"`
	Distance float64 `json:"distance"`
	Weight   float64 `json:"weight"`
	TunedSec float64 `json:"tuned_sec"`
	TargetGB float64 `json:"target_gb"`
	Obs      int     `json:"obs"`
}

// Recommendation is the outcome of a zero-execution recommendation.
type Recommendation struct {
	// Outcome is "hit" (config served from retrieval), "fallback" (low
	// confidence; a tuning job was submitted as RefineJobID) or "miss" (low
	// confidence and NoFallback). The served config and provenance are
	// present on every outcome with at least one usable neighbor.
	Outcome string `json:"outcome"`
	// BestConfig / BestParams / SparkConf are the distance-weighted blend
	// of the neighbors' best-observed configurations, snapped to the knob
	// space.
	BestConfig conf.Config        `json:"best_config,omitempty"`
	BestParams map[string]float64 `json:"best_params,omitempty"`
	SparkConf  string             `json:"spark_conf,omitempty"`
	// Confidence in [0,1] scores the retrieval evidence (see
	// retrieve.Confidence).
	Confidence float64 `json:"confidence"`
	// EstimatedSec is the distance-weighted mean of the neighbors' tuned
	// latencies — a rough expectation, not a measurement.
	EstimatedSec float64 `json:"estimated_sec,omitempty"`
	// Neighbors is the retrieval provenance, nearest first.
	Neighbors []Neighbor `json:"neighbors"`
	// RefineJobID is the background tuning job submitted for refine=true
	// hits and for low-confidence fallbacks.
	RefineJobID string `json:"refine_job_id,omitempty"`
	// RefineError records a refine submission that failed (the
	// recommendation itself still stands).
	RefineError string `json:"refine_error,omitempty"`
}

// Recommender is the zero-execution recommendation engine: a k-NN index of
// feature vectors over the history store. It never touches an execution
// backend — Recommend costs index-scan microseconds and zero sample runs.
//
// The index is a cache of the store. On construction it is loaded from the
// store's persistent index file (when the store has one) and synced against
// the store's actual contents; entries evicted from the store afterwards are
// compacted out lazily when retrieval finds them gone.
type Recommender struct {
	store Store
	path  string // index file ("" = in-memory only)
	logf  progress.Logf

	// maxPriorObs caps the warm-start prior built from retrieved neighbors
	// (mirrors Config.MaxPriorObs).
	maxPriorObs int

	mu sync.Mutex // serializes index mutation + persistence
	ix *retrieve.Index
}

// NewRecommender builds a recommender over the store, loading the persisted
// index when the store keeps one (FileStore) and syncing it with the store's
// contents — vectors survive restarts, and entries added or evicted while
// the index was offline are reconciled here.
func NewRecommender(store Store) *Recommender {
	rc := &Recommender{store: store, maxPriorObs: 48}
	if ip, ok := store.(interface{ IndexPath() string }); ok {
		rc.path = ip.IndexPath()
		rc.ix = retrieve.Load(rc.path)
	} else {
		rc.ix = retrieve.NewIndex()
	}
	rc.rebuild()
	return rc
}

// Len returns the number of indexed history entries.
func (rc *Recommender) Len() int { return rc.ix.Len() }

// entryID is the index identity of a history entry: stable across restarts,
// unique enough that a collision can only be the same session persisted
// twice (in which case replacing is the right outcome).
func entryID(e Entry) string {
	return e.Fingerprint.Key() + "/" + e.JobID + "@" + strconv.FormatInt(e.CreatedUnix, 10)
}

// indexItem featurizes a history entry. Entries whose benchmark the binary
// no longer knows cannot be featurized and are skipped (not an error: the
// store may hold entries from a newer build).
func indexItem(e Entry) (retrieve.Item, bool) {
	w, err := workloadOf(e.Fingerprint.Cluster, e.Fingerprint.Benchmark,
		e.TargetGB, e.Fingerprint.Techniques, len(e.Obs))
	if err != nil {
		return retrieve.Item{}, false
	}
	return retrieve.Item{ID: entryID(e), Key: e.Fingerprint.Key(), Vec: w.Vector()}, true
}

// specWorkload featurizes a (normalized) job spec as the retrieval query.
// The observation-deficit dimension is 0: the query asks for well-observed
// neighbors.
func specWorkload(spec JobSpec) (retrieve.Workload, error) {
	tech := techniquesCode(!spec.DisableQCSA, !spec.DisableIICP, !spec.DisableDAGP)
	return workloadOf(spec.Cluster, spec.Benchmark, spec.DataSizeGB, tech, 16)
}

// workloadOf maps the tuning domain onto the retrieve feature space:
// cluster architecture and scale, log input size, the benchmark's query-plan
// mix (class fractions, scan-weighted shuffle volume, stage depth, compute
// intensity, skew), the technique bits, and how many observations back the
// entry.
func workloadOf(cluster, benchmark string, dataGB float64, techniques string, obsCount int) (retrieve.Workload, error) {
	app, err := workloads.ByName(benchmark)
	if err != nil {
		return retrieve.Workload{}, err
	}
	cl := JobSpec{Cluster: cluster}.cluster()
	w := retrieve.Workload{TotalCores: float64(cl.TotalCores())}
	if cluster == "x86" {
		w.ClusterCode = 1
	}
	if dataGB > 1 {
		w.Log2GB = math.Log2(dataGB)
	}
	n := len(app.Queries)
	w.Queries = float64(n)
	if n > 0 {
		var joins, aggs, shuffle, scanned, input, stages, cpu, skew float64
		for _, q := range app.Queries {
			switch q.Class {
			case sparksim.Join:
				joins++
			case sparksim.Aggregation:
				aggs++
			}
			shuffle += q.InputFrac * q.ShuffleFrac
			scanned += q.InputFrac
			input += q.InputFrac
			stages += float64(q.Stages)
			cpu += q.CPUWeight
			skew += q.Skew
		}
		fn := float64(n)
		w.JoinFrac, w.AggFrac = joins/fn, aggs/fn
		if scanned > 0 {
			w.ShuffleFrac = shuffle / scanned
		}
		w.InputFrac = input / fn
		w.Stages = stages / fn
		w.CPUWeight = cpu / fn
		w.Skew = skew / fn
	}
	if strings.Contains(techniques, "q") {
		w.QCSA = 1
	}
	if strings.Contains(techniques, "i") {
		w.IICP = 1
	}
	if strings.Contains(techniques, "d") {
		w.DAGP = 1
	}
	if d := 1 - float64(obsCount)/16; d > 0 {
		w.ObsDeficit = d
	}
	return w, nil
}

// rebuild syncs the index with the store: featurize entries the index does
// not know (preserving already-persisted vectors, which is the point of the
// index file), compact out entries the store no longer holds, and persist
// the result.
func (rc *Recommender) rebuild() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	keys, err := rc.store.Keys()
	if err != nil {
		progress.F(rc.logf, "recommender: index rebuild: %v", err)
		return
	}
	alive := map[string]bool{}
	changed := false
	for _, k := range keys {
		entries, err := rc.store.Get(k)
		if err != nil {
			progress.F(rc.logf, "recommender: index rebuild read %s: %v", k, err)
			continue
		}
		for _, e := range entries {
			id := entryID(e)
			alive[id] = true
			if rc.ix.Has(id) {
				continue
			}
			if it, ok := indexItem(e); ok {
				rc.ix.Upsert(it)
				changed = true
			}
		}
	}
	if rc.ix.Compact(func(it retrieve.Item) bool { return alive[it.ID] }) > 0 {
		changed = true
	}
	if changed {
		rc.saveLocked()
	}
}

// Sync refreshes the index for one store key — the post-persist hook: newly
// written entries are indexed, entries the per-key cap evicted are dropped.
func (rc *Recommender) Sync(key string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	entries, err := rc.store.Get(key)
	if err != nil {
		progress.F(rc.logf, "recommender: index sync %s: %v", key, err)
		return
	}
	alive := map[string]bool{}
	for _, e := range entries {
		id := entryID(e)
		alive[id] = true
		if rc.ix.Has(id) {
			continue
		}
		if it, ok := indexItem(e); ok {
			rc.ix.Upsert(it)
		}
	}
	rc.ix.Compact(func(it retrieve.Item) bool { return it.Key != key || alive[it.ID] })
	rc.saveLocked()
}

// saveLocked persists the index when the store keeps one.
func (rc *Recommender) saveLocked() {
	if rc.path == "" {
		return
	}
	if err := rc.ix.Save(rc.path); err != nil {
		progress.F(rc.logf, "recommender: index save: %v", err)
	}
}

// Recommend retrieves the k nearest history entries for the spec,
// distance-weights their best-observed configurations into one blended
// config snapped to the knob space, and scores the evidence. It also
// assembles the warm-start prior a refine or fallback session would seed
// from (nil when the neighbors carry no usable observations). The returned
// Recommendation has outcome "hit" or "miss"; job submission is the
// service's concern.
func (rc *Recommender) Recommend(spec JobSpec, o RecommendOptions) (*Recommendation, *core.Prior, error) {
	if err := spec.normalize(); err != nil {
		return nil, nil, err
	}
	o = o.withDefaults()
	w, err := specWorkload(spec)
	if err != nil {
		return nil, nil, err
	}
	matches := rc.ix.Nearest(w.Vector(), o.K, o.MaxDistance)

	// Resolve matches to store entries. A match whose entry is gone is
	// stale — the store evicted it — and is compacted out here, lazily.
	var hits []neighborHit
	var stale []string
	byKey := map[string][]Entry{}
	for _, m := range matches {
		entries, ok := byKey[m.Key]
		if !ok {
			entries, err = rc.store.Get(m.Key)
			if err != nil {
				return nil, nil, err
			}
			byKey[m.Key] = entries
		}
		found := false
		for _, e := range entries {
			if entryID(e) == m.ID {
				hits = append(hits, neighborHit{e: e, d: m.Dist})
				found = true
				break
			}
		}
		if !found {
			stale = append(stale, m.ID)
		}
	}
	if len(stale) > 0 {
		rc.mu.Lock()
		for _, id := range stale {
			rc.ix.Remove(id)
		}
		rc.saveLocked()
		rc.mu.Unlock()
	}

	// Blend the neighbors' best configs in the unit encoding and snap the
	// result back onto the knob space (Decode rounds integer knobs and
	// repairs resource constraints).
	space := spec.cluster().Space()
	rec := &Recommendation{Outcome: "miss", Neighbors: []Neighbor{}}
	var encs [][]float64
	var dists []float64
	var used []neighborHit
	for _, h := range hits {
		c, ok := entryConfig(h.e)
		if !ok {
			continue
		}
		encs = append(encs, space.Encode(c))
		dists = append(dists, h.d)
		used = append(used, h)
	}
	prior := rc.neighborsPrior(used, spec, space)
	if len(used) == 0 {
		return rec, prior, nil
	}
	weights := retrieve.Weights(dists)
	rec.BestConfig = space.Decode(retrieve.Blend(encs, weights))
	rec.BestParams = paramsToMap(rec.BestConfig)
	rec.SparkConf = sparkConfString(rec.BestConfig)
	rec.Confidence = retrieve.Confidence(dists, o.K, o.MaxDistance)
	for i, h := range used {
		rec.Neighbors = append(rec.Neighbors, Neighbor{
			JobID:    h.e.JobID,
			Key:      h.e.Fingerprint.Key(),
			Distance: h.d,
			Weight:   weights[i],
			TunedSec: h.e.TunedSec,
			TargetGB: h.e.TargetGB,
			Obs:      len(h.e.Obs),
		})
		rec.EstimatedSec += weights[i] * h.e.TunedSec
	}
	if rec.Confidence >= o.MinConfidence {
		rec.Outcome = "hit"
	}
	return rec, prior, nil
}

// neighborHit pairs a resolved history entry with its retrieval distance.
type neighborHit struct {
	e Entry
	d float64
}

// neighborsPrior assembles the warm-start prior of a refine/fallback
// session from the retrieved entries: observations ranked and capped by
// dagp.SelectTransfer against the target size, QCSA/IICP artifacts from the
// nearest entry that has them.
func (rc *Recommender) neighborsPrior(used []neighborHit, spec JobSpec, space *conf.Space) *core.Prior {
	var obs []core.PriorObs
	var samples []dagp.Sample
	for _, h := range used {
		for _, o := range h.e.Obs {
			if len(o.Params) != space.Dim() {
				continue
			}
			c := conf.Config(o.Params)
			obs = append(obs, core.PriorObs{Conf: c, DataGB: o.DataGB, Sec: o.Sec, QuerySecs: o.QuerySecs})
			samples = append(samples, dagp.Sample{X: space.Encode(c), DataGB: o.DataGB, Sec: o.Sec})
		}
	}
	if len(obs) == 0 {
		return nil
	}
	prior := &core.Prior{}
	for _, i := range dagp.SelectTransfer(samples, spec.DataSizeGB, rc.maxPriorObs) {
		prior.Obs = append(prior.Obs, obs[i])
	}
	// used arrives nearest-first; the closest workload's artifacts win.
	for _, h := range used {
		if prior.Sensitive == nil && len(h.e.Sensitive) > 0 {
			prior.Sensitive = append([]string(nil), h.e.Sensitive...)
		}
		if prior.Important == nil && len(h.e.Important) > 0 {
			for _, name := range h.e.Important {
				if _, idx, ok := conf.ParamByName(name); ok {
					prior.Important = append(prior.Important, idx)
				}
			}
		}
	}
	return prior
}

// entryConfig reconstructs an entry's best configuration from its
// name→value map. Entries persisted under a different parameter table (a
// missing name) are unusable for blending.
func entryConfig(e Entry) (conf.Config, bool) {
	params := conf.Params()
	c := make(conf.Config, len(params))
	for i, p := range params {
		v, ok := e.BestParams[p.Name]
		if !ok {
			return nil, false
		}
		c[i] = v
	}
	return c, true
}

// Recommend serves a zero-execution recommendation: retrieve, blend, score
// — and, depending on the outcome and the request's mode flags, submit a
// background tuning job (seeded with the retrieved neighbors) as the refine
// or fallback path. The retrieval itself never executes a sample run.
func (s *Service) Recommend(req RecommendRequest) (*Recommendation, error) {
	start := time.Now()
	o := req.RecommendOptions
	if o.K <= 0 {
		o.K = s.cfg.RecommendK
	}
	if o.MaxDistance <= 0 {
		o.MaxDistance = s.cfg.RecommendMaxDistance
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = s.cfg.RecommendConfidence
	}
	// Refine and fallback jobs are work a user is waiting on: they default
	// to the interactive priority class unless the caller says otherwise.
	if req.JobSpec.Priority == "" {
		req.JobSpec.Priority = PriorityInteractive
	}
	rec, prior, err := s.rec.Recommend(req.JobSpec, o)
	if err != nil {
		s.metrics.recommendOutcome("error").Inc()
		return nil, err
	}
	s.metrics.retrieval.Observe(time.Since(start).Seconds())
	outcome := rec.Outcome
	switch {
	case rec.Outcome == "hit" && req.Refine:
		id, err := s.submit(req.JobSpec, prior, rec.Neighbors)
		if err != nil {
			// The hit stands on its own; a refused refine job is reported,
			// not fatal.
			rec.RefineError = err.Error()
		} else {
			rec.RefineJobID = id
			outcome = "refine"
		}
	case rec.Outcome == "miss" && !req.NoFallback:
		id, err := s.submit(req.JobSpec, prior, rec.Neighbors)
		if err != nil {
			s.metrics.recommendOutcome("error").Inc()
			return nil, err
		}
		rec.RefineJobID = id
		rec.Outcome = "fallback"
		outcome = "fallback"
	}
	s.metrics.recommendOutcome(outcome).Inc()
	s.logf("recommend: %s %s %.0f GB -> %s (confidence %.2f, %d neighbors)",
		req.JobSpec.Cluster, req.JobSpec.Benchmark, req.JobSpec.DataSizeGB,
		rec.Outcome, rec.Confidence, len(rec.Neighbors))
	return rec, nil
}

// Recommender exposes the service's recommendation engine (read-only use:
// diagnostics and experiments).
func (s *Service) Recommender() *Recommender { return s.rec }
