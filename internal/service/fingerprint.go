// Package service implements the LOCAT tuning service: a long-running
// session manager with a bounded worker pool, a history store of finished
// sessions keyed by workload fingerprint, and a warm-start path that seeds
// new sessions with observations retrieved from similar past workloads —
// the cross-session generalization of the paper's datasize-aware Gaussian
// process. The locat.Service facade and the locat-serve HTTP binary are
// thin wrappers around this package.
package service

import (
	"fmt"
	"math"
	"strings"
)

// Fingerprint identifies a class of tuning workloads whose observations are
// mutually transferable: same simulated cluster, same benchmark, input
// sizes in the same (or a neighboring) logarithmic bucket, and the same set
// of enabled techniques. It is the history store's key.
type Fingerprint struct {
	// Cluster is the normalized cluster name ("arm" or "x86").
	Cluster string `json:"cluster"`
	// Benchmark is the benchmark name ("TPC-DS", "TPC-H", ...).
	Benchmark string `json:"benchmark"`
	// SizeBucket is round(log2(DataSizeGB)): sizes within roughly a factor
	// of ~1.4 of a power of two share a bucket, and adjacent buckets are
	// close enough for the DAGP to transfer across (Neighbors).
	SizeBucket int `json:"size_bucket"`
	// Techniques encodes which of QCSA / IICP / DAGP were enabled, e.g.
	// "qid" for all three or "-" for none. Sessions run with different
	// technique sets produce differently-shaped artifacts, so they do not
	// share history.
	Techniques string `json:"techniques"`
}

// SizeBucketOf maps a data size to its fingerprint bucket.
func SizeBucketOf(dataGB float64) int {
	if dataGB <= 1 {
		return 0
	}
	return int(math.Round(math.Log2(dataGB)))
}

// techniquesCode encodes enabled techniques compactly and stably.
func techniquesCode(useQCSA, useIICP, useDAGP bool) string {
	s := ""
	if useQCSA {
		s += "q"
	}
	if useIICP {
		s += "i"
	}
	if useDAGP {
		s += "d"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// NewFingerprint derives the fingerprint of a normalized job spec.
func NewFingerprint(spec JobSpec) Fingerprint {
	return Fingerprint{
		Cluster:    spec.Cluster,
		Benchmark:  spec.Benchmark,
		SizeBucket: SizeBucketOf(spec.DataSizeGB),
		Techniques: techniquesCode(!spec.DisableQCSA, !spec.DisableIICP, !spec.DisableDAGP),
	}
}

// keySafe reports whether c may appear verbatim in a history key: the
// allowlist is [A-Za-z0-9._-] plus '%', the escape marker safeComponent
// emits.
func keySafe(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '.' || c == '_' || c == '-' || c == '%':
		return true
	}
	return false
}

// safeComponent escapes every byte outside [A-Za-z0-9.-] as %XX. '%' is
// escaped so pre-escaped input cannot collide, and '_' because Key() uses it
// as the field separator — together that keeps component→key mapping
// injective. The fingerprint components come from an HTTP JobSpec; without
// this a benchmark name like "../../x" would let a stored key escape the
// FileStore directory.
func safeComponent(s string) string {
	verbatim := func(c byte) bool { return keySafe(c) && c != '%' && c != '_' }
	needs := false
	for i := 0; i < len(s); i++ {
		if !verbatim(s[i]) {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		if verbatim(s[i]) {
			b.WriteByte(s[i])
		} else {
			fmt.Fprintf(&b, "%%%02X", s[i])
		}
	}
	return b.String()
}

// ValidKey reports whether key is safe to use as a FileStore shard name:
// non-empty, no traversal, only allowlisted bytes. Every Key() output
// satisfies it; the HTTP history endpoint and the FileStore reject anything
// else before the key ever reaches filepath.Join.
func ValidKey(key string) bool {
	if key == "" || key == "." || key == ".." {
		return false
	}
	for i := 0; i < len(key); i++ {
		if !keySafe(key[i]) {
			return false
		}
	}
	return true
}

// Key renders the fingerprint as a stable, filesystem-safe string — the
// history store's primary key and the file name of the FileStore shard.
// Components are sanitized byte-wise, so a hostile Benchmark or Cluster
// string cannot smuggle path separators or traversal into the key.
func (f Fingerprint) Key() string {
	return fmt.Sprintf("%s_%s_b%d_%s",
		safeComponent(f.Cluster), safeComponent(f.Benchmark), f.SizeBucket, safeComponent(f.Techniques))
}

// Neighbors returns the fingerprints of the two adjacent size buckets.
// Observations there were taken at input sizes within ~2× of this bucket —
// near enough for the datasize-aware GP to transfer them to the target.
func (f Fingerprint) Neighbors() []Fingerprint {
	lo, hi := f, f
	lo.SizeBucket--
	hi.SizeBucket++
	if f.SizeBucket == 0 {
		return []Fingerprint{hi}
	}
	return []Fingerprint{lo, hi}
}
