// Package service implements the LOCAT tuning service: a long-running
// session manager with a bounded worker pool, a history store of finished
// sessions keyed by workload fingerprint, and a warm-start path that seeds
// new sessions with observations retrieved from similar past workloads —
// the cross-session generalization of the paper's datasize-aware Gaussian
// process. The locat.Service facade and the locat-serve HTTP binary are
// thin wrappers around this package.
package service

import (
	"fmt"
	"math"
)

// Fingerprint identifies a class of tuning workloads whose observations are
// mutually transferable: same simulated cluster, same benchmark, input
// sizes in the same (or a neighboring) logarithmic bucket, and the same set
// of enabled techniques. It is the history store's key.
type Fingerprint struct {
	// Cluster is the normalized cluster name ("arm" or "x86").
	Cluster string `json:"cluster"`
	// Benchmark is the benchmark name ("TPC-DS", "TPC-H", ...).
	Benchmark string `json:"benchmark"`
	// SizeBucket is round(log2(DataSizeGB)): sizes within roughly a factor
	// of ~1.4 of a power of two share a bucket, and adjacent buckets are
	// close enough for the DAGP to transfer across (Neighbors).
	SizeBucket int `json:"size_bucket"`
	// Techniques encodes which of QCSA / IICP / DAGP were enabled, e.g.
	// "qid" for all three or "-" for none. Sessions run with different
	// technique sets produce differently-shaped artifacts, so they do not
	// share history.
	Techniques string `json:"techniques"`
}

// SizeBucketOf maps a data size to its fingerprint bucket.
func SizeBucketOf(dataGB float64) int {
	if dataGB <= 1 {
		return 0
	}
	return int(math.Round(math.Log2(dataGB)))
}

// techniquesCode encodes enabled techniques compactly and stably.
func techniquesCode(useQCSA, useIICP, useDAGP bool) string {
	s := ""
	if useQCSA {
		s += "q"
	}
	if useIICP {
		s += "i"
	}
	if useDAGP {
		s += "d"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// NewFingerprint derives the fingerprint of a normalized job spec.
func NewFingerprint(spec JobSpec) Fingerprint {
	return Fingerprint{
		Cluster:    spec.Cluster,
		Benchmark:  spec.Benchmark,
		SizeBucket: SizeBucketOf(spec.DataSizeGB),
		Techniques: techniquesCode(!spec.DisableQCSA, !spec.DisableIICP, !spec.DisableDAGP),
	}
}

// Key renders the fingerprint as a stable, filesystem-safe string — the
// history store's primary key and the file name of the FileStore shard.
func (f Fingerprint) Key() string {
	return fmt.Sprintf("%s_%s_b%d_%s", f.Cluster, f.Benchmark, f.SizeBucket, f.Techniques)
}

// Neighbors returns the fingerprints of the two adjacent size buckets.
// Observations there were taken at input sizes within ~2× of this bucket —
// near enough for the datasize-aware GP to transfer them to the target.
func (f Fingerprint) Neighbors() []Fingerprint {
	lo, hi := f, f
	lo.SizeBucket--
	hi.SizeBucket++
	if f.SizeBucket == 0 {
		return []Fingerprint{hi}
	}
	return []Fingerprint{lo, hi}
}
