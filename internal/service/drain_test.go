package service

import (
	"strings"
	"testing"
	"time"
)

// Graceful drain conserves the backlog: Close checkpoints queued jobs
// instead of cancelling them, and a restart with Resume requeues every one
// under its original ID and runs it to completion. Nothing accepted is
// lost.
func TestDrainConservesQueuedJobs(t *testing.T) {
	store := NewMemStore()
	s1 := New(Config{Workers: 1, Store: store, CheckpointEvery: 1})
	s1.Hold() // park the workers so the whole backlog is queued at Close

	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := s1.Submit(quickSpec(100+float64(10*i), int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s1.Close()

	for _, id := range ids {
		st, err := s1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateSuspended {
			t.Fatalf("job %s state after drain = %s, want %s", id, st.State, StateSuspended)
		}
		if _, err := s1.Result(id); err == nil || !strings.Contains(err.Error(), "suspended") {
			t.Fatalf("suspended job Result err = %v; want a suspension explanation", err)
		}
		if cp, _ := store.GetCheckpoint(id); cp == nil {
			t.Fatalf("job %s has no checkpoint to resume from", id)
		}
	}
	if stats := s1.Stats(); stats.Suspended != 3 {
		t.Fatalf("stats after drain = %+v; want 3 suspended", stats)
	}

	// "Restart": a new service over the same store resumes the backlog.
	s2 := New(Config{Workers: 2, Store: store, Resume: true, CheckpointEvery: 1})
	defer s2.Close()
	for _, id := range ids {
		res, err := s2.Result(id)
		if err != nil {
			t.Fatalf("resumed job %s failed: %v", id, err)
		}
		if res.TunedSec <= 0 {
			t.Fatalf("resumed job %s: degenerate result %+v", id, res)
		}
	}
	// Conservation: submitted == succeeded after restart, zero lost.
	if stats := s2.Stats(); stats.Succeeded != len(ids) {
		t.Fatalf("stats after resume = %+v; want %d succeeded", stats, len(ids))
	}
}

// A drain that catches a session mid-run suspends it at the next evaluation
// boundary with its checkpoint intact; the restarted service finishes the
// job without re-paying the runs the first process completed.
func TestDrainSuspendsRunningJob(t *testing.T) {
	store := NewMemStore()
	s1 := New(Config{Workers: 1, Store: store, CheckpointEvery: 1})

	// Paper-scale budgets: long enough that Close lands mid-session.
	spec := JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100, Seed: 1}
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", id)
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	st, err := s1.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateSuspended {
		t.Fatalf("running job state after drain = %s, want %s", st.State, StateSuspended)
	}
	cp, _ := store.GetCheckpoint(id)
	if cp == nil || len(cp.Entries) == 0 {
		t.Fatal("drained session left no paid runs in its checkpoint")
	}

	s2 := New(Config{Workers: 1, Store: store, Resume: true, CheckpointEvery: 1})
	defer s2.Close()
	res, err := s2.Result(id)
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	if res.ResumedRuns == 0 {
		t.Fatal("resume re-paid every run; the drain checkpoint went unused")
	}
	if res.TunedSec <= 0 || res.TunedSec >= res.DefaultSec {
		t.Fatalf("resumed job: degenerate result %+v", res)
	}
}

// Without checkpoint support (CheckpointEvery < 0) a drain falls back to
// cancelling the backlog — the pre-drain behavior, still terminal for every
// job.
func TestDrainWithoutCheckpointingCancels(t *testing.T) {
	s := New(Config{Workers: 1, CheckpointEvery: -1})
	s.Hold()
	id, err := s.Submit(quickSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if st, _ := s.Status(id); st.State != StateCancelled {
		t.Fatalf("job state after no-checkpoint drain = %s, want %s", st.State, StateCancelled)
	}
}
