package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"locat/internal/progress"
	"locat/internal/runner"
)

// Checkpoint is the persisted mid-session state of a running job: the spec
// (so a restarted service can requeue it) and every execution the session
// already paid for (so the resumed session never pays for them again).
type Checkpoint struct {
	JobID       string  `json:"job_id"`
	Spec        JobSpec `json:"spec"`
	Fingerprint string  `json:"fingerprint"`
	// CreatedUnix is the time of the last checkpoint write (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Entries are the session's paid executions in completion order, in the
	// trace-entry format the runner.Cache resume layer consumes.
	Entries []runner.TraceEntry `json:"entries"`
}

// CheckpointStore is the optional Store extension checkpoint/resume rides
// on. Both built-in stores implement it; a custom Store without it simply
// runs without checkpoints.
type CheckpointStore interface {
	// PutCheckpoint replaces the job's checkpoint.
	PutCheckpoint(cp Checkpoint) error
	// GetCheckpoint returns the job's checkpoint, or nil when it has none.
	GetCheckpoint(jobID string) (*Checkpoint, error)
	// ListCheckpoints returns the job IDs holding checkpoints, sorted.
	ListCheckpoints() ([]string, error)
	// DeleteCheckpoint removes the job's checkpoint (a no-op when absent).
	DeleteCheckpoint(jobID string) error
}

// PutCheckpoint implements CheckpointStore.
func (s *MemStore) PutCheckpoint(cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cps[cp.JobID] = cp
	return nil
}

// GetCheckpoint implements CheckpointStore.
func (s *MemStore) GetCheckpoint(jobID string) (*Checkpoint, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp, ok := s.cps[jobID]
	if !ok {
		return nil, nil
	}
	return &cp, nil
}

// ListCheckpoints implements CheckpointStore.
func (s *MemStore) ListCheckpoints() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cps))
	for id := range s.cps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// DeleteCheckpoint implements CheckpointStore.
func (s *MemStore) DeleteCheckpoint(jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cps, jobID)
	return nil
}

// cpPath maps a job ID to its checkpoint file under dir/checkpoints,
// refusing IDs that could escape the directory — checkpoints are reloaded
// from disk on restart, so the IDs in file names are untrusted input.
func (s *FileStore) cpPath(jobID string) (string, error) {
	if !ValidKey(jobID) {
		return "", fmt.Errorf("service: invalid checkpoint job ID %q", jobID)
	}
	return filepath.Join(s.dir, "checkpoints", jobID+".json"), nil
}

// PutCheckpoint implements CheckpointStore with the same atomic
// temp-file-plus-rename discipline as history shards: a crash mid-write
// leaves the previous checkpoint intact, never a torn one.
func (s *FileStore) PutCheckpoint(cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.cpPath(cp.JobID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("service: checkpoint dir: %w", err)
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("service: encode checkpoint: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("service: commit checkpoint: %w", err)
	}
	return nil
}

// GetCheckpoint implements CheckpointStore.
func (s *FileStore) GetCheckpoint(jobID string) (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.cpPath(jobID)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("service: decode checkpoint %s: %w", jobID, err)
	}
	return &cp, nil
}

// ListCheckpoints implements CheckpointStore.
func (s *FileStore) ListCheckpoints() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := os.ReadDir(filepath.Join(s.dir, "checkpoints"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: list checkpoints: %w", err)
	}
	var out []string
	for _, de := range names {
		n := de.Name()
		if !strings.HasSuffix(n, ".json") {
			continue
		}
		if id := strings.TrimSuffix(n, ".json"); ValidKey(id) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

// DeleteCheckpoint implements CheckpointStore.
func (s *FileStore) DeleteCheckpoint(jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.cpPath(jobID)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: delete checkpoint: %w", err)
	}
	return nil
}

var (
	_ CheckpointStore = (*MemStore)(nil)
	_ CheckpointStore = (*FileStore)(nil)
)

// checkpointer accumulates a session's paid executions (the runner.Cache
// fresh-run feed) and periodically persists them, so a killed process
// resumes the job without re-paying completed sample runs.
type checkpointer struct {
	store CheckpointStore
	every int
	m     *serviceMetrics
	logf  progress.Logf

	mu    sync.Mutex
	cp    Checkpoint
	fresh int // entries appended since the last write
}

// newCheckpointer starts checkpointing for j, seeding the entry list with
// whatever a resumed job already carries and persisting immediately — a
// crash before the first periodic write must still requeue the job on
// restart.
func newCheckpointer(store CheckpointStore, j *job, every int, m *serviceMetrics, logf progress.Logf) *checkpointer {
	c := &checkpointer{
		store: store, every: every, m: m, logf: logf,
		cp: Checkpoint{JobID: j.id, Spec: j.spec, Fingerprint: j.fp.Key()},
	}
	if j.resume != nil {
		c.cp.Entries = append(c.cp.Entries, j.resume.Entries...)
	}
	c.flush()
	return c
}

// onRun receives one fresh (non-resumed) execution; every `every`-th entry
// triggers a persisted snapshot. Safe for concurrent use — batch pool
// workers complete runs concurrently.
func (c *checkpointer) onRun(e runner.TraceEntry) {
	c.mu.Lock()
	c.cp.Entries = append(c.cp.Entries, e)
	c.fresh++
	write := c.fresh >= c.every
	if write {
		c.fresh = 0
	}
	c.mu.Unlock()
	if write {
		c.flush()
	}
}

// flush persists a snapshot of the checkpoint, charging the write latency
// to the checkpoint histogram. Failures are logged, not fatal: losing a
// checkpoint costs re-execution after a crash, never the session itself.
func (c *checkpointer) flush() {
	c.mu.Lock()
	cp := c.cp
	cp.Entries = append([]runner.TraceEntry(nil), c.cp.Entries...)
	c.mu.Unlock()
	cp.CreatedUnix = time.Now().Unix()
	start := time.Now()
	err := c.store.PutCheckpoint(cp)
	c.m.checkpointWrite.Observe(time.Since(start).Seconds())
	if err != nil {
		progress.F(c.logf, "[%s] checkpoint write failed: %v", cp.JobID, err)
	}
}
