package service

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"locat/internal/runner"
)

func testEntry(jobID string, created int64) Entry {
	return Entry{
		Fingerprint: Fingerprint{Cluster: "arm", Benchmark: "TPC-H", SizeBucket: 7, Techniques: "qid"},
		JobID:       jobID,
		CreatedUnix: created,
		TargetGB:    100,
		TunedSec:    123.4,
		OverheadSec: 9876.5,
		BestParams:  map[string]float64{"spark.executor.cores": 4},
		Sensitive:   []string{"q3", "q7"},
		Important:   []string{"spark.executor.cores", "spark.executor.memory"},
		Obs: []Observation{
			{
				Params:    []float64{1, 2, 3},
				DataGB:    100,
				Sec:       456.7,
				QuerySecs: map[string]float64{"q3": 100.5, "q7": 356.2},
			},
		},
	}
}

func roundTrip(t *testing.T, s Store) {
	t.Helper()
	e := testEntry("job-000001", 1000)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.Fingerprint.Key())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0], e) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got[0], e)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != e.Fingerprint.Key() {
		t.Fatalf("keys = %v", keys)
	}
	// Missing key is empty, not an error.
	if es, err := s.Get("nope"); err != nil || len(es) != 0 {
		t.Fatalf("missing key: %v, %v", es, err)
	}
}

func TestMemStoreRoundTrip(t *testing.T) { roundTrip(t, NewMemStore()) }

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, fs)
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("job-000002", 2000)
	if err := fs.Put(e); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory sees the entry — the service
	// restart scenario.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get(e.Fingerprint.Key())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], e) {
		t.Fatalf("reopen lost the entry: %+v", got)
	}
}

func TestStoreCapsEntriesPerKey(t *testing.T) {
	s := NewMemStore()
	for i := 0; i < maxEntriesPerKey+10; i++ {
		if err := s.Put(testEntry("job", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.Get(testEntry("job", 0).Fingerprint.Key())
	if len(got) != maxEntriesPerKey {
		t.Fatalf("got %d entries, want cap %d", len(got), maxEntriesPerKey)
	}
	// Newest survive.
	if got[len(got)-1].CreatedUnix != int64(maxEntriesPerKey+9) {
		t.Fatalf("newest entry evicted; last created %d", got[len(got)-1].CreatedUnix)
	}
	if got[0].CreatedUnix != 10 {
		t.Fatalf("oldest kept entry created %d, want 10", got[0].CreatedUnix)
	}
}

// TestFileStorePathInjectionRegression is the security regression test: an
// entry whose fingerprint carries a hostile benchmark name must not write
// outside the store directory, and caller-supplied traversal keys must be
// rejected outright.
func TestFileStorePathInjectionRegression(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("job-000066", 3000)
	e.Fingerprint.Benchmark = "../../escape"
	if err := fs.Put(e); err != nil {
		t.Fatalf("sanitized put failed: %v", err)
	}
	// Nothing may appear outside the store directory.
	if _, err := os.Stat(filepath.Join(parent, "escape.json")); !os.IsNotExist(err) {
		t.Fatalf("path injection wrote outside the store: %v", err)
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "store" {
		t.Fatalf("unexpected files next to the store: %v", entries)
	}
	// The entry is retrievable under its sanitized key, which stays inside.
	got, err := fs.Get(e.Fingerprint.Key())
	if err != nil || len(got) != 1 {
		t.Fatalf("sanitized key not retrievable: %v, %d entries", err, len(got))
	}
	inside, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(inside) != 1 {
		t.Fatalf("store dir holds %d files, want 1", len(inside))
	}

	// Raw traversal keys are rejected, not resolved.
	for _, key := range []string{"../evil", "..", "a/b", `a\b`} {
		if _, err := fs.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a traversal key", key)
		}
	}
}

// TestFileStoreConcurrentPutGet exercises the store under the service's
// real access pattern — workers persisting sessions while others retrieve
// priors — and is run with -race in CI.
func TestFileStoreConcurrentPutGet(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testEntry("job", 0).Fingerprint.Key()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := fs.Put(testEntry(fmt.Sprintf("job-%d-%d", w, i), int64(w*100+i))); err != nil {
					errs <- err
					return
				}
				if _, err := fs.Get(key); err != nil {
					errs <- err
					return
				}
				if _, err := fs.Keys(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := fs.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != maxEntriesPerKey {
		t.Fatalf("got %d entries after concurrent puts, want cap %d", len(got), maxEntriesPerKey)
	}
}

func TestFileStoreKeysSkipsInvalidFilenames(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testEntry("job-000077", 4000)); err != nil {
		t.Fatal(err)
	}
	// A stray file whose name fails key validation (e.g. written by hand or
	// by a pre-sanitization build) must not poison the listing.
	if err := os.WriteFile(filepath.Join(dir, "bad name.json"), []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := fs.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry("job-000077", 4000).Fingerprint.Key()
	if len(keys) != 1 || keys[0] != want {
		t.Fatalf("Keys() = %v; want [%s]", keys, want)
	}
	// Every listed key must be Get-able — the History() invariant.
	for _, k := range keys {
		if _, err := fs.Get(k); err != nil {
			t.Fatalf("listed key %q not readable: %v", k, err)
		}
	}
}

// checkpointRoundTrip exercises the CheckpointStore surface shared by both
// built-in stores.
func checkpointRoundTrip(t *testing.T, s CheckpointStore) {
	t.Helper()
	cp := Checkpoint{
		JobID:       "job-000007",
		Spec:        JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100, Seed: 3},
		Fingerprint: "arm_TPC-H_7_qid",
		CreatedUnix: 4242,
		Entries: []runner.TraceEntry{
			{Kind: runner.TraceApp, Idx: 2, App: "TPC-H", NQ: 22,
				Conf: []float64{1, 2, 3}, DataGB: 100,
				Result: &runner.AppResult{Sec: 99.5, Queries: []runner.QueryResult{{Name: "q1", Sec: 9.5}}}},
			{Kind: runner.TraceNoiseless, App: "TPC-H", NQ: 22,
				Conf: []float64{1, 2, 3}, DataGB: 100, Sec: 88.25},
		},
	}
	if got, err := s.GetCheckpoint(cp.JobID); err != nil || got != nil {
		t.Fatalf("empty store GetCheckpoint = %+v, %v; want nil, nil", got, err)
	}
	if err := s.PutCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetCheckpoint(cp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !reflect.DeepEqual(*got, cp) {
		t.Fatalf("checkpoint round trip mismatch:\n got  %+v\n want %+v", got, cp)
	}
	ids, err := s.ListCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != cp.JobID {
		t.Fatalf("ListCheckpoints = %v", ids)
	}
	// Replacement, not append: a re-Put supersedes the previous snapshot.
	cp2 := cp
	cp2.Entries = cp.Entries[:1]
	cp2.CreatedUnix = 4300
	if err := s.PutCheckpoint(cp2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetCheckpoint(cp.JobID); got == nil || len(got.Entries) != 1 {
		t.Fatalf("re-Put did not replace the checkpoint: %+v", got)
	}
	if err := s.DeleteCheckpoint(cp.JobID); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetCheckpoint(cp.JobID); got != nil {
		t.Fatalf("checkpoint survived deletion: %+v", got)
	}
	// Deleting the absent checkpoint is a no-op, not an error.
	if err := s.DeleteCheckpoint(cp.JobID); err != nil {
		t.Fatal(err)
	}
	// Invalid job IDs are refused before touching the filesystem.
	if _, err := s.GetCheckpoint("../escape"); err == nil {
		if _, isMem := s.(*MemStore); !isMem {
			t.Fatal("path-escaping checkpoint ID accepted")
		}
	}
}

func TestMemStoreCheckpointRoundTrip(t *testing.T) { checkpointRoundTrip(t, NewMemStore()) }

func TestFileStoreCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkpointRoundTrip(t, fs)

	// Checkpoints survive reopening the directory — the resume scenario.
	cp := Checkpoint{JobID: "job-000009", Spec: JobSpec{Benchmark: "TPC-H"}}
	if err := fs.PutCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.GetCheckpoint(cp.JobID)
	if err != nil || got == nil || got.Spec.Benchmark != "TPC-H" {
		t.Fatalf("reopen lost the checkpoint: %+v, %v", got, err)
	}
	// Checkpoint files live in their own subdirectory and never shadow
	// history shards.
	if _, err := os.Stat(filepath.Join(dir, "checkpoints", cp.JobID+".json")); err != nil {
		t.Fatal(err)
	}
}

// bucketEntry is testEntry under a distinct fingerprint key per bucket.
func bucketEntry(jobID string, created int64, bucket int) Entry {
	e := testEntry(jobID, created)
	e.Fingerprint.SizeBucket = bucket
	return e
}

func TestMemStoreMaxKeys(t *testing.T) {
	s := NewMemStore()
	s.SetMaxKeys(2)
	for i := 0; i < 3; i++ {
		// Key i's newest entry is older for smaller i.
		if err := s.Put(bucketEntry(fmt.Sprintf("job-%06d", i+1), int64(1000+i), i)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		bucketEntry("x", 0, 1).Fingerprint.Key(),
		bucketEntry("x", 0, 2).Fingerprint.Key(),
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys after eviction = %v, want %v (oldest key evicted)", keys, want)
	}
	// A fresh entry under a surviving key does not evict anything further.
	if err := s.Put(bucketEntry("job-000009", 2000, 2)); err != nil {
		t.Fatal(err)
	}
	if keys, _ = s.Keys(); len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestFileStoreMaxKeys(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		e := bucketEntry(fmt.Sprintf("job-%06d", i+1), int64(1000+i), i)
		if err := fs.Put(e); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, filepath.Join(dir, e.Fingerprint.Key()+".json"))
	}
	// Eviction orders shards by modification time; make it unambiguous.
	for i, p := range paths {
		mt := time.Unix(int64(10000+i), 0)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetMaxKeys(2)
	keys, err := fs.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		bucketEntry("x", 0, 1).Fingerprint.Key(),
		bucketEntry("x", 0, 2).Fingerprint.Key(),
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys after eviction = %v, want %v (oldest shard evicted)", keys, want)
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Fatalf("evicted shard still on disk: %v", err)
	}
}
