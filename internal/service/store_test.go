package service

import (
	"reflect"
	"testing"
)

func testEntry(jobID string, created int64) Entry {
	return Entry{
		Fingerprint: Fingerprint{Cluster: "arm", Benchmark: "TPC-H", SizeBucket: 7, Techniques: "qid"},
		JobID:       jobID,
		CreatedUnix: created,
		TargetGB:    100,
		TunedSec:    123.4,
		OverheadSec: 9876.5,
		BestParams:  map[string]float64{"spark.executor.cores": 4},
		Sensitive:   []string{"q3", "q7"},
		Important:   []string{"spark.executor.cores", "spark.executor.memory"},
		Obs: []Observation{
			{
				Params:    []float64{1, 2, 3},
				DataGB:    100,
				Sec:       456.7,
				QuerySecs: map[string]float64{"q3": 100.5, "q7": 356.2},
			},
		},
	}
}

func roundTrip(t *testing.T, s Store) {
	t.Helper()
	e := testEntry("job-000001", 1000)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.Fingerprint.Key())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0], e) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got[0], e)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != e.Fingerprint.Key() {
		t.Fatalf("keys = %v", keys)
	}
	// Missing key is empty, not an error.
	if es, err := s.Get("nope"); err != nil || len(es) != 0 {
		t.Fatalf("missing key: %v, %v", es, err)
	}
}

func TestMemStoreRoundTrip(t *testing.T) { roundTrip(t, NewMemStore()) }

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, fs)
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("job-000002", 2000)
	if err := fs.Put(e); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory sees the entry — the service
	// restart scenario.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get(e.Fingerprint.Key())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], e) {
		t.Fatalf("reopen lost the entry: %+v", got)
	}
}

func TestStoreCapsEntriesPerKey(t *testing.T) {
	s := NewMemStore()
	for i := 0; i < maxEntriesPerKey+10; i++ {
		if err := s.Put(testEntry("job", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.Get(testEntry("job", 0).Fingerprint.Key())
	if len(got) != maxEntriesPerKey {
		t.Fatalf("got %d entries, want cap %d", len(got), maxEntriesPerKey)
	}
	// Newest survive.
	if got[len(got)-1].CreatedUnix != int64(maxEntriesPerKey+9) {
		t.Fatalf("newest entry evicted; last created %d", got[len(got)-1].CreatedUnix)
	}
	if got[0].CreatedUnix != 10 {
		t.Fatalf("oldest kept entry created %d, want 10", got[0].CreatedUnix)
	}
}
