package service

import (
	"locat/internal/obs"
	"locat/internal/runner"
)

// serviceMetrics holds the pre-resolved metric series the service charges:
// job-state gauges sampled from the live census at scrape time, queue-wait
// and per-state job-duration histograms, and the shared per-run metrics
// every observed session backend reports into.
type serviceMetrics struct {
	queueWait *obs.Histogram
	succeeded *obs.Histogram
	failed    *obs.Histogram
	cancelled *obs.Histogram
	runs      *runner.RunMetrics
	// Fault-tolerance series: per-run retries issued by the retry wrapper,
	// currently-open circuit breakers, jobs requeued from checkpoints on
	// startup, and checkpoint-write latency.
	retries         *obs.Counter
	breakerOpen     *obs.Gauge
	jobsResumed     *obs.Counter
	checkpointWrite *obs.Histogram
	// Recommendation-tier series: requests by outcome and the k-NN
	// retrieval latency. Every outcome is pre-registered so a scrape shows
	// zeroes, not absences.
	recommend map[string]*obs.Counter
	retrieval *obs.Histogram
	// Admission-control series: every submission decision by outcome
	// (accepted, or the refusal/eviction reason), pre-registered like the
	// recommendation outcomes.
	admissions map[string]*obs.Counter
	suspended  *obs.Histogram
}

// recommendOutcomes are the label values of locat_recommend_total.
var recommendOutcomes = []string{"hit", "refine", "fallback", "miss", "error"}

// admissionOutcomes are the label values of locat_admission_total: the
// terminal fate of every admission decision — accepted, refused (queue_full,
// rate_limited, max_in_flight, cluster_budget, closed) or a queued batch job
// evicted by interactive work (shed).
var admissionOutcomes = []string{
	"accepted", "queue_full", ReasonRateLimited, ReasonMaxInFlight,
	ReasonClusterBudget, "shed", "closed",
}

func newServiceMetrics(r *obs.Registry, s *Service) *serviceMetrics {
	for _, st := range []struct {
		name string
		get  func(Stats) int
	}{
		{string(StateQueued), func(st Stats) int { return st.Queued }},
		{string(StateRunning), func(st Stats) int { return st.Running }},
		{string(StateSucceeded), func(st Stats) int { return st.Succeeded }},
		{string(StateFailed), func(st Stats) int { return st.Failed }},
		{string(StateCancelled), func(st Stats) int { return st.Cancelled }},
		{string(StateShed), func(st Stats) int { return st.Shed }},
		{string(StateSuspended), func(st Stats) int { return st.Suspended }},
	} {
		get := st.get
		r.GaugeFunc("locat_jobs", "Jobs by lifecycle state.",
			func() float64 { return float64(get(s.Stats())) }, "state", st.name)
	}
	jobSec := func(state string) *obs.Histogram {
		return r.Histogram("locat_job_seconds",
			"Wall-clock session duration of finished jobs.",
			obs.DurationBuckets, "state", state)
	}
	recommend := make(map[string]*obs.Counter, len(recommendOutcomes))
	for _, oc := range recommendOutcomes {
		recommend[oc] = r.Counter("locat_recommend_total",
			"Zero-execution recommendation requests by outcome.", "outcome", oc)
	}
	admissions := make(map[string]*obs.Counter, len(admissionOutcomes))
	for _, oc := range admissionOutcomes {
		admissions[oc] = r.Counter("locat_admission_total",
			"Submission admission decisions by outcome.", "outcome", oc)
	}
	return &serviceMetrics{
		recommend:  recommend,
		admissions: admissions,
		retrieval: r.Histogram("locat_recommend_retrieval_seconds",
			"Wall-clock latency of k-NN retrieval behind /v1/recommend.",
			obs.DurationBuckets),
		queueWait: r.Histogram("locat_job_queue_wait_seconds",
			"Wall-clock time jobs spent queued before a worker picked them up.",
			obs.DurationBuckets),
		succeeded: jobSec(string(StateSucceeded)),
		failed:    jobSec(string(StateFailed)),
		cancelled: jobSec(string(StateCancelled)),
		suspended: jobSec(string(StateSuspended)),
		runs:      runner.NewRunMetrics(r),
		retries: r.Counter("locat_run_retries_total",
			"Execution attempts retried after a transient backend fault."),
		breakerOpen: r.Gauge("locat_breaker_open",
			"Circuit breakers currently open across running sessions."),
		jobsResumed: r.Counter("locat_jobs_resumed_total",
			"Interrupted jobs requeued from checkpoints at startup."),
		checkpointWrite: r.Histogram("locat_checkpoint_write_seconds",
			"Wall-clock latency of checkpoint persistence.",
			obs.DurationBuckets),
	}
}

// recommendOutcome returns the counter for a recommendation outcome.
func (m *serviceMetrics) recommendOutcome(oc string) *obs.Counter {
	if c, ok := m.recommend[oc]; ok {
		return c
	}
	return m.recommend["error"]
}

// jobSeconds returns the duration histogram for a terminal state.
func (m *serviceMetrics) jobSeconds(st State) *obs.Histogram {
	switch st {
	case StateFailed:
		return m.failed
	case StateCancelled:
		return m.cancelled
	case StateSuspended:
		return m.suspended
	default:
		return m.succeeded
	}
}

// admission returns the counter for an admission outcome.
func (m *serviceMetrics) admission(oc string) *obs.Counter {
	if c, ok := m.admissions[oc]; ok {
		return c
	}
	return m.admissions["closed"]
}
