package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locat/internal/conf"
	"locat/internal/core"
	"locat/internal/dagp"
	"locat/internal/obs"
	"locat/internal/progress"
	"locat/internal/runner"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// Priority is a job's scheduling class. Interactive work (recommend
// refinements, deadline-bounded tuning a user is waiting on) dispatches
// ahead of batch work, and under overload only batch jobs are shed.
type Priority string

// The two priority classes. Batch is the default: a plain tuning job is
// throughput work.
const (
	PriorityInteractive Priority = "interactive"
	PriorityBatch       Priority = "batch"
)

// JobSpec describes one tuning job. It mirrors the tunable subset of the
// public locat.Options and is the wire format of the HTTP submit endpoint.
type JobSpec struct {
	// Tenant attributes the job to a tenant for per-tenant budget
	// enforcement (Config.Tenants). Empty is the anonymous tenant; tenants
	// do not partition the history store — warm-start sharing across
	// tenants is deliberate (same workload, same physics).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the scheduling class: "interactive" dispatches ahead of
	// "batch" (the default) and is never shed under overload.
	Priority Priority `json:"priority,omitempty"`
	// DeadlineSec, when positive, bounds the job's wall-clock session time:
	// past the deadline the session stops at the next evaluation boundary
	// and returns its best-so-far configuration as a Degraded result.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// MaxClusterSec, when positive, bounds the simulated cluster seconds
	// the session may spend tuning — the deterministic twin of DeadlineSec
	// (overhead is part of the tuning trajectory, so the cutoff point is
	// reproducible bit for bit). Exceeding it degrades, like a deadline.
	MaxClusterSec float64 `json:"max_cluster_sec,omitempty"`
	// Cluster is "arm" (default) or "x86".
	Cluster string `json:"cluster,omitempty"`
	// Benchmark is one of locat.Benchmarks(); default "TPC-DS".
	Benchmark string `json:"benchmark,omitempty"`
	// DataSizeGB is the target input size; default 100.
	DataSizeGB float64 `json:"data_size_gb,omitempty"`
	// Seed makes the session reproducible; default 1.
	Seed int64 `json:"seed,omitempty"`
	// NQCSA, NIICP and MaxIterations override the paper's budgets.
	NQCSA         int `json:"n_qcsa,omitempty"`
	NIICP         int `json:"n_iicp,omitempty"`
	MaxIterations int `json:"max_iterations,omitempty"`
	// DisableQCSA / DisableIICP / DisableDAGP ablate the techniques.
	DisableQCSA bool `json:"disable_qcsa,omitempty"`
	DisableIICP bool `json:"disable_iicp,omitempty"`
	DisableDAGP bool `json:"disable_dagp,omitempty"`
	// ColdStart opts this job out of history retrieval: it runs the full
	// sampling pipeline even when similar past sessions exist.
	ColdStart bool `json:"cold_start,omitempty"`
	// Backend overrides the service's execution backend for this job (an
	// internal/runner spec: "sim", "record=PATH", "replay=PATH", or
	// "sparkrest=URL"). Empty uses the service default.
	Backend string `json:"backend,omitempty"`
}

func (s *JobSpec) normalize() error {
	if s.Priority == "" {
		s.Priority = PriorityBatch
	}
	if s.Priority != PriorityInteractive && s.Priority != PriorityBatch {
		return fmt.Errorf("service: unknown priority %q (want interactive or batch)", s.Priority)
	}
	if s.DeadlineSec < 0 {
		return errors.New("service: negative deadline")
	}
	if s.MaxClusterSec < 0 {
		return errors.New("service: negative cluster-second budget")
	}
	if s.Cluster == "" {
		s.Cluster = "arm"
	}
	if s.Cluster != "arm" && s.Cluster != "x86" {
		return fmt.Errorf("service: unknown cluster %q (want arm or x86)", s.Cluster)
	}
	if s.Benchmark == "" {
		s.Benchmark = "TPC-DS"
	}
	if _, err := workloads.ByName(s.Benchmark); err != nil {
		return err
	}
	if s.DataSizeGB == 0 {
		s.DataSizeGB = 100
	}
	if s.DataSizeGB < 0 {
		return errors.New("service: negative data size")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if _, err := runner.ParseSpec(s.Backend); err != nil {
		return err
	}
	return nil
}

func (s JobSpec) cluster() *sparksim.Cluster {
	if s.Cluster == "x86" {
		return sparksim.X86()
	}
	return sparksim.ARM()
}

// State is a job's lifecycle position.
type State string

// Job lifecycle states. Terminal states are Succeeded, Failed, Cancelled,
// Shed and Suspended.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateShed marks a queued batch job displaced by an interactive
	// submission under overload: it never ran, by the service's own
	// admission decision rather than the caller's.
	StateShed State = "shed"
	// StateSuspended marks a job parked by a graceful drain: its progress is
	// checkpointed and a restart with Config.Resume requeues it under the
	// same ID. Terminal in this process, not for the job.
	StateSuspended State = "suspended"
)

// Terminal reports whether the state is final in this process.
func (s State) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCancelled, StateShed, StateSuspended:
		return true
	}
	return false
}

// JobResult is the outcome of a finished tuning job.
type JobResult struct {
	// BestConfig is the tuned configuration vector (natural units).
	BestConfig conf.Config `json:"best_config"`
	// BestParams is the same configuration as a property→value map.
	BestParams map[string]float64 `json:"best_params"`
	// TunedSec and DefaultSec are the noiseless latencies under the tuned
	// configuration and the Spark defaults.
	TunedSec   float64 `json:"tuned_sec"`
	DefaultSec float64 `json:"default_sec"`
	// OverheadSec = SamplingSec + SearchSec is the simulated cluster time
	// tuning consumed (the paper's optimization time), split by phase.
	OverheadSec float64 `json:"overhead_sec"`
	SamplingSec float64 `json:"sampling_sec"`
	SearchSec   float64 `json:"search_sec"`
	// FullRuns and RQARuns count executions by kind.
	FullRuns int `json:"full_runs"`
	RQARuns  int `json:"rqa_runs"`
	// WarmStarted reports whether the session consumed history-store
	// observations instead of collecting the full sample set, and
	// PriorObsUsed how many.
	WarmStarted  bool `json:"warm_started"`
	PriorObsUsed int  `json:"prior_obs_used"`
	// SensitiveQueries and ImportantParams are the session's (possibly
	// inherited) QCSA / IICP artifacts.
	SensitiveQueries []string `json:"sensitive_queries,omitempty"`
	ImportantParams  []string `json:"important_params,omitempty"`
	// SparkConf is the tuned configuration rendered in spark-defaults.conf
	// syntax.
	SparkConf string `json:"spark_conf"`
	// Runs and ClusterSec are the execution tally the job's observed backend
	// accumulated: every run the session issued (full apps, single queries,
	// batch members) and the simulated cluster seconds they consumed. Runs
	// served from a resume checkpoint are not re-executed and appear in
	// ResumedRuns instead.
	Runs       int64   `json:"runs"`
	ClusterSec float64 `json:"cluster_sec"`
	// ResumedRuns counts executions served from the job's checkpoint
	// instead of re-executed after a restart.
	ResumedRuns int64 `json:"resumed_runs,omitempty"`
	// Degraded, when non-empty, records that the session was cut short —
	// backend death, an expired deadline, or an exhausted cluster-second
	// budget — and why; the result is the best configuration observed
	// before the cutoff.
	Degraded string `json:"degraded,omitempty"`
	// FellBack reports the session's guardrail replaced the selected
	// configuration with the Spark defaults because the selection evaluated
	// worse.
	FellBack bool `json:"fell_back,omitempty"`
	// SeededFrom is the retrieval provenance of a refine or fallback job:
	// the history neighbors whose observations seeded this session.
	SeededFrom []Neighbor `json:"seeded_from,omitempty"`
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID          string     `json:"id"`
	Spec        JobSpec    `json:"spec"`
	Fingerprint string     `json:"fingerprint"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Submitted   time.Time  `json:"submitted"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

type job struct {
	id        string
	spec      JobSpec
	fp        Fingerprint
	state     State
	err       string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancelled atomic.Bool
	// suspend asks the running session to park at the next evaluation
	// boundary with its checkpoint intact — the graceful-drain signal, as
	// opposed to cancellation (which discards the job).
	suspend atomic.Bool
	// released records that the job's in-flight slot went back to its
	// tenant (guarded by the service mutex; set exactly once).
	released bool
	done     chan struct{}
	// resume is the checkpoint the job restarts from (nil for fresh jobs):
	// set at startup for jobs interrupted by a process death, and refreshed
	// between in-process retry attempts.
	resume *Checkpoint
	// seed, when non-nil, is the warm-start prior retrieved by the
	// recommendation engine (refine / fallback jobs); seededFrom is its
	// neighbor provenance, surfaced in the result.
	seed       *core.Prior
	seededFrom []Neighbor
	// attempts counts failed attempts already consumed (Config.JobRetries
	// bounds it).
	attempts int
	// timeline is the job's phase-span trace, set when the session starts.
	// *obs.Timeline is internally synchronized, so the trace endpoint can
	// snapshot it while the session is still appending spans.
	timeline *obs.Timeline
}

// Config configures a Service.
type Config struct {
	// Workers is the size of the session worker pool (default 2): the
	// maximum number of tuning sessions running concurrently. Further
	// submissions queue.
	Workers int
	// QueueCap bounds the backlog of queued jobs (default 256); Submit
	// fails once it is full.
	QueueCap int
	// Store is the history store (default: a fresh in-memory store).
	Store Store
	// MaxPriorObs caps the observations injected into a warm-started
	// session (default 48), keeping the GP fitting cost bounded no matter
	// how much history accumulates.
	MaxPriorObs int
	// Backend is the default execution backend of tuning sessions (an
	// internal/runner spec; empty selects the simulator). Jobs may override
	// it per submission. Record-mode backends share one trace sink across
	// all jobs, keyed by job ID, so a whole service run lands in one file;
	// replaying it requires re-submitting the same job sequence.
	Backend string
	// Logf, if non-nil, receives service and per-job progress lines.
	Logf progress.Logf
	// Metrics is the registry the service charges its telemetry to (job
	// state gauges, queue-wait and job-duration histograms, per-run
	// counters). Nil allocates a private registry; pass one to share it
	// with other instrumented components or expose it over HTTP.
	Metrics *obs.Registry
	// Resume requeues jobs whose checkpoints survived a process death: on
	// startup, every checkpoint in the store becomes a queued job under its
	// original ID, and its session serves already-paid runs from the
	// checkpoint instead of re-executing them. Requires a Store implementing
	// CheckpointStore (both built-ins do).
	Resume bool
	// JobRetries bounds the automatic in-process retries of failed jobs
	// (default 0: a failed job stays failed). Retried jobs requeue under the
	// same ID and resume from their checkpoint.
	JobRetries int
	// CheckpointEvery persists a job checkpoint after that many fresh
	// executions (default 8; negative disables checkpointing).
	CheckpointEvery int
	// Chaos, when non-empty, wraps every session backend in deterministic
	// fault injection plus the healing retry/breaker layer (a
	// runner.ParseChaosSpec string, e.g. "drop=0.3,seed=7"). Meant for
	// resilience testing; invalid specs disable chaos with a log line — use
	// the public facade for validated construction.
	Chaos string
	// RecommendK, RecommendMaxDistance and RecommendConfidence are the
	// defaults of the zero-execution recommendation tier (0 picks 5 / 0.75
	// / 0.5); individual requests may override them.
	RecommendK           int
	RecommendMaxDistance float64
	RecommendConfidence  float64
	// MaxHistoryKeys caps the distinct fingerprint keys the history store
	// retains (default 1024; negative: unbounded). Beyond the cap the least
	// recently written key is evicted wholesale, so the store and its k-NN
	// index stay bounded on a long-lived service.
	MaxHistoryKeys int
	// Tenants maps tenant names to budgets; the DefaultTenant ("*") entry
	// applies to every unlisted tenant. Nil or absent entries leave tenants
	// unbudgeted. Over-budget submissions are rejected with a *BudgetError
	// (429 + Retry-After over HTTP).
	Tenants map[string]TenantBudget
	// Observers are appended to the per-run observation chain of every
	// session backend (after the job tally and run metrics). Observational
	// only — they cannot alter results; the load-test experiment uses one
	// to charge service-executed runs to its benchmark session.
	Observers []runner.RunObserver
}

// ErrQueueFull rejects a submission against a full job queue — the
// admission-control signal the HTTP layer maps to 429.
var ErrQueueFull = errors.New("service: queue full")

// ErrClosed rejects a submission against a closed service (503 over HTTP).
var ErrClosed = errors.New("service: closed")

// Service is the concurrent tuning-session manager. Submit enqueues jobs
// and returns immediately; a fixed pool of workers drains the queue. Every
// successful session is persisted to the history store, and later sessions
// with a matching or neighboring workload fingerprint warm-start from it.
type Service struct {
	cfg   Config
	store Store

	mu        sync.RWMutex
	jobs      map[string]*job
	order     []string
	seq       int
	closed    bool
	factories map[string]*runner.Factory
	// tenants is the per-tenant budget accounting (lazily populated).
	tenants map[string]*tenantState

	disp *dispatcher
	wg   sync.WaitGroup

	// ready gates /readyz: false until startup resume has requeued the
	// backlog, false again the moment a drain begins.
	ready atomic.Bool
	// now is the admission clock (swapped by rate-limit tests).
	now func() time.Time

	// rec is the zero-execution recommendation engine (k-NN retrieval over
	// the history store).
	rec *Recommender

	metrics *serviceMetrics
	// chaos is the parsed Config.Chaos fault schedule (nil: no injection).
	chaos *runner.ChaosOptions
	// checkpointEvery is the normalized Config.CheckpointEvery (0: disabled).
	checkpointEvery int
}

// New starts a Service with cfg's worker pool.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.MaxPriorObs <= 0 {
		cfg.MaxPriorObs = 48
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.MaxHistoryKeys == 0 {
		cfg.MaxHistoryKeys = 1024
	}
	if cfg.MaxHistoryKeys > 0 {
		if capped, ok := cfg.Store.(interface{ SetMaxKeys(int) }); ok {
			capped.SetMaxKeys(cfg.MaxHistoryKeys)
		}
	}
	s := &Service{
		cfg:       cfg,
		store:     cfg.Store,
		jobs:      map[string]*job{},
		factories: map[string]*runner.Factory{},
		tenants:   map[string]*tenantState{},
		disp:      newDispatcher(cfg.QueueCap),
		now:       time.Now,
	}
	s.metrics = newServiceMetrics(cfg.Metrics, s)
	s.rec = NewRecommender(cfg.Store)
	s.rec.logf = cfg.Logf
	s.rec.maxPriorObs = cfg.MaxPriorObs
	switch {
	case cfg.CheckpointEvery == 0:
		s.checkpointEvery = 8
	case cfg.CheckpointEvery > 0:
		s.checkpointEvery = cfg.CheckpointEvery
	}
	if cfg.Chaos != "" {
		chaos, err := runner.ParseChaosSpec(cfg.Chaos)
		if err != nil {
			s.logf("invalid chaos spec: %v; fault injection disabled", err)
		}
		s.chaos = chaos
	}
	if cfg.Resume {
		s.resumeCheckpointed()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
	return s
}

// Ready reports whether the service accepts work: true once startup resume
// has requeued the interrupted backlog, false again the moment a drain
// begins. /readyz serves it as the readiness probe.
func (s *Service) Ready() bool { return s.ready.Load() }

// Hold parks the worker pool without refusing submissions: jobs accumulate
// in the dispatch queue until Release. With the pool held, admission and
// shedding are a pure function of the submission order — the worker count
// cannot influence which jobs are accepted, which is what makes the
// load-test experiment's per-tenant counters reproducible bit for bit.
func (s *Service) Hold() { s.disp.hold() }

// Release reopens dispatch after Hold.
func (s *Service) Release() { s.disp.release() }

// resumeCheckpointed requeues every checkpointed job left behind by a dead
// process, under its original ID and with the checkpoint attached, before
// any worker starts — interrupted work drains ahead of new submissions.
func (s *Service) resumeCheckpointed() {
	cs, ok := s.store.(CheckpointStore)
	if !ok || s.checkpointEvery <= 0 {
		return
	}
	ids, err := cs.ListCheckpoints()
	if err != nil {
		s.logf("resume: listing checkpoints failed: %v", err)
		return
	}
	for _, id := range ids {
		cp, err := cs.GetCheckpoint(id)
		if err != nil || cp == nil {
			s.logf("resume: checkpoint %s unreadable: %v", id, err)
			continue
		}
		j := &job{
			id:        cp.JobID,
			spec:      cp.Spec,
			fp:        NewFingerprint(cp.Spec),
			state:     StateQueued,
			submitted: time.Now(),
			done:      make(chan struct{}),
			resume:    cp,
		}
		// Specs checkpointed before priorities existed normalize to batch.
		if err := j.spec.normalize(); err != nil {
			s.logf("resume: checkpoint %s holds an invalid spec: %v", id, err)
			continue
		}
		// Resumed jobs re-enter admission accounting (they occupy queue and
		// tenant capacity) but pay no rate token — they were admitted once.
		shed, ok := s.disp.enqueue(j)
		if !ok {
			s.logf("resume: queue full; leaving checkpointed job %s for the next restart", id)
			continue
		}
		s.tenantLocked(j.spec.Tenant).inFlight++
		if shed != nil && shed.state == StateQueued {
			// An interactive resume displaced an earlier-resumed batch job.
			// Its checkpoint stays behind, so the next restart retries it —
			// shed here means deferred, not lost.
			s.shedLocked(shed)
			close(shed.done)
			s.metrics.admission("shed").Inc()
			s.logf("[%s] shed: displaced by resumed %s", shed.id, j.id)
		}
		// Keep the ID sequence monotonic past every resumed job, so fresh
		// submissions never collide with resumed IDs.
		var n int
		if _, err := fmt.Sscanf(cp.JobID, "job-%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.metrics.jobsResumed.Inc()
		s.logf("[%s] resumed from checkpoint: %d paid runs carried over", j.id, len(cp.Entries))
	}
}

// Metrics returns the registry the service reports into.
func (s *Service) Metrics() *obs.Registry { return s.cfg.Metrics }

// Store returns the service's history store.
func (s *Service) Store() Store { return s.store }

func (s *Service) logf(format string, args ...any) { progress.F(s.cfg.Logf, format, args...) }

// factory returns the (cached) backend factory for a spec, so record-mode
// backends share one trace sink across jobs.
func (s *Service) factory(spec string) (*runner.Factory, error) {
	if spec == "" {
		spec = s.cfg.Backend
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.factories[spec]; ok {
		return f, nil
	}
	f, err := runner.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	s.factories[spec] = f
	return f, nil
}

// Submit validates and enqueues a job, returning its ID immediately.
func (s *Service) Submit(spec JobSpec) (string, error) {
	return s.submit(spec, nil, nil)
}

// submit is Submit plus the recommendation tier's seeding: refine and
// fallback jobs carry the retrieved prior and its provenance.
func (s *Service) submit(spec JobSpec, seed *core.Prior, from []Neighbor) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	j := &job{
		spec:       spec,
		fp:         NewFingerprint(spec),
		state:      StateQueued,
		submitted:  time.Now(),
		done:       make(chan struct{}),
		seed:       seed,
		seededFrom: from,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.admission("closed").Inc()
		return "", ErrClosed
	}
	// Per-tenant budgets first (nothing consumed on refusal), then the
	// shared queue bound. Only a fully admitted submission pays a rate
	// token and an in-flight slot.
	ts := s.tenantLocked(spec.Tenant)
	if err := ts.admitLocked(spec.Tenant, s.now()); err != nil {
		s.mu.Unlock()
		var be *BudgetError
		if errors.As(err, &be) {
			s.metrics.admission(be.Reason).Inc()
		}
		return "", err
	}
	s.seq++
	j.id = fmt.Sprintf("job-%06d", s.seq)
	shed, ok := s.disp.enqueue(j)
	if !ok {
		s.seq-- // admission refused; do not burn the ID
		s.mu.Unlock()
		s.metrics.admission("queue_full").Inc()
		return "", fmt.Errorf("%w (%d jobs)", ErrQueueFull, s.cfg.QueueCap)
	}
	ts.chargeLocked()
	if shed != nil && shed.state != StateQueued {
		// The evicted slot held a job already cancelled while queued; its
		// lifecycle is settled, nothing to account.
		shed = nil
	}
	if shed != nil {
		s.shedLocked(shed)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.metrics.admission("accepted").Inc()
	if shed != nil {
		close(shed.done)
		s.metrics.admission("shed").Inc()
		s.logf("[%s] shed: displaced by interactive %s under overload", shed.id, j.id)
	}
	s.logf("[%s] queued: %s %s %.0f GB %s/%s (fingerprint %s)",
		j.id, spec.Cluster, spec.Benchmark, spec.DataSizeGB,
		tenantName(spec.Tenant), spec.Priority, j.fp.Key())
	return j.id, nil
}

// tenantName renders the anonymous tenant readably in logs.
func tenantName(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// shedLocked settles a batch job evicted from the queue by an interactive
// submission under overload. The caller closes shed.done outside the
// service mutex. The job's checkpoint (if it was a resumed job) is left in
// place deliberately: a shed resumed job is deferred to the next restart,
// not lost.
func (s *Service) shedLocked(shed *job) {
	shed.state = StateShed
	shed.finished = time.Now()
	shed.err = "shed: displaced by interactive work under overload"
	s.releaseTenantLocked(shed)
}

// Status returns a job's current snapshot.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	return j.snapshotLocked(), nil
}

// Jobs returns snapshots of every job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshotLocked())
	}
	return out
}

// snapshotLocked renders the job; the service mutex must be held (a read
// lock suffices — every job mutation happens under the write lock, so the
// read paths Status/Jobs/Stats snapshot concurrently without serializing
// behind each other or behind Submit).
func (j *job) snapshotLocked() JobStatus {
	st := JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		Fingerprint: j.fp.Key(),
		State:       j.state,
		Error:       j.err,
		Submitted:   j.submitted,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Result blocks until the job finishes and returns its result (an error for
// failed or cancelled jobs).
func (s *Service) Result(id string) (*JobResult, error) {
	s.mu.RLock()
	j, ok := s.jobs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	<-j.done
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch j.state {
	case StateSucceeded:
		return j.result, nil
	case StateCancelled:
		return nil, fmt.Errorf("service: job %s cancelled", id)
	case StateShed:
		return nil, fmt.Errorf("service: job %s shed under overload; resubmit", id)
	case StateSuspended:
		return nil, fmt.Errorf("service: job %s suspended by drain; resumes on restart", id)
	default:
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.err)
	}
}

// Cancel requests cancellation: queued jobs are cancelled immediately and
// never start; running jobs stop cooperatively at the next evaluation
// boundary. Cancelling a finished job is a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: unknown job %q", id)
	}
	j.cancelled.Store(true)
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = time.Now()
		s.releaseTenantLocked(j)
		s.mu.Unlock()
		close(j.done)
		s.logf("[%s] cancelled while queued", id)
		return nil
	}
	s.mu.Unlock()
	s.logf("[%s] cancellation requested", id)
	return nil
}

// Stats is the service's job census, broken out by lifecycle state.
type Stats struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Shed      int `json:"shed"`
	Suspended int `json:"suspended"`
}

// Finished is the number of jobs in any terminal state.
func (st Stats) Finished() int {
	return st.Succeeded + st.Failed + st.Cancelled + st.Shed + st.Suspended
}

// Stats reports the queue and pool occupancy and the terminal-state
// breakdown.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateSucceeded:
			st.Succeeded++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		case StateShed:
			st.Shed++
		case StateSuspended:
			st.Suspended++
		}
	}
	return st
}

// Trace returns the job's phase-span timeline: one record per pipeline
// phase (sampling, QCSA, DAGP base selection, IICP, phase-2 search, GP
// hyperparameter resamples), with wall time, simulated cluster seconds and
// run counts. Open spans of a still-running job report Done=false with
// their wall time so far. Queued jobs have an empty trace.
func (s *Service) Trace(id string) ([]obs.SpanRecord, error) {
	s.mu.RLock()
	j, ok := s.jobs[id]
	tl := (*obs.Timeline)(nil)
	if ok {
		tl = j.timeline
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	if tl == nil {
		return []obs.SpanRecord{}, nil
	}
	return tl.Snapshot(), nil
}

// Close drains the service gracefully: intake stops (readiness flips
// first, so load balancers stop routing before submissions start failing),
// queued jobs are checkpointed as Suspended instead of cancelled, running
// sessions are asked to park at the next evaluation boundary with their
// checkpoints intact, and a restart with Config.Resume requeues all of
// them under their original IDs — an accepted job survives Close. Only
// when the store cannot hold checkpoints (or checkpointing is disabled)
// does Close fall back to cancelling the backlog.
func (s *Service) Close() {
	s.ready.Store(false)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	cs, canCkpt := s.store.(CheckpointStore)
	canCkpt = canCkpt && s.checkpointEvery > 0
	// Pull the backlog out of the dispatcher atomically: workers never see
	// these jobs, so each is either suspended (checkpointed for the next
	// incarnation) or cancelled, but never half-run.
	var settle []*job
	for _, j := range s.disp.drain() {
		if j.state != StateQueued {
			continue // cancelled while queued; already settled
		}
		if canCkpt {
			cp := j.resume
			if cp == nil {
				cp = &Checkpoint{JobID: j.id, Spec: j.spec, Fingerprint: j.fp.Key(),
					CreatedUnix: time.Now().Unix()}
			}
			if err := cs.PutCheckpoint(*cp); err != nil {
				s.logf("[%s] drain checkpoint failed: %v; cancelling instead", j.id, err)
				j.cancelled.Store(true)
				j.state = StateCancelled
			} else {
				j.state = StateSuspended
				j.err = "suspended: service drained; resume with Config.Resume"
			}
		} else {
			j.cancelled.Store(true)
			j.state = StateCancelled
		}
		j.finished = time.Now()
		s.releaseTenantLocked(j)
		settle = append(settle, j)
	}
	if canCkpt {
		// Running sessions park at the next evaluation boundary and flush
		// their checkpoints; without a checkpoint store they simply run to
		// completion as before.
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.suspend.Store(true)
			}
		}
	}
	s.disp.close()
	s.mu.Unlock()
	for _, j := range settle {
		close(j.done)
		s.logf("[%s] %s on drain", j.id, j.state)
	}
	s.wg.Wait()
	// Flush backend factories (trace sinks of recording backends) once no
	// session can execute anymore.
	s.mu.Lock()
	factories := s.factories
	s.factories = map[string]*runner.Factory{}
	s.mu.Unlock()
	for spec, f := range factories {
		if err := f.Close(); err != nil {
			s.logf("backend %q close failed: %v", spec, err)
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.disp.dequeue()
		if !ok {
			return
		}
		s.mu.Lock()
		if j.state != StateQueued {
			// Cancelled while waiting in the queue; already settled.
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = time.Now()
		j.timeline = obs.NewTimeline()
		s.mu.Unlock()
		s.metrics.queueWait.Observe(j.started.Sub(j.submitted).Seconds())
		res, err := s.runJobSafe(j)
		switch {
		case errors.Is(err, core.ErrStopped) && j.suspend.Load() && !j.cancelled.Load():
			// Parked by a graceful drain: the session flushed its checkpoint
			// on the way out, so the next incarnation resumes it. Keep the
			// checkpoint — this is the one non-terminal "terminal" state.
			s.finish(j, StateSuspended, nil, nil)
			continue
		case errors.Is(err, core.ErrStopped):
			s.finish(j, StateCancelled, nil, nil)
		case err != nil:
			if s.requeueForRetry(j, err) {
				continue
			}
			s.finish(j, StateFailed, nil, err)
		default:
			// A cancellation that lands after the last Stop poll loses the
			// race: the session completed, so its result stands.
			s.finish(j, StateSucceeded, res, nil)
		}
		// Terminal states retire the checkpoint: only jobs interrupted by a
		// process death or parked by a drain leave one behind for Resume.
		s.dropCheckpoint(j.id)
	}
}

// requeueForRetry puts a failed job back on the queue when the retry budget
// allows, refreshed from its checkpoint so already-paid runs carry over.
// Returns false when the job must finish as failed (budget exhausted,
// cancellation requested, service closing, or queue full).
func (s *Service) requeueForRetry(j *job, cause error) bool {
	if s.cfg.JobRetries <= 0 || j.attempts >= s.cfg.JobRetries || j.cancelled.Load() {
		return false
	}
	if cs, ok := s.store.(CheckpointStore); ok {
		if cp, err := cs.GetCheckpoint(j.id); err == nil && cp != nil {
			j.resume = cp
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	requeued := false
	// Retries re-enter the job's own priority lane but never evict anyone:
	// a flapping job must not displace healthy queued work.
	if s.disp.requeue(j) {
		j.attempts++
		j.state = StateQueued
		j.submitted = time.Now()
		requeued = true
	}
	s.mu.Unlock()
	if requeued {
		s.logf("[%s] failed (%v); retry %d/%d queued", j.id, cause, j.attempts, s.cfg.JobRetries)
	}
	return requeued
}

// dropCheckpoint removes a finished job's checkpoint, if any.
func (s *Service) dropCheckpoint(id string) {
	if s.checkpointEvery <= 0 {
		return
	}
	if cs, ok := s.store.(CheckpointStore); ok {
		if err := cs.DeleteCheckpoint(id); err != nil {
			s.logf("[%s] checkpoint delete failed: %v", id, err)
		}
	}
}

func (s *Service) finish(j *job, st State, res *JobResult, err error) {
	s.mu.Lock()
	j.state = st
	j.finished = time.Now()
	j.result = res
	if err != nil {
		j.err = err.Error()
	}
	if st == StateSuspended {
		j.err = "suspended: service drained; resume with Config.Resume"
	}
	s.releaseTenantLocked(j)
	if st == StateSucceeded && res != nil {
		// Cluster time is charged when it is known, not when the job is
		// admitted: the budget meters what the tenant actually consumed.
		s.tenantLocked(j.spec.Tenant).clusterSec += res.ClusterSec
	}
	started := j.started
	s.mu.Unlock()
	if !started.IsZero() {
		s.metrics.jobSeconds(st).Observe(j.finished.Sub(started).Seconds())
	}
	close(j.done)
	switch st {
	case StateSucceeded:
		s.logf("[%s] succeeded: tuned %.0f s (default %.0f s), overhead %.0f s, warm=%v",
			j.id, res.TunedSec, res.DefaultSec, res.OverheadSec, res.WarmStarted)
	case StateFailed:
		s.logf("[%s] failed: %v", j.id, err)
	case StateCancelled:
		s.logf("[%s] cancelled", j.id)
	case StateSuspended:
		s.logf("[%s] suspended mid-session; checkpoint holds its progress", j.id)
	}
}

// runJobSafe contains session panics: an execution backend may fail hard
// mid-run (a trace replay that misses under MissFail panics by contract),
// and one poisoned job must not take the whole service down.
func (s *Service) runJobSafe(j *job) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: job aborted: %v", r)
		}
	}()
	return s.runJob(j)
}

// runJob executes one tuning session: retrieve a prior from the history
// store, run the core pipeline, persist the outcome.
func (s *Service) runJob(j *job) (*JobResult, error) {
	spec := j.spec
	cl := spec.cluster()
	app, err := workloads.ByName(spec.Benchmark)
	if err != nil {
		return nil, err
	}
	f, err := s.factory(spec.Backend)
	if err != nil {
		return nil, err
	}
	// The stream key is the job ID: deterministic for a deterministic
	// submission sequence, which is what record/replay of a whole service
	// run requires.
	raw, err := f.New(cl, spec.Seed, j.id)
	if err != nil {
		return nil, err
	}
	// Fault layers, innermost first: chaos faults individual executions on a
	// deterministic schedule, and the retry wrapper heals its transient
	// drops (tripping a circuit breaker on persistent failure). Both are
	// absent unless chaos is configured — the plain chain stays bit-exact
	// with recorded traces.
	inner := runner.Runner(raw)
	var breakerTripped atomic.Bool
	if s.chaos != nil {
		inner = runner.NewRetrying(runner.NewChaos(inner, *s.chaos), runner.RetryOptions{
			Seed:    spec.Seed,
			OnRetry: s.metrics.retries.Inc,
			OnBreakerOpen: func() {
				breakerTripped.Store(true)
				s.metrics.breakerOpen.Add(1)
			},
		})
		defer func() {
			if breakerTripped.Load() {
				s.metrics.breakerOpen.Add(-1)
			}
		}()
	}
	// Every execution the session issues is charged to the job's tally and
	// the service-wide run metrics, then to any Config.Observers; the whole
	// chain is observational only, so replayed traces still match recorded
	// ones bit for bit.
	var tally runner.Tally
	watchers := append([]runner.RunObserver{&tally, s.metrics.runs}, s.cfg.Observers...)
	observed := runner.Observe(inner, watchers...)
	run := runner.Runner(observed)
	// The checkpoint cache sits outermost so resumed runs are served before
	// they reach the tally — a resumed session's Runs counts only what it
	// actually re-executed (the acceptance bar for resume is zero).
	var cache *runner.Cache
	var ckp *checkpointer
	if cs, ok := s.store.(CheckpointStore); ok && s.checkpointEvery > 0 {
		ckp = newCheckpointer(cs, j, s.checkpointEvery, s.metrics, s.cfg.Logf)
		var paid []runner.TraceEntry
		if j.resume != nil && runner.CapsOf(raw).Deterministic {
			// A deterministic backend re-drives the identical trajectory, so
			// checkpointed runs answer the session's re-requests verbatim.
			paid = j.resume.Entries
		}
		cache = runner.NewCache(run, paid, ckp.onRun)
		run = cache
	}
	space := run.Space()

	opts := core.DefaultOptions()
	opts.Seed = spec.Seed
	if spec.NQCSA > 0 {
		opts.NQCSA = spec.NQCSA
	}
	if spec.NIICP > 0 {
		opts.NIICP = spec.NIICP
	}
	if spec.MaxIterations > 0 {
		opts.MaxIter = spec.MaxIterations
	}
	opts.UseQCSA = !spec.DisableQCSA
	opts.UseIICP = !spec.DisableIICP
	opts.UseDAGP = !spec.DisableDAGP
	// Stop covers both user cancellation and the graceful-drain suspend
	// signal — the worker disambiguates on the way out.
	opts.Stop = func() bool { return j.cancelled.Load() || j.suspend.Load() }
	opts.Logf = progress.Prefixed(s.cfg.Logf, "["+j.id+"] ")
	opts.Tracer = j.timeline
	opts.MaxClusterSec = spec.MaxClusterSec
	if spec.DeadlineSec > 0 {
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(spec.DeadlineSec*float64(time.Second)))
		defer cancel()
		opts.Expired = func() bool { return ctx.Err() != nil }
	}

	if !spec.ColdStart && opts.UseDAGP {
		if j.seed != nil {
			// Refine/fallback jobs are seeded with the recommendation
			// engine's k-NN retrieval, which supersedes the fingerprint
			// lookup (its neighbor set is a superset of the bucket walk).
			opts.Prior = j.seed
			s.logf("[%s] seeded with %d neighbor observations from retrieval", j.id, len(j.seed.Obs))
		} else if prior, n := s.retrievePrior(j, space); prior != nil {
			s.logf("[%s] retrieved %d prior observations from history", j.id, n)
			opts.Prior = prior
		}
	}
	if j.resume != nil && !runner.CapsOf(raw).Deterministic && opts.UseDAGP {
		// A non-deterministic backend (a live cluster) cannot replay its
		// trajectory, so the checkpoint's paid observations re-enter as a
		// warm-start prior instead of through the cache.
		if p := checkpointPrior(j.resume); p != nil {
			if opts.Prior == nil {
				opts.Prior = p
			} else {
				opts.Prior.Obs = append(opts.Prior.Obs, p.Obs...)
			}
			s.logf("[%s] warm-starting from %d checkpointed observations", j.id, len(p.Obs))
		}
	}

	rep, err := core.New(run, app, opts).Tune(spec.DataSizeGB)
	if err != nil {
		if errors.Is(err, core.ErrStopped) && j.suspend.Load() && !j.cancelled.Load() && ckp != nil {
			// Parked by a drain: persist the tail of the trajectory so the
			// next incarnation resumes from the exact stop point, not the
			// last periodic flush.
			ckp.flush()
		}
		return nil, err
	}
	if rep.Degraded == "" {
		if err := runner.BackendErr(run); err != nil {
			return nil, fmt.Errorf("service: execution backend failed: %w", err)
		}
	} else {
		s.logf("[%s] degraded: %s; recommending best observed", j.id, rep.Degraded)
	}

	res := &JobResult{
		BestConfig:   rep.Best.Clone(),
		BestParams:   paramsToMap(rep.Best),
		TunedSec:     rep.TunedSec,
		DefaultSec:   run.NoiselessAppTime(app, space.Default(), spec.DataSizeGB),
		OverheadSec:  rep.OverheadSec,
		SamplingSec:  rep.SamplingSec,
		SearchSec:    rep.SearchSec,
		FullRuns:     rep.FullRuns,
		RQARuns:      rep.RQARuns,
		WarmStarted:  rep.WarmStarted,
		PriorObsUsed: rep.PriorObsUsed,
		SparkConf:    sparkConfString(rep.Best),
		Degraded:     rep.Degraded,
		FellBack:     rep.FellBack,
		SeededFrom:   j.seededFrom,
	}
	res.Runs, res.ClusterSec = tally.Snapshot()
	if cache != nil {
		res.ResumedRuns = cache.ResumedRuns()
	}
	if rep.QCSA != nil {
		res.SensitiveQueries = append([]string(nil), rep.QCSA.Sensitive...)
	}
	if rep.IICP != nil {
		res.ImportantParams = importantNames(rep.IICP.Important)
	}
	if err := s.persist(j, rep, res); err != nil {
		// The tuning result is still valid; losing the history entry only
		// costs future warm starts.
		s.logf("[%s] history store write failed: %v", j.id, err)
	}
	return res, nil
}

// checkpointPrior converts a checkpoint's successful full-application
// executions into a warm-start prior — the resume path for backends whose
// runs cannot be re-driven deterministically. Returns nil when the
// checkpoint holds no usable observation.
func checkpointPrior(cp *Checkpoint) *core.Prior {
	p := &core.Prior{}
	for _, e := range cp.Entries {
		if e.Kind != runner.TraceApp || e.Result == nil || e.Result.Sec <= 0 {
			continue
		}
		var qs map[string]float64
		if len(e.Result.Queries) > 0 {
			qs = make(map[string]float64, len(e.Result.Queries))
			for _, qr := range e.Result.Queries {
				qs[qr.Name] += qr.Sec
			}
		}
		p.Obs = append(p.Obs, core.PriorObs{
			Conf:      conf.Config(append([]float64(nil), e.Conf...)),
			DataGB:    e.DataGB,
			Sec:       e.Result.Sec,
			QuerySecs: qs,
		})
	}
	if len(p.Obs) == 0 {
		return nil
	}
	return p
}

// retrievePrior assembles a core.Prior from history entries under the job's
// fingerprint and its neighboring size buckets. Observations are ranked and
// capped by dagp.SelectTransfer; the QCSA / IICP artifacts come from the
// newest same-bucket entry (falling back to neighbors).
func (s *Service) retrievePrior(j *job, space *conf.Space) (*core.Prior, int) {
	fps := append([]Fingerprint{j.fp}, j.fp.Neighbors()...)
	var entries []Entry
	for _, fp := range fps {
		es, err := s.store.Get(fp.Key())
		if err != nil {
			s.logf("[%s] history read %s failed: %v", j.id, fp.Key(), err)
			continue
		}
		entries = append(entries, es...)
	}
	if len(entries) == 0 {
		return nil, 0
	}

	var obs []core.PriorObs
	var samples []dagp.Sample
	for _, e := range entries {
		for _, o := range e.Obs {
			if len(o.Params) != space.Dim() {
				continue // stored under a different parameter table
			}
			c := conf.Config(o.Params)
			obs = append(obs, core.PriorObs{
				Conf: c, DataGB: o.DataGB, Sec: o.Sec, QuerySecs: o.QuerySecs,
			})
			samples = append(samples, dagp.Sample{
				X: space.Encode(c), DataGB: o.DataGB, Sec: o.Sec,
			})
		}
	}
	if len(obs) == 0 {
		return nil, 0
	}
	prior := &core.Prior{}
	for _, i := range dagp.SelectTransfer(samples, j.spec.DataSizeGB, s.cfg.MaxPriorObs) {
		prior.Obs = append(prior.Obs, obs[i])
	}

	// Newest entry wins for the analysis artifacts; same-bucket entries are
	// preferred over neighbors.
	sort.SliceStable(entries, func(a, b int) bool {
		sa, sb := entries[a].Fingerprint.SizeBucket == j.fp.SizeBucket,
			entries[b].Fingerprint.SizeBucket == j.fp.SizeBucket
		if sa != sb {
			return sa
		}
		return entries[a].CreatedUnix > entries[b].CreatedUnix
	})
	for _, e := range entries {
		if prior.Sensitive == nil && len(e.Sensitive) > 0 {
			prior.Sensitive = append([]string(nil), e.Sensitive...)
		}
		if prior.Important == nil && len(e.Important) > 0 {
			for _, name := range e.Important {
				if _, idx, ok := conf.ParamByName(name); ok {
					prior.Important = append(prior.Important, idx)
				}
			}
		}
	}
	return prior, len(prior.Obs)
}

// persist writes the finished session into the history store.
func (s *Service) persist(j *job, rep *core.Report, res *JobResult) error {
	e := Entry{
		Fingerprint: j.fp,
		JobID:       j.id,
		CreatedUnix: time.Now().Unix(),
		TargetGB:    j.spec.DataSizeGB,
		TunedSec:    res.TunedSec,
		OverheadSec: res.OverheadSec,
		BestParams:  res.BestParams,
		Sensitive:   res.SensitiveQueries,
		Important:   res.ImportantParams,
	}
	for _, ev := range rep.History {
		if !ev.FullApp {
			// RQA runs measure only the reduced application; persisting
			// them as full-app observations would corrupt future priors.
			continue
		}
		e.Obs = append(e.Obs, Observation{
			Params:    append([]float64(nil), ev.Conf...),
			DataGB:    ev.DataGB,
			Sec:       ev.Sec,
			QuerySecs: ev.QuerySecs,
		})
	}
	if err := s.store.Put(e); err != nil {
		return err
	}
	// Index the fresh entry (and drop whatever the per-key cap evicted) so
	// the recommendation tier sees it immediately.
	s.rec.Sync(e.Fingerprint.Key())
	return nil
}

// sparkConfString renders a configuration in spark-defaults.conf syntax.
func sparkConfString(c conf.Config) string {
	var b strings.Builder
	_ = conf.FormatSparkConf(&b, c)
	return b.String()
}

// importantNames maps parameter indices to Spark property names.
func importantNames(idx []int) []string {
	params := conf.Params()
	out := make([]string, 0, len(idx))
	for _, j := range idx {
		if j >= 0 && j < len(params) {
			out = append(out, params[j].Name)
		}
	}
	return out
}

// paramsToMap converts a configuration vector to a name→value map.
func paramsToMap(c conf.Config) map[string]float64 {
	out := make(map[string]float64, len(c))
	for i, p := range conf.Params() {
		out[p.Name] = c[i]
	}
	return out
}
