package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"locat/internal/obs"
)

// TestStatsBreakdownAndTally drives one job into each terminal state and
// checks the census breakdown, the job-state gauges on the exposition, and
// the execution tally attached to the successful result.
func TestStatsBreakdownAndTally(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	okID, err := s.Submit(quickSpec(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	// A replay backend pointing at a missing trace passes spec validation
	// (the file is only opened when the session starts) and then fails.
	badSpec := quickSpec(60, 2)
	badSpec.Backend = "replay=/nonexistent/trace.jsonl"
	badID, err := s.Submit(badSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Queued behind the two jobs of the single worker: cancelled before it
	// can start.
	cancelID, err := s.Submit(quickSpec(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(cancelID); err != nil {
		t.Fatal(err)
	}

	res, err := s.Result(okID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs <= 0 || res.ClusterSec <= 0 {
		t.Fatalf("successful result carries no tally: runs=%d cluster_sec=%v", res.Runs, res.ClusterSec)
	}
	// The tally sees every execution, so it covers at least the session's
	// reported tuning overhead.
	if res.ClusterSec < res.OverheadSec-1e-6 {
		t.Fatalf("tally %.1f s below reported overhead %.1f s", res.ClusterSec, res.OverheadSec)
	}
	if _, err := s.Result(badID); err == nil {
		t.Fatal("missing-trace job did not fail")
	}
	if _, err := s.Result(cancelID); err == nil {
		t.Fatal("cancelled job returned a result")
	}

	st := s.Stats()
	want := Stats{Succeeded: 1, Failed: 1, Cancelled: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if st.Finished() != 3 {
		t.Fatalf("finished = %d, want 3", st.Finished())
	}

	var b strings.Builder
	s.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, wantLine := range []string{
		`locat_jobs{state="succeeded"} 1`,
		`locat_jobs{state="failed"} 1`,
		`locat_jobs{state="cancelled"} 1`,
		`locat_jobs{state="queued"} 0`,
		`locat_runs_total{kind="app"}`,
	} {
		if !strings.Contains(out, wantLine) {
			t.Fatalf("exposition missing %q:\n%s", wantLine, out)
		}
	}
}

// TestMetricsEndpointConcurrent scrapes /metrics while jobs submit and run;
// meaningful under -race, which CI runs for this package.
func TestMetricsEndpointConcurrent(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape = %d", resp.StatusCode)
					return
				}
				if !strings.Contains(string(body), "# TYPE locat_jobs gauge") {
					t.Errorf("malformed exposition:\n%s", body)
					return
				}
			}
		}()
	}

	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := svc.Submit(quickSpec(50+float64(i), int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := svc.Result(id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The run counters saw the drained jobs; the HTTP middleware saw the
	// scrapes, labeled by route pattern.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`locat_runs_total{kind="app"}`,
		`locat_http_requests_total{code="200",route="GET /metrics"}`,
		"locat_job_queue_wait_seconds_count 4",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestTraceEndpoint checks the per-job span timeline over HTTP.
func TestTraceEndpoint(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	id, err := svc.Submit(quickSpec(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Result(id); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		ID    string           `json:"id"`
		State State            `json:"state"`
		Spans []obs.SpanRecord `json:"spans"`
	}
	doJSON(t, client, "GET", srv.URL+"/v1/jobs/"+id+"/trace", nil, http.StatusOK, &trace)
	if trace.ID != id || trace.State != StateSucceeded {
		t.Fatalf("trace header wrong: %+v", trace)
	}
	if len(trace.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byName := map[string]obs.SpanRecord{}
	var runs int64
	for _, sp := range trace.Spans {
		if !sp.Done {
			t.Fatalf("span %q still open after job finished", sp.Name)
		}
		byName[sp.Name] = sp
		runs += sp.Runs
	}
	for _, want := range []string{"phase1/sampling", "qcsa/reduce", "iicp/select", "phase2/search", "final/select"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("timeline missing span %q: %+v", want, trace.Spans)
		}
	}
	if runs <= 0 {
		t.Fatal("no runs charged to any span")
	}
	if sp := byName["phase1/sampling"]; sp.ClusterSec <= 0 || sp.Runs <= 0 {
		t.Fatalf("sampling span empty: %+v", sp)
	}

	// Unknown job is a 404; a queued/unstarted job would serve an empty
	// span list rather than erroring (not exercised here: the single worker
	// already drained the queue).
	resp, err := client.Get(srv.URL + "/v1/jobs/job-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", resp.StatusCode)
	}
}

// TestHealthzBreakdown checks the extended health payload.
func TestHealthzBreakdown(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	id, err := svc.Submit(quickSpec(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Result(id); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["succeeded"] != float64(1) ||
		health["failed"] != float64(0) || health["finished"] != float64(1) {
		t.Fatalf("health = %v", health)
	}
}
