package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// maxEntriesPerKey bounds a history shard: when a fingerprint accumulates
// more finished sessions, the oldest are dropped. Recent sessions dominate
// warm-start value anyway (the cluster and data distribution they saw are
// closest to the present), and the cap keeps FileStore shards and Prior
// construction O(1) per key.
const maxEntriesPerKey = 32

// Observation is one persisted tuning run: the executed configuration in
// natural units together with its size and latency. QuerySecs preserves the
// per-query breakdown so a future session can re-express the observation on
// the scale of whatever reduced query application its own QCSA produces.
type Observation struct {
	Params    []float64          `json:"params"`
	DataGB    float64            `json:"data_gb"`
	Sec       float64            `json:"sec"`
	QuerySecs map[string]float64 `json:"query_secs,omitempty"`
}

// Entry is one finished tuning session as persisted in the history store.
type Entry struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	// JobID is the service job that produced the entry.
	JobID string `json:"job_id"`
	// CreatedUnix is the completion time (Unix seconds); entries within a
	// key are ordered by it.
	CreatedUnix int64 `json:"created_unix"`
	// TargetGB is the data size the session tuned for.
	TargetGB float64 `json:"target_gb"`
	// TunedSec / OverheadSec mirror the session report.
	TunedSec    float64 `json:"tuned_sec"`
	OverheadSec float64 `json:"overhead_sec"`
	// BestParams is the tuned configuration as a name→value map.
	BestParams map[string]float64 `json:"best_params"`
	// Sensitive and Important are the session's QCSA / IICP artifacts —
	// query names and parameter names (names, not indices, so entries
	// survive parameter-table reorderings).
	Sensitive []string `json:"sensitive,omitempty"`
	Important []string `json:"important,omitempty"`
	// Obs are the session's full-application observations.
	Obs []Observation `json:"obs"`
}

// Store is the history store: finished sessions keyed by workload
// fingerprint. Implementations must be safe for concurrent use — the
// service's workers read and write it concurrently.
type Store interface {
	// Put appends an entry under its fingerprint key, evicting the oldest
	// beyond maxEntriesPerKey.
	Put(e Entry) error
	// Get returns the entries stored under key, oldest first (nil when the
	// key has none).
	Get(key string) ([]Entry, error)
	// Keys returns all populated keys, sorted.
	Keys() ([]string, error)
}

// MemStore is the in-memory Store used by tests and by service instances
// that do not need persistence across restarts.
type MemStore struct {
	mu      sync.RWMutex
	m       map[string][]Entry
	cps     map[string]Checkpoint
	maxKeys int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: map[string][]Entry{}, cps: map[string]Checkpoint{}}
}

// SetMaxKeys caps the number of distinct fingerprint keys (0 or negative:
// unbounded). When a Put pushes the store past the cap, whole keys are
// evicted least-recently-written first (by the newest entry's CreatedUnix,
// ties on key order), so a long-lived service's store stays bounded no
// matter how many distinct workloads pass through it.
func (s *MemStore) SetMaxKeys(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxKeys = n
	s.evictLocked()
}

// Put implements Store.
func (s *MemStore) Put(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := e.Fingerprint.Key()
	s.m[k] = capEntries(append(s.m[k], e))
	s.evictLocked()
	return nil
}

// evictLocked enforces the key cap.
func (s *MemStore) evictLocked() {
	if s.maxKeys <= 0 {
		return
	}
	for len(s.m) > s.maxKeys {
		victim := ""
		var oldest int64
		for k, es := range s.m {
			newest := es[len(es)-1].CreatedUnix // capEntries sorts ascending
			if victim == "" || newest < oldest || (newest == oldest && k < victim) {
				victim, oldest = k, newest
			}
		}
		delete(s.m, victim)
	}
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Entry(nil), s.m[key]...), nil
}

// Keys implements Store.
func (s *MemStore) Keys() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// FileStore persists the history as one JSON file per fingerprint key in a
// directory, written atomically (temp file + rename), so a service restart
// resumes with everything past sessions learned.
type FileStore struct {
	dir     string
	mu      sync.Mutex
	maxKeys int
}

// NewFileStore opens (creating if needed) a file-backed store in dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: history dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// path maps a key to its shard file, refusing any key that could name a
// file outside the store directory. Fingerprint.Key() sanitizes its inputs,
// but the store is also reachable with caller-supplied keys (Get over HTTP,
// entries deserialized from disk), so it validates independently.
func (s *FileStore) path(key string) (string, error) {
	if !ValidKey(key) {
		return "", fmt.Errorf("service: invalid history key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Put implements Store.
func (s *FileStore) Put(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := e.Fingerprint.Key()
	p, err := s.path(key)
	if err != nil {
		return err
	}
	entries, err := s.load(key)
	if err != nil {
		return err
	}
	entries = capEntries(append(entries, e))
	data, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		return fmt.Errorf("service: encode history: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: write history: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("service: commit history: %w", err)
	}
	s.evictLocked()
	return nil
}

// SetMaxKeys caps the number of shard files (0 or negative: unbounded),
// evicting whole keys least-recently-written first — the FileStore analogue
// of MemStore.SetMaxKeys, ordered by shard modification time.
func (s *FileStore) SetMaxKeys(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxKeys = n
	s.evictLocked()
}

// IndexPath is where the recommender persists its k-NN index, next to the
// shards. The name carries no .json suffix, so Keys never mistakes the
// index for a history shard.
func (s *FileStore) IndexPath() string { return filepath.Join(s.dir, "knn.index") }

// evictLocked enforces the key cap by deleting the oldest shard files.
func (s *FileStore) evictLocked() {
	if s.maxKeys <= 0 {
		return
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type shard struct {
		key string
		mod int64
	}
	var shards []shard
	for _, de := range des {
		n := de.Name()
		if !strings.HasSuffix(n, ".json") || !ValidKey(strings.TrimSuffix(n, ".json")) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		shards = append(shards, shard{key: strings.TrimSuffix(n, ".json"), mod: info.ModTime().UnixNano()})
	}
	if len(shards) <= s.maxKeys {
		return
	}
	sort.Slice(shards, func(a, b int) bool {
		if shards[a].mod != shards[b].mod {
			return shards[a].mod < shards[b].mod
		}
		return shards[a].key < shards[b].key
	})
	for _, sh := range shards[:len(shards)-s.maxKeys] {
		_ = os.Remove(filepath.Join(s.dir, sh.key+".json"))
	}
}

// Get implements Store.
func (s *FileStore) Get(key string) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load(key)
}

func (s *FileStore) load(key string) ([]Entry, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: read history: %w", err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("service: decode history %s: %w", key, err)
	}
	return entries, nil
}

// Keys implements Store.
func (s *FileStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: list history: %w", err)
	}
	var out []string
	for _, de := range names {
		n := de.Name()
		if !strings.HasSuffix(n, ".json") {
			continue
		}
		// Skip stray or legacy files whose names the key validator (and
		// therefore Get) would reject; one such file must not poison the
		// whole history listing.
		if key := strings.TrimSuffix(n, ".json"); ValidKey(key) {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out, nil
}

// capEntries enforces maxEntriesPerKey, keeping the newest.
func capEntries(entries []Entry) []Entry {
	sort.SliceStable(entries, func(a, b int) bool {
		return entries[a].CreatedUnix < entries[b].CreatedUnix
	})
	if n := len(entries); n > maxEntriesPerKey {
		entries = append([]Entry(nil), entries[n-maxEntriesPerKey:]...)
	}
	return entries
}
