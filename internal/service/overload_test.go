package service

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// An interactive submission into a full queue displaces the youngest queued
// batch job instead of being refused; the displaced job terminates as shed.
func TestPrioritySheddingUnderOverload(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 2})
	defer s.Close()
	s.Hold() // park the workers so admission resolves against a full queue

	batch1, err := s.Submit(quickSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := s.Submit(quickSpec(110, 2))
	if err != nil {
		t.Fatal(err)
	}
	// A third batch job is refused outright: batch never displaces batch.
	if _, err := s.Submit(quickSpec(120, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch into a full queue: err = %v, want ErrQueueFull", err)
	}

	inter := quickSpec(130, 4)
	inter.Priority = PriorityInteractive
	interID, err := s.Submit(inter)
	if err != nil {
		t.Fatalf("interactive into a full queue refused: %v", err)
	}

	// The youngest queued batch job was shed, the oldest kept.
	st, err := s.Status(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateShed {
		t.Fatalf("displaced job state = %s, want %s", st.State, StateShed)
	}
	if _, err := s.Result(batch2); err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("shed job Result err = %v; want a shed explanation", err)
	}
	if st, _ := s.Status(batch1); st.State != StateQueued {
		t.Fatalf("older batch job state = %s, want still queued", st.State)
	}

	s.Release()
	for _, id := range []string{batch1, interID} {
		if _, err := s.Result(id); err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
	}
	if stats := s.Stats(); stats.Shed != 1 || stats.Succeeded != 2 {
		t.Fatalf("stats = %+v; want 1 shed, 2 succeeded", stats)
	}
}

// A second interactive submission must shed the youngest remaining batch
// job, never another interactive one.
func TestInteractiveNeverShedsInteractive(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 2})
	defer s.Close()
	s.Hold()
	defer s.Release()

	if _, err := s.Submit(quickSpec(100, 1)); err != nil {
		t.Fatal(err)
	}
	inter1 := quickSpec(110, 2)
	inter1.Priority = PriorityInteractive
	inter1ID, err := s.Submit(inter1)
	if err != nil {
		t.Fatal(err)
	}
	// Queue: [batch, interactive]. The next interactive must displace the
	// batch job even though the interactive one is younger.
	inter2 := quickSpec(120, 3)
	inter2.Priority = PriorityInteractive
	if _, err := s.Submit(inter2); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(inter1ID); st.State != StateQueued {
		t.Fatalf("interactive job state = %s; interactive must never be shed", st.State)
	}
	if stats := s.Stats(); stats.Shed != 1 {
		t.Fatalf("stats = %+v; want the batch job shed", stats)
	}
	// With only interactive work queued, a further interactive submission is
	// refused rather than inverting priorities.
	inter3 := quickSpec(130, 4)
	inter3.Priority = PriorityInteractive
	if _, err := s.Submit(inter3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive into an all-interactive queue: err = %v, want ErrQueueFull", err)
	}
}

// MaxInFlight bounds a tenant's queued-plus-running jobs; slots free on any
// terminal transition, including cancellation.
func TestTenantMaxInFlight(t *testing.T) {
	s := New(Config{Workers: 1, Tenants: map[string]TenantBudget{
		"acme": {MaxInFlight: 1},
	}})
	defer s.Close()
	s.Hold()
	defer s.Release()

	spec := quickSpec(100, 1)
	spec.Tenant = "acme"
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var be *BudgetError
	if _, err := s.Submit(spec); !errors.As(err, &be) || be.Reason != ReasonMaxInFlight {
		t.Fatalf("over-budget submit err = %v, want BudgetError reason %s", err, ReasonMaxInFlight)
	}
	// An unlisted tenant is unbudgeted (no "*" default configured).
	other := quickSpec(100, 2)
	other.Tenant = "globex"
	if _, err := s.Submit(other); err != nil {
		t.Fatalf("unbudgeted tenant refused: %v", err)
	}
	// Cancelling the queued job frees the slot immediately.
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after slot release refused: %v", err)
	}
}

// The submit-rate token bucket refills on the service clock; the test
// injects one to make the refill deterministic.
func TestTenantSubmitRateLimit(t *testing.T) {
	s := New(Config{Workers: 1, Tenants: map[string]TenantBudget{
		// "*" budgets every tenant without its own entry.
		"*": {SubmitRate: 1, SubmitBurst: 1},
	}})
	defer s.Close()
	s.Hold()
	defer s.Release()
	now := time.Unix(1_000_000, 0)
	s.now = func() time.Time { return now }

	spec := quickSpec(100, 1)
	spec.Tenant = "anyone"
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("first submit refused: %v", err)
	}
	var be *BudgetError
	if _, err := s.Submit(spec); !errors.As(err, &be) || be.Reason != ReasonRateLimited {
		t.Fatalf("rate-limited submit err = %v, want BudgetError reason %s", err, ReasonRateLimited)
	}
	if be.RetryAfter <= 0 || be.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want within (0, 1s]", be.RetryAfter)
	}
	// Tenants refill independently: a different tenant has its own bucket.
	other := quickSpec(100, 2)
	other.Tenant = "someone-else"
	if _, err := s.Submit(other); err != nil {
		t.Fatalf("independent tenant refused: %v", err)
	}
	// After the advertised wait the bucket has a token again.
	now = now.Add(be.RetryAfter + time.Millisecond)
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after refill refused: %v", err)
	}
}

// A tenant whose completed jobs consumed the cluster-second budget is
// refused until the operator raises it.
func TestTenantClusterBudgetExhaustion(t *testing.T) {
	s := New(Config{Workers: 1, Tenants: map[string]TenantBudget{
		"acme": {MaxClusterSec: 1}, // any real session costs far more
	}})
	defer s.Close()

	spec := quickSpec(100, 1)
	spec.Tenant = "acme"
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(id); err != nil {
		t.Fatal(err)
	}
	var be *BudgetError
	if _, err := s.Submit(spec); !errors.As(err, &be) || be.Reason != ReasonClusterBudget {
		t.Fatalf("post-exhaustion submit err = %v, want BudgetError reason %s", err, ReasonClusterBudget)
	}
}

// A job-level cluster-second budget degrades the session mid-flight: the
// result still carries a tuned configuration, flagged with the cause.
func TestJobClusterBudgetDegrades(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := quickSpec(100, 1)
	spec.MaxClusterSec = 1
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Result(id)
	if err != nil {
		t.Fatalf("budget-cut job failed: %v", err)
	}
	if !strings.Contains(res.Degraded, "budget") {
		t.Fatalf("Degraded = %q; want the budget cause", res.Degraded)
	}
	if res.TunedSec <= 0 || len(res.BestParams) == 0 {
		t.Fatalf("degenerate degraded result %+v", res)
	}
}

// A wall-clock deadline cuts a session short the same way; the paper-scale
// budgets make the session long enough that a sub-second deadline reliably
// expires mid-flight.
func TestJobDeadlineDegrades(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := JobSpec{
		Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100, Seed: 1,
		DeadlineSec: 0.2,
	}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Result(id)
	if err != nil {
		t.Fatalf("deadline-cut job failed: %v", err)
	}
	if !strings.Contains(res.Degraded, "deadline") {
		t.Fatalf("Degraded = %q; want the deadline cause", res.Degraded)
	}
}

// Submissions, cancellations and Close racing against a draining pool: no
// panic (the classic send-on-closed-queue), the pool bound holds, and every
// accepted job reaches a terminal state.
func TestSubmitCancelCloseRace(t *testing.T) {
	const workers = 2
	s := New(Config{Workers: workers, QueueCap: 4, CheckpointEvery: -1})
	var (
		mu  sync.Mutex
		ids []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				spec := quickSpec(100+float64(g), int64(g*1000+i+1))
				if rng.Intn(2) == 0 {
					spec.Priority = PriorityInteractive
				}
				id, err := s.Submit(spec)
				if err != nil {
					continue // queue full or closed: expected under pressure
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				if rng.Intn(3) == 0 {
					_ = s.Cancel(id)
				}
			}
		}(g)
	}
	// Watch pool occupancy while the storm runs.
	maxRunning := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := s.Stats(); st.Running > maxRunning {
				maxRunning = st.Running
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	s.Close() // drain while submitters are still firing
	close(stop)
	wg.Wait()

	if maxRunning > workers {
		t.Fatalf("observed %d concurrent sessions; pool bound is %d", maxRunning, workers)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("accepted job %s unknown after Close", id)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s left in state %s after Close", id, st.State)
		}
	}
	stats := s.Stats()
	if got := stats.Finished(); got != len(ids) {
		t.Fatalf("finished %d of %d accepted jobs", got, len(ids))
	}
}
