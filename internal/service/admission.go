package service

import (
	"fmt"
	"time"
)

// DefaultTenant is the Config.Tenants key whose budget applies to every
// tenant without an explicit entry (including the anonymous empty tenant).
// Absent, unlisted tenants are unbudgeted.
const DefaultTenant = "*"

// TenantBudget caps one tenant's use of the service. Zero values leave the
// corresponding dimension unlimited.
type TenantBudget struct {
	// MaxInFlight bounds the tenant's queued-plus-running jobs.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// SubmitRate is a token-bucket refill rate in submissions per second;
	// SubmitBurst is the bucket depth (default: max(1, ceil(SubmitRate))).
	// A submission needs one token; an empty bucket rejects with a
	// Retry-After hint of the refill time.
	SubmitRate  float64 `json:"submit_rate,omitempty"`
	SubmitBurst int     `json:"submit_burst,omitempty"`
	// MaxClusterSec caps the cumulative simulated cluster seconds the
	// tenant's finished jobs have consumed. Once crossed, further submits
	// are rejected until the operator raises the budget — cluster time is
	// the resource LOCAT exists to conserve, so it is the one budget that
	// does not refill on its own.
	MaxClusterSec float64 `json:"max_cluster_sec,omitempty"`
}

// burst returns the effective token-bucket depth.
func (b TenantBudget) burst() float64 {
	if b.SubmitBurst > 0 {
		return float64(b.SubmitBurst)
	}
	if b.SubmitRate <= 0 {
		return 0
	}
	n := float64(int(b.SubmitRate))
	if n < b.SubmitRate {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Budget-rejection reasons; they double as the locat_admission_total
// outcome labels.
const (
	ReasonRateLimited   = "rate_limited"
	ReasonMaxInFlight   = "max_in_flight"
	ReasonClusterBudget = "cluster_budget"
)

// BudgetError rejects a submission that would exceed its tenant's budget.
// The HTTP layer maps it to 429 with code "over_budget" and a Retry-After
// header.
type BudgetError struct {
	// Tenant is the budgeted tenant ("" renders as "default").
	Tenant string
	// Reason is one of ReasonRateLimited, ReasonMaxInFlight,
	// ReasonClusterBudget.
	Reason string
	// RetryAfter estimates when retrying could succeed (0: waiting alone
	// will not help — a job must finish or the budget must be raised).
	RetryAfter time.Duration
	// Detail is the human-readable budget arithmetic.
	Detail string
}

func (e *BudgetError) Error() string {
	t := e.Tenant
	if t == "" {
		t = "default"
	}
	return fmt.Sprintf("service: tenant %s over budget (%s): %s", t, e.Reason, e.Detail)
}

// tenantState is the live accounting of one tenant under its budget. All
// fields are guarded by the service mutex.
type tenantState struct {
	budget TenantBudget
	// inFlight counts the tenant's queued + running jobs.
	inFlight int
	// tokens / last implement the submit-rate bucket.
	tokens float64
	last   time.Time
	// clusterSec is the cumulative simulated cluster time the tenant's
	// finished jobs consumed.
	clusterSec float64
}

// tenantLocked returns (lazily creating) the tenant's accounting state.
// Callers hold the service mutex.
func (s *Service) tenantLocked(name string) *tenantState {
	if ts, ok := s.tenants[name]; ok {
		return ts
	}
	b, ok := s.cfg.Tenants[name]
	if !ok {
		b = s.cfg.Tenants[DefaultTenant]
	}
	ts := &tenantState{budget: b, tokens: b.burst(), last: s.now()}
	s.tenants[name] = ts
	return ts
}

// admitLocked checks every budget dimension without consuming anything;
// chargeLocked settles the cost once the submission is actually admitted.
// Split so a queue-full refusal does not burn a rate token.
func (ts *tenantState) admitLocked(tenant string, now time.Time) error {
	b := ts.budget
	if b.MaxClusterSec > 0 && ts.clusterSec >= b.MaxClusterSec {
		return &BudgetError{
			Tenant: tenant, Reason: ReasonClusterBudget,
			Detail: fmt.Sprintf("%.0f of %.0f simulated cluster seconds consumed",
				ts.clusterSec, b.MaxClusterSec),
		}
	}
	if b.MaxInFlight > 0 && ts.inFlight >= b.MaxInFlight {
		return &BudgetError{
			Tenant: tenant, Reason: ReasonMaxInFlight,
			Detail: fmt.Sprintf("%d jobs in flight (limit %d)", ts.inFlight, b.MaxInFlight),
		}
	}
	if b.SubmitRate > 0 {
		// Refill before judging, so a long-idle tenant starts from a full
		// bucket rather than a stale one.
		if elapsed := now.Sub(ts.last).Seconds(); elapsed > 0 {
			ts.tokens += elapsed * b.SubmitRate
			if depth := b.burst(); ts.tokens > depth {
				ts.tokens = depth
			}
		}
		ts.last = now
		if ts.tokens < 1 {
			wait := time.Duration((1 - ts.tokens) / b.SubmitRate * float64(time.Second))
			return &BudgetError{
				Tenant: tenant, Reason: ReasonRateLimited, RetryAfter: wait,
				Detail: fmt.Sprintf("submit rate %.3g/s exceeded", b.SubmitRate),
			}
		}
	}
	return nil
}

// chargeLocked consumes one rate token and one in-flight slot for an
// admitted job.
func (ts *tenantState) chargeLocked() {
	if ts.budget.SubmitRate > 0 {
		ts.tokens--
	}
	ts.inFlight++
}

// releaseTenantLocked returns a job's in-flight slot to its tenant exactly
// once, no matter how the job leaves the system (finished, cancelled while
// queued, shed, or suspended by drain). Callers hold the service mutex.
func (s *Service) releaseTenantLocked(j *job) {
	if j.released {
		return
	}
	j.released = true
	s.tenantLocked(j.spec.Tenant).inFlight--
}
