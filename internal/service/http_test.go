package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, client *http.Client, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d; body %s", method, url, resp.StatusCode, wantCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
	}
}

func waitDone(t *testing.T, client *http.Client, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		doJSON(t, client, "GET", base+"/v1/jobs/"+id, nil, http.StatusOK, &st)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPEndToEndWarmStart is the acceptance scenario: two jobs for
// neighboring data sizes submitted over HTTP; the second is warm-started
// from the history store and reports lower tuning overhead.
func TestHTTPEndToEndWarmStart(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// Health before anything runs.
	var health map[string]any
	doJSON(t, client, "GET", srv.URL+"/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	// Empty history at first.
	var sums []HistorySummary
	doJSON(t, client, "GET", srv.URL+"/v1/history", nil, http.StatusOK, &sums)
	if len(sums) != 0 {
		t.Fatalf("fresh service has history: %+v", sums)
	}

	// Job 1: cold, 100 GB.
	var sub struct {
		ID string `json:"id"`
	}
	doJSON(t, client, "POST", srv.URL+"/v1/jobs", quickSpec(100, 1), http.StatusAccepted, &sub)
	if sub.ID == "" {
		t.Fatal("no job id")
	}
	// Result is not ready while queued/running.
	var resultCode int
	{
		resp, err := client.Get(srv.URL + "/v1/jobs/" + sub.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		resultCode = resp.StatusCode
	}
	if resultCode != http.StatusConflict && resultCode != http.StatusOK {
		t.Fatalf("premature result fetch = %d", resultCode)
	}

	st1 := waitDone(t, client, srv.URL, sub.ID)
	if st1.State != StateSucceeded {
		t.Fatalf("job 1 ended %s: %s", st1.State, st1.Error)
	}
	var res1 JobResult
	doJSON(t, client, "GET", srv.URL+"/v1/jobs/"+sub.ID+"/result", nil, http.StatusOK, &res1)
	if res1.WarmStarted {
		t.Fatal("first job cannot be warm")
	}

	// The tuned spark-defaults.conf is served as text.
	resp, err := client.Get(srv.URL + "/v1/jobs/" + sub.ID + "/conf")
	if err != nil {
		t.Fatal(err)
	}
	confText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(confText), "spark.executor.cores") {
		t.Fatalf("conf endpoint: %d %q", resp.StatusCode, confText)
	}

	// Job 2: neighboring size, warm-started from the history store.
	var sub2 struct {
		ID string `json:"id"`
	}
	doJSON(t, client, "POST", srv.URL+"/v1/jobs", quickSpec(140, 2), http.StatusAccepted, &sub2)
	st2 := waitDone(t, client, srv.URL, sub2.ID)
	if st2.State != StateSucceeded {
		t.Fatalf("job 2 ended %s: %s", st2.State, st2.Error)
	}
	var res2 JobResult
	doJSON(t, client, "GET", srv.URL+"/v1/jobs/"+sub2.ID+"/result", nil, http.StatusOK, &res2)
	if !res2.WarmStarted || res2.PriorObsUsed == 0 {
		t.Fatalf("job 2 not warm-started: %+v", res2)
	}
	if res2.OverheadSec >= res1.OverheadSec {
		t.Fatalf("warm job overhead %.0f s not below cold job's %.0f s",
			res2.OverheadSec, res1.OverheadSec)
	}

	// History now lists both sessions under the shared fingerprint key.
	doJSON(t, client, "GET", srv.URL+"/v1/history", nil, http.StatusOK, &sums)
	if len(sums) != 2 {
		t.Fatalf("history has %d entries, want 2: %+v", len(sums), sums)
	}
	var entries []Entry
	doJSON(t, client, "GET", srv.URL+"/v1/history/"+sums[0].Key, nil, http.StatusOK, &entries)
	if len(entries) != 2 || len(entries[0].Obs) == 0 {
		t.Fatalf("history entries malformed: %d entries", len(entries))
	}

	// Job listing shows both, in order.
	var jobs []JobStatus
	doJSON(t, client, "GET", srv.URL+"/v1/jobs", nil, http.StatusOK, &jobs)
	if len(jobs) != 2 || jobs[0].ID != sub.ID || jobs[1].ID != sub2.ID {
		t.Fatalf("job listing wrong: %+v", jobs)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// Malformed body: syntactically broken JSON is 400 with the envelope.
	resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	var envBad apiError
	if err := json.NewDecoder(resp.Body).Decode(&envBad); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || envBad.Error.Code != "bad_request" {
		t.Fatalf("malformed submit = %d, envelope %+v", resp.StatusCode, envBad)
	}

	// Invalid spec: semantically wrong (unknown cluster) is 422 with the
	// structured envelope and a stable code.
	var envelope apiError
	doJSON(t, client, "POST", srv.URL+"/v1/jobs",
		JobSpec{Cluster: "sparc"}, http.StatusUnprocessableEntity, &envelope)
	if envelope.Error.Code != "invalid_spec" || envelope.Error.Message == "" {
		t.Fatalf("error envelope = %+v", envelope)
	}

	// A non-JSON content type is refused with 415 before decoding.
	resp, err = client.Post(srv.URL+"/v1/jobs", "text/plain", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var env415 apiError
	if err := json.NewDecoder(resp.Body).Decode(&env415); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType || env415.Error.Code != "unsupported_media_type" {
		t.Fatalf("text/plain submit = %d, envelope %+v", resp.StatusCode, env415)
	}

	// Unknown job everywhere.
	for _, ep := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/conf"} {
		r, err := client.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s = %d, want 404", ep, r.StatusCode)
		}
	}
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/jobs/job-999999", nil)
	r, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", r.StatusCode)
	}

	// Unknown history key.
	r, err = client.Get(srv.URL + "/v1/history/" + fmt.Sprintf("nope_%d", 1))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown history = %d, want 404", r.StatusCode)
	}
}

func TestHTTPRequestBodyCapped(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// A body past the cap is refused with 413 and submits nothing.
	big := append([]byte(`{"benchmark":"`), bytes.Repeat([]byte("A"), maxRequestBody+1024)...)
	big = append(big, []byte(`"}`)...)
	resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want 413", resp.StatusCode)
	}
	var jobs []JobStatus
	doJSON(t, client, "GET", srv.URL+"/v1/jobs", nil, http.StatusOK, &jobs)
	if len(jobs) != 0 {
		t.Fatalf("oversized submit enqueued %d jobs", len(jobs))
	}

	// Traversal in the history key path is a 400, never a file read.
	r, err := client.Get(srv.URL + "/v1/history/" + url.PathEscape("../secret"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal history key = %d, want 400", r.StatusCode)
	}
}

// TestHTTPJobListPagination covers limit/offset windowing, the X-Total-Count
// header, the state filter, and the 422s for malformed parameters.
func TestHTTPJobListPagination(t *testing.T) {
	// Workers: 0 would mean "default", so submit against a closed-for-work
	// service isn't possible; instead use one worker and cancel nothing —
	// queued order is the deterministic listing order either way.
	svc := New(Config{Workers: 1, QueueCap: 64})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	var ids []string
	for i := 0; i < 5; i++ {
		var sub struct {
			ID string `json:"id"`
		}
		doJSON(t, client, "POST", srv.URL+"/v1/jobs", quickSpec(100, int64(i+1)), http.StatusAccepted, &sub)
		ids = append(ids, sub.ID)
	}
	for _, id := range ids {
		waitDone(t, client, srv.URL, id)
	}

	// Window in the middle; the header carries the pre-window total.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs?limit=2&offset=1", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var page []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Total-Count"); got != "5" {
		t.Fatalf("X-Total-Count = %q, want 5", got)
	}
	if len(page) != 2 || page[0].ID != ids[1] || page[1].ID != ids[2] {
		t.Fatalf("page = %+v, want jobs %s,%s", page, ids[1], ids[2])
	}

	// Offset past the end: empty page, total still reported.
	doJSON(t, client, "GET", srv.URL+"/v1/jobs?offset=99", nil, http.StatusOK, &page)
	if len(page) != 0 {
		t.Fatalf("past-end page = %+v", page)
	}

	// State filter: all five succeeded; filtering on failed is empty.
	doJSON(t, client, "GET", srv.URL+"/v1/jobs?state=succeeded", nil, http.StatusOK, &page)
	if len(page) != 5 {
		t.Fatalf("succeeded filter = %d jobs, want 5", len(page))
	}
	doJSON(t, client, "GET", srv.URL+"/v1/jobs?state=failed", nil, http.StatusOK, &page)
	if len(page) != 0 {
		t.Fatalf("failed filter = %d jobs, want 0", len(page))
	}

	// Malformed parameters are 422 with the envelope.
	for _, q := range []string{"limit=0", "limit=nope", "limit=999999", "offset=-1", "state=bogus"} {
		var env apiError
		doJSON(t, client, "GET", srv.URL+"/v1/jobs?"+q, nil, http.StatusUnprocessableEntity, &env)
		if env.Error.Code != "invalid_spec" {
			t.Fatalf("%s: envelope %+v", q, env)
		}
	}

	// History pagination shares the same plumbing.
	req, _ = http.NewRequest("GET", srv.URL+"/v1/history?limit=2", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sums []HistorySummary
	if err := json.NewDecoder(resp.Body).Decode(&sums); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Total-Count") != "5" || len(sums) != 2 {
		t.Fatalf("history page: total %q, %d rows", resp.Header.Get("X-Total-Count"), len(sums))
	}
}
