package service

import (
	"net/http"
	"strconv"
	"time"

	"locat/internal/obs"
)

// statusWriter captures the status code a handler writes (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the API mux with request telemetry: per-route latency
// histograms, request counters by route and status code, and an access-log
// line per request. The route label is the ServeMux pattern that matched
// (bounded cardinality — raw paths carry job IDs), with "unmatched" for
// 404s. Access logging shares the service logger, so -quiet (nil Logf)
// suppresses it.
func (s *Service) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		// ServeMux sets r.Pattern while matching; empty means no route.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.cfg.Metrics.Histogram("locat_http_request_seconds",
			"HTTP request latency by matched route.",
			obs.DurationBuckets, "route", route).Observe(elapsed.Seconds())
		s.cfg.Metrics.Counter("locat_http_requests_total",
			"HTTP requests by matched route and status code.",
			"route", route, "code", strconv.Itoa(status)).Inc()
		s.logf("http %s %s -> %d (%.1f ms)",
			r.Method, r.URL.Path, status, float64(elapsed.Microseconds())/1000)
	})
}
