package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxRequestBody caps POST bodies (a JobSpec is a few hundred bytes; 1 MiB
// leaves generous headroom). Without the cap a single oversized request
// would be buffered wholesale by the JSON decoder.
const maxRequestBody = 1 << 20

// HistorySummary is the compact per-entry view of the history endpoints.
type HistorySummary struct {
	Key         string  `json:"key"`
	JobID       string  `json:"job_id"`
	CreatedUnix int64   `json:"created_unix"`
	TargetGB    float64 `json:"target_gb"`
	TunedSec    float64 `json:"tuned_sec"`
	OverheadSec float64 `json:"overhead_sec"`
	Obs         int     `json:"obs"`
}

// History returns one summary per stored entry, grouped by key order.
func (s *Service) History() ([]HistorySummary, error) {
	keys, err := s.store.Keys()
	if err != nil {
		return nil, err
	}
	var out []HistorySummary
	for _, k := range keys {
		entries, err := s.store.Get(k)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			out = append(out, HistorySummary{
				Key:         k,
				JobID:       e.JobID,
				CreatedUnix: e.CreatedUnix,
				TargetGB:    e.TargetGB,
				TunedSec:    e.TunedSec,
				OverheadSec: e.OverheadSec,
				Obs:         len(e.Obs),
			})
		}
	}
	return out, nil
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs           submit a JobSpec, returns {"id": ...}
//	                          (429 when the queue is full, 503 when closing)
//	GET    /v1/jobs           list job statuses
//	GET    /v1/jobs/{id}      one job's status (result embedded when done)
//	GET    /v1/jobs/{id}/result  the finished job's full result (409 while running)
//	GET    /v1/jobs/{id}/conf    the tuned spark-defaults.conf as text/plain
//	DELETE /v1/jobs/{id}      request cancellation
//	GET    /v1/jobs/{id}/trace   the job's phase-span timeline
//	GET    /v1/history        history-store summaries
//	GET    /v1/history/{key}  full entries under one fingerprint key
//	GET    /healthz           liveness + job census by state
//	GET    /metrics           Prometheus text exposition
//
// Every request is timed into per-route latency histograms and counted by
// route and status code; when the service has a logger, an access log line
// is emitted per request (suppressed along with everything else when Logf
// is nil).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("job spec exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			// Admission control: a full queue is back-pressure (retry later),
			// a closing service is unavailability — both distinct from a
			// malformed spec.
			switch {
			case errors.Is(err, ErrQueueFull):
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrClosed):
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": string(StateQueued)})
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if !st.State.Terminal() {
			httpError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s; result not ready", st.ID, st.State))
			return
		}
		if st.State != StateSucceeded {
			httpError(w, http.StatusGone,
				fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
			return
		}
		writeJSON(w, http.StatusOK, st.Result)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/conf", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if st.State != StateSucceeded {
			httpError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s; no tuned configuration", st.ID, st.State))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, st.Result.SparkConf)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"state": "cancelling"})
	})

	mux.HandleFunc("GET /v1/history", func(w http.ResponseWriter, r *http.Request) {
		sums, err := s.History()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if sums == nil {
			sums = []HistorySummary{}
		}
		writeJSON(w, http.StatusOK, sums)
	})

	mux.HandleFunc("GET /v1/history/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !ValidKey(key) {
			httpError(w, http.StatusBadRequest, errors.New("invalid history key"))
			return
		}
		entries, err := s.store.Get(key)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if len(entries) == 0 {
			httpError(w, http.StatusNotFound, fmt.Errorf("no history under %q", key))
			return
		}
		writeJSON(w, http.StatusOK, entries)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans, err := s.Trace(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		st, err := s.Status(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id": id, "state": st.State, "spans": spans,
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "queued": st.Queued, "running": st.Running,
			"finished": st.Finished(), "succeeded": st.Succeeded,
			"failed": st.Failed, "cancelled": st.Cancelled,
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.cfg.Metrics.WritePrometheus(w)
	})

	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
