package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// maxRequestBody caps POST bodies (a JobSpec is a few hundred bytes; 1 MiB
// leaves generous headroom). Without the cap a single oversized request
// would be buffered wholesale by the JSON decoder.
const maxRequestBody = 1 << 20

// defaultPageLimit and maxPageLimit bound list responses: a long-lived
// service accumulates unbounded jobs/history, so GET /v1/jobs and
// GET /v1/history window their (deterministically ordered) results with
// limit/offset query parameters.
const (
	defaultPageLimit = 500
	maxPageLimit     = 5000
)

// HistorySummary is the compact per-entry view of the history endpoints.
type HistorySummary struct {
	Key         string  `json:"key"`
	JobID       string  `json:"job_id"`
	CreatedUnix int64   `json:"created_unix"`
	TargetGB    float64 `json:"target_gb"`
	TunedSec    float64 `json:"tuned_sec"`
	OverheadSec float64 `json:"overhead_sec"`
	Obs         int     `json:"obs"`
}

// History returns one summary per stored entry, grouped by key order.
func (s *Service) History() ([]HistorySummary, error) {
	keys, err := s.store.Keys()
	if err != nil {
		return nil, err
	}
	var out []HistorySummary
	for _, k := range keys {
		entries, err := s.store.Get(k)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			out = append(out, HistorySummary{
				Key:         k,
				JobID:       e.JobID,
				CreatedUnix: e.CreatedUnix,
				TargetGB:    e.TargetGB,
				TunedSec:    e.TunedSec,
				OverheadSec: e.OverheadSec,
				Obs:         len(e.Obs),
			})
		}
	}
	return out, nil
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs           submit a JobSpec, returns {"id": ...}
//	                          (422 invalid spec, 429 queue full, 503 closing)
//	POST   /v1/recommend      zero-execution recommendation from the history
//	                          store (synchronous; k-NN over past sessions)
//	GET    /v1/jobs           list job statuses (limit/offset pagination,
//	                          optional state= filter, X-Total-Count header)
//	GET    /v1/jobs/{id}      one job's status (result embedded when done)
//	GET    /v1/jobs/{id}/result  the finished job's full result (409 while running)
//	GET    /v1/jobs/{id}/conf    the tuned spark-defaults.conf as text/plain
//	DELETE /v1/jobs/{id}      request cancellation
//	GET    /v1/jobs/{id}/trace   the job's phase-span timeline
//	GET    /v1/history        history-store summaries (limit/offset pagination)
//	GET    /v1/history/{key}  full entries under one fingerprint key
//	GET    /healthz           liveness + job census by state
//	GET    /readyz            readiness: 503 during startup resume and drain
//	GET    /metrics           Prometheus text exposition
//
// Errors are a uniform envelope {"error":{"code":...,"message":...}} with a
// stable machine-readable code; POST bodies must be application/json (415
// otherwise). 429 responses (full queue, over-budget tenant) carry a
// Retry-After header. Every request is timed into per-route latency
// histograms and counted by route and status code; when the service has a
// logger, an access log line is emitted per request (suppressed along with
// everything else when Logf is nil).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if !decodeJSON(w, r, &spec) {
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			submitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": string(StateQueued)})
	})

	mux.HandleFunc("POST /v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		var req RecommendRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		rec, err := s.Recommend(req)
		if err != nil {
			submitError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		limit, offset, err := listWindow(r)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		jobs := s.Jobs() // submission order: deterministic
		if v := r.URL.Query().Get("state"); v != "" {
			switch st := State(v); st {
			case StateQueued, StateRunning, StateSucceeded, StateFailed,
				StateCancelled, StateShed, StateSuspended:
				kept := jobs[:0]
				for _, j := range jobs {
					if j.State == st {
						kept = append(kept, j)
					}
				}
				jobs = kept
			default:
				httpError(w, http.StatusUnprocessableEntity,
					fmt.Errorf("unknown state %q", v))
				return
			}
		}
		writeJSON(w, http.StatusOK, window(w, jobs, limit, offset))
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if !st.State.Terminal() {
			httpError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s; result not ready", st.ID, st.State))
			return
		}
		if st.State != StateSucceeded {
			httpError(w, http.StatusGone,
				fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
			return
		}
		writeJSON(w, http.StatusOK, resultAPI(st.Result))
	})

	mux.HandleFunc("GET /v1/jobs/{id}/conf", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if st.State != StateSucceeded {
			httpError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s; no tuned configuration", st.ID, st.State))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, st.Result.SparkConf)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"state": "cancelling"})
	})

	mux.HandleFunc("GET /v1/history", func(w http.ResponseWriter, r *http.Request) {
		limit, offset, err := listWindow(r)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		sums, err := s.History() // sorted by key, oldest-first within a key
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, window(w, sums, limit, offset))
	})

	mux.HandleFunc("GET /v1/history/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !ValidKey(key) {
			httpError(w, http.StatusBadRequest, errors.New("invalid history key"))
			return
		}
		entries, err := s.store.Get(key)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if len(entries) == 0 {
			httpError(w, http.StatusNotFound, fmt.Errorf("no history under %q", key))
			return
		}
		writeJSON(w, http.StatusOK, entries)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans, err := s.Trace(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		st, err := s.Status(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id": id, "state": st.State, "spans": spans,
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "queued": st.Queued, "running": st.Running,
			"finished": st.Finished(), "succeeded": st.Succeeded,
			"failed": st.Failed, "cancelled": st.Cancelled,
			"shed": st.Shed, "suspended": st.Suspended,
		})
	})

	// Readiness is distinct from liveness: a draining or still-resuming
	// service is alive (healthz 200) but must not receive new traffic
	// (readyz 503) — the signal load balancers act on during a rollout.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.cfg.Metrics.WritePrometheus(w)
	})

	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// apiError is the uniform error envelope of every /v1 endpoint:
// {"error":{"code":"...","message":"..."}}. The code is a stable
// machine-readable slug derived from the status, so clients branch on it
// instead of parsing messages.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode maps a status to its envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "gone"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnsupportedMediaType:
		return "unsupported_media_type"
	case http.StatusUnprocessableEntity:
		return "invalid_spec"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: apiErrorBody{Code: errorCode(code), Message: err.Error()}})
}

// httpErrorCoded is httpError with an explicit envelope code, for statuses
// whose default slug is too coarse (the two flavors of 429).
func httpErrorCoded(w http.ResponseWriter, code int, slug string, err error) {
	writeJSON(w, code, apiError{Error: apiErrorBody{Code: slug, Message: err.Error()}})
}

// submitError maps a Submit/Recommend refusal onto the wire. Admission
// refusals are back-pressure, not client mistakes: both 429 flavors carry a
// Retry-After header (the budget's own refill estimate when it has one, a
// nominal second otherwise), a closing service is 503, and everything else
// is a semantically invalid spec (422).
func submitError(w http.ResponseWriter, err error) {
	var be *BudgetError
	switch {
	case errors.As(err, &be):
		retry := int64(1)
		if s := int64(be.RetryAfter.Seconds() + 0.999); s > retry {
			retry = s
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
		httpErrorCoded(w, http.StatusTooManyRequests, "over_budget", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusUnprocessableEntity, err)
	}
}

// decodeJSON enforces the POST contract: a JSON content type (415
// otherwise; an absent Content-Type is tolerated), a bounded body (413 past
// maxRequestBody) and well-formed JSON (400). It writes the error response
// itself and reports whether the handler may proceed.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, _ := strings.Cut(ct, ";")
		if mt = strings.TrimSpace(strings.ToLower(mt)); mt != "application/json" {
			httpError(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("content type %q not supported; send application/json", ct))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// listWindow parses the limit/offset pagination parameters (422 on
// malformed or out-of-range values, written by the caller).
func listWindow(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 || limit > maxPageLimit {
			return 0, 0, fmt.Errorf("limit must be an integer in [1, %d]", maxPageLimit)
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, errors.New("offset must be a non-negative integer")
		}
	}
	return limit, offset, nil
}

// window applies the pagination window to a deterministically ordered list
// and stamps the pre-window total into the X-Total-Count header.
func window[T any](w http.ResponseWriter, list []T, limit, offset int) []T {
	w.Header().Set("X-Total-Count", strconv.Itoa(len(list)))
	if offset >= len(list) {
		return []T{}
	}
	list = list[offset:]
	if len(list) > limit {
		list = list[:limit]
	}
	return list
}

// resultSchema versions the apiResult wire shape.
const resultSchema = 1

// apiResult is the versioned wire shape of GET /v1/jobs/{id}/result — the
// one place the internal JobResult is mapped to JSON, so the response
// contract survives internal refactors. Field tags mirror JobResult's
// historical names; Schema announces the shape's version to clients.
type apiResult struct {
	Schema           int                `json:"schema"`
	BestConfig       []float64          `json:"best_config"`
	BestParams       map[string]float64 `json:"best_params"`
	TunedSec         float64            `json:"tuned_sec"`
	DefaultSec       float64            `json:"default_sec"`
	OverheadSec      float64            `json:"overhead_sec"`
	SamplingSec      float64            `json:"sampling_sec"`
	SearchSec        float64            `json:"search_sec"`
	FullRuns         int                `json:"full_runs"`
	RQARuns          int                `json:"rqa_runs"`
	WarmStarted      bool               `json:"warm_started"`
	PriorObsUsed     int                `json:"prior_obs_used"`
	SensitiveQueries []string           `json:"sensitive_queries,omitempty"`
	ImportantParams  []string           `json:"important_params,omitempty"`
	SparkConf        string             `json:"spark_conf"`
	Runs             int64              `json:"runs"`
	ClusterSec       float64            `json:"cluster_sec"`
	ResumedRuns      int64              `json:"resumed_runs,omitempty"`
	Degraded         string             `json:"degraded,omitempty"`
	FellBack         bool               `json:"fell_back,omitempty"`
	SeededFrom       []Neighbor         `json:"seeded_from,omitempty"`
}

// resultAPI renders a JobResult onto the wire shape.
func resultAPI(res *JobResult) apiResult {
	return apiResult{
		Schema:           resultSchema,
		BestConfig:       res.BestConfig,
		BestParams:       res.BestParams,
		TunedSec:         res.TunedSec,
		DefaultSec:       res.DefaultSec,
		OverheadSec:      res.OverheadSec,
		SamplingSec:      res.SamplingSec,
		SearchSec:        res.SearchSec,
		FullRuns:         res.FullRuns,
		RQARuns:          res.RQARuns,
		WarmStarted:      res.WarmStarted,
		PriorObsUsed:     res.PriorObsUsed,
		SensitiveQueries: res.SensitiveQueries,
		ImportantParams:  res.ImportantParams,
		SparkConf:        res.SparkConf,
		Runs:             res.Runs,
		ClusterSec:       res.ClusterSec,
		ResumedRuns:      res.ResumedRuns,
		Degraded:         res.Degraded,
		FellBack:         res.FellBack,
		SeededFrom:       res.SeededFrom,
	}
}
