package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// post429 submits the spec and asserts a 429 with the given envelope code,
// returning the parsed Retry-After header.
func post429(t *testing.T, client *http.Client, url string, spec JobSpec, wantCode string) int {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != wantCode {
		t.Fatalf("submit = %d code %q, want 429 %q", resp.StatusCode, env.Error.Code, wantCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("429 %s without a Retry-After header", wantCode)
	}
	sec, err := strconv.Atoi(ra)
	if err != nil || sec < 1 {
		t.Fatalf("Retry-After = %q; want an integer of at least 1 second", ra)
	}
	return sec
}

// Both 429 flavors — full queue and over-budget tenant — carry a
// Retry-After header a well-behaved client can sleep on.
func TestHTTP429CarriesRetryAfter(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCap: 1, Tenants: map[string]TenantBudget{
		"limited": {SubmitRate: 0.25, SubmitBurst: 1},
	}})
	defer svc.Close()
	svc.Hold() // keep everything queued so the refusals are deterministic
	defer svc.Release()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// The rate-limited tenant's first submission takes its only token (and
	// the queue's only slot).
	spec := quickSpec(100, 1)
	spec.Tenant = "limited"
	body, _ := json.Marshal(spec)
	resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}

	// Over budget: the refill estimate is 1/0.25 = 4 s.
	if sec := post429(t, client, srv.URL, spec, "over_budget"); sec < 2 {
		t.Fatalf("over_budget Retry-After = %d s; want the bucket's refill estimate (~4 s)", sec)
	}
	// Queue full (a different tenant, so the rate budget is not what
	// refuses): the nominal one-second hint.
	if sec := post429(t, client, srv.URL, quickSpec(110, 2), "queue_full"); sec != 1 {
		t.Fatalf("queue_full Retry-After = %d s; want 1", sec)
	}
}

// /readyz flips to 503 the moment a drain begins, while /healthz keeps
// answering 200 — liveness and readiness are different questions.
func TestHTTPReadyzLifecycle(t *testing.T) {
	svc := New(Config{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("/readyz before drain = %d %v, want 200 ready", code, body)
	}
	svc.Close()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("/readyz after drain = %d %v, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after drain = %d, want 200 (still alive)", code)
	}
}
