package service

import (
	"testing"
)

func TestFingerprintStable(t *testing.T) {
	spec := JobSpec{Cluster: "x86", Benchmark: "TPC-H", DataSizeGB: 150, Seed: 3}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	a := NewFingerprint(spec)
	b := NewFingerprint(spec)
	if a != b || a.Key() != b.Key() {
		t.Fatalf("fingerprint not stable: %v vs %v", a, b)
	}
	if a.Key() != "x86_TPC-H_b7_qid" {
		t.Fatalf("unexpected key %q", a.Key())
	}
}

func TestFingerprintSeparatesWorkloads(t *testing.T) {
	base := JobSpec{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 100}
	variants := []JobSpec{
		{Cluster: "x86", Benchmark: "TPC-DS", DataSizeGB: 100},
		{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100},
		{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 1000},
		{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 100, DisableQCSA: true},
		{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 100, DisableIICP: true},
	}
	bk := NewFingerprint(base).Key()
	for _, v := range variants {
		if NewFingerprint(v).Key() == bk {
			t.Fatalf("variant %+v collides with base key %s", v, bk)
		}
	}
}

func TestFingerprintNeighboringSizesShareBucket(t *testing.T) {
	// 100 GB and 140 GB both round to bucket 7 — the warm-start scenario
	// of the acceptance test.
	a := JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100}
	b := JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 140}
	if NewFingerprint(a).Key() != NewFingerprint(b).Key() {
		t.Fatalf("100 GB (%s) and 140 GB (%s) should share a bucket",
			NewFingerprint(a).Key(), NewFingerprint(b).Key())
	}
}

func TestFingerprintNeighbors(t *testing.T) {
	fp := NewFingerprint(JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 200})
	ns := fp.Neighbors()
	if len(ns) != 2 {
		t.Fatalf("want 2 neighbors, got %d", len(ns))
	}
	if ns[0].SizeBucket != fp.SizeBucket-1 || ns[1].SizeBucket != fp.SizeBucket+1 {
		t.Fatalf("bad neighbor buckets: %+v around %d", ns, fp.SizeBucket)
	}
	// The bottom bucket has no lower neighbor.
	bot := Fingerprint{Cluster: "arm", Benchmark: "Scan", SizeBucket: 0, Techniques: "qid"}
	if got := bot.Neighbors(); len(got) != 1 || got[0].SizeBucket != 1 {
		t.Fatalf("bottom-bucket neighbors = %+v", got)
	}
}

func TestSizeBucketOf(t *testing.T) {
	cases := []struct {
		gb   float64
		want int
	}{{0.5, 0}, {1, 0}, {2, 1}, {100, 7}, {140, 7}, {200, 8}, {1024, 10}}
	for _, c := range cases {
		if got := SizeBucketOf(c.gb); got != c.want {
			t.Errorf("SizeBucketOf(%v) = %d, want %d", c.gb, got, c.want)
		}
	}
}
