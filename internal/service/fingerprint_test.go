package service

import (
	"strings"
	"testing"
)

func TestFingerprintStable(t *testing.T) {
	spec := JobSpec{Cluster: "x86", Benchmark: "TPC-H", DataSizeGB: 150, Seed: 3}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	a := NewFingerprint(spec)
	b := NewFingerprint(spec)
	if a != b || a.Key() != b.Key() {
		t.Fatalf("fingerprint not stable: %v vs %v", a, b)
	}
	if a.Key() != "x86_TPC-H_b7_qid" {
		t.Fatalf("unexpected key %q", a.Key())
	}
}

func TestFingerprintSeparatesWorkloads(t *testing.T) {
	base := JobSpec{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 100}
	variants := []JobSpec{
		{Cluster: "x86", Benchmark: "TPC-DS", DataSizeGB: 100},
		{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100},
		{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 1000},
		{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 100, DisableQCSA: true},
		{Cluster: "arm", Benchmark: "TPC-DS", DataSizeGB: 100, DisableIICP: true},
	}
	bk := NewFingerprint(base).Key()
	for _, v := range variants {
		if NewFingerprint(v).Key() == bk {
			t.Fatalf("variant %+v collides with base key %s", v, bk)
		}
	}
}

func TestFingerprintNeighboringSizesShareBucket(t *testing.T) {
	// 100 GB and 140 GB both round to bucket 7 — the warm-start scenario
	// of the acceptance test.
	a := JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 100}
	b := JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 140}
	if NewFingerprint(a).Key() != NewFingerprint(b).Key() {
		t.Fatalf("100 GB (%s) and 140 GB (%s) should share a bucket",
			NewFingerprint(a).Key(), NewFingerprint(b).Key())
	}
}

func TestFingerprintNeighbors(t *testing.T) {
	fp := NewFingerprint(JobSpec{Cluster: "arm", Benchmark: "TPC-H", DataSizeGB: 200})
	ns := fp.Neighbors()
	if len(ns) != 2 {
		t.Fatalf("want 2 neighbors, got %d", len(ns))
	}
	if ns[0].SizeBucket != fp.SizeBucket-1 || ns[1].SizeBucket != fp.SizeBucket+1 {
		t.Fatalf("bad neighbor buckets: %+v around %d", ns, fp.SizeBucket)
	}
	// The bottom bucket has no lower neighbor.
	bot := Fingerprint{Cluster: "arm", Benchmark: "Scan", SizeBucket: 0, Techniques: "qid"}
	if got := bot.Neighbors(); len(got) != 1 || got[0].SizeBucket != 1 {
		t.Fatalf("bottom-bucket neighbors = %+v", got)
	}
}

func TestSizeBucketOf(t *testing.T) {
	cases := []struct {
		gb   float64
		want int
	}{{0.5, 0}, {1, 0}, {2, 1}, {100, 7}, {140, 7}, {200, 8}, {1024, 10}}
	for _, c := range cases {
		if got := SizeBucketOf(c.gb); got != c.want {
			t.Errorf("SizeBucketOf(%v) = %d, want %d", c.gb, got, c.want)
		}
	}
}

func TestKeySanitizesHostileComponents(t *testing.T) {
	// Fingerprint components come straight from an HTTP JobSpec; Key() must
	// be filesystem-safe no matter what they contain.
	f := Fingerprint{
		Cluster:    "../../etc",
		Benchmark:  "TPC-DS/../..\\evil name",
		SizeBucket: 5,
		Techniques: "qid",
	}
	key := f.Key()
	if !ValidKey(key) {
		t.Fatalf("Key() produced an invalid key %q", key)
	}
	if strings.ContainsAny(key, "/\\ ") {
		t.Fatalf("separators or spaces survived sanitization: %q", key)
	}
	// Sanitization must be injective: distinct hostile names map to distinct
	// keys ('%' is escaped too, so pre-escaped input cannot collide).
	g := f
	g.Benchmark = "TPC-DS%2F.." + `%5Cevil name`
	if g.Key() == key {
		t.Fatalf("distinct benchmarks collided on %q", key)
	}
	// '_' in a component must not collide with the field separator:
	// ("a_b","c") and ("a","b_c") are different workloads.
	p := Fingerprint{Cluster: "a_b", Benchmark: "c", SizeBucket: 5, Techniques: "qid"}
	q := Fingerprint{Cluster: "a", Benchmark: "b_c", SizeBucket: 5, Techniques: "qid"}
	if p.Key() == q.Key() {
		t.Fatalf("separator collision: both map to %q", p.Key())
	}
	// Benign keys are untouched.
	benign := Fingerprint{Cluster: "arm", Benchmark: "TPC-DS", SizeBucket: 7, Techniques: "qid"}
	if got := benign.Key(); got != "arm_TPC-DS_b7_qid" {
		t.Fatalf("benign key rewritten: %q", got)
	}
}

func TestValidKey(t *testing.T) {
	for _, ok := range []string{"arm_TPC-DS_b7_qid", "x86_hi.bench_b-3_-", "a%2Fb"} {
		if !ValidKey(ok) {
			t.Errorf("ValidKey(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "a b", "../x", "a\x00b"} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
}
