package service

import (
	"path/filepath"
	"reflect"
	"testing"
)

// A bad backend spec must be rejected at submission, not when the job runs.
func TestSubmitRejectsBadBackendSpec(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := quickSpec(100, 1)
	spec.Backend = "bogus"
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("bad backend spec accepted")
	}
}

// A job-level record backend must capture the session into a trace that a
// replay-backed service reproduces exactly — jobs keyed by their IDs.
func TestServiceJobBackendRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.trace")

	runOnce := func(backend string) *JobResult {
		s := New(Config{Workers: 1})
		spec := quickSpec(100, 3)
		spec.Backend = backend
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		s.Close() // flushes the record sink
		return res
	}

	want := runOnce("record=" + path)
	got := runOnce("replay=" + path)
	if !reflect.DeepEqual(want.BestConfig, got.BestConfig) {
		t.Fatal("replayed job selected a different configuration")
	}
	if want.TunedSec != got.TunedSec || want.OverheadSec != got.OverheadSec {
		t.Fatalf("replayed job cost (%.4f, %.4f), recorded (%.4f, %.4f)",
			got.TunedSec, got.OverheadSec, want.TunedSec, want.OverheadSec)
	}

	// A replay job that diverges from the trace (different seed → different
	// sampling trajectory) must fail its job, not crash the service.
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := quickSpec(100, 4) // seed mismatch vs the recording
	spec.Backend = "replay=" + path
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(id); err == nil {
		t.Fatal("diverging replay job succeeded")
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("diverging replay job state %s, want failed", st.State)
	}
}
