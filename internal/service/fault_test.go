package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"locat/internal/runner"
)

// metricValue extracts a series value from a Prometheus text exposition
// (-1 when the series is absent).
func metricValue(exposition, series string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == series {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

func scrape(s *Service) string {
	var b strings.Builder
	s.Metrics().WritePrometheus(&b)
	return b.String()
}

// A chaos schedule whose drop ceiling stays under the retry budget must be
// invisible in the result: every injected fault heals, so the tuned
// configuration is bit-identical to the fault-free session's.
func TestChaosHealingJobMatchesFaultFree(t *testing.T) {
	spec := quickSpec(80, 4)

	clean := New(Config{Workers: 1})
	cleanRes, err := submitAndWait(t, clean, spec)
	clean.Close()
	if err != nil {
		t.Fatal(err)
	}

	chaotic := New(Config{Workers: 1, Chaos: "drop=0.25,maxfail=2,seed=7"})
	defer chaotic.Close()
	res, err := submitAndWait(t, chaotic, spec)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.BestConfig, cleanRes.BestConfig) || res.TunedSec != cleanRes.TunedSec {
		t.Fatalf("chaotic session diverged from fault-free:\n chaos: %v (%.3f s)\n clean: %v (%.3f s)",
			res.BestConfig, res.TunedSec, cleanRes.BestConfig, cleanRes.TunedSec)
	}
	if res.Degraded != "" || res.FellBack {
		t.Fatalf("healed session flagged degraded=%q fellback=%v", res.Degraded, res.FellBack)
	}

	// The fault-tolerance series are on the exposition: retries were paid,
	// no breaker is open, checkpoints were written.
	out := scrape(chaotic)
	if v := metricValue(out, "locat_run_retries_total"); v <= 0 {
		t.Fatalf("locat_run_retries_total = %v; want > 0 under drop injection\n%s", v, out)
	}
	if v := metricValue(out, "locat_breaker_open"); v != 0 {
		t.Fatalf("locat_breaker_open = %v; want 0 after the session", v)
	}
	if v := metricValue(out, "locat_jobs_resumed_total"); v != 0 {
		t.Fatalf("locat_jobs_resumed_total = %v; want 0 (nothing resumed)", v)
	}
	if v := metricValue(out, "locat_checkpoint_write_seconds_count"); v <= 0 {
		t.Fatalf("locat_checkpoint_write_seconds_count = %v; want > 0", v)
	}
}

// A backend that dies mid-session degrades the job instead of failing it:
// the result is the best configuration measured before death, flagged, and
// never worse than the defaults.
func TestBackendDeathDegradesJob(t *testing.T) {
	s := New(Config{Workers: 1, Chaos: "failafter=12,seed=3"})
	defer s.Close()
	res, err := submitAndWait(t, s, quickSpec(80, 4))
	if err != nil {
		t.Fatalf("mid-session backend death failed the job: %v", err)
	}
	if !strings.Contains(res.Degraded, "chaos") {
		t.Fatalf("Degraded = %q; want the injected failure cause", res.Degraded)
	}
	if res.TunedSec > res.DefaultSec {
		t.Fatalf("degraded recommendation (%.3f s) worse than default (%.3f s)", res.TunedSec, res.DefaultSec)
	}
	if v := metricValue(scrape(s), "locat_breaker_open"); v != 0 {
		t.Fatalf("locat_breaker_open = %v after the session; want 0", v)
	}
}

// captureStore snapshots every checkpoint write, so the test can replant a
// mid-session checkpoint into a fresh store — the state a process death
// leaves behind (the worker never reached a terminal state, so nothing
// deleted the checkpoint).
type captureStore struct {
	*MemStore
	mu   sync.Mutex
	cps  []Checkpoint
	last *Checkpoint
}

func (c *captureStore) PutCheckpoint(cp Checkpoint) error {
	c.mu.Lock()
	snap := cp
	snap.Entries = append([]runner.TraceEntry(nil), cp.Entries...)
	c.cps = append(c.cps, snap)
	c.last = &snap
	c.mu.Unlock()
	return c.MemStore.PutCheckpoint(cp)
}

// Kill-and-restart: a service started with Resume over a store holding a
// checkpoint requeues the interrupted job under its original ID, serves the
// paid runs from the checkpoint, and lands on the identical tuned
// configuration. With the final checkpoint planted, zero runs re-execute.
func TestResumeFromCheckpointAfterKill(t *testing.T) {
	cap1 := &captureStore{MemStore: NewMemStore()}
	s1 := New(Config{Workers: 1, Store: cap1, CheckpointEvery: 1})
	spec := quickSpec(80, 4)
	baseline, err := submitAndWait(t, s1, spec)
	s1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cap1.last == nil || len(cap1.last.Entries) == 0 {
		t.Fatal("no checkpoint captured during the session")
	}
	// The finished job retired its checkpoint from the real store.
	if cp, _ := cap1.GetCheckpoint(cap1.last.JobID); cp != nil {
		t.Fatal("terminal job left its checkpoint behind")
	}

	check := func(t *testing.T, planted Checkpoint) *JobResult {
		t.Helper()
		ms := NewMemStore()
		if err := ms.PutCheckpoint(planted); err != nil {
			t.Fatal(err)
		}
		s2 := New(Config{Workers: 1, Store: ms, Resume: true, CheckpointEvery: 1})
		defer s2.Close()
		res, err := s2.Result(planted.JobID)
		if err != nil {
			t.Fatalf("resumed job failed: %v", err)
		}
		if !reflect.DeepEqual(res.BestConfig, baseline.BestConfig) || res.TunedSec != baseline.TunedSec {
			t.Fatalf("resumed session diverged from the uninterrupted one:\n resumed: %v (%.3f s)\n baseline: %v (%.3f s)",
				res.BestConfig, res.TunedSec, baseline.BestConfig, baseline.TunedSec)
		}
		// Conservation: every execution the uninterrupted session paid is
		// either served from the checkpoint or re-executed, never both.
		if res.Runs+res.ResumedRuns != baseline.Runs {
			t.Fatalf("runs not conserved: fresh %d + resumed %d != baseline %d",
				res.Runs, res.ResumedRuns, baseline.Runs)
		}
		if v := metricValue(scrape(s2), "locat_jobs_resumed_total"); v != 1 {
			t.Fatalf("locat_jobs_resumed_total = %v; want 1", v)
		}
		// The finished resume retired the checkpoint.
		if cp, _ := ms.GetCheckpoint(planted.JobID); cp != nil {
			t.Fatal("resumed job left its checkpoint behind")
		}
		// Fresh submissions never collide with the resumed ID.
		id, err := s2.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if id == planted.JobID {
			t.Fatalf("fresh submission reused resumed job ID %s", id)
		}
		if _, err := s2.Result(id); err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Run("FinalCheckpoint", func(t *testing.T) {
		res := check(t, *cap1.last)
		// Everything was paid before the "kill": nothing re-executes.
		if res.Runs != 0 {
			t.Fatalf("resume re-executed %d runs; want 0", res.Runs)
		}
		if res.ResumedRuns != baseline.Runs {
			t.Fatalf("ResumedRuns = %d; want %d", res.ResumedRuns, baseline.Runs)
		}
	})
	t.Run("MidSessionCheckpoint", func(t *testing.T) {
		mid := *cap1.last
		mid.Entries = append([]runner.TraceEntry(nil), mid.Entries[:len(mid.Entries)/2]...)
		res := check(t, mid)
		if res.ResumedRuns == 0 || res.Runs == 0 {
			t.Fatalf("partial resume should mix served (%d) and fresh (%d) runs",
				res.ResumedRuns, res.Runs)
		}
	})
}

// Kill injection plus bounded job retries: each attempt pays a few more
// runs before the injected crash, the checkpoint accumulates them, and a
// later attempt completes — with the same result as a crash-free session.
func TestJobRetryResumesAcrossAttempts(t *testing.T) {
	spec := quickSpec(70, 6)

	clean := New(Config{Workers: 1})
	baseline, err := submitAndWait(t, clean, spec)
	clean.Close()
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{
		Workers:         1,
		JobRetries:      8,
		CheckpointEvery: 1,
		Chaos:           "killafter=12,seed=5",
	})
	defer s.Close()
	res, err := submitAndWait(t, s, spec)
	if err != nil {
		t.Fatalf("job did not survive kill injection within the retry budget: %v", err)
	}
	if !reflect.DeepEqual(res.BestConfig, baseline.BestConfig) || res.TunedSec != baseline.TunedSec {
		t.Fatalf("retried session diverged from crash-free baseline:\n retried: %v (%.3f s)\n baseline: %v (%.3f s)",
			res.BestConfig, res.TunedSec, baseline.BestConfig, baseline.TunedSec)
	}
	// The successful attempt resumed paid work from earlier attempts and
	// never re-paid it.
	if res.ResumedRuns == 0 {
		t.Fatal("successful attempt served nothing from the checkpoint; retries did not resume")
	}
	if res.Runs+res.ResumedRuns != baseline.Runs {
		t.Fatalf("runs not conserved across attempts: fresh %d + resumed %d != baseline %d",
			res.Runs, res.ResumedRuns, baseline.Runs)
	}
}

// gatedStore blocks history reads until the gate opens, pinning the single
// worker inside its session so the queue state is deterministic.
type gatedStore struct {
	Store
	gate chan struct{}
}

func (g *gatedStore) Get(key string) ([]Entry, error) {
	<-g.gate
	return g.Store.Get(key)
}

// Admission control: a full queue refuses submissions with ErrQueueFull
// (429 over HTTP) without burning job IDs; a closed service answers
// ErrClosed (503).
func TestQueueFullAdmissionControl(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 1, Store: &gatedStore{Store: NewMemStore(), gate: gate}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id1, err := s.Submit(quickSpec(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick job 1 up (it then parks on the gated
	// history read), then fill the queue buffer.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(time.Millisecond)
	}
	id2, err := s.Submit(quickSpec(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(quickSpec(60, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission error = %v; want ErrQueueFull", err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"TPC-H","data_size_gb":60}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit = %d; want 429", resp.StatusCode)
	}

	close(gate) // release the worker; the backlog drains
	for _, id := range []string{id1, id2} {
		if _, err := s.Result(id); err != nil {
			t.Fatal(err)
		}
	}
	// The refused submission did not burn an ID: the next accepted job is 3.
	id4, err := s.Submit(quickSpec(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	if id4 != "job-000003" {
		t.Fatalf("post-refusal submission got %s; want job-000003", id4)
	}
	if _, err := s.Result(id4); err != nil {
		t.Fatal(err)
	}

	s.Close()
	if _, err := s.Submit(quickSpec(60, 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed-service submission error = %v; want ErrClosed", err)
	}
	resp, err = srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"TPC-H","data_size_gb":60}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed-service submit = %d; want 503", resp.StatusCode)
	}
}

// submitAndWait runs one job to completion.
func submitAndWait(t *testing.T, s *Service, spec JobSpec) (*JobResult, error) {
	t.Helper()
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s.Result(id)
}
