// Package sparksim is an analytical simulator of Spark SQL application
// execution on a cluster. It stands in for the paper's two physical clusters
// and Spark 2.4.5 deployment (see DESIGN.md §1 for the substitution
// rationale): given a query's profile, a configuration of the 38 Table 2
// parameters, and an input data size, it produces a deterministic (seeded)
// end-to-end latency, together with the garbage-collection time and shuffle
// statistics the paper's analysis sections report.
//
// The model follows the Spark execution pipeline: a query is a DAG of
// stages; each stage runs a set of tasks in waves over the executor slots
// granted by spark.executor.instances × spark.executor.cores; stage cost is
// the maximum of the aggregate disk, network and CPU demands, plus
// per-wave scheduling overhead, a straggler tail, spill I/O when a task's
// working set exceeds its execution-memory share, and a JVM GC stall that
// grows with heap pressure.
package sparksim

import "locat/internal/conf"

// Cluster describes the hardware LOCAT tunes for. Only slave (worker) nodes
// run executors; the master runs the driver.
type Cluster struct {
	// Name is a short label ("arm", "x86").
	Name string
	// Profile selects the Table 2 range column for this cluster.
	Profile conf.ClusterProfile
	// SlaveNodes is the number of worker nodes.
	SlaveNodes int
	// CoresPerNode is the executor-usable core count per worker.
	CoresPerNode int
	// MemPerNodeMB is the executor-usable memory per worker in MB.
	MemPerNodeMB int
	// CoreSpeed is the relative per-core compute speed (1.0 = ARM baseline).
	CoreSpeed float64
	// DiskMBps is the sequential disk bandwidth per node (MB/s).
	DiskMBps float64
	// NetMBps is the network bandwidth per node (MB/s).
	NetMBps float64
	// ContainerCores and ContainerMemMB are the Yarn per-container caps.
	ContainerCores int
	ContainerMemMB int
}

// ARM returns the paper's four-node KUNPENG ARM cluster: one master plus
// three slaves, each with 4×32 = 128 cores and 512 GB, for 384
// executor-usable cores and 1.5 TB of executor memory.
func ARM() *Cluster {
	return &Cluster{
		Name:           "arm",
		Profile:        conf.ProfileARM,
		SlaveNodes:     3,
		CoresPerNode:   128,
		MemPerNodeMB:   512 * 1024,
		CoreSpeed:      1.0,
		DiskMBps:       1200,
		NetMBps:        1250, // 10 GbE
		ContainerCores: 8,
		ContainerMemMB: 64 * 1024,
	}
}

// X86 returns the paper's eight-node Xeon cluster: one master plus seven
// slaves, each with 2×10 = 20 cores and 64 GB, for 140 executor-usable
// cores and 448 GB of executor memory.
func X86() *Cluster {
	return &Cluster{
		Name:           "x86",
		Profile:        conf.ProfileX86,
		SlaveNodes:     7,
		CoresPerNode:   20,
		MemPerNodeMB:   64 * 1024,
		CoreSpeed:      1.55, // Xeon Silver core ≈ 1.55× a KUNPENG 920 core here
		DiskMBps:       900,
		NetMBps:        1250,
		ContainerCores: 16,
		ContainerMemMB: 56 * 1024,
	}
}

// TotalCores returns the executor-usable core total.
func (c *Cluster) TotalCores() int { return c.SlaveNodes * c.CoresPerNode }

// TotalMemMB returns the executor-usable memory total in MB.
func (c *Cluster) TotalMemMB() int { return c.SlaveNodes * c.MemPerNodeMB }

// Limits returns the resource limits used to bound configuration repair.
func (c *Cluster) Limits() conf.ResourceLimits {
	return conf.ResourceLimits{
		ContainerCores: c.ContainerCores,
		ContainerMemMB: c.ContainerMemMB,
		TotalCores:     c.TotalCores(),
		TotalMemMB:     c.TotalMemMB(),
	}
}

// Space returns the Table 2 configuration space bound to this cluster's
// ranges and limits.
func (c *Cluster) Space() *conf.Space {
	return conf.NewSpace(c.Profile, c.Limits())
}
