package sparksim

import (
	"fmt"
	"io"
	"math"

	"locat/internal/conf"
)

// StageCost is the component breakdown of one simulated stage — the
// analogue of a Spark UI stage page. The stage's latency is the maximum of
// the disk, network and CPU components plus scheduling overhead, the
// straggler tail and the memory-thrash multiplier.
type StageCost struct {
	// Kind is "scan" or "shuffle".
	Kind string
	// Sec is the stage's total latency contribution.
	Sec float64
	// DiskSec, NetSec and CPUSec are the resource components; the stage is
	// bound by the largest.
	DiskSec, NetSec, CPUSec float64
	// OverheadSec is scheduling: task waves plus driver dispatch.
	OverheadSec float64
	// TailSec is the skew straggler tail.
	TailSec float64
	// Waves is the number of task waves.
	Waves int
	// ShuffleMB and SpillMB are the bytes moved and spilled.
	ShuffleMB, SpillMB float64
	// Pressure is working set / execution memory per task; ThrashFactor is
	// the resulting slowdown multiplier (1 = none).
	Pressure, ThrashFactor float64
}

// Breakdown explains one query's simulated execution.
type Breakdown struct {
	// Query is the query name.
	Query string
	// Stages holds per-stage components in execution order.
	Stages []StageCost
	// GCSec is the JVM garbage-collection stall.
	GCSec float64
	// FixedSec is the configuration-independent planning/driver cost.
	FixedSec float64
	// TotalSec is the end-to-end noiseless latency.
	TotalSec float64
	// Broadcast reports whether the plan used a broadcast join.
	Broadcast bool
}

// Explain returns the noiseless per-stage cost breakdown of one query under
// configuration c at the given data size — the tool for understanding *why*
// a configuration is slow (spilling? waves? GC? network?).
func (s *Simulator) Explain(q Query, c conf.Config, dataGB float64) Breakdown {
	e := deriveEnv(s.cluster, c)
	scanMB := dataGB * 1024 * q.InputFrac
	maxFieldsPenalty := 1.0
	if c[conf.PCodegenMaxFields] < 100*q.CPUWeight {
		maxFieldsPenalty = 1.06
	}

	bd := Breakdown{Query: q.Name}
	var cpuWall, maxPressure float64

	sc := scanStage(e, q, scanMB, maxFieldsPenalty)
	bd.Stages = append(bd.Stages, toStageCost("scan", sc))
	cpuWall += sc.cpuWallSec

	broadcast := false
	if q.Class == Join && q.SmallTableMB > 0 {
		smallMB := q.SmallTableMB
		if !q.DimSmall {
			smallMB *= dataGB / 100
		}
		broadcast = smallMB*1024 <= e.broadcastKB
	}
	bd.Broadcast = broadcast

	const stageDecay = 0.45
	shufMB := scanMB * q.ShuffleFrac
	for st := 1; st < q.Stages; st++ {
		mb := shufMB * math.Pow(stageDecay, float64(st-1))
		if st == 1 && broadcast {
			mb *= 0.12
		}
		cost := shuffleStage(e, q, mb)
		bd.Stages = append(bd.Stages, toStageCost("shuffle", cost))
		cpuWall += cost.cpuWallSec
		if cost.pressure > maxPressure {
			maxPressure = cost.pressure
		}
	}

	effPressure := maxPressure * e.heapShare
	gcFrac := 0.03 + 0.11*math.Pow(math.Min(effPressure, 4), 1.8) + e.gcHeapPauseFactor
	bd.GCSec = cpuWall * gcFrac
	bd.FixedSec = q.FixedSec + e.fixedPerQuery
	// Total mirrors simulateQuery (including the broadcast transfer cost,
	// folded into FixedSec here for the breakdown view).
	bd.TotalSec = s.NoiselessQueryTime(q, c, dataGB)
	return bd
}

func toStageCost(kind string, c stageCost) StageCost {
	return StageCost{
		Kind:         kind,
		Sec:          c.sec,
		DiskSec:      c.diskSec,
		NetSec:       c.netSec,
		CPUSec:       c.cpuWallSec,
		OverheadSec:  c.overheadSec,
		TailSec:      c.tailSec,
		Waves:        c.waves,
		ShuffleMB:    c.shuffleMB,
		SpillMB:      c.spillMB,
		Pressure:     c.pressure,
		ThrashFactor: c.thrashFactor,
	}
}

// Render writes a human-readable explain plan.
func (b *Breakdown) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: %.1fs total (gc %.1fs, fixed %.1fs", b.Query, b.TotalSec, b.GCSec, b.FixedSec)
	if b.Broadcast {
		fmt.Fprint(w, ", broadcast join")
	}
	fmt.Fprintln(w, ")")
	for i, st := range b.Stages {
		fmt.Fprintf(w, "  stage %d (%s): %.1fs  disk=%.1f net=%.1f cpu=%.1f sched=%.1f tail=%.1f",
			i, st.Kind, st.Sec, st.DiskSec, st.NetSec, st.CPUSec, st.OverheadSec, st.TailSec)
		if st.Kind == "shuffle" {
			fmt.Fprintf(w, "  shuffle=%.0fMB spill=%.0fMB pressure=%.2f thrash=%.1fx waves=%d",
				st.ShuffleMB, st.SpillMB, st.Pressure, st.ThrashFactor, st.Waves)
		}
		fmt.Fprintln(w)
	}
}
