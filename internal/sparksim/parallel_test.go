package sparksim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"locat/internal/conf"
)

func testApp() *Application {
	return &Application{Name: "mini", Queries: []Query{scanQuery(), joinQuery(), dimJoinQuery()}}
}

// Concurrent RunApp / RunQuery calls must be race-free (the shared counter is
// atomic and each run owns a private noise stream). Run under -race.
func TestConcurrentRunAppIsRaceFree(t *testing.T) {
	cl := ARM()
	s := New(cl, 7)
	app := testApp()
	c := cl.Space().Default()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				r := s.RunApp(app, c, 100)
				if !(r.Sec > 0) {
					t.Error("non-positive app time")
					return
				}
				q := s.RunQuery(joinQuery(), c, 100)
				if !(q.Sec > 0) {
					t.Error("non-positive query time")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// A run's result depends only on its index, not on the order runs execute.
func TestRunAppAtIsOrderIndependent(t *testing.T) {
	cl := X86()
	app := testApp()
	c := cl.Space().Default()

	forward := New(cl, 3)
	backward := New(cl, 3)
	fw := make([]AppResult, 6)
	bw := make([]AppResult, 6)
	for i := 0; i < 6; i++ {
		fw[i] = forward.RunAppAt(uint64(i), app, c, 150)
	}
	for i := 5; i >= 0; i-- {
		bw[i] = backward.RunAppAt(uint64(i), app, c, 150)
	}
	if !reflect.DeepEqual(fw, bw) {
		t.Fatal("RunAppAt results depend on execution order")
	}
}

// RunBatch over many workers must reproduce a serial RunApp loop bit-for-bit,
// including the run-counter state it leaves behind.
func TestRunBatchMatchesSerial(t *testing.T) {
	cl := ARM()
	app := testApp()
	space := cl.Space()
	rng := rand.New(rand.NewSource(17))
	cs := make([]conf.Config, 12)
	for i := range cs {
		cs[i] = space.Random(rng)
	}
	sizes := func(i int) float64 { return 100 + 50*float64(i%3) }

	serialSim := New(cl, 99)
	serialSim.RunApp(app, space.Default(), 100) // offset the counter
	serial := make([]AppResult, len(cs))
	for i, c := range cs {
		serial[i] = serialSim.RunApp(app, c, sizes(i))
	}
	after := serialSim.RunApp(app, space.Default(), 100)

	for _, workers := range []int{1, 3, 8} {
		parSim := New(cl, 99)
		parSim.RunApp(app, space.Default(), 100)
		got, done := parSim.RunBatch(app, cs, sizes, workers, nil)
		if done != len(cs) {
			t.Fatalf("workers=%d: done=%d, want %d", workers, done, len(cs))
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: batch results diverge from serial loop", workers)
		}
		if next := parSim.RunApp(app, space.Default(), 100); !reflect.DeepEqual(next, after) {
			t.Fatalf("workers=%d: run counter diverged after batch", workers)
		}
	}
}

// Stop cuts the batch short: a valid completed prefix is reported and no new
// items start after stop fires.
func TestRunBatchHonorsStop(t *testing.T) {
	cl := ARM()
	app := testApp()
	space := cl.Space()
	cs := make([]conf.Config, 16)
	for i := range cs {
		cs[i] = space.Default()
	}
	s := New(cl, 5)
	calls := 0
	stop := func() bool { calls++; return calls > 4 }
	got, done := s.RunBatch(app, cs, func(int) float64 { return 100 }, 1, stop)
	if done >= len(cs) {
		t.Fatalf("stop did not cut the batch: done=%d", done)
	}
	ref := New(cl, 5)
	for i := 0; i < done; i++ {
		want := ref.RunAppAt(uint64(i), app, cs[i], 100)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("prefix item %d invalid after stop", i)
		}
	}
}

// Two simulators with the same seed must still agree when one is driven by
// batches and the other serially — the documented equivalence contract.
func TestSeedEquivalenceAcrossDrivers(t *testing.T) {
	cl := ARM()
	s1 := New(cl, 42)
	s2 := New(cl, 42)
	c := cl.Space().Default()
	q := joinQuery()
	for i := 0; i < 10; i++ {
		r1 := s1.RunQuery(q, c, 200)
		r2 := s2.RunQueryAt(uint64(i), q, c, 200)
		if r1.Sec != r2.Sec || r1.GCSec != r2.GCSec {
			t.Fatalf("run %d: counter-claimed and explicit-index results differ", i)
		}
	}
}
