package sparksim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync/atomic"

	"locat/internal/conf"
)

// QueryResult is the outcome of executing one query once.
type QueryResult struct {
	// Name is the query name.
	Name string
	// Sec is the end-to-end query latency in seconds (includes GCSec).
	Sec float64
	// GCSec is the JVM garbage-collection stall time included in Sec.
	GCSec float64
	// ShuffleMB is the total bytes shuffled across all wide stages.
	ShuffleMB float64
	// SpillMB is the total bytes spilled to disk.
	SpillMB float64
	// MaxPressure is the peak task working-set / execution-memory ratio.
	MaxPressure float64
}

// AppResult is the outcome of executing an application (all queries, in
// order) once under a single configuration.
type AppResult struct {
	// Sec is the total application latency in seconds.
	Sec float64
	// GCSec is the total GC stall time.
	GCSec float64
	// Queries holds the per-query results in execution order.
	Queries []QueryResult
}

// Simulator executes applications on a modeled cluster. Runs are stochastic
// — a multiplicative lognormal per-query factor models task-level variance,
// and a second per-run factor models whole-cluster state (page cache, JIT
// warmth, co-located load) that shifts an entire application execution.
//
// Every run draws its noise from a private deterministic stream seeded by
// (simulator seed, run index); the run index is claimed from an atomic
// counter (RunQuery / RunApp) or fixed explicitly (RunQueryAt / RunAppAt
// against a ReserveRuns block). The i-th run of a simulator is therefore
// fully determined by the seed and i, independent of execution order or
// interleaving: two simulators with the same seed driven identically
// produce identical results, concurrent RunApp calls are race-free, and a
// parallel driver that reserves a block of indices reproduces the serial
// call sequence bit-for-bit.
type Simulator struct {
	cluster  *Cluster
	space    *conf.Space
	noise    float64
	runNoise float64
	seed     int64
	runs     atomic.Uint64 // next unclaimed run index
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithNoise sets the per-query noise (lognormal sigma). The default is
// 0.15; zero makes queries deterministic up to the per-run factor.
func WithNoise(sigma float64) Option {
	return func(s *Simulator) { s.noise = sigma }
}

// WithRunNoise sets the per-run whole-application noise (lognormal sigma).
// The default is 0.08; zero disables it.
// WithNoise(0) together with WithRunNoise(0) makes runs fully deterministic.
func WithRunNoise(sigma float64) Option {
	return func(s *Simulator) { s.runNoise = sigma }
}

// New returns a simulator for the given cluster, seeded for reproducibility.
func New(cluster *Cluster, seed int64, opts ...Option) *Simulator {
	s := &Simulator{
		cluster:  cluster,
		space:    cluster.Space(),
		noise:    0.15,
		runNoise: 0.08,
		seed:     seed,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Cluster returns the modeled cluster.
func (s *Simulator) Cluster() *Cluster { return s.cluster }

// Space returns the configuration space bound to the cluster.
func (s *Simulator) Space() *conf.Space { return s.space }

// ReserveRuns atomically claims a contiguous block of n run indices and
// returns the first. A parallel driver reserves one block per batch and
// executes RunAppAt(first+i, …) for the i-th item; because each index owns
// an independent noise stream, the results match a serial loop of RunApp
// calls (which claims the same indices one at a time) exactly.
func (s *Simulator) ReserveRuns(n int) uint64 {
	if n <= 0 {
		panic("sparksim: ReserveRuns of non-positive count")
	}
	return s.runs.Add(uint64(n)) - uint64(n)
}

// runRNG returns the private noise stream of run index idx.
func (s *Simulator) runRNG(idx uint64) *rand.Rand {
	return rand.New(rand.NewSource(runSeed(s.seed, idx)))
}

// runSeed derives the seed of run idx from the simulator seed by a
// splitmix64-style mix, so neighbouring indices get decorrelated streams.
func runSeed(seed int64, idx uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunQuery executes a single query under configuration c with the given
// input data size (GB) and returns its result. The call claims the next run
// index; safe for concurrent use.
func (s *Simulator) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	return s.RunQueryAt(s.ReserveRuns(1), q, c, dataGB)
}

// RunQueryAt executes a single query as run index idx without touching the
// run counter. Safe for concurrent use.
func (s *Simulator) RunQueryAt(idx uint64, q Query, c conf.Config, dataGB float64) QueryResult {
	return s.runQuery(s.runRNG(idx), q, c, dataGB)
}

// runQuery executes one query drawing task-level noise from rng.
func (s *Simulator) runQuery(rng *rand.Rand, q Query, c conf.Config, dataGB float64) QueryResult {
	e := deriveEnv(s.cluster, c)
	r := simulateQuery(e, q, c, dataGB)
	if s.noise > 0 {
		f := math.Exp(rng.NormFloat64() * s.noise)
		r.Sec *= f
		r.GCSec *= f
	}
	return r
}

// RunApp executes every query of the application in order under
// configuration c and returns per-query and total results. One per-run
// cluster-state factor scales the whole execution on top of the per-query
// noise. The call claims the next run index; safe for concurrent use.
func (s *Simulator) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	return s.RunAppAt(s.ReserveRuns(1), app, c, dataGB)
}

// RunAppAt executes the application as run index idx without touching the
// run counter: the per-run cluster-state factor and every query's noise come
// from the index's private stream. Safe for concurrent use.
func (s *Simulator) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	rng := s.runRNG(idx)
	runFactor := 1.0
	if s.runNoise > 0 {
		runFactor = math.Exp(rng.NormFloat64() * s.runNoise)
	}
	out := AppResult{Queries: make([]QueryResult, 0, len(app.Queries))}
	for _, q := range app.Queries {
		r := s.runQuery(rng, q, c, dataGB)
		r.Sec *= runFactor
		r.GCSec *= runFactor
		out.Sec += r.Sec
		out.GCSec += r.GCSec
		out.Queries = append(out.Queries, r)
	}
	return out
}

// NoiselessQueryTime returns the deterministic (noise-free) latency of a
// query under c — the model's ground truth, used by tests and by the
// experiment harness when comparing tuned configurations.
func (s *Simulator) NoiselessQueryTime(q Query, c conf.Config, dataGB float64) float64 {
	e := deriveEnv(s.cluster, c)
	return simulateQuery(e, q, c, dataGB).Sec
}

// NoiselessAppTime returns the deterministic total application latency.
func (s *Simulator) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	e := deriveEnv(s.cluster, c)
	var t float64
	for _, q := range app.Queries {
		t += simulateQuery(e, q, c, dataGB).Sec
	}
	return t
}

// simulateQuery runs the analytical cost model for one query.
func simulateQuery(e env, q Query, c conf.Config, dataGB float64) QueryResult {
	scanMB := dataGB * 1024 * q.InputFrac

	// Codegen fallback penalty for wide plans with a small maxFields cap.
	maxFieldsPenalty := 1.0
	if c[conf.PCodegenMaxFields] < 100*q.CPUWeight {
		maxFieldsPenalty = 1.06
	}

	res := QueryResult{Name: q.Name}
	var totalSec, cpuWall, maxPressure float64

	sc := scanStage(e, q, scanMB, maxFieldsPenalty)
	totalSec += sc.sec
	cpuWall += sc.cpuWallSec

	// Broadcast-join decision: the (scaled) small table must fit under
	// spark.sql.autoBroadcastJoinThreshold (KB).
	broadcast := false
	if q.Class == Join && q.SmallTableMB > 0 {
		smallMB := q.SmallTableMB
		if !q.DimSmall {
			smallMB *= dataGB / 100
		}
		if smallMB*1024 <= e.broadcastKB {
			broadcast = true
			// Driver ships the table to every executor.
			bcMB := smallMB
			if e.broadcastCompress {
				bcMB *= 0.5
			}
			bcT := bcMB * e.instances / e.aggNetMBps
			bcT += (bcMB / e.broadcastBlockMB) * 0.0004 // per-block handling
			totalSec += bcT
		}
	}

	const stageDecay = 0.45
	shufMB := scanMB * q.ShuffleFrac
	for st := 1; st < q.Stages; st++ {
		mb := shufMB * math.Pow(stageDecay, float64(st-1))
		if st == 1 && broadcast {
			// The big side stays map-local; only partial aggregates move.
			mb *= 0.12
		}
		cost := shuffleStage(e, q, mb)
		totalSec += cost.sec
		cpuWall += cost.cpuWallSec
		res.ShuffleMB += cost.shuffleMB
		res.SpillMB += cost.spillMB
		if cost.pressure > maxPressure {
			maxPressure = cost.pressure
		}
	}

	// JVM GC stall: grows superlinearly with heap pressure, plus a pause
	// term for very large heaps. Off-heap memory shields its share of the
	// working set from the collector.
	effPressure := maxPressure * e.heapShare
	gcFrac := 0.03 + 0.11*math.Pow(math.Min(effPressure, 4), 1.8) + e.gcHeapPauseFactor
	gc := cpuWall * gcFrac

	res.Sec = totalSec + gc + q.FixedSec + e.fixedPerQuery
	res.GCSec = gc
	res.MaxPressure = maxPressure
	return res
}

// querySeed derives a stable per-query seed (used by tests that need
// reproducible noise independent of call order).
func querySeed(name string, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}
