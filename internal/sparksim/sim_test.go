package sparksim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"locat/internal/conf"
	"locat/internal/stat"
)

func joinQuery() Query {
	return Query{
		Name: "heavyjoin", Class: Join, InputFrac: 0.6, ShuffleFrac: 0.85,
		Stages: 5, SmallTableMB: 9000, CPUWeight: 2.5, Skew: 0.4, FixedSec: 1,
	}
}

func scanQuery() Query {
	return Query{
		Name: "scan", Class: Selection, InputFrac: 1.0, ShuffleFrac: 0.0001,
		Stages: 1, CPUWeight: 0.9, Skew: 0.02, FixedSec: 1,
	}
}

func dimJoinQuery() Query {
	return Query{
		Name: "dimjoin", Class: Join, InputFrac: 0.4, ShuffleFrac: 0.5,
		Stages: 3, SmallTableMB: 4, DimSmall: true, CPUWeight: 1.5, Skew: 0.2, FixedSec: 1,
	}
}

func TestClusters(t *testing.T) {
	arm, x86 := ARM(), X86()
	if arm.TotalCores() != 384 || arm.TotalMemMB() != 1536*1024 {
		t.Fatalf("ARM totals: %d cores %d MB", arm.TotalCores(), arm.TotalMemMB())
	}
	if x86.TotalCores() != 140 || x86.TotalMemMB() != 448*1024 {
		t.Fatalf("x86 totals: %d cores %d MB", x86.TotalCores(), x86.TotalMemMB())
	}
	if arm.Space().Profile() != conf.ProfileARM || x86.Space().Profile() != conf.ProfileX86 {
		t.Fatal("cluster space profiles wrong")
	}
	lim := arm.Limits()
	if lim.TotalCores != 384 || lim.ContainerCores != 8 {
		t.Fatalf("ARM limits = %+v", lim)
	}
}

func TestDeterminismAcrossSimulators(t *testing.T) {
	for _, cl := range []*Cluster{ARM(), X86()} {
		s1 := New(cl, 42)
		s2 := New(cl, 42)
		c := cl.Space().Default()
		q := joinQuery()
		for i := 0; i < 10; i++ {
			r1 := s1.RunQuery(q, c, 200)
			r2 := s2.RunQuery(q, c, 200)
			if r1.Sec != r2.Sec || r1.GCSec != r2.GCSec {
				t.Fatalf("%s: run %d diverged: %v vs %v", cl.Name, i, r1.Sec, r2.Sec)
			}
		}
	}
}

func TestNoiselessIsDeterministic(t *testing.T) {
	cl := ARM()
	s := New(cl, 1)
	c := cl.Space().Default()
	q := joinQuery()
	a := s.NoiselessQueryTime(q, c, 100)
	b := s.NoiselessQueryTime(q, c, 100)
	if a != b {
		t.Fatalf("noiseless time not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("nonpositive time %v", a)
	}
}

func TestWithNoiseZero(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0), WithRunNoise(0))
	c := cl.Space().Default()
	q := joinQuery()
	if s.RunQuery(q, c, 100).Sec != s.RunQuery(q, c, 100).Sec {
		t.Fatal("zero-noise runs differ")
	}
}

func TestRunAppAggregates(t *testing.T) {
	cl := X86()
	s := New(cl, 3, WithNoise(0), WithRunNoise(0))
	app := &Application{Name: "mini", Queries: []Query{scanQuery(), joinQuery(), dimJoinQuery()}}
	c := cl.Space().Default()
	r := s.RunApp(app, c, 100)
	if len(r.Queries) != 3 {
		t.Fatalf("got %d query results", len(r.Queries))
	}
	var sum, gc float64
	for _, qr := range r.Queries {
		sum += qr.Sec
		gc += qr.GCSec
	}
	if math.Abs(sum-r.Sec) > 1e-9 || math.Abs(gc-r.GCSec) > 1e-9 {
		t.Fatal("AppResult totals do not match query sums")
	}
	if nl := s.NoiselessAppTime(app, c, 100); math.Abs(nl-r.Sec) > 1e-9 {
		t.Fatalf("NoiselessAppTime %v != noise-free RunApp %v", nl, r.Sec)
	}
}

func TestTimeGrowsWithDataSize(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	c := cl.Space().Default()
	for _, q := range []Query{scanQuery(), joinQuery(), dimJoinQuery()} {
		prev := 0.0
		for _, gb := range []float64{100, 200, 300, 400, 500} {
			tm := s.NoiselessQueryTime(q, c, gb)
			if tm <= prev {
				t.Fatalf("%s: time %v at %vGB not greater than %v at previous size", q.Name, tm, gb, prev)
			}
			prev = tm
		}
	}
}

func TestSelectionInsensitiveJoinSensitive(t *testing.T) {
	cl := ARM()
	s := New(cl, 5)
	space := cl.Space()
	// Absolute CVs are dominated by how many deep-thrash corner configs the
	// random draw hits (QCSA's relative three-partition rule is what makes
	// classification robust to that); this fixed seed draws a
	// representative mix.
	rng := rand.New(rand.NewSource(23))
	var scanTimes, joinTimes []float64
	for i := 0; i < 60; i++ {
		c := space.Random(rng)
		scanTimes = append(scanTimes, s.RunQuery(scanQuery(), c, 100).Sec)
		joinTimes = append(joinTimes, s.RunQuery(joinQuery(), c, 100).Sec)
	}
	scanCV, joinCV := stat.CV(scanTimes), stat.CV(joinTimes)
	if scanCV > 0.35 {
		t.Fatalf("selection query CV = %v; want insensitive (< 0.35)", scanCV)
	}
	if joinCV < 0.45 {
		t.Fatalf("heavy join CV = %v; want sensitive (> 0.45)", joinCV)
	}
	if joinCV < 3*scanCV {
		t.Fatalf("join CV %v not clearly above selection CV %v", joinCV, scanCV)
	}
}

func TestMemoryPressureSlowsExecution(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	space := cl.Space()
	q := joinQuery()
	// Ample memory, generous partitions.
	good := space.Default()
	good[conf.PExecutorMemory] = 32
	good[conf.PExecutorCores] = 4
	good[conf.PExecutorInstances] = 96
	good[conf.PSQLShufflePartitions] = 800
	good[conf.PMemoryFraction] = 0.9
	good[conf.PMemoryStorageFraction] = 0.5
	good = space.Repair(good)
	// Starved memory, few partitions: per-task working set explodes.
	bad := good.Clone()
	bad[conf.PExecutorMemory] = 4
	bad[conf.PExecutorCores] = 8
	bad[conf.PExecutorInstances] = 48
	bad[conf.PSQLShufflePartitions] = 100
	bad[conf.PMemoryFraction] = 0.5
	bad[conf.PMemoryStorageFraction] = 0.9
	bad[conf.POffHeapEnabled] = 0
	bad = space.Repair(bad)

	gt := s.RunQuery(q, good, 300)
	bt := s.RunQuery(q, bad, 300)
	if bt.Sec < 3*gt.Sec {
		t.Fatalf("memory-starved run %.1fs not ≫ well-provisioned %.1fs", bt.Sec, gt.Sec)
	}
	if bt.MaxPressure <= gt.MaxPressure {
		t.Fatal("pressure did not increase under starved config")
	}
	if bt.SpillMB == 0 {
		t.Fatal("starved config did not spill")
	}
	if gt.SpillMB > bt.SpillMB {
		t.Fatal("good config spilled more than bad config")
	}
}

func TestGCTimeGrowsWithPressure(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	space := cl.Space()
	q := joinQuery()
	small := space.Default()
	small[conf.PExecutorMemory] = 4
	small[conf.PExecutorCores] = 8
	small[conf.PSQLShufflePartitions] = 100
	small[conf.POffHeapEnabled] = 0
	small = space.Repair(small)
	big := small.Clone()
	big[conf.PExecutorMemory] = 32
	big[conf.PSQLShufflePartitions] = 800
	big = space.Repair(big)
	rs, rb := s.RunQuery(q, small, 300), s.RunQuery(q, big, 300)
	if rs.GCSec <= rb.GCSec {
		t.Fatalf("GC under 4GB heap (%.1fs) not above 32GB heap (%.1fs)", rs.GCSec, rb.GCSec)
	}
	if rs.GCSec <= 0 || rb.GCSec <= 0 {
		t.Fatal("GC time must be positive")
	}
}

func TestOffHeapRelievesGC(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	space := cl.Space()
	q := joinQuery()
	base := space.Default()
	base[conf.PExecutorMemory] = 8
	base[conf.PExecutorCores] = 4
	base[conf.PSQLShufflePartitions] = 200
	base[conf.POffHeapEnabled] = 0
	base[conf.POffHeapSize] = 0
	base = space.Repair(base)
	withOff := base.Clone()
	withOff[conf.POffHeapEnabled] = 1
	withOff[conf.POffHeapSize] = 16384
	withOff = space.Repair(withOff)
	r0, r1 := s.RunQuery(q, base, 300), s.RunQuery(q, withOff, 300)
	if r1.Sec >= r0.Sec {
		t.Fatalf("off-heap memory did not help: %.1fs vs %.1fs", r1.Sec, r0.Sec)
	}
	if r1.GCSec >= r0.GCSec {
		t.Fatalf("off-heap memory did not reduce GC: %.1fs vs %.1fs", r1.GCSec, r0.GCSec)
	}
}

func TestBroadcastJoinThreshold(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	space := cl.Space()
	q := dimJoinQuery() // 4 MB dimension table
	lo := space.Default()
	lo[conf.PAutoBroadcastJoinThreshold] = 1024 // 1 MB: no broadcast
	lo = space.Repair(lo)
	hi := lo.Clone()
	hi[conf.PAutoBroadcastJoinThreshold] = 8192 // 8 MB: broadcast
	hi = space.Repair(hi)
	tLo, tHi := s.RunQuery(q, lo, 200).Sec, s.RunQuery(q, hi, 200).Sec
	if tHi >= tLo {
		t.Fatalf("broadcast join not faster: threshold 8MB %.1fs vs 1MB %.1fs", tHi, tLo)
	}
	// The fact-fact join's 9 GB small side must never broadcast.
	big := joinQuery()
	sLo, sHi := s.RunQuery(big, lo, 200).Sec, s.RunQuery(big, hi, 200).Sec
	if math.Abs(sLo-sHi) > 1e-9 {
		t.Fatal("threshold changed a non-broadcastable join")
	}
}

func TestShuffleCompressionTradeoff(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	space := cl.Space()
	q := joinQuery()
	// Ample slots so the shuffle is disk-bound (compression trades cheap
	// CPU for scarce disk bandwidth; under CPU-bound configs it can lose).
	on := space.Default()
	on[conf.PExecutorInstances] = 48
	on[conf.PExecutorCores] = 8
	on[conf.PExecutorMemory] = 32
	on[conf.PSQLShufflePartitions] = 800
	on[conf.PShuffleCompress] = 1
	on = space.Repair(on)
	off := on.Clone()
	off[conf.PShuffleCompress] = 0
	off = space.Repair(off)
	// For a disk-bound heavy shuffle, compression must win.
	if tOn, tOff := s.RunQuery(q, on, 500).Sec, s.RunQuery(q, off, 500).Sec; tOn >= tOff {
		t.Fatalf("shuffle compression not beneficial on heavy shuffle: on=%.1f off=%.1f", tOn, tOff)
	}
}

func TestMoreSlotsHelpCPUBoundWork(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0))
	space := cl.Space()
	q := joinQuery()
	few := space.Default()
	few[conf.PExecutorInstances] = 48
	few[conf.PExecutorCores] = 1
	few[conf.PExecutorMemory] = 32
	few[conf.PSQLShufflePartitions] = 800
	few = space.Repair(few)
	many := few.Clone()
	many[conf.PExecutorInstances] = 48
	many[conf.PExecutorCores] = 8
	many = space.Repair(many)
	tFew, tMany := s.RunQuery(q, few, 300).Sec, s.RunQuery(q, many, 300).Sec
	if tMany >= tFew {
		t.Fatalf("8× slots did not speed up: few=%.1f many=%.1f", tFew, tMany)
	}
}

func TestApplicationSubset(t *testing.T) {
	app := &Application{Name: "x", Queries: []Query{scanQuery(), joinQuery(), dimJoinQuery()}}
	names := app.QueryNames()
	if len(names) != 3 || names[1] != "heavyjoin" {
		t.Fatalf("QueryNames = %v", names)
	}
	sub := app.Subset(map[string]bool{"scan": true, "dimjoin": true})
	if len(sub.Queries) != 2 || sub.Queries[0].Name != "scan" || sub.Queries[1].Name != "dimjoin" {
		t.Fatalf("Subset = %v", sub.QueryNames())
	}
	if sub.Name != "x-RQA" {
		t.Fatalf("Subset name = %q", sub.Name)
	}
}

func TestQueryClassString(t *testing.T) {
	if Selection.String() != "selection" || Join.String() != "join" || Aggregation.String() != "aggregation" {
		t.Fatal("QueryClass.String wrong")
	}
	if QueryClass(99).String() != "unknown" {
		t.Fatal("unknown class string wrong")
	}
}

func TestQuerySeedStable(t *testing.T) {
	if querySeed("Q72", 7) != querySeed("Q72", 7) {
		t.Fatal("querySeed not stable")
	}
	if querySeed("Q72", 7) == querySeed("Q73", 7) {
		t.Fatal("querySeed does not separate names")
	}
}

// Property: every valid configuration yields positive, finite times, GC no
// larger than total time, and non-negative shuffle/spill accounting.
func TestSimulatorInvariants(t *testing.T) {
	cl := X86()
	s := New(cl, 9, WithNoise(0))
	space := cl.Space()
	qs := []Query{scanQuery(), joinQuery(), dimJoinQuery()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := space.Random(rng)
		gb := 100 + rng.Float64()*400
		for _, q := range qs {
			r := s.RunQuery(q, c, gb)
			if !(r.Sec > 0) || math.IsInf(r.Sec, 0) || math.IsNaN(r.Sec) {
				return false
			}
			if r.GCSec < 0 || r.GCSec >= r.Sec {
				return false
			}
			if r.ShuffleMB < 0 || r.SpillMB < 0 || r.MaxPressure < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
