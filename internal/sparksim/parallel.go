package sparksim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"locat/internal/conf"
)

// RunBatch executes the application once per configuration over a bounded
// worker pool — the simulator's model of concurrent cluster slots — and
// returns the results in configuration order.
//
// The batch reserves one contiguous block of run indices up front, so item i
// always executes as run index first+i regardless of which worker picks it
// up or when: the results are bit-for-bit identical to a serial loop of
// RunApp calls, for any worker count. dataGB(i) supplies the input size of
// item i and must be safe for concurrent calls (pure functions are).
//
// workers ≤ 0 selects GOMAXPROCS. stop, if non-nil, is polled before each
// item is claimed; once it returns true no new items start. Polls are
// serialized under a mutex, so stop keeps the same single-caller contract
// it has everywhere else (it need not be thread-safe). The second return
// value is the completed prefix length: results[0:done] are valid, and
// done < len(cs) only when stop cut the batch short.
func (s *Simulator) RunBatch(app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) (results []AppResult, done int) {
	n := len(cs)
	results = make([]AppResult, n)
	if n == 0 {
		return results, 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	first := s.ReserveRuns(n)
	completed := make([]bool, n)
	if workers == 1 {
		// Serial fast path: no goroutine, same indices, same results.
		for i := 0; i < n; i++ {
			if stop != nil && stop() {
				break
			}
			results[i] = s.RunAppAt(first+uint64(i), app, cs[i], dataGB(i))
			completed[i] = true
		}
	} else {
		if stop != nil {
			inner := stop
			var mu sync.Mutex
			stop = func() bool {
				mu.Lock()
				defer mu.Unlock()
				return inner()
			}
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if stop != nil && stop() {
						return
					}
					results[i] = s.RunAppAt(first+uint64(i), app, cs[i], dataGB(i))
					completed[i] = true
				}
			}()
		}
		wg.Wait()
	}
	for done < n && completed[done] {
		done++
	}
	return results, done
}
