package sparksim

// QueryClass is the three-way taxonomy of Section 5.11: simple selections
// are configuration-insensitive; joins and aggregations involve shuffles and
// are sensitive in proportion to the data volume their shuffles move.
type QueryClass int

const (
	// Selection queries scan and filter; they are bounded by aggregate disk
	// bandwidth and a fixed planning cost, so configuration barely matters.
	Selection QueryClass = iota
	// Join queries shuffle both sides of each join (unless one side fits
	// under spark.sql.autoBroadcastJoinThreshold).
	Join
	// Aggregation queries shuffle grouped partial aggregates.
	Aggregation
)

// String returns the class name.
func (c QueryClass) String() string {
	switch c {
	case Selection:
		return "selection"
	case Join:
		return "join"
	case Aggregation:
		return "aggregation"
	}
	return "unknown"
}

// Query is the analytical profile of one Spark SQL query. The fields encode
// the structural properties that determine how the query responds to
// configuration changes; they play the role of the physical plan Spark SQL
// would produce from the query text.
type Query struct {
	// Name is the query label, e.g. "Q72".
	Name string
	// Class is the Section 5.11 category.
	Class QueryClass
	// InputFrac is the fraction of the benchmark dataset the query scans
	// (tables touched / total, after partition pruning).
	InputFrac float64
	// ShuffleFrac is the bytes shuffled by the first wide stage as a
	// fraction of the scanned bytes. Q72 at 100 GB shuffles ~52 GB of
	// ~60 GB scanned (paper Section 5.11) → ShuffleFrac ≈ 0.85 with
	// InputFrac ≈ 0.6; Q08 shuffles ~5 MB → ShuffleFrac ≈ 1e-4.
	ShuffleFrac float64
	// Stages is the number of stages (Stages-1 shuffle boundaries).
	// Selections have 1; deep join trees up to 6.
	Stages int
	// SmallTableMB is the size of the smallest build-side join table at
	// 100 GB scale factor; it scales linearly with data size for fact-fact
	// joins and stays constant for dimension tables (DimSmall). A join
	// whose (scaled) small table fits under
	// spark.sql.autoBroadcastJoinThreshold is executed as a broadcast join,
	// skipping the big side's shuffle.
	SmallTableMB float64
	// DimSmall marks SmallTableMB as a dimension table (does not scale with
	// the input data size).
	DimSmall bool
	// CPUWeight scales per-byte CPU cost (expression complexity, UDFs,
	// window functions). 1.0 = plain scan+hash.
	CPUWeight float64
	// Skew in [0,1) is the key-skew severity: the straggler tail of each
	// shuffle stage is proportional to it.
	Skew float64
	// FixedSec is the configuration-independent cost: planning, codegen,
	// driver round trips.
	FixedSec float64
}

// Application is an ordered set of queries executed back to back — the unit
// LOCAT tunes (TPC-DS, TPC-H, or a single-query HiBench workload).
type Application struct {
	// Name is the benchmark name, e.g. "TPC-DS".
	Name string
	// Queries are executed in order; per-query latencies are recorded.
	Queries []Query
}

// QueryNames returns the names of all queries in order.
func (a *Application) QueryNames() []string {
	out := make([]string, len(a.Queries))
	for i, q := range a.Queries {
		out[i] = q.Name
	}
	return out
}

// Subset returns a copy of the application containing only the queries
// whose names are in keep (preserving order). QCSA uses this to build the
// reduced query application (RQA).
func (a *Application) Subset(keep map[string]bool) *Application {
	out := &Application{Name: a.Name + "-RQA"}
	for _, q := range a.Queries {
		if keep[q.Name] {
			out.Queries = append(out.Queries, q)
		}
	}
	return out
}
