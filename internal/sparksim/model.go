package sparksim

import (
	"math"

	"locat/internal/conf"
)

// env holds the execution environment derived from one configuration on one
// cluster — everything the per-stage cost formulas need, computed once per
// application run.
type env struct {
	slots            float64 // total concurrent task slots
	instances        float64
	cores            float64
	execMemPerTaskMB float64 // execution-memory share of one task (heap + off-heap)
	heapMB           float64
	offHeapMB        float64 // 0 when spark.memory.offHeap.enabled is false
	heapShare        float64 // fraction of a task's working set living on-heap
	coreSpeed        float64
	aggDiskMBps      float64 // cluster-aggregate disk bandwidth (shuffle-write adjusted)
	aggNetMBps       float64 // cluster-aggregate network bandwidth (connection adjusted)
	crossNodeFrac    float64 // fraction of shuffle bytes crossing the network

	shufflePartitions float64
	scanParallelism   float64

	comprRatio    float64 // shuffle wire bytes / raw bytes (1.0 when compression off)
	comprCPUperMB float64 // compress+decompress CPU seconds per raw MB (both sides)
	spillRatio    float64 // spill bytes on disk / raw bytes (spill compression)

	driverCores     float64
	waveOverheadSec float64 // scheduling + locality cost per task wave
	fixedPerQuery   float64 // driver/planning overhead added to every query

	sortMerge         bool // spark.sql.join.preferSortMergeJoin
	radixSort         bool
	twoLevelAgg       bool
	bypassThreshold   float64
	broadcastKB       float64 // spark.sql.autoBroadcastJoinThreshold
	broadcastCompress bool
	broadcastBlockMB  float64
	maxInFlightMB     float64

	batchCPUFactor     float64 // columnar batch-size CPU bowl (scan stages)
	scanCPUperMB       float64 // base scan/decode CPU s per MB per unit CPUWeight
	procCPUperMB       float64 // base join/agg probe CPU s per MB per unit CPUWeight
	sortCPUperMB       float64 // map-side sort CPU s per MB
	retainGroupFactor  float64 // aggregation shuffle inflation from retained group cols
	columnarScanFactor float64 // scan byte reduction from columnar compression
	gcHeapPauseFactor  float64 // extra GC fraction from very large heaps
}

// deriveEnv computes the execution environment for configuration c on
// cluster cl. The constants encode the simulator's hardware model; they were
// calibrated so that the paper's qualitative results (Section 5) emerge at
// the paper's data scales.
func deriveEnv(cl *Cluster, c conf.Config) env {
	var e env
	e.instances = c[conf.PExecutorInstances]
	e.cores = c[conf.PExecutorCores]
	e.slots = math.Min(e.instances*e.cores, float64(cl.TotalCores()))
	e.coreSpeed = cl.CoreSpeed

	e.heapMB = c[conf.PExecutorMemory] * 1024
	if c.Bool(conf.POffHeapEnabled) {
		e.offHeapMB = c[conf.POffHeapSize]
	}
	// Unified memory: (heap - 300 MB) × memory.fraction. The storage region
	// (storageFraction) is immune to eviction (Table 2), but execution can
	// borrow about half of it while cached blocks are cold — Spark's
	// unified-memory borrowing.
	memFrac := c[conf.PMemoryFraction]
	storFrac := c[conf.PMemoryStorageFraction]
	heapExec := (e.heapMB - 300) * memFrac * (1 - 0.5*storFrac)
	if heapExec < 64 {
		heapExec = 64
	}
	e.execMemPerTaskMB = (heapExec + 0.6*e.offHeapMB) / math.Max(1, e.cores)
	e.heapShare = heapExec / (heapExec + 0.6*e.offHeapMB)

	// Aggregate bandwidths. Small shuffle file buffers fragment writes and
	// cost effective disk bandwidth; extra connections per peer help keep
	// the pipes full.
	fileBufKB := c[conf.PShuffleFileBuffer]
	e.aggDiskMBps = float64(cl.SlaveNodes) * cl.DiskMBps * (0.80 + 0.20*math.Min(1, fileBufKB/64))
	numConn := c[conf.PShuffleNumConnections]
	e.aggNetMBps = float64(cl.SlaveNodes) * cl.NetMBps * (0.88 + 0.03*(numConn-1))
	e.crossNodeFrac = float64(cl.SlaveNodes-1) / float64(cl.SlaveNodes)

	e.shufflePartitions = c[conf.PSQLShufflePartitions]
	e.scanParallelism = c[conf.PDefaultParallelism]

	if c.Bool(conf.PShuffleCompress) {
		lvl := c[conf.PZstdLevel]
		e.comprRatio = 0.50 - 0.04*lvl
		bufPenalty := 1.0 + 0.2*math.Max(0, (32-c[conf.PZstdBufferSize])/32)
		e.comprCPUperMB = (0.0018 + 0.0008*lvl) * bufPenalty / e.coreSpeed
	} else {
		e.comprRatio = 1
	}
	if c.Bool(conf.PShuffleSpillCompress) {
		e.spillRatio = 0.55
	} else {
		e.spillRatio = 1
	}

	// Per-wave overhead: task launch, scheduling and the data-locality wait
	// (spark.locality.wait delays task launch when local slots are busy).
	reviveLag := 0.015 * (c[conf.PSchedulerReviveInterval] - 1)
	e.waveOverheadSec = 0.08 + 0.04*c[conf.PLocalityWait]*0.3 + reviveLag

	// Driver-side fixed cost per query: planning, codegen, collecting
	// results. More driver cores parse/schedule faster; tiny heaps make the
	// driver GC during plan broadcast.
	e.driverCores = math.Max(1, c[conf.PDriverCores])
	driverFactor := 1.0 + 0.5/e.driverCores
	if c[conf.PDriverMemory] < 8 {
		driverFactor += 0.1
	}
	e.fixedPerQuery = 0.4 * driverFactor

	e.sortMerge = c.Bool(conf.PPreferSortMergeJoin)
	e.radixSort = c.Bool(conf.PRadixSort)
	e.twoLevelAgg = c.Bool(conf.PTwoLevelAggMap)
	e.bypassThreshold = c[conf.PShuffleBypassMergeThreshold]
	e.broadcastKB = c[conf.PAutoBroadcastJoinThreshold]
	e.broadcastCompress = c.Bool(conf.PBroadcastCompress)
	e.broadcastBlockMB = c[conf.PBroadcastBlockSize]
	e.maxInFlightMB = c[conf.PReducerMaxSizeInFlight]

	// CPU cost coefficients (seconds per MB per core at ARM speed).
	e.scanCPUperMB = 0.009 / e.coreSpeed // ≈110 MB/s/core Parquet decode + filter
	e.procCPUperMB = 0.022 / e.coreSpeed // ≈45 MB/s/core join probe / agg update
	e.sortCPUperMB = 0.004 / e.coreSpeed
	if e.radixSort {
		e.sortCPUperMB *= 0.92
	}

	if c.Bool(conf.PRetainGroupColumns) {
		e.retainGroupFactor = 1.04
	} else {
		e.retainGroupFactor = 1.0
	}
	if c.Bool(conf.PColumnarCompressed) {
		e.columnarScanFactor = 0.80
	} else {
		e.columnarScanFactor = 1.0
	}
	if c.Bool(conf.PPartitionPruning) {
		e.columnarScanFactor *= 0.96
	}
	// In-memory columnar batch size: too small → per-batch overhead, too
	// large → cache misses. Mild quadratic bowl around ~12k rows, applied
	// to scan CPU only (the disk path is unaffected by batching).
	batch := c[conf.PColumnarBatchSize]
	e.batchCPUFactor = 1 + 0.015*math.Pow((batch-12000)/8000, 2)

	// Codegen falls back to interpreted mode for very wide plans when
	// maxFields is small; modeled as a mild scan-CPU penalty below (per
	// query, depends on CPUWeight).
	_ = c[conf.PCodegenMaxFields]

	// Very large heaps lengthen individual stop-the-world pauses
	// superlinearly (full-GC cost scales with live-set size): the optimal
	// heap is a band, not "as large as possible".
	e.gcHeapPauseFactor = 0.08 * math.Pow(e.heapMB/(32*1024), 1.5)
	return e
}

// stageCost is the latency contribution of one stage plus the bookkeeping
// the GC model and the analysis figures need.
type stageCost struct {
	sec        float64
	cpuWallSec float64 // wall-clock CPU busy time (GC applies to this)
	pressure   float64 // working set / execution memory per task
	shuffleMB  float64
	spillMB    float64

	// Component view (seconds), for Explain: the bound resource wins.
	diskSec, netSec, overheadSec, tailSec float64
	thrashFactor                          float64
	waves                                 int
}

// scanStage models the leaf stage: columnar scan + filter + project.
// Selections are bounded below by aggregate disk bandwidth, which is why
// they are configuration-insensitive (Section 5.11).
func scanStage(e env, q Query, scanMB float64, maxFieldsPenalty float64) stageCost {
	readMB := scanMB * e.columnarScanFactor
	tasks := math.Max(math.Ceil(readMB/128), 1)
	if q.Class != Selection {
		// Wide plans re-partition their scan output; default.parallelism
		// bounds the parent RDD partition count.
		tasks = math.Max(tasks, e.scanParallelism*0.25)
	}
	slotsEff := math.Min(e.slots, tasks)
	diskT := readMB / e.aggDiskMBps
	cpuAgg := readMB * e.scanCPUperMB * q.CPUWeight * maxFieldsPenalty * e.batchCPUFactor
	waves := math.Ceil(tasks / e.slots)
	// Wave quantization: a stage occupies waves × slots slot-intervals even
	// when the last wave is nearly empty, so CPU-bound stages waste the
	// idle slots (the classic "partitions should be a small multiple of
	// total cores" Spark guideline).
	waveEff := tasks / (waves * math.Min(e.slots, tasks))
	if waveEff > 1 {
		waveEff = 1
	}
	if waveEff < 0.6 {
		waveEff = 0.6 // the scheduler back-fills part of the idle wave
	}
	cpuT := cpuAgg / slotsEff / waveEff
	t := math.Max(diskT, cpuT) + waves*e.waveOverheadSec
	return stageCost{
		sec: t, cpuWallSec: cpuT, diskSec: diskT,
		overheadSec: waves * e.waveOverheadSec, waves: int(waves), thrashFactor: 1,
	}
}

// shuffleStage models one wide stage: map-side sort/compress/write, network
// fetch, and reduce-side join/aggregate, with spill and memory thrash when
// the per-task working set exceeds its execution-memory share.
func shuffleStage(e env, q Query, shufMB float64) stageCost {
	parts := e.shufflePartitions
	taskMB := shufMB / parts

	// In-memory expansion of deserialized rows; hash joins hold build-side
	// hash tables and expand further.
	expansion := 6.5
	procCPU := e.procCPUperMB * q.CPUWeight
	hashJoin := q.Class == Join && !e.sortMerge
	if hashJoin {
		expansion *= 1.25
		procCPU *= 0.85
	}
	if q.Class == Aggregation {
		// Hash-aggregation maps expand with group cardinality.
		expansion *= 1.30
		if e.twoLevelAgg {
			procCPU *= 0.92
		}
	}
	if q.Class == Aggregation {
		shufMB *= e.retainGroupFactor
	}

	workingMB := taskMB * expansion
	pressure := workingMB / e.execMemPerTaskMB

	// Spill: external sort/aggregation writes extra passes to disk once the
	// working set exceeds execution memory. Multi-pass merges grow with the
	// overcommit factor.
	var spillMB float64
	if pressure > 1 {
		passes := math.Min(3, math.Log2(pressure)+1)
		spillMB = shufMB * passes * e.spillRatio
	}

	// Map-side sort is skipped when the partition count is at most the
	// bypass-merge threshold (and the op needs no map-side ordering).
	sortCPU := e.sortCPUperMB
	if parts <= e.bypassThreshold && q.Class == Join && !e.sortMerge {
		sortCPU *= 0.3
	}

	wireMB := shufMB * e.comprRatio
	diskT := (wireMB*2 + spillMB*2) / e.aggDiskMBps
	netT := wireMB * e.crossNodeFrac / e.aggNetMBps
	// Reducers with tiny in-flight windows cannot keep the network busy.
	if e.maxInFlightMB < taskMB*e.comprRatio {
		netT *= 1 + 0.25*math.Min(1, 1-e.maxInFlightMB/(taskMB*e.comprRatio))
	}

	cpuAgg := shufMB * (2*e.comprCPUperMB + sortCPU + procCPU)
	if spillMB > 0 {
		cpuAgg += spillMB * e.comprCPUperMB // re-serialize spilled runs
	}
	slotsEff := math.Min(e.slots, parts)
	waves := math.Ceil(parts / e.slots)
	// Wave quantization (see scanStage): mismatched partition counts leave
	// the last wave mostly idle.
	waveEff := parts / (waves * slotsEff)
	if waveEff > 1 {
		waveEff = 1
	}
	if waveEff < 0.6 {
		waveEff = 0.6 // the scheduler back-fills part of the idle wave
	}
	cpuT := cpuAgg / slotsEff / waveEff

	// Driver-side task dispatch: every task costs scheduler time, divided
	// over the driver cores — over-partitioning is not free.
	dispatch := parts * 0.002 / e.driverCores

	t := math.Max(diskT, math.Max(netT, cpuT)) + waves*e.waveOverheadSec + dispatch

	// Straggler tail: the stage ends when the most skewed task does. A
	// skewed key's partition holds ≈(1 + 2.5·Skew)× the average bytes, and
	// that task's extra work is serial — so coarser partitioning (fewer,
	// fatter partitions) directly lengthens the tail. This is the main
	// reason spark.sql.shuffle.partitions tops the paper's Table 3.
	serialPerMB := procCPU + sortCPU + 2*e.comprCPUperMB
	tail := q.Skew * 2.5 * taskMB * serialPerMB
	t += tail

	// Memory thrash: as the working set overcommits its execution-memory
	// share, operators degrade smoothly from extra spill passes into
	// repeated OOM-retry cycles (the paper's "too small value may even
	// lead to OOM errors"; failed tasks are retried and a stage retry
	// re-runs its whole task set). This is the heavy tail that makes
	// shuffle-bound queries score extreme CVs under random configurations
	// (Q72 reaches CV ≈ 3.5 in Fig. 8).
	coef := 0.40
	if hashJoin || q.Class == Aggregation {
		coef = 0.60 // hash tables cannot spill incrementally; cliffs are steeper
	}
	thrash := 1 + math.Min(coef*pressure*pressure, 49)
	t *= thrash

	return stageCost{
		sec: t, cpuWallSec: cpuT, pressure: pressure, shuffleMB: shufMB, spillMB: spillMB,
		diskSec: diskT, netSec: netT, tailSec: tail,
		overheadSec: waves*e.waveOverheadSec + dispatch, waves: int(waves), thrashFactor: thrash,
	}
}
