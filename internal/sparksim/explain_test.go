package sparksim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"locat/internal/conf"
)

func TestExplainComponentsConsistent(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0), WithRunNoise(0))
	c := cl.Space().Default()
	q := joinQuery()
	bd := s.Explain(q, c, 200)
	if bd.Query != q.Name {
		t.Fatalf("query name %q", bd.Query)
	}
	if len(bd.Stages) != q.Stages {
		t.Fatalf("got %d stages; want %d", len(bd.Stages), q.Stages)
	}
	if bd.Stages[0].Kind != "scan" || bd.Stages[1].Kind != "shuffle" {
		t.Fatal("stage kinds wrong")
	}
	// The breakdown total matches the simulator's noiseless time exactly.
	if want := s.NoiselessQueryTime(q, c, 200); bd.TotalSec != want {
		t.Fatalf("TotalSec %v != NoiselessQueryTime %v", bd.TotalSec, want)
	}
	// Stage seconds plus GC plus fixed reconstruct the total (broadcast
	// cost is zero for this fact-fact join).
	var sum float64
	for _, st := range bd.Stages {
		sum += st.Sec
		if st.Sec <= 0 || st.ThrashFactor < 1 || st.Waves < 1 {
			t.Fatalf("bad stage %+v", st)
		}
		// The stage is bound by one of its components.
		bound := math.Max(st.DiskSec, math.Max(st.NetSec, st.CPUSec))
		if st.Sec+1e-9 < bound {
			t.Fatalf("stage %v below its binding component %v", st.Sec, bound)
		}
	}
	if math.Abs(sum+bd.GCSec+bd.FixedSec-bd.TotalSec) > 1e-6 {
		t.Fatalf("components %v do not reconstruct total %v", sum+bd.GCSec+bd.FixedSec, bd.TotalSec)
	}
}

func TestExplainBroadcastFlag(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0), WithRunNoise(0))
	space := cl.Space()
	q := dimJoinQuery()
	hi := space.Default()
	hi[conf.PAutoBroadcastJoinThreshold] = 8192
	hi = space.Repair(hi)
	lo := hi.Clone()
	lo[conf.PAutoBroadcastJoinThreshold] = 1024
	lo = space.Repair(lo)
	if !s.Explain(q, hi, 100).Broadcast {
		t.Fatal("broadcast not detected at 8MB threshold")
	}
	if s.Explain(q, lo, 100).Broadcast {
		t.Fatal("broadcast wrongly detected at 1MB threshold")
	}
}

func TestExplainDiagnosesThrash(t *testing.T) {
	cl := ARM()
	s := New(cl, 1, WithNoise(0), WithRunNoise(0))
	space := cl.Space()
	q := joinQuery()
	bad := space.Default()
	bad[conf.PExecutorMemory] = 4
	bad[conf.PExecutorCores] = 8
	bad[conf.PSQLShufflePartitions] = 100
	bad[conf.POffHeapEnabled] = 0
	bad = space.Repair(bad)
	bd := s.Explain(q, bad, 400)
	found := false
	for _, st := range bd.Stages {
		if st.Kind == "shuffle" && st.ThrashFactor > 2 && st.SpillMB > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("explain did not surface thrash under a starved config")
	}
}

func TestBreakdownRender(t *testing.T) {
	cl := X86()
	s := New(cl, 1, WithNoise(0), WithRunNoise(0))
	bd := s.Explain(joinQuery(), cl.Space().Default(), 100)
	var buf bytes.Buffer
	bd.Render(&buf)
	out := buf.String()
	for _, want := range []string{"heavyjoin", "stage 0 (scan)", "stage 1 (shuffle)", "pressure="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
