package runner

import (
	"math"
	"sync/atomic"

	"locat/internal/conf"
)

// Tally accumulates execution accounting across any number of metered
// runners — the machine-readable totals the benchmark harness emits
// (cluster seconds consumed, runs executed) and the perf-regression gate
// compares. Safe for concurrent use.
type Tally struct {
	runs    atomic.Int64
	secBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// add accumulates one execution.
func (t *Tally) add(sec float64) {
	t.runs.Add(1)
	for {
		old := t.secBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if t.secBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the executions counted and the cluster seconds consumed.
func (t *Tally) Snapshot() (runs int64, clusterSec float64) {
	return t.runs.Load(), math.Float64frombits(t.secBits.Load())
}

// Meter wraps a backend and charges every execution (app and query runs;
// not noiseless evaluations, which consume no cluster time) to a Tally.
// Batches dispatch through the package RunBatch on the inner backend, so
// native batch paths stay native.
type Meter struct {
	inner Runner
	t     *Tally
}

// Metered wraps r, charging executions to t.
func Metered(r Runner, t *Tally) *Meter { return &Meter{inner: r, t: t} }

// Capabilities advertise a native batch (Meter's own RunBatch negotiates on
// the inner backend), inheriting everything else.
func (m *Meter) Capabilities() Capabilities {
	caps := CapsOf(m.inner)
	caps.Name = "metered(" + caps.Name + ")"
	caps.NativeBatch = true
	return caps
}

// Space returns the inner backend's configuration space.
func (m *Meter) Space() *conf.Space { return m.inner.Space() }

// ReserveRuns delegates index accounting.
func (m *Meter) ReserveRuns(n int) uint64 { return m.inner.ReserveRuns(n) }

// RunApp executes and charges one application run.
func (m *Meter) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	res := m.inner.RunApp(app, c, dataGB)
	m.t.add(res.Sec)
	return res
}

// RunAppAt executes and charges one application run at a pinned index.
func (m *Meter) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	res := m.inner.RunAppAt(idx, app, c, dataGB)
	m.t.add(res.Sec)
	return res
}

// RunQuery executes and charges one single-query run.
func (m *Meter) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	res := m.inner.RunQuery(q, c, dataGB)
	m.t.add(res.Sec)
	return res
}

// RunBatch dispatches on the inner backend (native where available) and
// charges the completed prefix.
func (m *Meter) RunBatch(app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) ([]AppResult, int) {
	results, done := RunBatch(m.inner, app, cs, dataGB, workers, stop)
	for i := 0; i < done; i++ {
		m.t.add(results[i].Sec)
	}
	return results, done
}

// NoiselessAppTime delegates without charging: deterministic evaluations
// consume no cluster time.
func (m *Meter) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	return m.inner.NoiselessAppTime(app, c, dataGB)
}

var (
	_ BatchRunner = (*Meter)(nil)
	_ Reporter    = (*Meter)(nil)
)
