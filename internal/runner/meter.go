package runner

import (
	"math"
	"sync/atomic"
	"time"

	"locat/internal/conf"
)

// Run kinds reported to RunObservers.
const (
	// KindApp is a direct full-application execution.
	KindApp = "app"
	// KindQuery is a single-query execution.
	KindQuery = "query"
	// KindBatch marks executions completed inside a RunBatch; their wall
	// time is the batch wall amortized over its completed runs (per-run
	// wall is not observable through a native batch path).
	KindBatch = "batch"
)

// RunObserver receives one record per completed execution: the kind, the
// host wall-clock seconds the call took (amortized for batch members) and
// the simulated cluster seconds the run consumed. Implementations must be
// safe for concurrent use — the batch pool completes runs on worker
// goroutines.
type RunObserver interface {
	ObserveRun(kind string, wallSec, clusterSec float64)
}

// Tally accumulates execution accounting across any number of observed
// runners — the machine-readable totals the benchmark harness emits
// (cluster seconds consumed, runs executed) and the perf-regression gate
// compares. Safe for concurrent use. Tally is itself a RunObserver, so it
// composes with metrics sinks on the same Observed wrapper.
type Tally struct {
	runs    atomic.Int64
	secBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// ObserveRun accumulates one execution (wall time is ignored: the tally
// tracks simulated cluster cost, not host time).
func (t *Tally) ObserveRun(kind string, wallSec, clusterSec float64) {
	t.runs.Add(1)
	for {
		old := t.secBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + clusterSec)
		if t.secBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the executions counted and the cluster seconds consumed.
func (t *Tally) Snapshot() (runs int64, clusterSec float64) {
	return t.runs.Load(), math.Float64frombits(t.secBits.Load())
}

// Observed wraps a backend and reports every execution (app and query
// runs; not noiseless evaluations, which consume no cluster time) to a set
// of RunObservers — a Tally for totals, a metrics sink for labeled
// counters and duration histograms, or both. Batches dispatch through the
// package RunBatch on the inner backend, so native batch paths stay
// native. The wrapper adds no allocations per run beyond what the
// observers themselves do (pinned by TestObservedZeroExtraAllocs).
type Observed struct {
	inner Runner
	obs   []RunObserver
}

// Observe wraps r, reporting executions to every observer in obs.
func Observe(r Runner, obs ...RunObserver) *Observed {
	return &Observed{inner: r, obs: obs}
}

// Metered wraps r, charging executions to t — the common single-observer
// case of Observe.
func Metered(r Runner, t *Tally) *Observed { return Observe(r, t) }

func (m *Observed) observe(kind string, wallSec, clusterSec float64) {
	for _, o := range m.obs {
		o.ObserveRun(kind, wallSec, clusterSec)
	}
}

// Capabilities advertise a native batch (Observed's own RunBatch negotiates
// on the inner backend), inheriting everything else.
func (m *Observed) Capabilities() Capabilities {
	caps := CapsOf(m.inner)
	caps.Name = "observed(" + caps.Name + ")"
	caps.NativeBatch = true
	return caps
}

// Space returns the inner backend's configuration space.
func (m *Observed) Space() *conf.Space { return m.inner.Space() }

// ReserveRuns delegates index accounting.
func (m *Observed) ReserveRuns(n int) uint64 { return m.inner.ReserveRuns(n) }

// RunApp executes and reports one application run.
func (m *Observed) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	start := time.Now()
	res := m.inner.RunApp(app, c, dataGB)
	m.observe(KindApp, time.Since(start).Seconds(), res.Sec)
	return res
}

// RunAppAt executes and reports one application run at a pinned index.
func (m *Observed) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	start := time.Now()
	res := m.inner.RunAppAt(idx, app, c, dataGB)
	m.observe(KindApp, time.Since(start).Seconds(), res.Sec)
	return res
}

// RunQuery executes and reports one single-query run.
func (m *Observed) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	start := time.Now()
	res := m.inner.RunQuery(q, c, dataGB)
	m.observe(KindQuery, time.Since(start).Seconds(), res.Sec)
	return res
}

// RunBatch dispatches on the inner backend (native where available) and
// reports the completed prefix, one observation per run under KindBatch
// with the batch wall amortized across them.
func (m *Observed) RunBatch(app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) ([]AppResult, int) {
	start := time.Now()
	results, done := RunBatch(m.inner, app, cs, dataGB, workers, stop)
	wallEach := 0.0
	if done > 0 {
		wallEach = time.Since(start).Seconds() / float64(done)
	}
	for i := 0; i < done; i++ {
		m.observe(KindBatch, wallEach, results[i].Sec)
	}
	return results, done
}

// NoiselessAppTime delegates without reporting: deterministic evaluations
// consume no cluster time.
func (m *Observed) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	return m.inner.NoiselessAppTime(app, c, dataGB)
}

// Err surfaces the inner backend's sticky out-of-band failure, so BackendErr
// sees through the wrapper.
func (m *Observed) Err() error { return BackendErr(m.inner) }

var (
	_ BatchRunner = (*Observed)(nil)
	_ Reporter    = (*Observed)(nil)
	_ Faulty      = (*Observed)(nil)
	_ RunObserver = (*Tally)(nil)
)
