package runner

import (
	"math/rand"
	"strings"
	"testing"

	"locat/internal/conf"
	"locat/internal/obs"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// TestObservedTransparent pins that the Observed wrapper reproduces the
// bare backend's results bit-for-bit while the tally and metrics sinks see
// every execution.
func TestObservedTransparent(t *testing.T) {
	cl := sparksim.ARM()
	app := workloads.TPCH()
	space := cl.Space()

	bare := NewSim(sparksim.New(cl, 3))
	var tally Tally
	reg := obs.NewRegistry()
	wrapped := Observe(NewSim(sparksim.New(cl, 3)), &tally, NewRunMetrics(reg))

	rng := rand.New(rand.NewSource(5))
	cs := make([]conf.Config, 4)
	for i := range cs {
		cs[i] = space.Random(rng)
	}

	var wantSec, gotSec float64
	for _, c := range cs {
		a := bare.RunApp(app, c, 100)
		b := wrapped.RunApp(app, c, 100)
		if a.Sec != b.Sec {
			t.Fatalf("RunApp diverged: %v vs %v", a.Sec, b.Sec)
		}
		wantSec += a.Sec
		gotSec += b.Sec
	}
	qa := bare.RunQuery(app.Queries[0], cs[0], 100)
	qb := wrapped.RunQuery(app.Queries[0], cs[0], 100)
	if qa.Sec != qb.Sec {
		t.Fatalf("RunQuery diverged: %v vs %v", qa.Sec, qb.Sec)
	}
	wantSec += qa.Sec

	ra, _ := RunBatch(bare, app, cs, func(int) float64 { return 100 }, 2, nil)
	rb, _ := wrapped.RunBatch(app, cs, func(int) float64 { return 100 }, 2, nil)
	for i := range ra {
		if ra[i].Sec != rb[i].Sec {
			t.Fatalf("RunBatch diverged at %d: %v vs %v", i, ra[i].Sec, rb[i].Sec)
		}
		wantSec += ra[i].Sec
	}

	runs, sec := tally.Snapshot()
	if wantRuns := int64(len(cs) + 1 + len(cs)); runs != wantRuns {
		t.Fatalf("tally runs = %d, want %d", runs, wantRuns)
	}
	if diff := sec - wantSec; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("tally sec = %v, want %v", sec, wantSec)
	}

	// The registry saw the same executions, labeled by kind.
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`locat_runs_total{kind="app"} 4`,
		`locat_runs_total{kind="query"} 1`,
		`locat_runs_total{kind="batch"} 4`,
		`locat_run_wall_seconds_count{kind="app"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestObservedZeroExtraAllocs pins the acceptance criterion: the observed
// hot path (RunApp through Observed with a Tally and a RunMetrics sink)
// allocates exactly as much as the bare backend — instrumentation itself
// adds zero allocations per run.
func TestObservedZeroExtraAllocs(t *testing.T) {
	cl := sparksim.ARM()
	app := workloads.HiBenchJoin() // small app: allocation noise floor
	c := cl.Space().Default()

	bare := NewSim(sparksim.New(cl, 3))
	var tally Tally
	reg := obs.NewRegistry()
	wrapped := Observe(NewSim(sparksim.New(cl, 3)), &tally, NewRunMetrics(reg))

	base := testing.AllocsPerRun(200, func() { bare.RunApp(app, c, 100) })
	instr := testing.AllocsPerRun(200, func() { wrapped.RunApp(app, c, 100) })
	if instr > base {
		t.Fatalf("observed RunApp allocates %v/op vs bare %v/op; instrumentation must add 0", instr, base)
	}
}

// BenchmarkRunnerBare and BenchmarkRunnerObserved are the
// instrumented-vs-bare hot-path pair the CI bench smoke runs.
func BenchmarkRunnerBare(b *testing.B) {
	cl := sparksim.ARM()
	app := workloads.HiBenchJoin()
	c := cl.Space().Default()
	r := NewSim(sparksim.New(cl, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunApp(app, c, 100)
	}
}

func BenchmarkRunnerObserved(b *testing.B) {
	cl := sparksim.ARM()
	app := workloads.HiBenchJoin()
	c := cl.Space().Default()
	var tally Tally
	reg := obs.NewRegistry()
	r := Observe(NewSim(sparksim.New(cl, 3)), &tally, NewRunMetrics(reg))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunApp(app, c, 100)
	}
}
