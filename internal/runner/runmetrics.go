package runner

import (
	"locat/internal/obs"
)

// RunMetrics is a RunObserver charging every execution to an obs.Registry:
// a run counter, a simulated-cluster-seconds counter, and wall/cluster
// duration histograms, all labeled by run kind. The per-kind series are
// resolved once at construction, so the per-run path is a few atomic adds
// with zero allocations.
type RunMetrics struct {
	app, query, batch kindMetrics
}

type kindMetrics struct {
	runs       *obs.Counter
	clusterSec *obs.Counter
	wall       *obs.Histogram
	cluster    *obs.Histogram
}

func newKindMetrics(r *obs.Registry, kind string) kindMetrics {
	return kindMetrics{
		runs: r.Counter("locat_runs_total",
			"Executions performed against the execution backend.", "kind", kind),
		clusterSec: r.Counter("locat_run_cluster_seconds_total",
			"Simulated cluster seconds consumed by executions.", "kind", kind),
		wall: r.Histogram("locat_run_wall_seconds",
			"Host wall-clock seconds per execution (amortized for batch members).",
			obs.DurationBuckets, "kind", kind),
		cluster: r.Histogram("locat_run_cluster_seconds",
			"Simulated cluster seconds per execution.",
			obs.ClusterSecBuckets, "kind", kind),
	}
}

// NewRunMetrics registers (or resolves) the run metric families on r.
func NewRunMetrics(r *obs.Registry) *RunMetrics {
	return &RunMetrics{
		app:   newKindMetrics(r, KindApp),
		query: newKindMetrics(r, KindQuery),
		batch: newKindMetrics(r, KindBatch),
	}
}

// ObserveRun charges one execution.
func (m *RunMetrics) ObserveRun(kind string, wallSec, clusterSec float64) {
	km := &m.app
	switch kind {
	case KindQuery:
		km = &m.query
	case KindBatch:
		km = &m.batch
	}
	km.runs.Inc()
	km.clusterSec.Add(clusterSec)
	km.wall.Observe(wallSec)
	km.cluster.Observe(clusterSec)
}

var _ RunObserver = (*RunMetrics)(nil)
