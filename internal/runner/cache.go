package runner

import (
	"sync"
	"sync/atomic"

	"locat/internal/conf"
)

// Cache serves executions out of previously-paid trace entries and passes
// everything else through to the inner backend — the resume half of the
// service's checkpoint/restart story. A session killed mid-job re-drives
// from the start under the same seed; the deterministic search then asks
// for exactly the runs it asked for last time, the cache answers the
// already-executed prefix from the checkpoint (consuming each entry once,
// like a Replayer), and only the unpaid suffix reaches the real backend.
// The resumed session's trajectory is bit-identical to an uninterrupted one
// and Tally-style observers below the cache count zero re-executed runs.
//
// Fresh executions are reported to onRun as trace entries — the feed the
// service's periodic checkpoint writer persists. Failed runs (zero results
// under the Runner contract) are not reported: a checkpoint must only hold
// results worth not re-paying.
type Cache struct {
	inner Runner
	onRun func(TraceEntry)

	hits atomic.Int64

	mu        sync.Mutex
	byKey     map[string][]*cacheEntry
	noiseless map[string]bool // noiseless keys already reported to onRun
}

type cacheEntry struct {
	TraceEntry
	used bool
}

// NewCache wraps inner, serving lookups from prior entries first and
// reporting fresh executions to onRun (nil disables reporting). Entries of
// kinds the cache does not serve are ignored.
func NewCache(inner Runner, prior []TraceEntry, onRun func(TraceEntry)) *Cache {
	c := &Cache{inner: inner, onRun: onRun, byKey: map[string][]*cacheEntry{}, noiseless: map[string]bool{}}
	for _, e := range prior {
		ce := &cacheEntry{TraceEntry: e}
		k := e.key()
		c.byKey[k] = append(c.byKey[k], ce)
		if e.Kind == TraceNoiseless {
			// Already persisted; do not re-report it on a cache miss replay.
			c.noiseless[k] = true
		}
	}
	return c
}

// ResumedRuns reports how many executions were served from the checkpoint
// instead of re-executed.
func (c *Cache) ResumedRuns() int64 { return c.hits.Load() }

// lookup finds an unconsumed prior entry for e, preferring the one paid at
// run index idx, then file order — the Replayer's exact-match policy.
// Non-consuming lookups (noiseless) may reuse a served entry.
func (c *Cache) lookup(e *TraceEntry, idx uint64, consume bool) *TraceEntry {
	k := e.key()
	c.mu.Lock()
	defer c.mu.Unlock()
	cands := c.byKey[k]
	if len(cands) == 0 {
		return nil
	}
	var pick *cacheEntry
	for _, ce := range cands {
		if !ce.used && ce.Idx == idx {
			pick = ce
			break
		}
	}
	if pick == nil {
		for _, ce := range cands {
			if !ce.used {
				pick = ce
				break
			}
		}
	}
	if pick == nil && !consume {
		pick = cands[0]
	}
	if pick == nil {
		return nil
	}
	if consume {
		pick.used = true
	}
	return &pick.TraceEntry
}

// report feeds one fresh execution to the checkpoint writer.
func (c *Cache) report(e TraceEntry) {
	if c.onRun != nil {
		c.onRun(e)
	}
}

// Capabilities mask the inner native batch so every run is individually
// addressable by index — cache hits must intercept before the backend.
func (c *Cache) Capabilities() Capabilities {
	caps := CapsOf(c.inner)
	return Capabilities{
		Name:          "checkpoint(" + caps.Name + ")",
		NativeBatch:   false,
		MaxParallel:   caps.MaxParallel,
		Stoppable:     true,
		Deterministic: caps.Deterministic,
	}
}

// Space returns the inner backend's configuration space.
func (c *Cache) Space() *conf.Space { return c.inner.Space() }

// ReserveRuns delegates index accounting: cached and fresh runs share the
// index sequence the original session used.
func (c *Cache) ReserveRuns(n int) uint64 { return c.inner.ReserveRuns(n) }

// RunApp claims the next index and resolves it through the cache.
func (c *Cache) RunApp(app *Application, cf conf.Config, dataGB float64) AppResult {
	return c.RunAppAt(c.inner.ReserveRuns(1), app, cf, dataGB)
}

// RunAppAt serves run idx from the checkpoint when it was already paid,
// executing (and reporting) it otherwise.
func (c *Cache) RunAppAt(idx uint64, app *Application, cf conf.Config, dataGB float64) AppResult {
	q := TraceEntry{Kind: TraceApp, App: app.Name, NQ: len(app.Queries), Conf: cf, DataGB: dataGB}
	if hit := c.lookup(&q, idx, true); hit != nil && hit.Result != nil {
		c.hits.Add(1)
		res := *hit.Result
		res.Queries = append([]QueryResult(nil), hit.Result.Queries...)
		return res
	}
	res := c.inner.RunAppAt(idx, app, cf, dataGB)
	if res.Sec > 0 {
		cp := res
		cp.Queries = append([]QueryResult(nil), res.Queries...)
		c.report(TraceEntry{
			Stream: "", Kind: TraceApp, Idx: idx,
			App: app.Name, NQ: len(app.Queries),
			Conf: append([]float64(nil), cf...), DataGB: dataGB, Result: &cp,
		})
	}
	return res
}

// RunQuery resolves one single-query execution through the cache, pinning
// the run index when the inner backend supports that.
func (c *Cache) RunQuery(q Query, cf conf.Config, dataGB float64) QueryResult {
	idx := c.inner.ReserveRuns(1)
	e := TraceEntry{Kind: TraceQuery, QueryName: q.Name, Conf: cf, DataGB: dataGB}
	if hit := c.lookup(&e, idx, true); hit != nil && hit.QueryRes != nil {
		c.hits.Add(1)
		return *hit.QueryRes
	}
	var res QueryResult
	if qr, ok := c.inner.(queryRunner); ok {
		res = qr.RunQueryAt(idx, q, cf, dataGB)
	} else {
		res = c.inner.RunQuery(q, cf, dataGB)
	}
	if res.Sec > 0 {
		cp := res
		c.report(TraceEntry{
			Kind: TraceQuery, Idx: idx, QueryName: q.Name,
			Conf: append([]float64(nil), cf...), DataGB: dataGB, QueryRes: &cp,
		})
	}
	return res
}

// NoiselessAppTime serves checkpointed deterministic evaluations without
// consuming them (they are pure and may repeat), reporting fresh ones once.
func (c *Cache) NoiselessAppTime(app *Application, cf conf.Config, dataGB float64) float64 {
	q := TraceEntry{Kind: TraceNoiseless, App: app.Name, NQ: len(app.Queries), Conf: cf, DataGB: dataGB}
	if hit := c.lookup(&q, 0, false); hit != nil {
		return hit.Sec
	}
	sec := c.inner.NoiselessAppTime(app, cf, dataGB)
	e := TraceEntry{
		Kind: TraceNoiseless, App: app.Name, NQ: len(app.Queries),
		Conf: append([]float64(nil), cf...), DataGB: dataGB, Sec: sec,
	}
	k := e.key()
	c.mu.Lock()
	seen := c.noiseless[k]
	c.noiseless[k] = true
	c.mu.Unlock()
	if !seen {
		c.report(e)
	}
	return sec
}

// Err surfaces the inner backend's sticky failure through the cache layer.
func (c *Cache) Err() error { return BackendErr(c.inner) }

var (
	_ Runner   = (*Cache)(nil)
	_ Reporter = (*Cache)(nil)
	_ Faulty   = (*Cache)(nil)
)
