package runner

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locat/internal/conf"
	"locat/internal/sparksim"
)

// RunQueryAt pins fakeBackend query runs to an explicit index, so the fault
// wrappers keep chaotic query sessions index-aligned with fault-free ones.
func (f *fakeBackend) RunQueryAt(idx uint64, q Query, c conf.Config, dataGB float64) QueryResult {
	return QueryResult{Name: q.Name, Sec: float64(idx+1) + c[0]}
}

func noSleep(time.Duration) {}

func TestParseChaosSpec(t *testing.T) {
	o, err := ParseChaosSpec("drop=0.3,maxfail=2,delay=0.1,delayms=50,failafter=40,killafter=25,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := &ChaosOptions{
		DropRate: 0.3, MaxConsecutive: 2, DelayRate: 0.1, Delay: 50 * time.Millisecond,
		FailAfter: 40, KillAfter: 25, Seed: 7,
	}
	if !reflect.DeepEqual(o, want) {
		t.Fatalf("parsed %+v, want %+v", o, want)
	}
	if o, err := ParseChaosSpec(""); err != nil || o != nil {
		t.Fatalf("empty spec: got %+v, %v; want nil, nil", o, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-0.1", "maxfail=-1", "maxfail=x", "wat=1", "seed=abc", "delayms=-5"} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

// A retried chaotic session must reproduce the fault-free session
// bit-for-bit: MaxConsecutive bounds the failures of any run below the
// retry budget, so every drop heals and the same results come back in the
// same order.
func TestChaosWithRetryMatchesFaultFree(t *testing.T) {
	want, _, wantNoiseless := driveSession(t, newFakeBackend(Capabilities{}))

	var retries atomic.Int64
	chain := NewRetrying(
		NewChaos(newFakeBackend(Capabilities{}), ChaosOptions{DropRate: 0.5, MaxConsecutive: 2, Seed: 9}),
		RetryOptions{MaxAttempts: 3, Sleep: noSleep, OnRetry: func() { retries.Add(1) }},
	)
	got, _, gotNoiseless := driveSession(t, chain)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaotic session diverged from fault-free results")
	}
	if !reflect.DeepEqual(gotNoiseless, wantNoiseless) {
		t.Fatalf("noiseless evaluations diverged: %v vs %v", gotNoiseless, wantNoiseless)
	}
	if retries.Load() == 0 {
		t.Fatal("no retries happened; drop rate 0.5 should have faulted something")
	}
	if err := BackendErr(chain); err != nil {
		t.Fatalf("healed session reports backend error: %v", err)
	}
}

// The same chaos seed must produce the same fault schedule on every run and
// worker count: the retry counts of repeated sessions are identical.
func TestChaosScheduleDeterministic(t *testing.T) {
	counts := make([]int64, 3)
	for i := range counts {
		var retries atomic.Int64
		chain := NewRetrying(
			NewChaos(newFakeBackend(Capabilities{}), ChaosOptions{DropRate: 0.4, Seed: 11}),
			RetryOptions{MaxAttempts: 3, Sleep: noSleep, OnRetry: func() { retries.Add(1) }},
		)
		driveSession(t, chain)
		counts[i] = retries.Load()
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("retry counts differ across identical sessions: %v", counts)
	}
}

// Dropped attempts must not reach the inner backend: a Replayer below the
// chaos layer consumes one trace entry per served run, so a drop that
// touched it would desynchronize the replay.
func TestChaosDropNeverTouchesInner(t *testing.T) {
	var tally Tally
	inner := Metered(newFakeBackend(Capabilities{}), &tally)
	chaos := NewChaos(inner, ChaosOptions{DropRate: 1, MaxConsecutive: 1, Seed: 3})
	app := batchApp()
	c := inner.Space().Default()

	// First attempt of run 0 drops (rate 1); no execution below.
	if res, err := chaos.TryRunAppAt(chaos.ReserveRuns(1), app, c, 100); err == nil || res.Sec != 0 {
		t.Fatalf("want dropped first attempt, got %+v, %v", res, err)
	}
	if runs, _ := tally.Snapshot(); runs != 0 {
		t.Fatalf("drop executed %d inner runs; want 0", runs)
	}
	if !IsTransient(&errChaosDrop{}) {
		t.Fatal("chaos drops must classify transient")
	}
	// Second attempt of the same index clears (maxfail 1) and executes.
	if _, err := chaos.TryRunAppAt(0, app, c, 100); err != nil {
		t.Fatalf("second attempt should heal: %v", err)
	}
	if runs, _ := tally.Snapshot(); runs != 1 {
		t.Fatalf("healed attempt executed %d runs; want 1", runs)
	}
}

func TestChaosFailAfterIsSticky(t *testing.T) {
	fake := newFakeBackend(Capabilities{})
	chaos := NewChaos(fake, ChaosOptions{FailAfter: 2, Seed: 1})
	app := batchApp()
	c := fake.Space().Default()
	for i := 0; i < 2; i++ {
		if res := chaos.RunApp(app, c, 100); res.Sec == 0 {
			t.Fatalf("run %d should succeed before FailAfter", i)
		}
	}
	if err := BackendErr(chaos); !errors.Is(err, ErrChaosFailed) {
		t.Fatalf("after FailAfter: err = %v, want ErrChaosFailed", err)
	}
	if res := chaos.RunApp(app, c, 100); res.Sec != 0 {
		t.Fatal("runs after the sticky failure must report zero results")
	}
	// Sticky failures are not transient: a retry policy must give up.
	if IsTransient(BackendErr(chaos)) {
		t.Fatal("sticky chaos failure classified transient")
	}
}

// A chaos kill inside a parallel batch must surface as a panic on the
// calling goroutine (where session-level recovery lives), not crash the
// process from a pool worker.
func TestBatchPanicReachesCaller(t *testing.T) {
	fake := newFakeBackend(Capabilities{})
	chaos := NewChaos(fake, ChaosOptions{KillAfter: 2, Seed: 1})
	cs := randomConfigs(fake.Space(), 8, 5)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("kill did not propagate out of RunBatch")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "chaos kill") {
			t.Fatalf("unexpected panic payload: %v", p)
		}
	}()
	RunBatch(chaos, batchApp(), cs, func(int) float64 { return 100 }, 4, nil)
}

// Backoff delays are a pure function of (seed, index, attempt): capped
// exponential with jitter in [0.5, 1) of the nominal delay.
func TestRetryBackoffDeterministicAndBounded(t *testing.T) {
	sleeps := func() []time.Duration {
		var got []time.Duration
		var mu sync.Mutex
		chain := NewRetrying(
			NewChaos(newFakeBackend(Capabilities{}), ChaosOptions{DropRate: 0.6, MaxConsecutive: 2, Seed: 4}),
			RetryOptions{
				MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 150 * time.Millisecond,
				Seed:  8,
				Sleep: func(d time.Duration) { mu.Lock(); got = append(got, d); mu.Unlock() },
			},
		)
		driveSession(t, chain)
		return got
	}
	a, b := sleeps(), sleeps()
	if len(a) == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	// Batch workers interleave retries, so compare the schedule as a set.
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("backoff schedule not deterministic:\n%v\n%v", a, b)
	}
	for _, d := range a {
		if d < 50*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("delay %v outside [base/2, max)", d)
		}
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	var tally Tally
	inner := Metered(newFakeBackend(Capabilities{}), &tally)
	var opened atomic.Int64
	chain := NewRetrying(
		// Every attempt drops and maxfail exceeds the retry budget, so every
		// run exhausts its attempts.
		NewChaos(inner, ChaosOptions{DropRate: 1, MaxConsecutive: 100, Seed: 2}),
		RetryOptions{MaxAttempts: 2, BreakerThreshold: 3, Sleep: noSleep,
			OnBreakerOpen: func() { opened.Add(1) }},
	)
	app := batchApp()
	c := inner.Space().Default()
	for i := 0; i < 3; i++ {
		if err := BackendErr(chain); err != nil {
			t.Fatalf("breaker open after only %d failed runs: %v", i, err)
		}
		chain.RunApp(app, c, 100)
	}
	if err := BackendErr(chain); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after 3 failed runs: err = %v, want ErrBreakerOpen", err)
	}
	if opened.Load() != 1 {
		t.Fatalf("OnBreakerOpen fired %d times, want 1", opened.Load())
	}
	// Open breaker short-circuits: no further inner attempts.
	before, _ := tally.Snapshot()
	chain.RunApp(app, c, 100)
	if after, _ := tally.Snapshot(); after != before {
		t.Fatal("breaker-open run still reached the backend")
	}
	if before != 0 {
		t.Fatalf("dropped attempts executed %d inner runs, want 0", before)
	}
}

// stickyFake is a Faulty backend for forwarding tests.
type stickyFake struct {
	*fakeBackend
	err error
}

func (s *stickyFake) Err() error { return s.err }

// BackendErr must see through the full production wrapper chain
// (Observed ∘ Retrying ∘ Chaos ∘ backend) from every layer it can
// originate at: the innermost backend, the chaos layer, and the breaker.
func TestBackendErrThroughWrapperChain(t *testing.T) {
	// Innermost sticky failure surfaces through all three wrappers.
	bottom := &stickyFake{fakeBackend: newFakeBackend(Capabilities{})}
	var tally Tally
	chain := Observe(
		NewRetrying(NewChaos(bottom, ChaosOptions{Seed: 1}), RetryOptions{Sleep: noSleep}),
		&tally)
	if err := BackendErr(chain); err != nil {
		t.Fatalf("healthy chain reports %v", err)
	}
	bottom.err = errors.New("gateway dead")
	if err := BackendErr(chain); err == nil || err.Error() != "gateway dead" {
		t.Fatalf("innermost error not forwarded: %v", err)
	}

	// Chaos-layer sticky failure surfaces through Retrying and Observed.
	chaos := NewChaos(newFakeBackend(Capabilities{}), ChaosOptions{FailAfter: 1, Seed: 1})
	chain2 := Observe(NewRetrying(chaos, RetryOptions{Sleep: noSleep}), &tally)
	chain2.RunApp(batchApp(), chain2.Space().Default(), 100)
	if err := BackendErr(chain2); !errors.Is(err, ErrChaosFailed) {
		t.Fatalf("chaos failure not forwarded: %v", err)
	}

	// The chain also composes over a Replayer and keeps its results exact.
	cl := sparksim.ARM()
	sink, buf := memSink()
	rec := NewRecorder(NewSim(sparksim.New(cl, 7)), sink, "s1")
	wantApps, wantQueries, wantNoiseless := driveSession(t, rec)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(cl.Space(), buf, "s1", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full := Observe(NewRetrying(NewChaos(rp, ChaosOptions{DropRate: 0.5, MaxConsecutive: 2, Seed: 13}),
		RetryOptions{MaxAttempts: 3, Sleep: noSleep}), &tally)
	if name := CapsOf(full).Name; name != "observed(retry(chaos(trace-replay)))" {
		t.Fatalf("capability names do not nest: %q", name)
	}
	gotApps, gotQueries, gotNoiseless := driveSession(t, full)
	if !reflect.DeepEqual(gotApps, wantApps) || !reflect.DeepEqual(gotQueries, wantQueries) ||
		!reflect.DeepEqual(gotNoiseless, wantNoiseless) {
		t.Fatal("chaotic replay diverged from the recorded session")
	}
	if err := BackendErr(full); err != nil {
		t.Fatalf("healed replay chain reports %v", err)
	}
}

// The cache must serve checkpointed runs without re-executing them: a full
// re-drive of a fully-checkpointed session costs zero backend runs and
// returns identical results.
func TestCacheServesCheckpointedRuns(t *testing.T) {
	var entries []TraceEntry
	var mu sync.Mutex
	var payTally Tally
	paying := NewCache(Metered(newFakeBackend(Capabilities{}), &payTally), nil, func(e TraceEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	})
	wantApps, wantQueries, wantNoiseless := driveSession(t, paying)
	paidRuns, _ := payTally.Snapshot()
	if paidRuns == 0 || paying.ResumedRuns() != 0 {
		t.Fatalf("first drive: %d paid runs, %d resumed", paidRuns, paying.ResumedRuns())
	}

	var resumeTally Tally
	resumed := NewCache(Metered(newFakeBackend(Capabilities{}), &resumeTally), entries, nil)
	gotApps, gotQueries, gotNoiseless := driveSession(t, resumed)
	if !reflect.DeepEqual(gotApps, wantApps) || !reflect.DeepEqual(gotQueries, wantQueries) ||
		!reflect.DeepEqual(gotNoiseless, wantNoiseless) {
		t.Fatal("resumed session diverged from the original")
	}
	if runs, _ := resumeTally.Snapshot(); runs != 0 {
		t.Fatalf("resumed session re-executed %d runs; want 0", runs)
	}
	if resumed.ResumedRuns() != paidRuns {
		t.Fatalf("resumed %d runs, want %d", resumed.ResumedRuns(), paidRuns)
	}
}

// A partial checkpoint covers a prefix; the suffix executes fresh and is
// reported onward, so paid + fresh always equals the uninterrupted total.
func TestCachePartialCheckpointPaysOnlySuffix(t *testing.T) {
	var entries []TraceEntry
	var mu sync.Mutex
	var tally0 Tally
	first := NewCache(Metered(newFakeBackend(Capabilities{}), &tally0), nil, func(e TraceEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	})
	wantApps, _, _ := driveSession(t, first)
	total, _ := tally0.Snapshot()

	// Keep only the app runs at the first three indices — the "killed after
	// three runs" checkpoint.
	var prefix []TraceEntry
	for _, e := range entries {
		if e.Kind == TraceApp && e.Idx < 3 {
			prefix = append(prefix, e)
		}
	}
	if len(prefix) != 3 {
		t.Fatalf("prefix holds %d app entries, want 3", len(prefix))
	}

	var tally Tally
	resumed := NewCache(Metered(newFakeBackend(Capabilities{}), &tally), prefix, nil)
	gotApps, _, _ := driveSession(t, resumed)
	if !reflect.DeepEqual(gotApps, wantApps) {
		t.Fatal("partially resumed session diverged")
	}
	fresh, _ := tally.Snapshot()
	if resumed.ResumedRuns() != 3 {
		t.Fatalf("resumed %d runs, want 3", resumed.ResumedRuns())
	}
	if fresh+resumed.ResumedRuns() != total {
		t.Fatalf("fresh %d + resumed %d != total %d", fresh, resumed.ResumedRuns(), total)
	}
}

// Failed (zero-result) runs must not enter the checkpoint feed: resuming
// must never serve a failure as a paid result.
func TestCacheSkipsFailedRuns(t *testing.T) {
	var entries []TraceEntry
	var mu sync.Mutex
	// Every run fails (drop rate 1, no retry budget beyond the drops).
	dead := NewChaos(newFakeBackend(Capabilities{}), ChaosOptions{DropRate: 1, MaxConsecutive: 100, Seed: 6})
	cache := NewCache(dead, nil, func(e TraceEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	})
	if res := cache.RunApp(batchApp(), cache.Space().Default(), 100); res.Sec != 0 {
		t.Fatal("dropped run returned a result")
	}
	for _, e := range entries {
		if e.Kind != TraceNoiseless {
			t.Fatalf("failed run leaked into the checkpoint feed: %+v", e)
		}
	}
}
