// Package runner defines the execution-backend contract of the tuner: the
// seam between LOCAT's sample-efficient search (core, bo, qcsa, iicp,
// baselines, experiments, service) and whatever actually executes a Spark
// SQL application under a candidate configuration.
//
// The paper tunes against live ARM and x86 clusters; this reproduction
// historically called the analytical simulator (internal/sparksim)
// concretely from every layer. Runner breaks that coupling: the tuner only
// needs something that can execute an application under a configuration at
// a data size and report per-query latencies. Three backends ship:
//
//   - Sim wraps *sparksim.Simulator bit-for-bit (the default).
//   - Recorder / Replayer persist every (config, context) → result pair of
//     a session to a JSON-lines trace and replay it deterministically with
//     the simulator detached — zero-execution re-tuning and hermetic CI
//     fixtures (see trace.go).
//   - SparkRest maps configurations to spark-submit/REST payloads and
//     parses event-log-shaped responses — the production path to a real
//     cluster, exercised in tests against httptest (see sparkrest.go).
//
// Backends differ in what they can do natively (concurrent slots,
// cooperative stop, determinism); Capabilities reports that, and the
// package-level RunBatch negotiates: backends with a native batch
// implementation are called directly, everything else is transparently
// wrapped by a bounded worker pool that reproduces serial results exactly
// (see batch.go).
package runner

import (
	"fmt"

	"locat/internal/conf"
	"locat/internal/sparksim"
)

// The workload and result data model is shared with the simulator package,
// which doubles as the analytical profile library (an Application is a list
// of query profiles; an AppResult is per-query latencies plus totals — the
// same shape a Spark event log reduces to). Aliases let backend-agnostic
// code speak "runner" without importing sparksim.
type (
	// Application is an ordered set of queries executed back to back.
	Application = sparksim.Application
	// Query is the analytical profile of one Spark SQL query.
	Query = sparksim.Query
	// AppResult is the outcome of one application execution.
	AppResult = sparksim.AppResult
	// QueryResult is the outcome of one query execution.
	QueryResult = sparksim.QueryResult
)

// Runner executes applications under candidate configurations. All methods
// must be safe for concurrent use: the batch pool fans RunAppAt calls over
// worker goroutines.
//
// Run indices exist so that stochastic backends can make results a pure
// function of (backend state, index) instead of call order: a driver that
// reserves a block of indices and executes them on concurrent workers
// reproduces the serial call sequence bit-for-bit. Backends without that
// property (a real cluster) simply treat the index as an opaque sequence
// number.
type Runner interface {
	// Space returns the configuration space the backend executes over.
	Space() *conf.Space
	// ReserveRuns atomically claims a contiguous block of n run indices and
	// returns the first.
	ReserveRuns(n int) uint64
	// RunApp executes every query of the application in order under c and
	// returns per-query and total results, claiming the next run index.
	RunApp(app *Application, c conf.Config, dataGB float64) AppResult
	// RunAppAt executes the application as run index idx without touching
	// the run counter.
	RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult
	// RunQuery executes a single query under c, claiming the next run index.
	RunQuery(q Query, c conf.Config, dataGB float64) QueryResult
	// NoiselessAppTime returns the backend's best deterministic estimate of
	// the application latency under c — the quantity tuned-vs-default
	// comparisons report. The simulator evaluates its cost model noise-free;
	// a replay backend looks the value up in the trace; a live backend may
	// have to execute a validation run.
	NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64
}

// BatchRunner is implemented by backends with a native concurrent batch
// path. RunBatch executes the application once per configuration and
// returns the results in configuration order together with the completed
// prefix length (done < len(cs) only when stop cut the batch short).
// Use the package-level RunBatch to dispatch; it falls back to a bounded
// worker pool over RunAppAt for backends without this interface.
type BatchRunner interface {
	Runner
	RunBatch(app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) (results []AppResult, done int)
}

// Capabilities describe what a backend can do natively, so drivers can
// negotiate instead of assuming the simulator.
type Capabilities struct {
	// Name identifies the backend ("sparksim", "trace-record",
	// "trace-replay", "sparkrest").
	Name string
	// NativeBatch reports a native concurrent RunBatch; without it the
	// package-level RunBatch wraps the backend in the generic worker pool.
	NativeBatch bool
	// MaxParallel bounds the concurrent runs the backend can absorb
	// (0 = unbounded). The batch pool clamps its worker count to it.
	MaxParallel int
	// Stoppable reports that batch execution polls a stop hook between
	// runs. The generic pool provides this for every wrapped backend.
	Stoppable bool
	// Deterministic reports that an identical call sequence produces
	// identical results (replay traces, noise-free simulators) — what makes
	// a backend usable as a hermetic CI fixture.
	Deterministic bool
}

// Reporter is optionally implemented by backends that describe themselves.
type Reporter interface {
	Capabilities() Capabilities
}

// Faulty is optionally implemented by backends that can fail out-of-band
// (network transports): Err returns the first execution failure, or nil.
// Runner methods have no error channel — a failed run reports a zero
// result — so session drivers must consult BackendErr after tuning and
// refuse to report a result produced against a dead backend.
type Faulty interface {
	Err() error
}

// BackendErr returns the backend's sticky execution failure, if any.
func BackendErr(r Runner) error {
	if f, ok := r.(Faulty); ok {
		return f.Err()
	}
	return nil
}

// CapsOf returns a backend's capabilities. Backends without a Reporter get
// conservative defaults, with NativeBatch derived from the BatchRunner
// interface — so capability negotiation works for any Runner
// implementation, not just the ones shipped here.
func CapsOf(r Runner) Capabilities {
	if rep, ok := r.(Reporter); ok {
		return rep.Capabilities()
	}
	_, batch := r.(BatchRunner)
	return Capabilities{Name: fmt.Sprintf("%T", r), NativeBatch: batch}
}
