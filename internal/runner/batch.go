package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"locat/internal/conf"
)

// RunBatch executes the application once per configuration and returns the
// results in configuration order plus the completed prefix length.
//
// Backends advertising a native batch implementation (Capabilities
// NativeBatch + the BatchRunner interface) are called directly. Everything
// else is transparently wrapped by a bounded worker pool over ReserveRuns /
// RunAppAt: the pool reserves one contiguous index block up front so item i
// always executes as run index first+i regardless of which worker claims
// it, reproducing a serial RunApp loop bit-for-bit on index-deterministic
// backends. The pool clamps its worker count to the backend's MaxParallel.
//
// workers ≤ 0 selects GOMAXPROCS. stop, if non-nil, is polled before each
// item is claimed; polls are serialized, so stop keeps the single-caller
// contract it has everywhere else. results[0:done] are valid; done <
// len(cs) only when stop cut the batch short.
func RunBatch(r Runner, app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) (results []AppResult, done int) {
	caps := CapsOf(r)
	if br, ok := r.(BatchRunner); ok && caps.NativeBatch {
		return br.RunBatch(app, cs, dataGB, workers, stop)
	}
	return poolBatch(r, app, cs, dataGB, clampWorkers(workers, len(cs), caps.MaxParallel), stop)
}

// clampWorkers resolves the effective pool size: the requested count
// (GOMAXPROCS when ≤ 0), at most one per item, at most the backend cap.
func clampWorkers(workers, items, maxParallel int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if maxParallel > 0 && workers > maxParallel {
		workers = maxParallel
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// poolBatch is the generic bounded worker pool, mirroring the simulator's
// native implementation so wrapped backends keep its exact semantics.
func poolBatch(r Runner, app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) (results []AppResult, done int) {
	n := len(cs)
	results = make([]AppResult, n)
	if n == 0 {
		return results, 0
	}
	first := r.ReserveRuns(n)
	completed := make([]bool, n)
	if workers == 1 {
		// Serial fast path: no goroutine, same indices, same results.
		for i := 0; i < n; i++ {
			if stop != nil && stop() {
				break
			}
			results[i] = r.RunAppAt(first+uint64(i), app, cs[i], dataGB(i))
			completed[i] = true
		}
	} else {
		if stop != nil {
			inner := stop
			var mu sync.Mutex
			stop = func() bool {
				mu.Lock()
				defer mu.Unlock()
				return inner()
			}
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		// A panicking run (a replay trace miss, an injected chaos kill) must
		// not crash the process from a worker goroutine: capture the first
		// panic, drain the pool, and re-raise it on the caller's goroutine
		// where session-level recovery (the service's runJobSafe) can see it.
		var panicOnce sync.Once
		var panicked any
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						panicOnce.Do(func() { panicked = p })
						next.Store(int64(n)) // stop claiming further items
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if stop != nil && stop() {
						return
					}
					results[i] = r.RunAppAt(first+uint64(i), app, cs[i], dataGB(i))
					completed[i] = true
				}
			}()
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
	}
	for done < n && completed[done] {
		done++
	}
	return results, done
}
