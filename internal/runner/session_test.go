package runner_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"locat/internal/core"
	"locat/internal/runner"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// quickOpts shrink the tuning loop while keeping the full pipeline.
func quickOpts() core.Options {
	o := core.DefaultOptions()
	o.NQCSA = 10
	o.NIICP = 8
	o.MaxIter = 8
	o.MinIter = 4
	o.MCMCSamples = 2
	return o
}

// priorFromReport converts a finished session's full-application history
// into a Prior, the way the tuning service's history store does.
func priorFromReport(rep *core.Report) *core.Prior {
	p := &core.Prior{}
	for _, e := range rep.History {
		if !e.FullApp {
			continue
		}
		p.Obs = append(p.Obs, core.PriorObs{
			Conf: e.Conf, DataGB: e.DataGB, Sec: e.Sec, QuerySecs: e.QuerySecs,
		})
	}
	if rep.QCSA != nil {
		p.Sensitive = append([]string(nil), rep.QCSA.Sensitive...)
	}
	if rep.IICP != nil {
		p.Important = append([]int(nil), rep.IICP.Important...)
	}
	return p
}

// tuneOn runs one LOCAT session (optionally warm-started and/or parallel)
// on the given backend.
func tuneOn(t *testing.T, r runner.Runner, prior *core.Prior, workers int, gb float64, seed int64) *core.Report {
	t.Helper()
	o := quickOpts()
	o.Seed = seed
	o.Prior = prior
	o.Workers = workers
	rep, err := core.New(r, workloads.TPCH(), o).Tune(gb)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The tentpole acceptance check: recording a full tuning session via the
// trace backend and replaying it with the simulator detached must
// reproduce the same selected configuration and cost — for a cold session
// AND a warm-started one, serially and through the batch pool.
func TestSessionRecordReplayReproducesSelection(t *testing.T) {
	cl := sparksim.ARM()
	dir := t.TempDir()

	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".trace")
			recF, err := runner.ParseSpec("record=" + path)
			if err != nil {
				t.Fatal(err)
			}

			// Cold session at 100 GB, then a warm session at 140 GB seeded
			// with the cold session's history — the service's flow.
			coldRec, err := recF.New(cl, 21, "cold")
			if err != nil {
				t.Fatal(err)
			}
			coldRep := tuneOn(t, coldRec, nil, tc.workers, 100, 21)
			prior := priorFromReport(coldRep)
			warmRec, err := recF.New(cl, 22, "warm")
			if err != nil {
				t.Fatal(err)
			}
			warmRep := tuneOn(t, warmRec, prior, tc.workers, 140, 22)
			if !warmRep.WarmStarted {
				t.Fatal("second session did not warm-start")
			}
			if err := recF.Close(); err != nil {
				t.Fatal(err)
			}

			// Replay both sessions from the trace, simulator detached.
			repF, err := runner.ParseSpec("replay=" + path)
			if err != nil {
				t.Fatal(err)
			}
			coldPlay, err := repF.New(cl, 21, "cold")
			if err != nil {
				t.Fatal(err)
			}
			coldGot := tuneOn(t, coldPlay, nil, tc.workers, 100, 21)
			warmPlay, err := repF.New(cl, 22, "warm")
			if err != nil {
				t.Fatal(err)
			}
			warmGot := tuneOn(t, warmPlay, priorFromReport(coldGot), tc.workers, 140, 22)

			for _, cmp := range []struct {
				phase     string
				want, got *core.Report
			}{
				{"cold", coldRep, coldGot},
				{"warm", warmRep, warmGot},
			} {
				if !reflect.DeepEqual(cmp.want.Best, cmp.got.Best) {
					t.Fatalf("%s replay selected a different configuration", cmp.phase)
				}
				if cmp.want.TunedSec != cmp.got.TunedSec {
					t.Fatalf("%s replay tuned cost %.6f, want %.6f", cmp.phase, cmp.got.TunedSec, cmp.want.TunedSec)
				}
				if cmp.want.OverheadSec != cmp.got.OverheadSec {
					t.Fatalf("%s replay overhead %.6f, want %.6f", cmp.phase, cmp.got.OverheadSec, cmp.want.OverheadSec)
				}
				if len(cmp.want.History) != len(cmp.got.History) {
					t.Fatalf("%s replay history length %d, want %d", cmp.phase, len(cmp.got.History), len(cmp.want.History))
				}
			}
			if !warmGot.WarmStarted {
				t.Fatal("replayed warm session lost its warm start")
			}
		})
	}
}

// Recording must not perturb the session: a recorded tuning run must select
// exactly what the bare simulator selects.
func TestRecordingIsTransparent(t *testing.T) {
	cl := sparksim.ARM()
	bare := tuneOn(t, sparksim.New(cl, 5), nil, 1, 100, 5)

	path := filepath.Join(t.TempDir(), "x.trace")
	f, err := runner.ParseSpec("record=" + path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.New(cl, 5, "s")
	if err != nil {
		t.Fatal(err)
	}
	recorded := tuneOn(t, rec, nil, 1, 100, 5)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Best, recorded.Best) || bare.TunedSec != recorded.TunedSec {
		t.Fatal("recording changed the session outcome")
	}
}

// A session replayed with a different worker count must still reproduce
// the recording: run indices, not scheduling, identify executions.
func TestReplayWorkerCountIndependence(t *testing.T) {
	cl := sparksim.ARM()
	path := filepath.Join(t.TempDir(), "w.trace")
	f, err := runner.ParseSpec("record=" + path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.New(cl, 9, "s")
	if err != nil {
		t.Fatal(err)
	}
	want := tuneOn(t, rec, nil, 4, 100, 9)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		rf, err := runner.ParseSpec("replay=" + path)
		if err != nil {
			t.Fatal(err)
		}
		play, err := rf.New(cl, 9, "s")
		if err != nil {
			t.Fatal(err)
		}
		got := tuneOn(t, play, nil, workers, 100, 9)
		if !reflect.DeepEqual(want.Best, got.Best) || want.TunedSec != got.TunedSec {
			t.Fatalf("replay at %d workers diverged", workers)
		}
	}
}
