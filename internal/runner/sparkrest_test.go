package runner

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"locat/internal/conf"
	"locat/internal/sparksim"
)

// fakeGateway is the httptest stand-in for a spark-submit/REST gateway: it
// validates the submission payload and answers with an event-log-shaped
// response derived deterministically from the request.
func fakeGateway(t *testing.T, requests *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests != nil {
			requests.Add(1)
		}
		if r.Method != http.MethodPost || r.URL.Path != "/v1/submissions" {
			http.Error(w, "bad route", http.StatusNotFound)
			return
		}
		var sub struct {
			AppName         string            `json:"app_name"`
			Queries         []string          `json:"queries"`
			DataGB          float64           `json:"data_gb"`
			SparkProperties map[string]string `json:"spark_properties"`
			Noiseless       bool              `json:"noiseless"`
		}
		if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(sub.SparkProperties) != conf.NumParams {
			http.Error(w, "incomplete property set", http.StatusBadRequest)
			return
		}
		// The response encodes the inputs so the test can verify parsing:
		// 1500 ms per query, +500 ms when noiseless is off.
		perQueryMS := int64(1500)
		if !sub.Noiseless {
			perQueryMS += 500
		}
		resp := map[string]any{
			"app_id":      "app-0001",
			"duration_ms": perQueryMS * int64(len(sub.Queries)),
			"gc_time_ms":  int64(120 * len(sub.Queries)),
			"queries":     []map[string]any{},
		}
		qs := make([]map[string]any, 0, len(sub.Queries))
		for _, name := range sub.Queries {
			qs = append(qs, map[string]any{
				"name":                name,
				"duration_ms":         perQueryMS,
				"gc_time_ms":          120,
				"shuffle_write_bytes": int64(3 << 20), // 3 MB
				"spill_bytes":         int64(1 << 20), // 1 MB
				"peak_mem_ratio":      0.75,
			})
		}
		resp["queries"] = qs
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

// The submission payload must carry the full configuration in
// spark-defaults.conf value syntax.
func TestSparkRestPayloadMapping(t *testing.T) {
	space := sparksim.ARM().Space()
	s := NewSparkRest("http://example.invalid", space)
	c := space.Default()
	body, err := s.Payload(batchApp(), c, 150, false)
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		AppName         string            `json:"app_name"`
		Queries         []string          `json:"queries"`
		DataGB          float64           `json:"data_gb"`
		SparkProperties map[string]string `json:"spark_properties"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.AppName != "batch-test" || sub.DataGB != 150 || len(sub.Queries) != 2 {
		t.Fatalf("bad submission identity: %+v", sub)
	}
	if len(sub.SparkProperties) != conf.NumParams {
		t.Fatalf("payload carries %d properties, want %d", len(sub.SparkProperties), conf.NumParams)
	}
	// Spot-check value syntax: sized parameters carry Spark unit suffixes,
	// booleans render true/false.
	if v := sub.SparkProperties["spark.executor.memory"]; !strings.HasSuffix(v, "g") {
		t.Fatalf("spark.executor.memory=%q, want a g-suffixed size", v)
	}
	if v := sub.SparkProperties["spark.memory.offHeap.enabled"]; v != "true" && v != "false" {
		t.Fatalf("boolean property rendered %q", v)
	}
}

// RunApp must parse the event-log response with the right unit conversions.
func TestSparkRestRunApp(t *testing.T) {
	srv := httptest.NewServer(fakeGateway(t, nil))
	defer srv.Close()
	space := sparksim.ARM().Space()
	s := NewSparkRest(srv.URL, space, WithHTTPClient(srv.Client()))
	app := batchApp()
	res := s.RunApp(app, space.Default(), 100)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Sec != 4.0 { // 2 queries × 2000 ms
		t.Fatalf("Sec=%.3f, want 4.0", res.Sec)
	}
	if len(res.Queries) != 2 || res.Queries[0].Name != "Q1" {
		t.Fatalf("bad queries: %+v", res.Queries)
	}
	if got := res.Queries[0].ShuffleMB; got != 3.0 {
		t.Fatalf("ShuffleMB=%.3f, want 3.0", got)
	}
	if got := res.Queries[0].SpillMB; got != 1.0 {
		t.Fatalf("SpillMB=%.3f, want 1.0", got)
	}
	if res.GCSec != 0.24 {
		t.Fatalf("GCSec=%.3f, want 0.24", res.GCSec)
	}

	// Noiseless evaluations flag the submission and parse the same shape.
	if sec := s.NoiselessAppTime(app, space.Default(), 100); sec != 3.0 {
		t.Fatalf("NoiselessAppTime=%.3f, want 3.0", sec)
	}

	// Batches run through the generic pool (no native batch) and respect
	// the submission cap.
	caps := CapsOf(s)
	if caps.NativeBatch {
		t.Fatal("sparkrest must not advertise a native batch")
	}
	cs := randomConfigs(space, 6, 2)
	results, done := RunBatch(s, app, cs, func(int) float64 { return 100 }, 0, nil)
	if done != len(cs) {
		t.Fatalf("done=%d", done)
	}
	for i, r := range results {
		if r.Sec != 4.0 {
			t.Fatalf("batch item %d: Sec=%.3f", i, r.Sec)
		}
	}
}

// Transport failures must be sticky: the first error poisons the backend
// and later runs short-circuit without hitting the gateway.
func TestSparkRestStickyError(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "cluster on fire", http.StatusInternalServerError)
	}))
	defer srv.Close()
	space := sparksim.ARM().Space()
	s := NewSparkRest(srv.URL, space, WithHTTPClient(srv.Client()))
	app := batchApp()
	if res := s.RunApp(app, space.Default(), 100); res.Sec != 0 {
		t.Fatalf("failed run returned %.3f, want zero result", res.Sec)
	}
	if s.Err() == nil {
		t.Fatal("error not recorded")
	}
	before := requests.Load()
	if res := s.RunApp(app, space.Default(), 100); res.Sec != 0 {
		t.Fatal("poisoned backend executed a run")
	}
	if requests.Load() != before {
		t.Fatal("poisoned backend still hit the gateway")
	}
}
