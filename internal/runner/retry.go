package runner

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"locat/internal/conf"
)

// TryRunner is the per-run error surface fault-aware backends expose on top
// of Runner: the same executions, but with the failure visible per attempt
// instead of collapsed into a zero result. Chaos implements it; Retrying
// consumes it to know when (and whether) to retry.
type TryRunner interface {
	TryRunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) (AppResult, error)
}

// TransientError marks an error as transient: worth retrying with backoff.
// Chaos drops implement it; network timeouts classify transient without it.
type TransientError interface {
	Transient() bool
}

// IsTransient classifies an execution error: true for errors marking
// themselves transient (TransientError) and for network timeouts; false for
// everything else (sticky backend failures, protocol errors), which retrying
// cannot heal.
func IsTransient(err error) bool {
	var te TransientError
	if errors.As(err, &te) {
		return te.Transient()
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return false
}

// ErrBreakerOpen is the sticky failure a tripped circuit breaker reports
// (wrapped with the last run error); BackendErr surfaces it to session
// drivers between iterations.
var ErrBreakerOpen = errors.New("runner: circuit breaker open")

// RetryOptions configure a Retrying wrapper. The zero value retries up to
// 3 attempts with 100ms–2s backoff and trips the breaker after 5
// consecutive failed runs.
type RetryOptions struct {
	// MaxAttempts is the total tries per run, including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay and MaxDelay bound the capped exponential backoff between
	// attempts (defaults 100ms and 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// BreakerThreshold trips the circuit breaker after that many
	// consecutive runs whose attempts were all exhausted (default 5). Once
	// open, every run short-circuits to a zero result and Err reports
	// ErrBreakerOpen — the sticky-Faulty signal the degradation path acts
	// on.
	BreakerThreshold int
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// Sleep, if non-nil, replaces time.Sleep between attempts — the
	// injectable clock that keeps tests instant and the wallclock analyzer
	// appeased outside the exemption list.
	Sleep func(time.Duration)
	// OnRetry, if non-nil, is called once per retried attempt (metrics).
	OnRetry func()
	// OnBreakerOpen, if non-nil, is called once when the breaker trips.
	OnBreakerOpen func()
}

// Retrying wraps a fault-aware backend with bounded retries and a circuit
// breaker. Transient per-run failures (chaos drops, network timeouts) are
// retried with capped exponential backoff and deterministic jitter — the
// delay is a pure function of (seed, run index, attempt), so a retried
// session sleeps identically every time and stays reproducible. Sticky
// failures are not retried. After BreakerThreshold consecutive runs fail
// all their attempts the breaker opens: every further run short-circuits
// without touching the backend and Err reports ErrBreakerOpen, which
// session drivers consult between iterations to stop cleanly and degrade.
//
// Inner backends without the TryRunner error surface cannot signal per-run
// failure, so Retrying forwards their runs untouched (the breaker then only
// relays the inner backend's sticky Faulty state).
type Retrying struct {
	inner Runner
	try   TryRunner // nil when inner has no per-run error surface
	opts  RetryOptions

	mu          sync.Mutex
	consecutive int
	breakerErr  error
}

// NewRetrying wraps inner with the retry policy of opts.
func NewRetrying(inner Runner, opts RetryOptions) *Retrying {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 100 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	try, _ := inner.(TryRunner)
	return &Retrying{inner: inner, try: try, opts: opts}
}

// backoff returns the pre-attempt delay: capped exponential in the attempt
// number, scaled by a deterministic jitter factor in [0.5, 1) derived from
// (seed, idx, attempt) — the same splitmix64 schedule chaos uses, so
// replayed sessions back off identically.
func (r *Retrying) backoff(idx uint64, attempt int) time.Duration {
	d := r.opts.BaseDelay << (attempt - 1)
	if d > r.opts.MaxDelay || d <= 0 {
		d = r.opts.MaxDelay
	}
	jitter := 0.5 + 0.5*chaosUnit(r.opts.Seed, idx, attempt, 3)
	return time.Duration(float64(d) * jitter)
}

// open reports whether the breaker has tripped.
func (r *Retrying) open() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.breakerErr != nil
}

// noteRun feeds one run outcome into the breaker: successes reset the
// consecutive-failure count, failures advance it and trip the breaker at
// the threshold.
func (r *Retrying) noteRun(err error) {
	r.mu.Lock()
	if err == nil {
		r.consecutive = 0
		r.mu.Unlock()
		return
	}
	r.consecutive++
	trip := r.consecutive >= r.opts.BreakerThreshold && r.breakerErr == nil
	if trip {
		r.breakerErr = fmt.Errorf("%w after %d consecutive failed runs: %v",
			ErrBreakerOpen, r.consecutive, err)
	}
	r.mu.Unlock()
	if trip && r.opts.OnBreakerOpen != nil {
		r.opts.OnBreakerOpen()
	}
}

// runApp executes run idx with retries; returns a zero result for runs that
// exhaust their attempts (the Runner contract: failed runs report zero).
func (r *Retrying) runApp(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	if r.try == nil {
		return r.inner.RunAppAt(idx, app, c, dataGB)
	}
	if r.open() {
		return AppResult{}
	}
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.opts.Sleep(r.backoff(idx, attempt))
			if r.opts.OnRetry != nil {
				r.opts.OnRetry()
			}
		}
		res, err := r.try.TryRunAppAt(idx, app, c, dataGB)
		if err == nil {
			r.noteRun(nil)
			return res
		}
		lastErr = err
		if !IsTransient(err) {
			break
		}
	}
	r.noteRun(lastErr)
	return AppResult{}
}

// Capabilities mask the inner native batch (retries are per-index) and
// inherit the rest; the deterministic jitter keeps chaotic-but-deterministic
// inner backends deterministic through the retry layer.
func (r *Retrying) Capabilities() Capabilities {
	caps := CapsOf(r.inner)
	return Capabilities{
		Name:          "retry(" + caps.Name + ")",
		NativeBatch:   false,
		MaxParallel:   caps.MaxParallel,
		Stoppable:     true,
		Deterministic: caps.Deterministic,
	}
}

// Space returns the inner backend's configuration space.
func (r *Retrying) Space() *conf.Space { return r.inner.Space() }

// ReserveRuns delegates index accounting.
func (r *Retrying) ReserveRuns(n int) uint64 { return r.inner.ReserveRuns(n) }

// RunApp claims the next index and executes it with retries.
func (r *Retrying) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	return r.runApp(r.inner.ReserveRuns(1), app, c, dataGB)
}

// RunAppAt executes run idx with retries.
func (r *Retrying) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	return r.runApp(idx, app, c, dataGB)
}

// RunQuery executes a single query with retries when the inner backend
// exposes a per-query error surface.
func (r *Retrying) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	tq, ok := r.inner.(interface {
		TryRunQueryAt(idx uint64, q Query, c conf.Config, dataGB float64) (QueryResult, error)
	})
	if !ok {
		return r.inner.RunQuery(q, c, dataGB)
	}
	if r.open() {
		return QueryResult{}
	}
	idx := r.inner.ReserveRuns(1)
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.opts.Sleep(r.backoff(idx, attempt))
			if r.opts.OnRetry != nil {
				r.opts.OnRetry()
			}
		}
		res, err := tq.TryRunQueryAt(idx, q, c, dataGB)
		if err == nil {
			r.noteRun(nil)
			return res
		}
		lastErr = err
		if !IsTransient(err) {
			break
		}
	}
	r.noteRun(lastErr)
	return QueryResult{}
}

// NoiselessAppTime delegates: deterministic evaluations are never faulted,
// so there is nothing to retry.
func (r *Retrying) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	return r.inner.NoiselessAppTime(app, c, dataGB)
}

// Err reports the tripped breaker, or the inner backend's sticky failure.
func (r *Retrying) Err() error {
	r.mu.Lock()
	err := r.breakerErr
	r.mu.Unlock()
	if err != nil {
		return err
	}
	return BackendErr(r.inner)
}

var (
	_ Runner   = (*Retrying)(nil)
	_ Reporter = (*Retrying)(nil)
	_ Faulty   = (*Retrying)(nil)
)
