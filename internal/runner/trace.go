package runner

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"locat/internal/conf"
)

// The trace backend persists every execution of a session — each
// (configuration, application, data size) → result pair — to a JSON-lines
// file and replays it later with the original backend detached. Replaying a
// recorded tuning session reproduces the tuner's exact trajectory (the
// search is deterministic given its seed and the observed results), which
// buys two things the paper's online setting cannot: zero-execution
// re-tuning against past runs (in the spirit of retrieval-augmented /
// zero-execution tuning), and hermetic end-to-end CI fixtures whose
// selected configurations are pinned byte-for-byte.
//
// A trace file may interleave several independent runners (a tuning
// session plus its noiseless validation runner, or many service jobs);
// each runner writes under its own stream key and replays only its stream.

// TraceKind labels one trace entry.
type TraceKind string

// Trace entry kinds.
const (
	// TraceApp is one application execution (RunApp / RunAppAt / batch).
	TraceApp TraceKind = "app"
	// TraceQuery is one single-query execution.
	TraceQuery TraceKind = "query"
	// TraceNoiseless is one deterministic NoiselessAppTime evaluation.
	TraceNoiseless TraceKind = "noiseless"
)

// TraceEntry is one recorded execution — the JSON-lines wire format.
type TraceEntry struct {
	// Stream separates independent runners sharing one trace file.
	Stream string `json:"stream,omitempty"`
	// Kind is the entry kind.
	Kind TraceKind `json:"kind"`
	// Idx is the run index the execution was performed at (Kind app/query).
	Idx uint64 `json:"idx,omitempty"`
	// App is the application name and NQ its query count (app identity —
	// a session's reduced query application is distinct from the full one).
	App string `json:"app,omitempty"`
	NQ  int    `json:"nq,omitempty"`
	// QueryName identifies the query of a TraceQuery entry.
	QueryName string `json:"query,omitempty"`
	// Conf is the executed configuration (natural units).
	Conf []float64 `json:"conf"`
	// DataGB is the input size of the run.
	DataGB float64 `json:"data_gb"`
	// Result holds the outcome of app-shaped entries.
	Result *AppResult `json:"result,omitempty"`
	// QueryRes holds the outcome of a TraceQuery entry.
	QueryRes *QueryResult `json:"query_res,omitempty"`
	// Sec holds the scalar outcome of a TraceNoiseless entry.
	Sec float64 `json:"sec,omitempty"`
}

// key renders the entry's lookup identity: everything that determines the
// result except the run index (noise) — kind, app identity, configuration
// and data size. Configurations round-trip JSON exactly (encoding/json
// emits the shortest float64 representation that re-parses identically),
// so a replayed session re-derives byte-identical keys.
func (e *TraceEntry) key() string {
	var b strings.Builder
	b.WriteString(string(e.Kind))
	b.WriteByte('|')
	b.WriteString(e.App)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(e.NQ))
	b.WriteByte('|')
	b.WriteString(e.QueryName)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(e.DataGB, 'g', -1, 64))
	for _, v := range e.Conf {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}

// TraceSink collects the entries of one or more recorders and writes them
// out as JSON lines. Entries are buffered and written sorted by (stream,
// kind, idx) on Close, so recording the same session twice produces
// byte-identical files regardless of worker interleaving — what makes
// committed fixture traces reviewable and regenerable.
type TraceSink struct {
	mu      sync.Mutex
	entries []TraceEntry
	w       io.WriteCloser
	path    string
}

// NewTraceSink buffers entries destined for w (closed on Close).
func NewTraceSink(w io.WriteCloser) *TraceSink { return &TraceSink{w: w} }

// CreateTraceSink buffers entries destined for the file at path. A ".gz"
// suffix selects transparent gzip compression.
func CreateTraceSink(path string) (*TraceSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var w io.WriteCloser = f
	if strings.HasSuffix(path, ".gz") {
		w = &gzipFileWriter{f: f, zw: gzip.NewWriter(f)}
	}
	return &TraceSink{w: w, path: path}, nil
}

// gzipFileWriter closes both the gzip stream and the underlying file.
type gzipFileWriter struct {
	f  *os.File
	zw *gzip.Writer
}

func (g *gzipFileWriter) Write(p []byte) (int, error) { return g.zw.Write(p) }
func (g *gzipFileWriter) Close() error {
	if err := g.zw.Close(); err != nil {
		g.f.Close()
		return err
	}
	return g.f.Close()
}

// add appends one entry; safe for concurrent recorders and batch workers.
func (s *TraceSink) add(e TraceEntry) {
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
}

// Close sorts and writes the buffered entries and closes the destination.
func (s *TraceSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	sort.SliceStable(s.entries, func(a, b int) bool {
		ea, eb := &s.entries[a], &s.entries[b]
		if ea.Stream != eb.Stream {
			return ea.Stream < eb.Stream
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		if ea.Idx != eb.Idx {
			return ea.Idx < eb.Idx
		}
		return ea.key() < eb.key()
	})
	bw := bufio.NewWriter(s.w)
	enc := json.NewEncoder(bw)
	for i := range s.entries {
		if err := enc.Encode(&s.entries[i]); err != nil {
			s.w.Close()
			s.w = nil
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		s.w.Close()
		s.w = nil
		return err
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// Recorder is a pass-through Runner that records every execution of an
// inner backend into a TraceSink under one stream key. It deliberately does
// NOT advertise a native batch: batches route through the generic pool so
// every individual run passes through RunAppAt and is captured with its run
// index — which is also what keeps recorded parallel sessions identical to
// serial ones on index-deterministic backends.
type Recorder struct {
	inner  Runner
	sink   *TraceSink
	stream string

	mu        sync.Mutex
	noiseless map[string]bool // keys already recorded (deterministic, dedup)
}

// NewRecorder wraps inner, appending entries to sink under stream.
func NewRecorder(inner Runner, sink *TraceSink, stream string) *Recorder {
	return &Recorder{inner: inner, sink: sink, stream: stream, noiseless: map[string]bool{}}
}

// Capabilities inherit the inner backend's determinism but mask its native
// batch so each run is individually observed.
func (r *Recorder) Capabilities() Capabilities {
	caps := CapsOf(r.inner)
	return Capabilities{
		Name:          "trace-record(" + caps.Name + ")",
		NativeBatch:   false,
		MaxParallel:   caps.MaxParallel,
		Stoppable:     true,
		Deterministic: caps.Deterministic,
	}
}

// Space returns the inner backend's configuration space.
func (r *Recorder) Space() *conf.Space { return r.inner.Space() }

// ReserveRuns delegates index accounting to the inner backend.
func (r *Recorder) ReserveRuns(n int) uint64 { return r.inner.ReserveRuns(n) }

// RunApp claims the next index and records the execution.
func (r *Recorder) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	return r.RunAppAt(r.inner.ReserveRuns(1), app, c, dataGB)
}

// RunAppAt executes and records one application run.
func (r *Recorder) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	res := r.inner.RunAppAt(idx, app, c, dataGB)
	cp := res
	cp.Queries = append([]QueryResult(nil), res.Queries...)
	r.sink.add(TraceEntry{
		Stream: r.stream, Kind: TraceApp, Idx: idx,
		App: app.Name, NQ: len(app.Queries),
		Conf: append([]float64(nil), c...), DataGB: dataGB, Result: &cp,
	})
	return res
}

// RunQuery executes and records one single-query run, pinning it to an
// explicit index when the inner backend supports that.
func (r *Recorder) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	var idx uint64
	var res QueryResult
	if qr, ok := r.inner.(queryRunner); ok {
		idx = r.inner.ReserveRuns(1)
		res = qr.RunQueryAt(idx, q, c, dataGB)
	} else {
		res = r.inner.RunQuery(q, c, dataGB)
	}
	cp := res
	r.sink.add(TraceEntry{
		Stream: r.stream, Kind: TraceQuery, Idx: idx,
		QueryName: q.Name,
		Conf:      append([]float64(nil), c...), DataGB: dataGB, QueryRes: &cp,
	})
	return res
}

// NoiselessAppTime evaluates and records the deterministic latency
// (deduplicated: repeated evaluations of the same point record once).
func (r *Recorder) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	sec := r.inner.NoiselessAppTime(app, c, dataGB)
	e := TraceEntry{
		Stream: r.stream, Kind: TraceNoiseless,
		App: app.Name, NQ: len(app.Queries),
		Conf: append([]float64(nil), c...), DataGB: dataGB, Sec: sec,
	}
	k := e.key()
	r.mu.Lock()
	seen := r.noiseless[k]
	r.noiseless[k] = true
	r.mu.Unlock()
	if !seen {
		r.sink.add(e)
	}
	return sec
}

// queryRunner is the narrow interface Recorder needs beyond Runner to pin a
// single-query run to an explicit index; backends without it fall back to
// order-dependent recording.
type queryRunner interface {
	RunQueryAt(idx uint64, q Query, c conf.Config, dataGB float64) QueryResult
}

// MissPolicy selects what a Replayer does when a lookup finds no recorded
// entry for the requested execution.
type MissPolicy int

const (
	// MissFail panics with a diagnostic — the fixture contract: a replayed
	// session diverging from its recording is a determinism bug, and
	// failing loudly is what pins CI to the committed trajectory.
	MissFail MissPolicy = iota
	// MissNearest falls back to the recorded entry of the same kind and
	// application with the nearest configuration (normalized L2 over the
	// unit cube, data size folded in) within Tolerance.
	MissNearest
)

// ReplayOptions tune a Replayer's lookup.
type ReplayOptions struct {
	// Miss selects the miss policy (default MissFail).
	Miss MissPolicy
	// Tolerance bounds the nearest-neighbor distance MissNearest accepts
	// (normalized per-dimension RMS; 0 means unbounded). Ignored under
	// MissFail.
	Tolerance float64
}

// ErrTraceMiss is the panic payload type a MissFail replay raises.
type ErrTraceMiss struct {
	Stream string
	Key    string
}

// Error describes the missing execution.
func (e *ErrTraceMiss) Error() string {
	return fmt.Sprintf("runner: trace replay miss in stream %q: no recorded execution for %s", e.Stream, e.Key)
}

// replayEntry is one loaded trace entry plus its consumption flag and the
// configuration pre-encoded onto the unit cube (nearest-neighbor lookups
// scan all entries; encoding once at load keeps the scan a plain distance
// loop).
type replayEntry struct {
	TraceEntry
	enc  []float64
	used bool
}

// Replayer replays one stream of a recorded trace as a Runner, with the
// original backend fully detached. Lookup is exact-match first — preferring
// the entry recorded at the requested run index, then FIFO among equal
// keys — with an optional nearest-neighbor-within-tolerance fallback for
// approximate re-tuning against related recordings. Deterministic: the
// same call sequence always returns the same results.
type Replayer struct {
	space  *conf.Space
	stream string
	opts   ReplayOptions

	runs atomic.Uint64

	mu      sync.Mutex
	byKey   map[string][]*replayEntry
	entries []*replayEntry

	misses atomic.Int64
}

// NewReplayer loads the entries of stream from r (all of them when the
// trace holds a single stream and stream is ""). space must be the
// configuration space the trace was recorded over.
func NewReplayer(space *conf.Space, r io.Reader, stream string, opts ReplayOptions) (*Replayer, error) {
	var entries []TraceEntry
	dec := json.NewDecoder(r)
	for {
		var e TraceEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("runner: bad trace entry: %w", err)
		}
		entries = append(entries, e)
	}
	return NewReplayerFromEntries(space, entries, stream, opts)
}

// NewReplayerFromEntries builds a replayer over an already-decoded trace —
// the sharing path a Factory uses so a multi-runner replay decodes the
// file once. The entries slice is not mutated (per-replayer consumption
// state lives in private wrappers).
func NewReplayerFromEntries(space *conf.Space, entries []TraceEntry, stream string, opts ReplayOptions) (*Replayer, error) {
	rp := &Replayer{space: space, stream: stream, opts: opts, byKey: map[string][]*replayEntry{}}
	for _, e := range entries {
		if stream != "" && e.Stream != stream {
			continue
		}
		re := &replayEntry{TraceEntry: e, enc: space.Encode(conf.Config(e.Conf))}
		rp.entries = append(rp.entries, re)
		k := e.key()
		rp.byKey[k] = append(rp.byKey[k], re)
	}
	if len(rp.entries) == 0 {
		return nil, fmt.Errorf("runner: trace holds no entries for stream %q", stream)
	}
	return rp, nil
}

// OpenReplayer loads stream from the trace file at path (".gz" traces are
// decompressed transparently).
func OpenReplayer(space *conf.Space, path, stream string, opts ReplayOptions) (*Replayer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	return NewReplayer(space, r, stream, opts)
}

// Capabilities: replay is deterministic, has no native batch (the generic
// pool exercises the exact-index lookup), and tolerates any parallelism.
func (rp *Replayer) Capabilities() Capabilities {
	return Capabilities{Name: "trace-replay", Stoppable: true, Deterministic: true}
}

// Space returns the configuration space the trace was recorded over.
func (rp *Replayer) Space() *conf.Space { return rp.space }

// ReserveRuns claims replay run indices (mirroring the recorder's counter).
func (rp *Replayer) ReserveRuns(n int) uint64 {
	if n <= 0 {
		panic("runner: ReserveRuns of non-positive count")
	}
	return rp.runs.Add(uint64(n)) - uint64(n)
}

// Misses reports how many lookups fell through to the nearest-neighbor
// fallback — 0 after an exact replay of the recorded session.
func (rp *Replayer) Misses() int64 { return rp.misses.Load() }

// lookup resolves one execution. Exact key match first (preferring the
// entry recorded at run index idx, then the first unconsumed in file
// order); nearest-neighbor within tolerance when allowed; otherwise the
// miss policy fires.
func (rp *Replayer) lookup(e *TraceEntry, idx uint64, consume bool) *TraceEntry {
	k := e.key()
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if cands := rp.byKey[k]; len(cands) > 0 {
		var pick *replayEntry
		for _, c := range cands {
			if !c.used && c.Idx == idx {
				pick = c
				break
			}
		}
		if pick == nil {
			for _, c := range cands {
				if !c.used {
					pick = c
					break
				}
			}
		}
		if pick == nil && !consume {
			// Non-consuming lookups (noiseless evaluations) may reuse an
			// already-served deterministic entry.
			pick = cands[0]
		}
		if pick != nil {
			if consume {
				pick.used = true
			}
			return &pick.TraceEntry
		}
	}
	if rp.opts.Miss == MissNearest {
		if pick := rp.nearestLocked(e); pick != nil {
			rp.misses.Add(1)
			return pick
		}
	}
	panic(&ErrTraceMiss{Stream: rp.stream, Key: k})
}

// nearestLocked scans for the closest same-kind, same-application entry.
func (rp *Replayer) nearestLocked(e *TraceEntry) *TraceEntry {
	want := rp.space.Encode(conf.Config(e.Conf))
	bestD := math.Inf(1)
	var best *replayEntry
	for _, c := range rp.entries {
		if c.Kind != e.Kind || c.App != e.App || c.NQ != e.NQ || c.QueryName != e.QueryName {
			continue
		}
		have := c.enc
		var d float64
		for i := range want {
			diff := want[i] - have[i]
			d += diff * diff
		}
		// Fold the data-size mismatch in on the same normalized scale.
		if e.DataGB > 0 || c.DataGB > 0 {
			rel := (e.DataGB - c.DataGB) / math.Max(e.DataGB, c.DataGB)
			d += rel * rel
		}
		d = math.Sqrt(d / float64(len(want)+1))
		if d < bestD {
			bestD = d
			best = c
		}
	}
	if best == nil {
		return nil
	}
	if rp.opts.Tolerance > 0 && bestD > rp.opts.Tolerance {
		return nil
	}
	return &best.TraceEntry
}

// RunApp replays the next application execution.
func (rp *Replayer) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	return rp.RunAppAt(rp.ReserveRuns(1), app, c, dataGB)
}

// RunAppAt replays the application execution recorded for (app, c, dataGB),
// preferring the entry recorded at run index idx.
func (rp *Replayer) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	q := TraceEntry{Kind: TraceApp, App: app.Name, NQ: len(app.Queries), Conf: c, DataGB: dataGB}
	hit := rp.lookup(&q, idx, true)
	if hit.Result == nil {
		// A key-matched entry without its payload is a corrupted fixture;
		// serving a phantom zero-second run would silently poison the
		// replayed session.
		panic(&ErrTraceMiss{Stream: rp.stream, Key: q.key() + " (entry has no result payload)"})
	}
	res := *hit.Result
	res.Queries = append([]QueryResult(nil), hit.Result.Queries...)
	return res
}

// RunQuery replays one single-query execution.
func (rp *Replayer) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	idx := rp.ReserveRuns(1)
	e := TraceEntry{Kind: TraceQuery, QueryName: q.Name, Conf: c, DataGB: dataGB}
	hit := rp.lookup(&e, idx, true)
	if hit.QueryRes == nil {
		panic(&ErrTraceMiss{Stream: rp.stream, Key: e.key() + " (entry has no query payload)"})
	}
	return *hit.QueryRes
}

// NoiselessAppTime replays the recorded deterministic latency. The lookup
// does not consume: noiseless evaluations are pure and may repeat.
func (rp *Replayer) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	q := TraceEntry{Kind: TraceNoiseless, App: app.Name, NQ: len(app.Queries), Conf: c, DataGB: dataGB}
	return rp.lookup(&q, 0, false).Sec
}

var (
	_ Runner   = (*Recorder)(nil)
	_ Runner   = (*Replayer)(nil)
	_ Reporter = (*Recorder)(nil)
	_ Reporter = (*Replayer)(nil)
)
