package runner

import (
	"locat/internal/sparksim"
)

// Sim adapts *sparksim.Simulator to the Runner contract, preserving the
// simulator's behavior bit-for-bit: every method delegates, including the
// native RunBatch, so a Sim-backed session is byte-identical to the
// pre-abstraction code path.
//
// The bare *sparksim.Simulator also satisfies Runner (its method set is the
// contract's origin); the adapter only adds explicit capability reporting.
type Sim struct {
	*sparksim.Simulator
}

// NewSim wraps a simulator.
func NewSim(s *sparksim.Simulator) Sim { return Sim{Simulator: s} }

// Capabilities report the simulator's native batch path and per-run-index
// noise streams (stop polling is honored inside Simulator.RunBatch).
// Deterministic holds because results are pure functions of (run index,
// configuration, size) — the invariant the whole run-index scheme rests on
// — which lets a checkpoint-resumed session re-drive the identical
// trajectory and serve paid runs from the checkpoint verbatim.
func (s Sim) Capabilities() Capabilities {
	return Capabilities{
		Name:          "sparksim",
		NativeBatch:   true,
		Stoppable:     true,
		Deterministic: true,
	}
}

// Compile-time checks: the adapter and the bare simulator both satisfy the
// batch contract.
var (
	_ BatchRunner = Sim{}
	_ BatchRunner = (*sparksim.Simulator)(nil)
	_ Reporter    = Sim{}
)
