package runner

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"locat/internal/sparksim"
)

// A backend spec is the one-string surface every entry point (locat.Options
// Backend, locat -backend, locat-serve -backend, locat-bench -backend)
// accepts:
//
//	sim                          simulator (default; "" and "sparksim" alias)
//	record=PATH                  simulator, recording every run to PATH
//	replay=PATH                  replay PATH, fail loudly on any miss
//	replay=PATH,miss=nearest     replay PATH, nearest-neighbor fallback
//	replay=PATH,miss=nearest,tol=0.05   …bounded by a distance tolerance
//	sparkrest=URL                submit runs to a spark-submit/REST gateway
//
// PATHs ending in ".gz" are compressed/decompressed transparently.

// Factory materializes runners for one parsed backend spec. A session that
// needs several independent runners (a tuner plus its noiseless validation
// runner, or many service jobs) creates each under its own stream key;
// record-mode factories share one trace sink across streams and replay-mode
// factories share one parsed trace, so a whole multi-runner program can be
// recorded into — and replayed from — a single file. Close flushes the
// sink; it must be called to finish a recording.
type Factory struct {
	spec string
	kind string // "sim", "record", "replay", "sparkrest"
	path string
	url  string
	ropt ReplayOptions

	mu     sync.Mutex
	sink   *TraceSink
	parsed []TraceEntry // replay mode: the trace, decoded once
}

// ParseSpec validates and parses a backend spec.
func ParseSpec(spec string) (*Factory, error) {
	f := &Factory{spec: spec}
	switch {
	case spec == "" || spec == "sim" || spec == "sparksim":
		f.kind = "sim"
	case strings.HasPrefix(spec, "record="):
		f.kind = "record"
		f.path = strings.TrimPrefix(spec, "record=")
		if f.path == "" {
			return nil, fmt.Errorf("runner: backend spec %q: record needs a trace path", spec)
		}
	case strings.HasPrefix(spec, "replay="):
		f.kind = "replay"
		rest := strings.TrimPrefix(spec, "replay=")
		parts := strings.Split(rest, ",")
		f.path = parts[0]
		if f.path == "" {
			return nil, fmt.Errorf("runner: backend spec %q: replay needs a trace path", spec)
		}
		for _, p := range parts[1:] {
			switch {
			case p == "miss=fail":
				f.ropt.Miss = MissFail
			case p == "miss=nearest":
				f.ropt.Miss = MissNearest
			case strings.HasPrefix(p, "tol="):
				tol, err := strconv.ParseFloat(strings.TrimPrefix(p, "tol="), 64)
				if err != nil || tol < 0 {
					return nil, fmt.Errorf("runner: backend spec %q: bad tolerance %q", spec, p)
				}
				f.ropt.Tolerance = tol
			default:
				return nil, fmt.Errorf("runner: backend spec %q: unknown replay option %q", spec, p)
			}
		}
	case strings.HasPrefix(spec, "sparkrest="):
		f.kind = "sparkrest"
		f.url = strings.TrimPrefix(spec, "sparkrest=")
		if f.url == "" {
			return nil, fmt.Errorf("runner: backend spec %q: sparkrest needs a URL", spec)
		}
	default:
		return nil, fmt.Errorf("runner: unknown backend spec %q (want sim, record=PATH, replay=PATH[,miss=nearest[,tol=T]], or sparkrest=URL)", spec)
	}
	return f, nil
}

// Spec returns the original spec string.
func (f *Factory) Spec() string { return f.spec }

// Kind returns the backend family ("sim", "record", "replay", "sparkrest").
func (f *Factory) Kind() string { return f.kind }

// Hermetic reports whether runners never touch an execution substrate
// (replay traces) — what a hermetic CI job requires.
func (f *Factory) Hermetic() bool { return f.kind == "replay" }

// New materializes one runner for the given cluster and seed under the
// stream key. Stream keys must be deterministic across record and replay
// runs of the same program (job IDs, experiment IDs — not timestamps);
// simOpts tune the underlying simulator where one exists (noise overrides
// used by the analysis experiments) and are ignored by sparkrest and
// encoded in the recorded results under record.
func (f *Factory) New(cluster *sparksim.Cluster, seed int64, stream string, simOpts ...sparksim.Option) (Runner, error) {
	switch f.kind {
	case "sim":
		return NewSim(sparksim.New(cluster, seed, simOpts...)), nil
	case "record":
		f.mu.Lock()
		if f.sink == nil {
			sink, err := CreateTraceSink(f.path)
			if err != nil {
				f.mu.Unlock()
				return nil, err
			}
			f.sink = sink
		}
		sink := f.sink
		f.mu.Unlock()
		return NewRecorder(NewSim(sparksim.New(cluster, seed, simOpts...)), sink, stream), nil
	case "replay":
		entries, err := f.loadTrace()
		if err != nil {
			return nil, err
		}
		return NewReplayerFromEntries(cluster.Space(), entries, stream, f.ropt)
	case "sparkrest":
		return NewSparkRest(f.url, cluster.Space()), nil
	}
	return nil, fmt.Errorf("runner: unknown backend kind %q", f.kind)
}

// loadTrace decodes the replay trace once and shares it across every
// runner the factory materializes (each Replayer keeps only its own
// stream's consumption state).
func (f *Factory) loadTrace() ([]TraceEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.parsed == nil {
		entries, err := TraceEntries(f.path)
		if err != nil {
			return nil, err
		}
		f.parsed = entries
	}
	return f.parsed, nil
}

// Close flushes a recording factory's trace sink (a no-op elsewhere).
func (f *Factory) Close() error {
	f.mu.Lock()
	sink := f.sink
	f.sink = nil
	f.mu.Unlock()
	if sink != nil {
		return sink.Close()
	}
	return nil
}

// TraceEntries reads every entry of a trace file (a debugging/tooling
// helper; replay goes through OpenReplayer).
func TraceEntries(path string) ([]TraceEntry, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fp.Close()
	var r io.Reader = fp
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(fp)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	dec := json.NewDecoder(r)
	var out []TraceEntry
	for {
		var e TraceEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
