package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"locat/internal/sparksim"
)

// memSink is a TraceSink writing to a buffer.
func memSink() (*TraceSink, *bytes.Buffer) {
	var buf bytes.Buffer
	return NewTraceSink(nopCloser{&buf}), &buf
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// driveSession executes a deterministic mixed workload (serial runs, a
// parallel batch, single queries, noiseless evaluations) against r and
// returns everything observed.
func driveSession(t *testing.T, r Runner) (apps []AppResult, queries []QueryResult, noiseless []float64) {
	t.Helper()
	app := batchApp()
	space := r.Space()
	cs := randomConfigs(space, 6, 21)
	for _, c := range cs[:2] {
		apps = append(apps, r.RunApp(app, c, 100))
	}
	batch, done := RunBatch(r, app, cs[2:], func(i int) float64 { return 100 + float64(i)*20 }, 3, nil)
	if done != len(cs[2:]) {
		t.Fatalf("batch incomplete: %d", done)
	}
	apps = append(apps, batch...)
	for _, c := range cs[:2] {
		queries = append(queries, r.RunQuery(app.Queries[1], c, 100))
	}
	noiseless = append(noiseless,
		r.NoiselessAppTime(app, space.Default(), 100),
		r.NoiselessAppTime(app, cs[0], 100),
		r.NoiselessAppTime(app, space.Default(), 100), // repeat: deduped on record, replayable twice
	)
	return apps, queries, noiseless
}

// Recording a session and replaying the trace with the simulator detached
// must reproduce every result bit-for-bit, including parallel batches.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	cl := sparksim.ARM()
	sink, buf := memSink()
	rec := NewRecorder(NewSim(sparksim.New(cl, 7)), sink, "s1")
	wantApps, wantQueries, wantNoiseless := driveSession(t, rec)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := NewReplayer(cl.Space(), bytes.NewReader(buf.Bytes()), "s1", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotApps, gotQueries, gotNoiseless := driveSession(t, rp)
	if !reflect.DeepEqual(gotApps, wantApps) {
		t.Fatal("replayed app results differ from recording")
	}
	if !reflect.DeepEqual(gotQueries, wantQueries) {
		t.Fatal("replayed query results differ from recording")
	}
	if !reflect.DeepEqual(gotNoiseless, wantNoiseless) {
		t.Fatal("replayed noiseless results differ from recording")
	}
	if rp.Misses() != 0 {
		t.Fatalf("exact replay took %d nearest-neighbor fallbacks", rp.Misses())
	}
}

// Recording the same session twice must produce byte-identical trace files
// even when batch workers interleave differently — committed fixtures must
// be regenerable.
func TestTraceFilesAreDeterministic(t *testing.T) {
	cl := sparksim.ARM()
	record := func() []byte {
		sink, buf := memSink()
		rec := NewRecorder(NewSim(sparksim.New(cl, 7)), sink, "s1")
		driveSession(t, rec)
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := record(), record()
	if !bytes.Equal(a, b) {
		t.Fatal("two recordings of the same session differ byte-for-byte")
	}
}

// A replay miss under the default policy must fail loudly with a
// diagnostic — that failure is what pins hermetic CI jobs to the recorded
// trajectory.
func TestTraceReplayMissFails(t *testing.T) {
	cl := sparksim.ARM()
	sink, buf := memSink()
	rec := NewRecorder(NewSim(sparksim.New(cl, 7)), sink, "s1")
	app := batchApp()
	rec.RunApp(app, cl.Space().Default(), 100)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(cl.Space(), bytes.NewReader(buf.Bytes()), "s1", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replay of an unrecorded execution did not fail")
		}
		if _, ok := r.(*ErrTraceMiss); !ok {
			t.Fatalf("panic payload %T, want *ErrTraceMiss", r)
		}
	}()
	rp.RunApp(app, randomConfigs(cl.Space(), 1, 99)[0], 100)
}

// miss=nearest must serve the closest recorded configuration within the
// tolerance and count the fallback.
func TestTraceReplayNearest(t *testing.T) {
	cl := sparksim.ARM()
	space := cl.Space()
	sink, buf := memSink()
	rec := NewRecorder(NewSim(sparksim.New(cl, 7)), sink, "s1")
	app := batchApp()
	base := space.Default()
	want := rec.RunApp(app, base, 100)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := NewReplayer(space, bytes.NewReader(buf.Bytes()), "s1", ReplayOptions{Miss: MissNearest})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one parameter slightly: nearest lookup must land on base.
	near := base.Clone()
	near[0] *= 1.01
	if got := rp.RunApp(app, near, 100); got.Sec != want.Sec {
		t.Fatalf("nearest replay returned %.3f, want %.3f", got.Sec, want.Sec)
	}
	if rp.Misses() != 1 {
		t.Fatalf("misses=%d, want 1", rp.Misses())
	}

	// A tight tolerance must reject a far-away point.
	rp2, err := NewReplayer(space, bytes.NewReader(buf.Bytes()), "s1", ReplayOptions{Miss: MissNearest, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	far := randomConfigs(space, 1, 5)[0]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-tolerance nearest lookup did not fail")
			}
		}()
		rp2.RunApp(app, far, 100)
	}()
}

// Streams must be isolated: two recorders sharing a sink replay
// independently, and a replayer refuses a stream with no entries.
func TestTraceStreams(t *testing.T) {
	cl := sparksim.ARM()
	sink, buf := memSink()
	app := batchApp()
	c := cl.Space().Default()
	recA := NewRecorder(NewSim(sparksim.New(cl, 1)), sink, "a")
	recB := NewRecorder(NewSim(sparksim.New(cl, 2)), sink, "b")
	wantA := recA.RunApp(app, c, 100)
	wantB := recB.RunApp(app, c, 100)
	if wantA.Sec == wantB.Sec {
		t.Fatal("test needs distinct per-stream results")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		stream string
		want   AppResult
	}{{"a", wantA}, {"b", wantB}} {
		rp, err := NewReplayer(cl.Space(), bytes.NewReader(buf.Bytes()), tc.stream, ReplayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := rp.RunApp(app, c, 100); got.Sec != tc.want.Sec {
			t.Fatalf("stream %s replayed %.3f, want %.3f", tc.stream, got.Sec, tc.want.Sec)
		}
	}
	if _, err := NewReplayer(cl.Space(), bytes.NewReader(buf.Bytes()), "missing", ReplayOptions{}); err == nil {
		t.Fatal("empty stream must be an error")
	}
}

// Gzip traces must roundtrip through the file-based sink and replayer.
func TestTraceGzipFile(t *testing.T) {
	cl := sparksim.ARM()
	path := filepath.Join(t.TempDir(), "sess.trace.gz")
	sink, err := CreateTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(NewSim(sparksim.New(cl, 3)), sink, "s")
	app := batchApp()
	c := cl.Space().Default()
	want := rec.RunApp(app, c, 100)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	rp, err := OpenReplayer(cl.Space(), path, "s", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rp.RunApp(app, c, 100); got.Sec != want.Sec {
		t.Fatalf("gzip replay returned %.3f, want %.3f", got.Sec, want.Sec)
	}
	entries, err := TraceEntries(path)
	if err != nil || len(entries) != 1 {
		t.Fatalf("TraceEntries: %d, %v", len(entries), err)
	}
}

// The Meter must charge executions (including batches on native backends)
// and skip noiseless evaluations.
func TestMeterAccounting(t *testing.T) {
	cl := sparksim.ARM()
	var tally Tally
	m := Metered(NewSim(sparksim.New(cl, 5)), &tally)
	app := batchApp()
	cs := randomConfigs(cl.Space(), 4, 8)
	var want float64
	res := m.RunApp(app, cs[0], 100)
	want += res.Sec
	batch, _ := RunBatch(m, app, cs, func(int) float64 { return 100 }, 2, nil)
	for _, r := range batch {
		want += r.Sec
	}
	m.NoiselessAppTime(app, cs[0], 100)
	runs, sec := tally.Snapshot()
	if runs != 5 {
		t.Fatalf("runs=%d, want 5", runs)
	}
	if sec != want {
		t.Fatalf("clusterSec=%.3f, want %.3f", sec, want)
	}
}

// Factory specs must parse to the right kinds and reject junk.
func TestParseSpec(t *testing.T) {
	good := map[string]string{
		"":                               "sim",
		"sim":                            "sim",
		"sparksim":                       "sim",
		"record=/tmp/x.trace":            "record",
		"replay=/tmp/x.trace":            "replay",
		"replay=x,miss=nearest":          "replay",
		"replay=x,miss=nearest,tol=0.05": "replay",
		"sparkrest=http://h:6066":        "sparkrest",
	}
	for spec, kind := range good {
		f, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if f.Kind() != kind {
			t.Fatalf("ParseSpec(%q).Kind()=%s, want %s", spec, f.Kind(), kind)
		}
	}
	for _, spec := range []string{"bogus", "record=", "replay=", "sparkrest=", "replay=x,tol=-1", "replay=x,frob=1"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", spec)
		}
	}
	if f, _ := ParseSpec("replay=x"); !f.Hermetic() {
		t.Fatal("replay factory must report hermetic")
	}
	if f, _ := ParseSpec(""); f.Hermetic() {
		t.Fatal("sim factory must not report hermetic")
	}
}

// A record-mode factory must share one sink across streams and flush on
// Close; the file must then replay per stream.
func TestFactoryRecordReplay(t *testing.T) {
	cl := sparksim.ARM()
	path := filepath.Join(t.TempDir(), "f.trace")
	f, err := ParseSpec("record=" + path)
	if err != nil {
		t.Fatal(err)
	}
	app := batchApp()
	c := cl.Space().Default()
	r1, err := f.New(cl, 1, "one")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.New(cl, 2, "two")
	if err != nil {
		t.Fatal(err)
	}
	w1 := r1.RunApp(app, c, 100)
	w2 := r2.RunApp(app, c, 200)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := ParseSpec("replay=" + path)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := rf.New(cl, 1, "one")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := rf.New(cl, 2, "two")
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.RunApp(app, c, 100); got.Sec != w1.Sec {
		t.Fatalf("stream one: %.3f != %.3f", got.Sec, w1.Sec)
	}
	if got := p2.RunApp(app, c, 200); got.Sec != w2.Sec {
		t.Fatalf("stream two: %.3f != %.3f", got.Sec, w2.Sec)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
}
