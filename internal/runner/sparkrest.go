package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locat/internal/conf"
)

// SparkRest executes applications by submitting them to a Spark
// cluster-manager HTTP endpoint and parsing event-log-shaped responses —
// the production path of the paper's setting, where every sample is a real
// spark-submit against a live cluster.
//
// The wire protocol is deliberately minimal and mirrors what a thin
// gateway in front of spark-submit / the Spark REST submission API
// exposes: POST {base}/v1/submissions with the application identity, the
// input size and the full tuned property set rendered exactly as
// spark-defaults.conf would carry it; the response reduces a Spark event
// log to per-query durations, GC time, shuffle and spill volumes. The
// backend is unit-tested against net/http/httptest so the request
// construction and response parsing are exercised without a cluster.
//
// HTTP transport or decode failures are sticky: the failed run reports a
// zero result, Err returns the first error, and every later run
// short-circuits without hitting the gateway. Session drivers (the locat
// facade, the tuning service) check BackendErr after tuning and fail the
// session, so a run against a dead cluster cannot be mistaken for a
// result.
type SparkRest struct {
	base   string
	space  *conf.Space
	client *http.Client
	// maxParallel caps concurrent submissions (cluster queue slots).
	maxParallel int

	runs atomic.Uint64

	mu  sync.Mutex
	err error
}

// SparkRestOption configures a SparkRest backend.
type SparkRestOption func(*SparkRest)

// WithHTTPClient overrides the HTTP client (tests inject the httptest
// server's).
func WithHTTPClient(c *http.Client) SparkRestOption {
	return func(s *SparkRest) { s.client = c }
}

// WithMaxParallel caps concurrent submissions; the batch pool honors it
// through capability negotiation (default 4; 0 = unbounded).
func WithMaxParallel(n int) SparkRestOption {
	return func(s *SparkRest) { s.maxParallel = n }
}

// NewSparkRest returns a backend submitting to the gateway at base
// (e.g. "http://spark-gateway:6066").
func NewSparkRest(base string, space *conf.Space, opts ...SparkRestOption) *SparkRest {
	s := &SparkRest{
		base:        strings.TrimRight(base, "/"),
		space:       space,
		client:      &http.Client{Timeout: 10 * time.Minute},
		maxParallel: 4,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// submission is the POST body: the application identity plus the candidate
// configuration rendered as Spark properties.
type submission struct {
	// AppName and Queries identify what to run (a query subset encodes the
	// reduced query application).
	AppName string   `json:"app_name"`
	Queries []string `json:"queries"`
	// DataGB is the input scale factor.
	DataGB float64 `json:"data_gb"`
	// SparkProperties carries the full tuned configuration in
	// spark-defaults.conf value syntax ("8g", "200", "true", …).
	SparkProperties map[string]string `json:"spark_properties"`
	// Noiseless requests a deterministic model-based estimate instead of a
	// measured run, when the gateway offers one (validation runs).
	Noiseless bool `json:"noiseless,omitempty"`
}

// eventLogQuery is one query's reduction of the Spark event log.
type eventLogQuery struct {
	Name             string  `json:"name"`
	DurationMS       int64   `json:"duration_ms"`
	GCTimeMS         int64   `json:"gc_time_ms"`
	ShuffleWriteByte int64   `json:"shuffle_write_bytes"`
	SpillBytes       int64   `json:"spill_bytes"`
	PeakMemRatio     float64 `json:"peak_mem_ratio"`
}

// eventLogResponse is the gateway's event-log-shaped reply.
type eventLogResponse struct {
	AppID      string          `json:"app_id"`
	DurationMS int64           `json:"duration_ms"`
	GCTimeMS   int64           `json:"gc_time_ms"`
	Queries    []eventLogQuery `json:"queries"`
}

// Payload renders the submission body for (app, c, dataGB) — exposed so
// operators can inspect exactly what would hit the cluster (and tests can
// assert the mapping).
func (s *SparkRest) Payload(app *Application, c conf.Config, dataGB float64, noiseless bool) ([]byte, error) {
	props, err := SparkProperties(c)
	if err != nil {
		return nil, err
	}
	return json.Marshal(submission{
		AppName:         app.Name,
		Queries:         app.QueryNames(),
		DataGB:          dataGB,
		SparkProperties: props,
		Noiseless:       noiseless,
	})
}

// SparkProperties renders a configuration as the property→value map a
// spark-submit would receive, using the same value syntax as
// conf.FormatSparkConf (unit suffixes on sized parameters, true/false on
// switches).
func SparkProperties(c conf.Config) (map[string]string, error) {
	var b strings.Builder
	if err := conf.FormatSparkConf(&b, c); err != nil {
		return nil, err
	}
	out := make(map[string]string, conf.NumParams)
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			out[fields[0]] = fields[1]
		}
	}
	return out, nil
}

// Err returns the first transport/decode error, or nil. A backend with a
// sticky error returns zero results from every run.
func (s *SparkRest) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail records the first error.
func (s *SparkRest) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Capabilities: no native batch (the pool provides concurrency, clamped to
// the submission cap); live clusters are not deterministic.
func (s *SparkRest) Capabilities() Capabilities {
	return Capabilities{Name: "sparkrest", MaxParallel: s.maxParallel, Stoppable: true}
}

// Space returns the configuration space submissions are validated against.
func (s *SparkRest) Space() *conf.Space { return s.space }

// ReserveRuns claims submission sequence numbers.
func (s *SparkRest) ReserveRuns(n int) uint64 {
	if n <= 0 {
		panic("runner: ReserveRuns of non-positive count")
	}
	return s.runs.Add(uint64(n)) - uint64(n)
}

// submit POSTs one submission and parses the event-log reply.
func (s *SparkRest) submit(app *Application, c conf.Config, dataGB float64, noiseless bool) (AppResult, error) {
	if err := s.Err(); err != nil {
		return AppResult{}, err
	}
	body, err := s.Payload(app, c, dataGB, noiseless)
	if err != nil {
		return AppResult{}, err
	}
	resp, err := s.client.Post(s.base+"/v1/submissions", "application/json", bytes.NewReader(body))
	if err != nil {
		return AppResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return AppResult{}, fmt.Errorf("runner: sparkrest submission failed: %s", resp.Status)
	}
	var ev eventLogResponse
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		return AppResult{}, fmt.Errorf("runner: sparkrest bad event-log response: %w", err)
	}
	return eventLogToResult(&ev), nil
}

// eventLogToResult reduces the event-log reply to the tuner's result model
// (milliseconds → seconds, bytes → MB).
func eventLogToResult(ev *eventLogResponse) AppResult {
	out := AppResult{
		Sec:     float64(ev.DurationMS) / 1000,
		GCSec:   float64(ev.GCTimeMS) / 1000,
		Queries: make([]QueryResult, 0, len(ev.Queries)),
	}
	var qSec, qGC float64
	for _, q := range ev.Queries {
		qr := QueryResult{
			Name:        q.Name,
			Sec:         float64(q.DurationMS) / 1000,
			GCSec:       float64(q.GCTimeMS) / 1000,
			ShuffleMB:   float64(q.ShuffleWriteByte) / (1 << 20),
			SpillMB:     float64(q.SpillBytes) / (1 << 20),
			MaxPressure: q.PeakMemRatio,
		}
		qSec += qr.Sec
		qGC += qr.GCSec
		out.Queries = append(out.Queries, qr)
	}
	// Gateways that omit app-level totals get them from the query sum.
	if out.Sec == 0 {
		out.Sec = qSec
	}
	if out.GCSec == 0 {
		out.GCSec = qGC
	}
	return out
}

// RunApp submits one application execution.
func (s *SparkRest) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	return s.RunAppAt(s.ReserveRuns(1), app, c, dataGB)
}

// RunAppAt submits one application execution (the index is an opaque
// sequence number on a live cluster).
func (s *SparkRest) RunAppAt(_ uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	res, err := s.submit(app, c, dataGB, false)
	if err != nil {
		s.fail(err)
		return AppResult{}
	}
	return res
}

// RunQuery submits a single-query application.
func (s *SparkRest) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	app := &Application{Name: "query:" + q.Name, Queries: []Query{q}}
	res := s.RunApp(app, c, dataGB)
	if len(res.Queries) == 1 {
		return res.Queries[0]
	}
	return QueryResult{Name: q.Name, Sec: res.Sec, GCSec: res.GCSec}
}

// NoiselessAppTime requests the gateway's deterministic estimate (a
// model-based dry run; gateways without one execute a validation run).
func (s *SparkRest) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	res, err := s.submit(app, c, dataGB, true)
	if err != nil {
		s.fail(err)
		return 0
	}
	return res.Sec
}

var (
	_ Runner   = (*SparkRest)(nil)
	_ Reporter = (*SparkRest)(nil)
)
