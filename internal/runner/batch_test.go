package runner

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"locat/internal/conf"
	"locat/internal/sparksim"
)

// fakeBackend is an index-deterministic Runner WITHOUT a native batch path:
// the result of run idx is a pure function of (idx, config, dataGB). It
// models a backend like a remote executor pool that only knows how to run
// one application at a time — exactly what the generic pool must wrap
// transparently.
type fakeBackend struct {
	space    *conf.Space
	runs     atomic.Uint64
	inFlight atomic.Int64
	maxSeen  atomic.Int64
	caps     Capabilities
}

func newFakeBackend(caps Capabilities) *fakeBackend {
	return &fakeBackend{space: sparksim.ARM().Space(), caps: caps}
}

func (f *fakeBackend) Capabilities() Capabilities { return f.caps }
func (f *fakeBackend) Space() *conf.Space         { return f.space }

func (f *fakeBackend) ReserveRuns(n int) uint64 {
	return f.runs.Add(uint64(n)) - uint64(n)
}

func (f *fakeBackend) RunApp(app *Application, c conf.Config, dataGB float64) AppResult {
	return f.RunAppAt(f.ReserveRuns(1), app, c, dataGB)
}

func (f *fakeBackend) RunAppAt(idx uint64, app *Application, c conf.Config, dataGB float64) AppResult {
	cur := f.inFlight.Add(1)
	for {
		max := f.maxSeen.Load()
		if cur <= max || f.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	defer f.inFlight.Add(-1)
	sec := float64(idx+1)*1000 + c[0] + dataGB
	res := AppResult{Sec: sec, GCSec: sec * 0.1}
	for _, q := range app.Queries {
		res.Queries = append(res.Queries, QueryResult{Name: q.Name, Sec: sec / float64(len(app.Queries))})
	}
	return res
}

func (f *fakeBackend) RunQuery(q Query, c conf.Config, dataGB float64) QueryResult {
	idx := f.ReserveRuns(1)
	return QueryResult{Name: q.Name, Sec: float64(idx+1) + c[0]}
}

func (f *fakeBackend) NoiselessAppTime(app *Application, c conf.Config, dataGB float64) float64 {
	return c[0] + dataGB
}

func batchApp() *Application {
	return &Application{Name: "batch-test", Queries: []Query{
		{Name: "Q1", Class: sparksim.Selection, InputFrac: 0.2, Stages: 1, CPUWeight: 1},
		{Name: "Q2", Class: sparksim.Join, InputFrac: 0.5, ShuffleFrac: 0.4, Stages: 3, CPUWeight: 1.2},
	}}
}

func randomConfigs(space *conf.Space, n int, seed int64) []conf.Config {
	rng := rand.New(rand.NewSource(seed))
	cs := make([]conf.Config, n)
	for i := range cs {
		cs[i] = space.Random(rng)
	}
	return cs
}

// A backend without native batch support must be transparently wrapped by
// the bounded worker pool and reproduce serial results bit-for-bit at any
// worker count — the runner-level mirror of sparksim's parallel contract.
func TestGenericPoolReproducesSerial(t *testing.T) {
	app := batchApp()
	mkSerial := func() []AppResult {
		f := newFakeBackend(Capabilities{Name: "fake"})
		cs := randomConfigs(f.space, 17, 3)
		var out []AppResult
		for i, c := range cs {
			out = append(out, f.RunApp(app, c, float64(100+i)))
		}
		return out
	}
	want := mkSerial()

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		f := newFakeBackend(Capabilities{Name: "fake"})
		cs := randomConfigs(f.space, 17, 3)
		got, done := RunBatch(f, app, cs, func(i int) float64 { return float64(100 + i) }, workers, nil)
		if done != len(cs) {
			t.Fatalf("workers=%d: done=%d, want %d", workers, done, len(cs))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: pooled batch differs from serial loop", workers)
		}
	}
}

// Capability negotiation: a native-batch backend is called directly, not
// wrapped (its RunBatch sees the call), while a non-native backend is
// driven through RunAppAt.
type spyBatch struct {
	*fakeBackend
	batchCalls atomic.Int64
}

func (s *spyBatch) Capabilities() Capabilities {
	return Capabilities{Name: "spy", NativeBatch: true}
}

func (s *spyBatch) RunBatch(app *Application, cs []conf.Config, dataGB func(i int) float64, workers int, stop func() bool) ([]AppResult, int) {
	s.batchCalls.Add(1)
	return poolBatch(s.fakeBackend, app, cs, dataGB, 1, stop)
}

func TestRunBatchNegotiatesNativeBatch(t *testing.T) {
	app := batchApp()
	spy := &spyBatch{fakeBackend: newFakeBackend(Capabilities{})}
	cs := randomConfigs(spy.space, 5, 1)
	if _, done := RunBatch(spy, app, cs, func(int) float64 { return 100 }, 4, nil); done != len(cs) {
		t.Fatalf("done=%d", done)
	}
	if got := spy.batchCalls.Load(); got != 1 {
		t.Fatalf("native RunBatch called %d times, want 1", got)
	}

	// The same backend with NativeBatch masked must be pool-wrapped.
	f := newFakeBackend(Capabilities{Name: "fake"})
	if _, done := RunBatch(f, app, cs, func(int) float64 { return 100 }, 4, nil); done != len(cs) {
		t.Fatalf("done=%d", done)
	}
	if f.runs.Load() == 0 {
		t.Fatal("pool did not drive the backend")
	}
}

// The pool must clamp its concurrency to the backend's MaxParallel
// capability (a cluster submission-queue bound).
func TestPoolHonorsMaxParallel(t *testing.T) {
	f := newFakeBackend(Capabilities{Name: "fake", MaxParallel: 2})
	app := batchApp()
	cs := randomConfigs(f.space, 32, 9)
	if _, done := RunBatch(f, app, cs, func(int) float64 { return 100 }, 0, nil); done != len(cs) {
		t.Fatalf("done=%d", done)
	}
	if max := f.maxSeen.Load(); max > 2 {
		t.Fatalf("observed %d concurrent runs, capability allows 2", max)
	}
}

// Stop must cut the batch to a valid completed prefix, mirroring the
// simulator's native semantics.
func TestPoolStopPrefix(t *testing.T) {
	f := newFakeBackend(Capabilities{Name: "fake"})
	app := batchApp()
	cs := randomConfigs(f.space, 24, 5)
	var polls atomic.Int64
	stop := func() bool { return polls.Add(1) > 6 }
	results, done := RunBatch(f, app, cs, func(int) float64 { return 100 }, 3, stop)
	if done >= len(cs) {
		t.Fatalf("stop did not cut the batch (done=%d)", done)
	}
	for i := 0; i < done; i++ {
		if results[i].Sec == 0 {
			t.Fatalf("result %d inside completed prefix is empty", i)
		}
	}
}

// The Sim adapter must preserve the simulator's native batch behavior
// bit-for-bit: RunBatch through the adapter equals the simulator's own.
func TestSimAdapterDelegatesNativeBatch(t *testing.T) {
	cl := sparksim.ARM()
	app := batchApp()
	cs := randomConfigs(cl.Space(), 9, 11)
	gb := func(int) float64 { return 100 }

	direct, _ := sparksim.New(cl, 42).RunBatch(app, cs, gb, 3, nil)
	viaRunner, _ := RunBatch(NewSim(sparksim.New(cl, 42)), app, cs, gb, 3, nil)
	if !reflect.DeepEqual(direct, viaRunner) {
		t.Fatal("Sim adapter batch differs from the simulator's native batch")
	}
	if caps := CapsOf(NewSim(sparksim.New(cl, 1))); !caps.NativeBatch || caps.Name != "sparksim" {
		t.Fatalf("unexpected sim capabilities: %+v", caps)
	}
}

// CapsOf must derive NativeBatch for Reporter-less backends from the
// BatchRunner interface.
func TestCapsOfDefaults(t *testing.T) {
	if caps := CapsOf(sparksim.New(sparksim.ARM(), 1)); !caps.NativeBatch {
		t.Fatal("bare simulator should derive NativeBatch from its method set")
	}
	type plain struct{ Runner }
	if caps := CapsOf(plain{newFakeBackend(Capabilities{})}); caps.NativeBatch {
		t.Fatal("plain runner must not report NativeBatch")
	}
}

// The pool must be race-free with a shared backend (run under -race).
func TestPoolConcurrentBatchesRaceFree(t *testing.T) {
	f := newFakeBackend(Capabilities{Name: "fake"})
	app := batchApp()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cs := randomConfigs(f.space, 8, seed)
			if _, done := RunBatch(f, app, cs, func(int) float64 { return 100 }, 2, nil); done != len(cs) {
				t.Error("incomplete batch")
			}
		}(int64(w))
	}
	wg.Wait()
}
