package runner

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"locat/internal/conf"
)

// Chaos is a deterministic fault-injection wrapper: it drops, delays or
// permanently fails executions of an inner backend on a schedule that is a
// pure function of (seed, run index, attempt number), derived by the same
// splitmix64 mix the simulator uses for per-run noise streams. Because the
// schedule depends only on the run index — never on wall time, goroutine
// interleaving or call order — a chaotic session is exactly as reproducible
// as a fault-free one: the batch pool assigns the same indices regardless
// of worker count, so the same runs fail in the same ways every time.
//
// Dropped attempts never touch the inner backend. That matters for replay
// fixtures: a Replayer consumes one trace entry per served execution, so a
// fault layered on top must fail without performing the lookup — the
// retry's eventually-successful attempt then consumes the entry exactly
// once and the replayed trajectory stays bit-identical to the fault-free
// run.
//
// Chaos masks the inner backend's native batch so every run is individually
// addressable by index (the same trick Recorder uses); wrap it in Retrying
// to heal transient drops, and in Observed to meter only what executed.
type Chaos struct {
	inner Runner
	opts  ChaosOptions

	mu       sync.Mutex
	attempts map[uint64]int // per-index attempt counters
	executed int            // successful executions forwarded to inner
	err      error          // sticky failure once FailAfter trips
}

// ChaosOptions configure the fault schedule. The zero value injects no
// faults.
type ChaosOptions struct {
	// DropRate is the probability that a run's k-th attempt fails without
	// executing (decided per (Seed, index, attempt); 0 disables drops).
	DropRate float64
	// MaxConsecutive caps the failed attempts any single run can suffer
	// (default 2), so a retry policy with more attempts than this is
	// guaranteed to heal every drop — the property the chaos determinism
	// e2e pins.
	MaxConsecutive int
	// DelayRate is the probability a successful attempt is delayed by Delay
	// before executing (0 disables delays).
	DelayRate float64
	// Delay is the injected latency of a delayed attempt.
	Delay time.Duration
	// FailAfter, when positive, turns the backend permanently faulty after
	// that many successful executions: later runs fail sticky (Err reports
	// the failure, results are zero) — the mid-session backend death the
	// degradation path handles.
	FailAfter int
	// KillAfter, when positive, panics after that many successful
	// executions — a process crash for checkpoint/resume tests.
	KillAfter int
	// Seed drives the fault schedule.
	Seed int64
	// Sleep, if non-nil, replaces time.Sleep for injected delays (tests
	// substitute a recorder; the default sleeps for real).
	Sleep func(time.Duration)
}

// ErrChaosFailed is the sticky failure a FailAfter trip reports.
var ErrChaosFailed = errors.New("runner: chaos backend failure injected")

// errChaosDrop is the transient per-attempt failure of a dropped run.
type errChaosDrop struct {
	idx     uint64
	attempt int
}

func (e *errChaosDrop) Error() string {
	return fmt.Sprintf("runner: chaos dropped run %d (attempt %d)", e.idx, e.attempt)
}

// Transient marks drops retryable; IsTransient and Retrying honor it.
func (e *errChaosDrop) Transient() bool { return true }

// ParseChaosSpec parses the one-string chaos surface the CLI flags accept,
// a comma-separated list of knobs mirroring the -backend spec style:
//
//	drop=0.3            per-attempt drop probability
//	maxfail=2           max consecutive failed attempts per run
//	delay=0.1           per-attempt delay probability
//	delayms=50          injected delay in milliseconds
//	failafter=40        sticky backend failure after 40 executions
//	killafter=25        panic (simulated crash) after 25 executions
//	seed=7              fault-schedule seed
//
// The empty spec returns nil options: no chaos wrapper at all.
func ParseChaosSpec(spec string) (*ChaosOptions, error) {
	if spec == "" {
		return nil, nil
	}
	o := &ChaosOptions{}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("runner: chaos spec %q: %q is not key=value", spec, part)
		}
		bad := func() error {
			return fmt.Errorf("runner: chaos spec %q: bad value %q for %s", spec, v, k)
		}
		switch k {
		case "drop", "delay":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, bad()
			}
			if k == "drop" {
				o.DropRate = f
			} else {
				o.DelayRate = f
			}
		case "maxfail", "failafter", "killafter", "delayms":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, bad()
			}
			switch k {
			case "maxfail":
				o.MaxConsecutive = n
			case "failafter":
				o.FailAfter = n
			case "killafter":
				o.KillAfter = n
			case "delayms":
				o.Delay = time.Duration(n) * time.Millisecond
			}
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, bad()
			}
			o.Seed = n
		default:
			return nil, fmt.Errorf("runner: chaos spec %q: unknown knob %q (want drop, maxfail, delay, delayms, failafter, killafter, seed)", spec, k)
		}
	}
	return o, nil
}

// NewChaos wraps inner with the fault schedule of opts.
func NewChaos(inner Runner, opts ChaosOptions) *Chaos {
	if opts.MaxConsecutive <= 0 {
		opts.MaxConsecutive = 2
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Chaos{inner: inner, opts: opts, attempts: map[uint64]int{}}
}

// chaosMix is the splitmix64 finalizer (the simulator's runSeed pattern),
// mapping (seed, idx, attempt) to a decorrelated uint64.
func chaosMix(seed int64, idx uint64, attempt int) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(idx+1) + 0xbf58476d1ce4e5b9*uint64(attempt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosUnit maps the mix onto [0, 1).
func chaosUnit(seed int64, idx uint64, attempt int, salt uint64) float64 {
	return float64(chaosMix(seed^int64(salt*0x9e3779b9), idx, attempt)>>11) / (1 << 53)
}

// step resolves one attempt at run index idx: a transient drop error, a
// sticky failure, or clearance to execute (after any injected delay).
// The attempt counter is per index, so the decision sequence of a run is
// identical no matter which worker retries it or when.
func (c *Chaos) step(idx uint64) error {
	c.mu.Lock()
	attempt := c.attempts[idx]
	c.attempts[idx] = attempt + 1
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	if c.opts.DropRate > 0 && attempt < c.opts.MaxConsecutive &&
		chaosUnit(c.opts.Seed, idx, attempt, 1) < c.opts.DropRate {
		return &errChaosDrop{idx: idx, attempt: attempt}
	}
	if c.opts.DelayRate > 0 && c.opts.Delay > 0 &&
		chaosUnit(c.opts.Seed, idx, attempt, 2) < c.opts.DelayRate {
		c.opts.Sleep(c.opts.Delay)
	}
	return nil
}

// noteExecuted advances the execution counter and arms FailAfter/KillAfter.
func (c *Chaos) noteExecuted() {
	c.mu.Lock()
	c.executed++
	n := c.executed
	if c.opts.FailAfter > 0 && n >= c.opts.FailAfter && c.err == nil {
		c.err = fmt.Errorf("%w (after %d runs)", ErrChaosFailed, n)
	}
	c.mu.Unlock()
	if c.opts.KillAfter > 0 && n >= c.opts.KillAfter {
		panic(fmt.Sprintf("runner: chaos kill injected after %d runs", n))
	}
}

// Capabilities mask the inner native batch (faults are per-index, so every
// run must route through RunAppAt) and inherit determinism: the fault
// schedule itself is deterministic.
func (c *Chaos) Capabilities() Capabilities {
	caps := CapsOf(c.inner)
	return Capabilities{
		Name:          "chaos(" + caps.Name + ")",
		NativeBatch:   false,
		MaxParallel:   caps.MaxParallel,
		Stoppable:     true,
		Deterministic: caps.Deterministic,
	}
}

// Space returns the inner backend's configuration space.
func (c *Chaos) Space() *conf.Space { return c.inner.Space() }

// ReserveRuns delegates index accounting.
func (c *Chaos) ReserveRuns(n int) uint64 { return c.inner.ReserveRuns(n) }

// TryRunAppAt executes run idx unless the schedule faults it, reporting the
// fault as an error (transient for drops, sticky after FailAfter).
func (c *Chaos) TryRunAppAt(idx uint64, app *Application, cf conf.Config, dataGB float64) (AppResult, error) {
	if err := c.step(idx); err != nil {
		return AppResult{}, err
	}
	res := c.inner.RunAppAt(idx, app, cf, dataGB)
	c.noteExecuted()
	return res, nil
}

// RunApp claims the next index and executes it through the fault schedule;
// faulted runs report a zero result (the error surface is TryRunAppAt).
func (c *Chaos) RunApp(app *Application, cf conf.Config, dataGB float64) AppResult {
	res, _ := c.TryRunAppAt(c.inner.ReserveRuns(1), app, cf, dataGB)
	return res
}

// RunAppAt executes run idx; faulted runs report a zero result.
func (c *Chaos) RunAppAt(idx uint64, app *Application, cf conf.Config, dataGB float64) AppResult {
	res, _ := c.TryRunAppAt(idx, app, cf, dataGB)
	return res
}

// TryRunQueryAt executes a single query at a pinned index through the fault
// schedule, when the inner backend can pin query indices.
func (c *Chaos) TryRunQueryAt(idx uint64, q Query, cf conf.Config, dataGB float64) (QueryResult, error) {
	if err := c.step(idx); err != nil {
		return QueryResult{}, err
	}
	var res QueryResult
	if qr, ok := c.inner.(queryRunner); ok {
		res = qr.RunQueryAt(idx, q, cf, dataGB)
	} else {
		res = c.inner.RunQuery(q, cf, dataGB)
	}
	c.noteExecuted()
	return res, nil
}

// RunQuery executes a single query through the fault schedule.
func (c *Chaos) RunQuery(q Query, cf conf.Config, dataGB float64) QueryResult {
	res, _ := c.TryRunQueryAt(c.inner.ReserveRuns(1), q, cf, dataGB)
	return res
}

// NoiselessAppTime is never faulted: deterministic evaluations model no
// execution, and the degradation guardrail depends on them to compare a
// best-observed configuration against the default even after the chaotic
// backend died.
func (c *Chaos) NoiselessAppTime(app *Application, cf conf.Config, dataGB float64) float64 {
	return c.inner.NoiselessAppTime(app, cf, dataGB)
}

// Err reports the sticky injected failure, or the inner backend's.
func (c *Chaos) Err() error {
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return BackendErr(c.inner)
}

var (
	_ Runner   = (*Chaos)(nil)
	_ Reporter = (*Chaos)(nil)
	_ Faulty   = (*Chaos)(nil)
)
