package baselines

import (
	"math/rand"

	"locat/internal/conf"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// GBORL reproduces the guided-Bayesian-optimization + RL tuner for
// memory-based analytics: an analytical model of Spark's unified memory
// manager proposes settings for the memory parameters (the white-box
// "guided" part), and an ε-greedy reinforcement-learning hill climber tunes
// the remaining parameters one action at a time. The paper observes that
// GBO-RL "only considers memory and the analytical model is inaccurate" —
// reproduced here by the guidance touching memory parameters only and by
// the hill climber's slow per-action progress.
type GBORL struct {
	// MemProbes is the number of guided memory-configuration probes
	// (default 24).
	MemProbes int
	// RLSteps is the ε-greedy hill-climbing budget (default 200).
	RLSteps int
	// Epsilon is the exploration probability (default 0.25).
	Epsilon float64
	// Restrict, when non-nil, limits the RL hill climber to the given
	// subspace (the Figure 21 IICP hybrid); the memory-guidance stage still
	// reasons over the full memory parameters.
	Restrict SearchSpace
}

// NewGBORL returns GBO-RL with its published-shape defaults.
func NewGBORL() *GBORL { return &GBORL{MemProbes: 24, RLSteps: 200, Epsilon: 0.25} }

// Name implements Tuner.
func (g *GBORL) Name() string { return "GBO-RL" }

// memoryParams are the parameters GBO-RL's analytical model reasons about.
var memoryParams = []int{
	conf.PExecutorMemory, conf.PExecutorMemoryOverhead, conf.PMemoryFraction,
	conf.PMemoryStorageFraction, conf.POffHeapEnabled, conf.POffHeapSize,
	conf.PExecutorCores,
}

// Tune implements Tuner.
func (g *GBORL) Tune(r runner.Runner, app *sparksim.Application, targetGB float64, seed int64) (*Report, error) {
	space := r.Space()
	rng := rand.New(rand.NewSource(seed))
	b := &budgeted{r: r, app: app, gb: targetGB, rep: &Report{Tuner: g.Name()}}

	// Stage 1 — analytical memory guidance: the white-box model predicts
	// that the per-task execution memory should cover the expected working
	// set; it enumerates heap/off-heap splits and fractions around that
	// prediction and probes them on the cluster.
	best := space.Default()
	bestSec := b.run(best)
	for i := 0; i < g.MemProbes; i++ {
		c := best.Clone()
		for _, j := range memoryParams {
			r := space.RangeOf(j)
			// The model prefers large heaps, low storage fractions and
			// enough off-heap to shield the collector; its inaccuracy is a
			// uniform draw biased toward that region.
			bias := 0.6 + 0.4*rng.Float64()
			if j == conf.PMemoryStorageFraction {
				bias = 1 - bias
			}
			c[j] = r.Lo + bias*r.Width()
		}
		c = space.Repair(c)
		if sec := b.run(c); sec < bestSec {
			bestSec = sec
			best = c
		}
	}

	// Stage 2 — ε-greedy RL over single-parameter actions.
	var search SearchSpace = space
	if g.Restrict != nil {
		search = g.Restrict
	}
	cur := search.Encode(best)
	curSec := bestSec
	for step := 0; step < g.RLSteps; step++ {
		var cand conf.Config
		var candX []float64
		if rng.Float64() < g.Epsilon {
			cand = search.Random(rng) // explore
			candX = search.Encode(cand)
		} else {
			// Exploit: nudge one random free dimension of the current state.
			candX = append([]float64(nil), cur...)
			j := rng.Intn(len(candX))
			candX[j] += (rng.Float64() - 0.5) * 0.4
			if candX[j] < 0 {
				candX[j] = 0
			}
			if candX[j] > 1 {
				candX[j] = 1
			}
			cand = search.Decode(candX)
		}
		sec := b.run(cand)
		if sec < curSec {
			cur, curSec = candX, sec
		}
		if sec < bestSec {
			best, bestSec = cand, sec
		}
	}
	return b.finish(best)
}
