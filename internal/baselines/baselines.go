// Package baselines reimplements the four state-of-the-art tuners LOCAT is
// evaluated against (paper Sections 4–5), at the algorithm level:
//
//   - Tuneful (Fekry et al. 2020): one-at-a-time significance analysis to
//     find an influential-parameter subspace, then Gaussian-process
//     Bayesian optimization inside it.
//   - DAC (Yu et al. 2018): datasize-aware modeling — a large random
//     training set fits a regression-tree ensemble (GBRT stands in for
//     DAC's hierarchical tree models), then a genetic algorithm searches
//     the model, and the top candidates are validated on the cluster.
//   - GBO-RL (Kunjir & Babu 2020): a white-box analytical model of Spark's
//     memory management guides the memory parameters, and a
//     reinforcement-learning-style ε-greedy hill climber tunes the rest.
//   - QTune (Li et al. 2018): deep-RL query-aware tuning; reproduced as a
//     cross-entropy-method policy search over the configuration space (the
//     continuous-action DDPG update is replaced by CEM's Gaussian policy
//     refit, which preserves the sample cost and convergence behaviour —
//     see DESIGN.md §1).
//
// All baselines run the full application for every sample (none of them has
// QCSA), tune at a single data size (none has DAGP), and search the full
// 38-parameter space or their own reduced space (none has IICP). Their
// simulated optimization overheads and tuned latencies are what the paper's
// Figures 2, 11–14 and 20 compare.
package baselines

import (
	"errors"
	"math/rand"

	"locat/internal/conf"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// SearchSpace is the slice of the configuration space a tuner explores.
// *conf.Space (the full 38 parameters) and *conf.Subspace (an
// important-parameter restriction, used by the Figure 21 hybrids that graft
// LOCAT's IICP onto the baselines) both implement it.
type SearchSpace interface {
	// Dim is the number of free dimensions.
	Dim() int
	// Decode expands a unit-cube point into a valid full configuration.
	Decode(u []float64) conf.Config
	// Encode projects a configuration onto the free dimensions.
	Encode(c conf.Config) []float64
	// Random draws a valid configuration uniformly.
	Random(rng *rand.Rand) conf.Config
}

// Report is the outcome of one baseline tuning run.
type Report struct {
	// Tuner is the baseline's name.
	Tuner string
	// Best is the chosen configuration.
	Best conf.Config
	// TunedSec is the noiseless full-application latency under Best at the
	// target data size.
	TunedSec float64
	// OverheadSec is the total simulated cluster time spent tuning.
	OverheadSec float64
	// Runs is the number of full-application executions performed.
	Runs int
}

// Tuner is the common interface of all baseline tuners.
type Tuner interface {
	// Name returns the paper's name for the tuner.
	Name() string
	// Tune searches for a configuration minimizing the application latency
	// at targetGB on the given execution backend (a *sparksim.Simulator
	// satisfies runner.Runner directly).
	Tune(r runner.Runner, app *sparksim.Application, targetGB float64, seed int64) (*Report, error)
}

// All returns fresh instances of the four SOTA baselines in the paper's
// order: Tuneful, DAC, GBO-RL, QTune.
func All() []Tuner {
	return []Tuner{NewTuneful(), NewDAC(), NewGBORL(), NewQTune()}
}

// budgeted tracks execution accounting shared by all baselines.
type budgeted struct {
	r   runner.Runner
	app *sparksim.Application
	gb  float64
	rep *Report
}

// run executes the full application once and updates the accounting.
func (b *budgeted) run(c conf.Config) float64 {
	r := b.r.RunApp(b.app, c, b.gb)
	b.rep.OverheadSec += r.Sec
	b.rep.Runs++
	return r.Sec
}

// finish fills the final report fields.
func (b *budgeted) finish(best conf.Config) (*Report, error) {
	if best == nil {
		return nil, errors.New("baselines: tuner produced no configuration")
	}
	b.rep.Best = best
	b.rep.TunedSec = b.r.NoiselessAppTime(b.app, best, b.gb)
	return b.rep, nil
}
