package baselines

import (
	"math"
	"math/rand"
	"sort"

	"locat/internal/conf"
	"locat/internal/ml"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// DAC reproduces the Datasize-Aware Configuration tuner: a large random
// training set (the expensive part the paper's Figure 2 shows) fits a
// tree-ensemble performance model with the data size as an input feature,
// a genetic algorithm searches the model for promising configurations, and
// the GA's elite are validated with real executions. GBRT stands in for
// DAC's hierarchical regression-tree stack (DESIGN.md §1).
type DAC struct {
	// TrainRuns is the random training-sample budget (default 150).
	TrainRuns int
	// Generations and Population size the genetic search (defaults 30/40).
	Generations int
	Population  int
	// Validate is how many GA elite get real validation runs (default 12).
	Validate int
	// Restrict, when non-nil, limits training sampling and the genetic
	// search to the given subspace (the Figure 21 IICP hybrid).
	Restrict SearchSpace
}

// NewDAC returns DAC with its published-shape defaults.
func NewDAC() *DAC {
	return &DAC{TrainRuns: 150, Generations: 30, Population: 40, Validate: 10}
}

// Name implements Tuner.
func (d *DAC) Name() string { return "DAC" }

// Tune implements Tuner.
func (d *DAC) Tune(r runner.Runner, app *sparksim.Application, targetGB float64, seed int64) (*Report, error) {
	space := r.Space()
	var search SearchSpace = space
	if d.Restrict != nil {
		search = d.Restrict
	}
	rng := rand.New(rand.NewSource(seed))
	b := &budgeted{r: r, app: app, gb: targetGB, rep: &Report{Tuner: d.Name()}}

	// Training-sample collection: random configurations at a mix of data
	// sizes around the target (DAC's datasize-awareness).
	sizes := []float64{targetGB * 0.5, targetGB, targetGB * 1.5}
	var xs [][]float64
	var ys []float64
	var confs []conf.Config
	var obs []float64
	for i := 0; i < d.TrainRuns; i++ {
		c := search.Random(rng)
		gb := sizes[i%len(sizes)]
		res := r.RunApp(app, c, gb)
		b.rep.OverheadSec += res.Sec
		b.rep.Runs++
		row := append(space.Encode(c), gb/1024)
		xs = append(xs, row)
		ys = append(ys, res.Sec)
		if gb == targetGB {
			confs = append(confs, c)
			obs = append(obs, res.Sec)
		}
	}

	model := ml.NewGBRT(ml.GBRTOptions{Trees: 150, MaxDepth: 4})
	if err := model.Fit(xs, ys); err != nil {
		return nil, err
	}
	predict := func(c conf.Config) float64 {
		return model.Predict(append(space.Encode(c), targetGB/1024))
	}

	// Genetic search over the model (no cluster time consumed). Genomes are
	// encoded unit-cube vectors of the search space.
	dim := search.Dim()
	pop := make([][]float64, d.Population)
	for i := range pop {
		pop[i] = search.Encode(search.Random(rng))
	}
	fitness := make([]float64, len(pop))
	score := func(g []float64) float64 { return predict(search.Decode(g)) }
	for g := 0; g < d.Generations; g++ {
		for i, gg := range pop {
			fitness[i] = score(gg)
		}
		idx := argsort(fitness)
		elite := len(pop) / 4
		next := make([][]float64, 0, len(pop))
		for i := 0; i < elite; i++ {
			next = append(next, pop[idx[i]])
		}
		for len(next) < len(pop) {
			pa := pop[idx[rng.Intn(elite)]]
			pb := pop[idx[rng.Intn(len(pop)/2)]]
			child := make([]float64, dim)
			for j := range child {
				if rng.Intn(2) == 0 {
					child[j] = pa[j]
				} else {
					child[j] = pb[j]
				}
				if rng.Float64() < 0.4 {
					child[j] += rng.NormFloat64() * 0.08
					if child[j] < 0 {
						child[j] = 0
					}
					if child[j] > 1 {
						child[j] = 1
					}
				}
			}
			next = append(next, child)
		}
		pop = next
	}
	for i, gg := range pop {
		fitness[i] = score(gg)
	}
	idx := argsort(fitness)

	// Real-cluster validation of the GA elite; the best observed training
	// sample competes too.
	best := confs[argmin(obs)]
	bestSec := obs[argmin(obs)]
	for i := 0; i < d.Validate && i < len(idx); i++ {
		c := search.Decode(pop[idx[i]])
		sec := b.run(c)
		if sec < bestSec {
			bestSec = sec
			best = c
		}
	}
	return b.finish(best)
}

func argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

func argmin(xs []float64) int {
	best, bi := math.Inf(1), 0
	for i, v := range xs {
		if v < best {
			best, bi = v, i
		}
	}
	return bi
}
