package baselines

import (
	"math"
	"math/rand"

	"locat/internal/runner"
	"locat/internal/sparksim"
)

// QTune reproduces the query-aware deep-reinforcement-learning tuner. Its
// DDPG actor-critic is replaced by a cross-entropy-method policy search: a
// diagonal-Gaussian policy over the encoded configuration space is sampled
// episode by episode and refit to the elite of each generation. This keeps
// QTune's two defining evaluation properties — by far the largest sample
// count of the compared tuners (the policy needs many episodes to converge,
// paper Figure 2) and a strong final configuration (QTune has the best
// tuned latency among the baselines, Figures 13–14) — without a neural
// network (DESIGN.md §1 records the substitution).
type QTune struct {
	// Generations and Episodes size the policy search
	// (defaults 40 × 16 = 640 runs).
	Generations int
	Episodes    int
	// EliteFrac is the elite fraction refit each generation (default 0.25).
	EliteFrac float64
	// Restrict, when non-nil, limits the policy to the given subspace (the
	// Figure 21 IICP hybrid).
	Restrict SearchSpace
}

// NewQTune returns QTune with its published-shape defaults.
func NewQTune() *QTune { return &QTune{Generations: 40, Episodes: 16, EliteFrac: 0.25} }

// Name implements Tuner.
func (q *QTune) Name() string { return "QTune" }

// Tune implements Tuner.
func (q *QTune) Tune(r runner.Runner, app *sparksim.Application, targetGB float64, seed int64) (*Report, error) {
	var search SearchSpace = r.Space()
	if q.Restrict != nil {
		search = q.Restrict
	}
	rng := rand.New(rand.NewSource(seed))
	b := &budgeted{r: r, app: app, gb: targetGB, rep: &Report{Tuner: q.Name()}}

	d := search.Dim()
	mean := make([]float64, d)
	sigma := make([]float64, d)
	for j := range mean {
		mean[j] = 0.5
		sigma[j] = 0.3
	}

	nElite := int(float64(q.Episodes) * q.EliteFrac)
	if nElite < 2 {
		nElite = 2
	}
	type ep struct {
		x   []float64
		sec float64
	}
	for g := 0; g < q.Generations; g++ {
		eps := make([]ep, q.Episodes)
		for e := 0; e < q.Episodes; e++ {
			x := make([]float64, d)
			explore := rng.Float64() < 0.15 // DDPG-style exploration episodes
			for j := range x {
				if explore {
					x[j] = rng.Float64()
					continue
				}
				x[j] = clamp01(mean[j] + rng.NormFloat64()*sigma[j])
			}
			c := search.Decode(x)
			sec := b.run(c)
			eps[e] = ep{x: x, sec: sec}
		}
		// Refit the policy to the elite episodes.
		idx := make([]int, len(eps))
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < len(idx); i++ { // selection sort is fine at n=12
			m := i
			for k := i + 1; k < len(idx); k++ {
				if eps[idx[k]].sec < eps[idx[m]].sec {
					m = k
				}
			}
			idx[i], idx[m] = idx[m], idx[i]
		}
		for j := 0; j < d; j++ {
			var mu, v float64
			for i := 0; i < nElite; i++ {
				mu += eps[idx[i]].x[j]
			}
			mu /= float64(nElite)
			for i := 0; i < nElite; i++ {
				dd := eps[idx[i]].x[j] - mu
				v += dd * dd
			}
			v /= float64(nElite)
			// The actor is a weight-decayed function approximator: its
			// outputs are pulled toward the centre of the squashed action
			// range and never fully commit to extreme settings.
			mean[j] = 0.93*(0.6*mu+0.4*mean[j]) + 0.07*0.5
			sigma[j] = math.Max(0.10, 0.8*math.Sqrt(v)+0.2*sigma[j])
		}
	}
	// A DDPG actor's output is the policy's final recommendation, not the
	// luckiest episode of the replay buffer.
	return b.finish(search.Decode(mean))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
