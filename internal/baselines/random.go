package baselines

import (
	"math"
	"math/rand"

	"locat/internal/conf"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// Random is pure random search — the sanity baseline every tuner must beat
// per evaluation budget.
type Random struct {
	// Runs is the evaluation budget (default 60).
	Runs int
}

// NewRandom returns a random-search baseline.
func NewRandom(runs int) *Random {
	if runs <= 0 {
		runs = 60
	}
	return &Random{Runs: runs}
}

// Name implements Tuner.
func (r *Random) Name() string { return "Random" }

// Tune implements Tuner.
func (r *Random) Tune(run runner.Runner, app *sparksim.Application, targetGB float64, seed int64) (*Report, error) {
	space := run.Space()
	rng := rand.New(rand.NewSource(seed))
	b := &budgeted{r: run, app: app, gb: targetGB, rep: &Report{Tuner: r.Name()}}
	var best conf.Config
	bestSec := math.Inf(1)
	for i := 0; i < r.Runs; i++ {
		c := space.Random(rng)
		if sec := b.run(c); sec < bestSec {
			bestSec = sec
			best = c
		}
	}
	return b.finish(best)
}
