package baselines

import (
	"math"
	"sort"

	"locat/internal/bo"
	"locat/internal/conf"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// Tuneful reproduces the Tuneful tuner: a one-at-a-time (OAT) significance
// analysis probes each parameter's low and high extreme from the default
// configuration (2×38 = 76 runs), the most influential parameters form the
// search subspace, and GP-based Bayesian optimization tunes that subspace.
// The paper notes OAT "is not suitable for high-dimensional configuration
// scenarios because the number of iterations of OAT increases rapidly" —
// the cost shows up directly as the 76-run significance phase plus a long
// BO tail over the full application.
type Tuneful struct {
	// TopK is the influential-subspace size (default 10).
	TopK int
	// BOIter is the Bayesian-optimization budget after OAT (default 200).
	BOIter int
	// Restrict, when non-nil, replaces the OAT phase entirely: BO runs over
	// the given subspace (the Figure 21 IICP hybrid).
	Restrict SearchSpace
}

// NewTuneful returns Tuneful with its published-shape defaults.
func NewTuneful() *Tuneful { return &Tuneful{TopK: 10, BOIter: 200} }

// Name implements Tuner.
func (t *Tuneful) Name() string { return "Tuneful" }

// Tune implements Tuner.
func (t *Tuneful) Tune(r runner.Runner, app *sparksim.Application, targetGB float64, seed int64) (*Report, error) {
	space := r.Space()
	b := &budgeted{r: r, app: app, gb: targetGB, rep: &Report{Tuner: t.Name()}}
	def := space.Default()

	var search SearchSpace
	if t.Restrict != nil {
		search = t.Restrict
	} else {
		search = t.oatSubspace(space, def, b)
	}

	// GP-BO over the influential subspace, full application per sample.
	var best conf.Config
	res := bo.Minimize(bo.Problem{
		Dim: search.Dim(),
		Eval: func(x, ctx []float64) float64 {
			c := search.Decode(x)
			return b.run(c)
		},
	}, bo.Options{
		InitPoints:  5,
		MinIter:     t.BOIter / 2,
		MaxIter:     t.BOIter,
		EIStopFrac:  0.05,
		MCMCSamples: 3,
		Candidates:  300,
		Seed:        seed,
		// The long BO tail is where Tuneful's cost lives: cap the training
		// set and hold hyperparameters for 4 iterations so three out of
		// every four surrogate updates are O(n²) incremental appends to the
		// live GPs rather than full refits.
		MaxModelPoints: 90,
		HyperEvery:     4,
	})
	best = search.Decode(res.BestX)
	return b.finish(best)
}

// oatSubspace runs the one-at-a-time significance analysis and returns the
// influential-parameter subspace.
func (t *Tuneful) oatSubspace(space *conf.Space, def conf.Config, b *budgeted) SearchSpace {
	// OAT significance analysis: perturb one parameter at a time to its
	// range extremes and score the latency swing.
	type influence struct {
		idx   int
		swing float64
	}
	infl := make([]influence, 0, space.Dim())
	base := b.run(def)
	for j := 0; j < space.Dim(); j++ {
		r := space.RangeOf(j)
		lo := def.Clone()
		lo[j] = r.Lo
		hi := def.Clone()
		hi[j] = r.Hi
		tLo := b.run(space.Repair(lo))
		tHi := b.run(space.Repair(hi))
		swing := math.Abs(tHi-tLo) + math.Abs((tHi+tLo)/2-base)
		infl = append(infl, influence{idx: j, swing: swing})
	}
	sort.Slice(infl, func(a, c int) bool { return infl[a].swing > infl[c].swing })
	k := t.TopK
	if k > len(infl) {
		k = len(infl)
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = infl[i].idx
	}

	sub, err := conf.NewSubspace(space, def, idx)
	if err != nil {
		// Unreachable with a non-empty index list; fall back to the space.
		return space
	}
	return sub
}
