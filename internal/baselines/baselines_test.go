package baselines

import (
	"testing"

	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// smallBudget shrinks every baseline for test speed while preserving its
// algorithmic structure.
func smallBudget() []Tuner {
	return []Tuner{
		&Tuneful{TopK: 6, BOIter: 12},
		&DAC{TrainRuns: 30, Generations: 8, Population: 16, Validate: 4},
		&GBORL{MemProbes: 8, RLSteps: 20, Epsilon: 0.25},
		&QTune{Generations: 6, Episodes: 8, EliteFrac: 0.25},
		NewRandom(20),
	}
}

func TestAllBaselinesTune(t *testing.T) {
	cl := sparksim.ARM()
	app := workloads.TPCH()
	for _, tn := range smallBudget() {
		sim := sparksim.New(cl, 1)
		rep, err := tn.Tune(sim, app, 100, 7)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if rep.Tuner != tn.Name() {
			t.Fatalf("report name %q != tuner %q", rep.Tuner, tn.Name())
		}
		if rep.Runs == 0 || rep.OverheadSec <= 0 {
			t.Fatalf("%s: no accounting (%d runs, %v overhead)", tn.Name(), rep.Runs, rep.OverheadSec)
		}
		if err := sim.Space().Validate(rep.Best); err != nil {
			t.Fatalf("%s: invalid best config: %v", tn.Name(), err)
		}
		if rep.TunedSec <= 0 {
			t.Fatalf("%s: bad tuned latency %v", tn.Name(), rep.TunedSec)
		}
		// Every tuner must at least beat the Spark default configuration.
		def := sim.NoiselessAppTime(app, sim.Space().Default(), 100)
		if rep.TunedSec > def {
			t.Fatalf("%s: tuned %v worse than default %v", tn.Name(), rep.TunedSec, def)
		}
	}
}

func TestAllReturnsPaperOrder(t *testing.T) {
	names := []string{"Tuneful", "DAC", "GBO-RL", "QTune"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d tuners", len(all))
	}
	for i, tn := range all {
		if tn.Name() != names[i] {
			t.Fatalf("tuner %d = %q; want %q", i, tn.Name(), names[i])
		}
	}
}

func TestRunBudgetsOrdering(t *testing.T) {
	// The paper's Figure 2 cost ordering at full budgets: QTune is the most
	// expensive, GBO-RL the cheapest of the four. Check the configured
	// sample budgets reflect that (full budgets, no cluster runs needed).
	// QTune needs by far the most episodes; GBO-RL is the cheapest of the
	// four in run count. (DAC's runs are few but each is an expensive
	// random configuration, which is how its hour-cost lands between them.)
	tf, dac, gb, qt := NewTuneful(), NewDAC(), NewGBORL(), NewQTune()
	tfRuns := 1 + 2*38 + tf.BOIter
	dacRuns := dac.TrainRuns + dac.Validate
	gbRuns := 1 + gb.MemProbes + gb.RLSteps
	qtRuns := qt.Generations * qt.Episodes
	if !(qtRuns > tfRuns && tfRuns > gbRuns) {
		t.Fatalf("budget ordering wrong: qtune=%d tuneful=%d gborl=%d", qtRuns, tfRuns, gbRuns)
	}
	if dacRuns <= 0 {
		t.Fatal("dac budget empty")
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	cl := sparksim.ARM()
	app := workloads.HiBenchAggregation()
	for _, mk := range []func() Tuner{
		func() Tuner { return &Tuneful{TopK: 4, BOIter: 8} },
		func() Tuner { return &GBORL{MemProbes: 5, RLSteps: 10} },
		func() Tuner { return &QTune{Generations: 4, Episodes: 6} },
		func() Tuner { return NewRandom(10) },
	} {
		r1, err := mk().Tune(sparksim.New(cl, 3), app, 100, 5)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mk().Tune(sparksim.New(cl, 3), app, 100, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r1.TunedSec != r2.TunedSec || r1.OverheadSec != r2.OverheadSec || r1.Runs != r2.Runs {
			t.Fatalf("%s not deterministic", r1.Tuner)
		}
	}
}

func TestRandomDefaults(t *testing.T) {
	if NewRandom(0).Runs != 60 {
		t.Fatal("default runs wrong")
	}
}
