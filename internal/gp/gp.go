package gp

import (
	"errors"
	"fmt"

	"locat/internal/mat"
	"locat/internal/stat"
)

// GP is a fitted Gaussian-process regressor. Outputs are standardized
// internally (zero mean, unit variance); Predict undoes the transform.
//
// A fitted GP can be grown one observation at a time with Append (or many
// with AppendBatch): the cached Cholesky factor of the kernel matrix is
// border-extended in O(n²) instead of refactored in O(n³), which is what
// keeps the per-iteration surrogate cost of the BO loop flat as warm-start
// priors push the training set into the hundreds. The extended model matches
// a fresh Fit on the same data to rounding error (the factorization
// recurrences are identical); hyperparameter changes still require a full
// refit — callers hold hyperparameters fixed between appends (bo.Minimize
// does so between HyperEvery resamples).
type GP struct {
	x     [][]float64
	y     []float64 // raw targets, kept so Append can re-standardize exactly
	yMean float64
	yStd  float64
	hyp   Hyper
	chol  *mat.Cholesky
	alpha []float64 // (K + σ_n² I)⁻¹ · y (standardized)
}

// Fit trains an exact GP on inputs x (rows, all the same length) and targets
// y with hyperparameters h.
func Fit(x [][]float64, y []float64, h Hyper) (*GP, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, errors.New("gp: empty or mismatched training set")
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("gp: row %d has %d features, want %d", i, len(xi), d)
		}
	}
	g := &GP{
		x:   append([][]float64(nil), x...),
		y:   append([]float64(nil), y...),
		hyp: h,
	}

	k := mat.NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernelEval(h, x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k.AddDiag(h.Noise2() + 1e-8)

	chol, err := mat.NewCholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: covariance not PD: %w", err)
	}
	g.chol = chol
	g.refreshAlpha()
	return g, nil
}

// refreshAlpha recomputes the output standardization and α = (K+σ_n²I)⁻¹·y
// from the current factor and raw targets — an O(n²) triangular solve.
func (g *GP) refreshAlpha() {
	g.yMean = stat.Mean(g.y)
	g.yStd = stat.StdDev(g.y)
	if g.yStd < 1e-12 {
		g.yStd = 1
	}
	ys := make([]float64, len(g.y))
	for i, v := range g.y {
		ys[i] = (v - g.yMean) / g.yStd
	}
	g.alpha = g.chol.SolveVec(ys)
}

// Append extends the GP with one observation in O(n²) by border-extending
// the cached Cholesky factor. See AppendBatch.
func (g *GP) Append(x []float64, y float64) error {
	return g.AppendBatch([][]float64{x}, []float64{y})
}

// AppendBatch extends the GP with a batch of observations without refitting:
// each point costs one O(n²) factor extension (an O(n·d) kernel row plus the
// updatable triangular solve of mat.Cholesky.Extend), and one O(n²) α
// re-solve covers the whole batch. On error the receiver is unchanged and
// remains usable; callers then fall back to an exact refit via Fit.
func (g *GP) AppendBatch(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: append %d points with %d targets", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil
	}
	d := len(g.x[0])
	for i, xi := range xs {
		if len(xi) != d {
			return fmt.Errorf("gp: append row %d has %d features, want %d", i, len(xi), d)
		}
	}
	// Extend a clone so a mid-batch failure cannot leave the model with a
	// factor and training set of different sizes. A single-point batch — the
	// BO loop's per-iteration shape — skips the defensive copy: Extend
	// itself leaves the receiver unchanged on error.
	chol := g.chol
	if len(xs) > 1 {
		chol = g.chol.Clone()
	}
	x2 := g.x
	for i, xi := range xs {
		col := make([]float64, len(x2))
		for j, xj := range x2 {
			col[j] = kernelEval(g.hyp, xj, xi)
		}
		diag := kernelEval(g.hyp, xi, xi) + g.hyp.Noise2() + 1e-8
		if err := chol.Extend(col, diag); err != nil {
			return fmt.Errorf("gp: append point %d: %w", i, err)
		}
		x2 = append(x2, xi)
	}
	g.x = x2
	g.y = append(g.y, ys...)
	g.chol = chol
	g.refreshAlpha()
	return nil
}

// Clone returns an independent copy of the GP: appending to the clone leaves
// the original untouched. Cost is O(n²) (the factor copy).
func (g *GP) Clone() *GP {
	return &GP{
		x:     append([][]float64(nil), g.x...),
		y:     append([]float64(nil), g.y...),
		yMean: g.yMean,
		yStd:  g.yStd,
		hyp:   g.hyp,
		chol:  g.chol.Clone(),
		alpha: append([]float64(nil), g.alpha...),
	}
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// Hyper returns the hyperparameters the GP was fitted with.
func (g *GP) Hyper() Hyper { return g.hyp }

// Predict returns the posterior mean and variance at x* (equation 10 of the
// paper). The variance is of the latent function (noise-free).
func (g *GP) Predict(xs []float64) (mean, variance float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := range g.x {
		ks[i] = kernelEval(g.hyp, g.x[i], xs)
	}
	m := mat.Dot(ks, g.alpha)
	v := g.chol.SolveLowerVec(ks)
	variance = kernelEval(g.hyp, xs, xs) - mat.Dot(v, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	// Undo output standardization.
	return m*g.yStd + g.yMean, variance * g.yStd * g.yStd
}

// PredictWorkspace holds the grow-only scratch buffers PredictBatch works
// in: the cross-kernel matrix, the mean/variance outputs, and a reusable
// input-row matrix for callers that assemble model inputs per batch. One
// workspace serves any sequence of batches (buffers grow to the largest
// batch seen and are then reused), which is what makes the EI scoring loop
// allocation-free per candidate. A workspace must not be shared by
// concurrent PredictBatch calls; PredictBatch parallelizes internally.
type PredictWorkspace struct {
	ks         []float64 // m×n cross-kernel K(X*,X), row-major, overwritten by the variance solve
	mean, vari []float64
	inFlat     []float64
	inRows     [][]float64
}

// Inputs returns an m×d row matrix backed by the workspace. Callers fill it
// with model inputs (decision point + context) and pass it to PredictBatch;
// the rows stay valid until the next Inputs call.
func (w *PredictWorkspace) Inputs(m, d int) [][]float64 {
	if cap(w.inFlat) < m*d {
		w.inFlat = make([]float64, m*d)
	}
	if cap(w.inRows) < m {
		w.inRows = make([][]float64, m)
	}
	rows := w.inRows[:m]
	flat := w.inFlat[:m*d]
	for i := range rows {
		rows[i] = flat[i*d : (i+1)*d]
	}
	return rows
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// PredictBatch returns the posterior means and variances at every row of xs
// — numerically identical to calling Predict per row, but batched: the
// cross-kernel matrix K(X*,X) is assembled once (row-parallel), the means
// come from one row-parallel matrix-vector product against α, and the
// variance forward-substitutions overwrite the cross-kernel rows in place,
// so no per-candidate scratch is ever allocated. ws supplies the reusable
// buffers (nil allocates a private workspace for the call); the returned
// slices belong to the workspace and are valid until its next use.
func (g *GP) PredictBatch(xs [][]float64, ws *PredictWorkspace) (means, vars []float64) {
	if ws == nil {
		ws = &PredictWorkspace{}
	}
	m, n := len(xs), len(g.x)
	ws.ks = growFloats(ws.ks, m*n)
	ws.mean = growFloats(ws.mean, m)
	ws.vari = growFloats(ws.vari, m)
	if m == 0 {
		return ws.mean, ws.vari
	}
	ksm := mat.NewDense(m, n, ws.ks)
	// Cross-kernel rows and the candidates' self-covariances.
	mat.ParRange(m, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ws.ks[i*n : (i+1)*n]
			xi := xs[i]
			for j, xj := range g.x {
				row[j] = kernelEval(g.hyp, xj, xi)
			}
			ws.vari[i] = kernelEval(g.hyp, xi, xi)
		}
	})
	// Means: one row-parallel mat-vec against α, then de-standardize.
	mat.ParMulVecInto(ksm, g.alpha, ws.mean, 0)
	// Variances: v_i = L⁻¹·k*_i in place over each cross-kernel row.
	mat.ParRange(m, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ws.ks[i*n : (i+1)*n]
			g.chol.SolveLowerVecInto(row, row)
			v := ws.vari[i] - mat.Dot(row, row)
			if v < 1e-12 {
				v = 1e-12
			}
			ws.vari[i] = v * g.yStd * g.yStd
		}
	})
	for i := range ws.mean {
		ws.mean[i] = ws.mean[i]*g.yStd + g.yMean
	}
	return ws.mean, ws.vari
}

// LogMarginalLikelihood returns the log evidence of the standardized
// training targets under the GP prior — the quantity the slice sampler
// explores.
func (g *GP) LogMarginalLikelihood() float64 {
	return logML(g.chol, g.alpha)
}

// logML computes -½·yᵀα - ½·log|K| - n/2·log 2π given the Cholesky factor
// and α = K⁻¹y. yᵀα is recovered as αᵀKα = |Lᵀα|².
func logML(chol *mat.Cholesky, alpha []float64) float64 {
	return logMLInto(chol, alpha, make([]float64, len(alpha)))
}
