package gp

import (
	"errors"
	"fmt"
	"math"

	"locat/internal/mat"
	"locat/internal/stat"
)

// GP is a fitted Gaussian-process regressor. Outputs are standardized
// internally (zero mean, unit variance); Predict undoes the transform.
type GP struct {
	x     [][]float64
	yMean float64
	yStd  float64
	hyp   Hyper
	chol  *mat.Cholesky
	alpha []float64 // (K + σ_n² I)⁻¹ · y (standardized)
}

// Fit trains an exact GP on inputs x (rows, all the same length) and targets
// y with hyperparameters h.
func Fit(x [][]float64, y []float64, h Hyper) (*GP, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, errors.New("gp: empty or mismatched training set")
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("gp: row %d has %d features, want %d", i, len(xi), d)
		}
	}
	g := &GP{x: x, hyp: h}
	g.yMean = stat.Mean(y)
	g.yStd = stat.StdDev(y)
	if g.yStd < 1e-12 {
		g.yStd = 1
	}
	ys := make([]float64, n)
	for i := range y {
		ys[i] = (y[i] - g.yMean) / g.yStd
	}

	k := mat.NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernelEval(h, x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k.AddDiag(h.Noise2() + 1e-8)

	chol, err := mat.NewCholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: covariance not PD: %w", err)
	}
	g.chol = chol
	g.alpha = chol.SolveVec(ys)
	return g, nil
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// Hyper returns the hyperparameters the GP was fitted with.
func (g *GP) Hyper() Hyper { return g.hyp }

// Predict returns the posterior mean and variance at x* (equation 10 of the
// paper). The variance is of the latent function (noise-free).
func (g *GP) Predict(xs []float64) (mean, variance float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := range g.x {
		ks[i] = kernelEval(g.hyp, g.x[i], xs)
	}
	m := mat.Dot(ks, g.alpha)
	v := g.chol.SolveLowerVec(ks)
	variance = kernelEval(g.hyp, xs, xs) - mat.Dot(v, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	// Undo output standardization.
	return m*g.yStd + g.yMean, variance * g.yStd * g.yStd
}

// LogMarginalLikelihood returns the log evidence of the standardized
// training targets under the GP prior — the quantity the slice sampler
// explores.
func (g *GP) LogMarginalLikelihood() float64 {
	return logML(g.chol, g.alpha)
}

// logML computes -½·yᵀα - ½·log|K| - n/2·log 2π given the Cholesky factor
// and α = K⁻¹y. yᵀα is recovered as αᵀKα = |Lᵀα|².
func logML(chol *mat.Cholesky, alpha []float64) float64 {
	n := len(alpha)
	l := chol.L()
	// w = Lᵀ·α
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := i; k < n; k++ {
			s += l.At(k, i) * alpha[k]
		}
		w[i] = s
	}
	quad := mat.Dot(w, w)
	return -0.5*quad - 0.5*chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}
