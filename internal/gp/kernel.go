// Package gp implements Gaussian-process regression with marginal-likelihood
// hyperparameter inference — the surrogate model underlying LOCAT's
// datasize-aware Bayesian optimization (paper Section 3.4, equations 8–10).
//
// The package provides:
//   - a squared-exponential (Gaussian/RBF) covariance kernel with signal
//     variance, length-scale and observation-noise hyperparameters;
//   - exact GP regression via Cholesky factorization (posterior mean and
//     variance, equation 10);
//   - the log marginal likelihood and a univariate slice sampler over the
//     log-hyperparameters, which powers the EI-MCMC acquisition of
//     Snoek et al. used by the paper.
package gp

import "math"

// Hyper are the log-scale hyperparameters of the squared-exponential kernel
// plus the Gaussian observation-noise variance.
type Hyper struct {
	// LogLen is the log length-scale ℓ (inputs are expected in [0,1]).
	LogLen float64
	// LogSignal is the log signal standard deviation σ_f.
	LogSignal float64
	// LogNoise is the log noise standard deviation σ_n.
	LogNoise float64
}

// DefaultHyper returns a reasonable starting point for unit-cube inputs and
// standardized outputs.
func DefaultHyper() Hyper {
	return Hyper{LogLen: math.Log(0.4), LogSignal: 0, LogNoise: math.Log(0.1)}
}

// Len returns the length-scale ℓ.
func (h Hyper) Len() float64 { return math.Exp(h.LogLen) }

// Signal2 returns the signal variance σ_f².
func (h Hyper) Signal2() float64 { return math.Exp(2 * h.LogSignal) }

// Noise2 returns the noise variance σ_n².
func (h Hyper) Noise2() float64 { return math.Exp(2 * h.LogNoise) }

// kernelEval is the squared-exponential covariance
// k(a,b) = σ_f² · exp(-|a-b|² / (2ℓ²)).
func kernelEval(h Hyper, a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	l := h.Len()
	return h.Signal2() * math.Exp(-d2/(2*l*l))
}

// logPrior is a weakly-informative Gaussian prior over the log
// hyperparameters, keeping the slice sampler in a numerically sane region.
func logPrior(h Hyper) float64 {
	lp := 0.0
	lp += logNormPDF(h.LogLen, math.Log(0.4), 1.0)
	lp += logNormPDF(h.LogSignal, 0, 1.0)
	lp += logNormPDF(h.LogNoise, math.Log(0.1), 1.0)
	return lp
}

func logNormPDF(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return -0.5*d*d - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}
