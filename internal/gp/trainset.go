package gp

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"locat/internal/mat"
	"locat/internal/stat"
)

// TrainSet holds everything about a fixed training set that hyperparameter
// inference can compute once and reuse across every posterior evaluation:
// the pairwise squared-distance matrix (the only input-dependent part of the
// squared-exponential kernel) and the standardized targets. With it, one
// logPosterior evaluation is an elementwise exp map over the cached
// distances plus an in-place Cholesky refactorization in a caller-supplied
// workspace — no kernel reassembly from the raw inputs and no allocations —
// where the Fit-per-step path pays an O(n²·d) assembly and ~2n² fresh floats
// every slice-sampling step. The slice sampler evaluates the posterior
// hundreds of times per MCMC run, which is why this is the training-side hot
// path of the whole tuner.
//
// A TrainSet is immutable after construction and safe for concurrent use;
// per-evaluation mutable state lives in FitWorkspace (one per chain).
type TrainSet struct {
	x  [][]float64
	y  []float64
	ys []float64 // standardized targets
	d2 []float64 // pairwise squared distances, n×n row-major, strict lower triangle filled

	yMean, yStd float64
	n           int
}

// NewTrainSet validates the training data and precomputes the
// hyperparameter-independent state: the squared-distance matrix (assembled
// row-parallel over workers goroutines; ≤0 selects GOMAXPROCS) and the
// output standardization. The inputs are copied shallowly (rows are shared,
// never written).
func NewTrainSet(x [][]float64, y []float64, workers int) (*TrainSet, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, errors.New("gp: empty or mismatched training set")
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("gp: row %d has %d features, want %d", i, len(xi), d)
		}
	}
	ts := &TrainSet{
		x:  append([][]float64(nil), x...),
		y:  append([]float64(nil), y...),
		d2: make([]float64, n*n),
		n:  n,
	}
	// Pairwise squared distances, each row's entries computed by one worker
	// (writes are disjoint by row, so the parallel result is deterministic).
	// Only the strict lower triangle is filled — the kernel assembly never
	// reads the diagonal (always σ_f²+σ_n²+jitter) or the upper triangle —
	// which halves the O(n²·d) assembly work. The feature loop matches
	// kernelEval's summation order exactly, so the cached distances — and
	// everything derived from them — are bit-identical to the per-pair
	// recomputation they replace.
	mat.ParRange(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ts.d2[i*n : i*n+i]
			xi := ts.x[i]
			for j, xj := range ts.x[:i] {
				var s float64
				for k := range xi {
					dk := xi[k] - xj[k]
					s += dk * dk
				}
				row[j] = s
			}
		}
	})
	ts.yMean = stat.Mean(ts.y)
	ts.yStd = stat.StdDev(ts.y)
	if ts.yStd < 1e-12 {
		ts.yStd = 1
	}
	ts.ys = make([]float64, n)
	for i, v := range ts.y {
		ts.ys[i] = (v - ts.yMean) / ts.yStd
	}
	return ts, nil
}

// N returns the number of training points.
func (ts *TrainSet) N() int { return ts.n }

// FitWorkspace holds the grow-only scratch buffers one posterior evaluation
// works in: the kernel/factor matrix, α, and the Lᵀα product of the evidence
// computation. Buffers are sized on first use and reused afterwards, so a
// whole MCMC chain runs with zero per-step allocations. A workspace must not
// be shared by concurrent LogPosterior calls — the multi-chain sampler gives
// every worker its own.
type FitWorkspace struct {
	kern  []float64  // n×n kernel matrix, refactored in place each evaluation
	kmat  *mat.Dense // wraps kern; rebuilt only when the size changes
	alpha []float64
	w     []float64
	chol  mat.Cholesky
}

// dims reports the current kernel-buffer shape (0,0 before first use).
func (ws *FitWorkspace) dims() (r, c int) {
	if ws.kmat == nil {
		return 0, 0
	}
	return ws.kmat.Dims()
}

// LogPosterior evaluates the unnormalized log posterior (log marginal
// likelihood of the standardized targets + log prior) of hyperparameters h
// over the cached training set, entirely inside ws. Returns -Inf when the
// covariance is not positive definite. workers parallelizes the elementwise
// kernel map (≤0 selects GOMAXPROCS; the factorization itself is serial);
// the result is bit-identical for every worker count, and matches the
// Fit-per-step evaluation this replaces exactly.
func (ts *TrainSet) LogPosterior(h Hyper, ws *FitWorkspace, workers int) float64 {
	n := ts.n
	if r, _ := ws.dims(); r != n {
		ws.kern = make([]float64, n*n)
		ws.kmat = mat.NewDense(n, n, ws.kern)
	}
	ws.alpha = growFloats(ws.alpha, n)
	ws.w = growFloats(ws.w, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The serial case maps the rows with a direct call: the parallel
	// branch's closure escapes to ParRange's workers, and the chain hot path
	// (one chain per worker, serial map) must not allocate at all.
	kern := ws.kern
	if workers == 1 {
		ts.assembleRows(kern, h, 0, n)
	} else {
		mat.ParRange(n, workers, func(lo, hi int) { ts.assembleRows(kern, h, lo, hi) })
	}

	if err := ws.chol.FactorInPlace(ws.kmat); err != nil {
		return math.Inf(-1)
	}
	ws.chol.SolveVecInto(ts.ys, ws.alpha)
	return logMLInto(&ws.chol, ws.alpha, ws.w) + logPrior(h)
}

// Fit builds a ready-to-use GP under hyperparameters h, assembling the
// kernel from the cached distance matrix instead of re-deriving it from the
// raw inputs. The returned model is identical to gp.Fit on the same data —
// same factor, same α — and independent of the TrainSet's internals (safe to
// Append to). bo.Minimize uses it to materialize the per-hyper-sample models
// right after an MCMC resample, reusing the distance cache one more time.
func (ts *TrainSet) Fit(h Hyper) (*GP, error) {
	n := ts.n
	g := &GP{
		x:   append([][]float64(nil), ts.x...),
		y:   append([]float64(nil), ts.y...),
		hyp: h,
	}
	kern := make([]float64, n*n)
	ts.assembleRows(kern, h, 0, n)
	var chol mat.Cholesky
	if err := chol.FactorInPlace(mat.NewDense(n, n, kern)); err != nil {
		return nil, fmt.Errorf("gp: covariance not PD: %w", err)
	}
	g.chol = &chol
	g.refreshAlpha()
	return g, nil
}

// assembleRows writes rows [lo,hi) of the kernel matrix
// K = σ_f²·exp(-d²/(2ℓ²)) + (σ_n² + jitter)·I into kern (n×n row-major)
// from the cached distances. Only the lower triangle and diagonal are
// written: the factorization and the triangular solves never read above the
// diagonal. The expression shapes (division by 2ℓ², the diagonal's addition
// order) mirror kernelEval and Fit's AddDiag exactly, so the assembled
// matrix — and therefore the factor, α and the evidence — is bit-identical
// to the Fit-based path; LogPosterior and TrainSet.Fit both build on this
// one helper so the two paths cannot drift apart.
func (ts *TrainSet) assembleRows(kern []float64, h Hyper, lo, hi int) {
	n := ts.n
	l := h.Len()
	tl2 := 2 * l * l
	s2 := h.Signal2()
	diag := s2 + (h.Noise2() + 1e-8)
	for i := lo; i < hi; i++ {
		row := kern[i*n : i*n+i]
		for j, v := range ts.d2[i*n : i*n+i] {
			row[j] = s2 * math.Exp(-v/tl2)
		}
		kern[i*n+i] = diag
	}
}

// logMLInto is logML with a caller-supplied buffer for w = Lᵀ·α, so the
// evidence computation allocates nothing.
func logMLInto(chol *mat.Cholesky, alpha, w []float64) float64 {
	n := len(alpha)
	l := chol.L()
	for i := 0; i < n; i++ {
		var s float64
		for k := i; k < n; k++ {
			s += l.At(k, i) * alpha[k]
		}
		w[i] = s
	}
	quad := mat.Dot(w, w)
	return -0.5*quad - 0.5*chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}
