package gp

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Slice-sampler settings shared by the serial reference and the multi-chain
// sampler: burn-in iterations before a state is trusted, the serial
// sampler's thinning stride, and the initial bracket width.
const (
	sliceBurn  = 5
	sliceThin  = 2
	sliceWidth = 0.8
	// Multi-chain schedule: a short shared pilot walk first moves the start
	// point from the prior default toward the posterior bulk (the serial
	// sampler's burn-in does the same job implicitly), then every chain
	// decorrelates from it with its own burn before emitting. Total posterior
	// evaluations stay comparable to the serial schedule while the per-chain
	// critical path — what parallel hardware actually waits on — shrinks to
	// chainBurn+1 iterations.
	pilotIters = 4
	chainBurn  = 3
)

// logPosterior is the unnormalized log posterior of hyperparameters h given
// the data: log marginal likelihood + log prior. Returns -Inf when the
// covariance matrix is not positive definite.
//
// This is the Fit-per-evaluation reference path — a fresh O(n²·d) kernel
// assembly, a freshly allocated O(n³) factorization and a full GP per call.
// The hot path is TrainSet.LogPosterior, which produces the same value (the
// equivalence is test-pinned) from the cached distance matrix with zero
// allocations; this function remains as the oracle that equivalence test and
// the serial reference sampler evaluate.
func logPosterior(x [][]float64, y []float64, h Hyper) float64 {
	g, err := Fit(x, y, h)
	if err != nil {
		return math.Inf(-1)
	}
	return g.LogMarginalLikelihood() + logPrior(h)
}

// SampleHyper draws n hyperparameter samples from the posterior using
// univariate slice sampling (Neal 2003) cycled over the three
// log-hyperparameters — the MCMC marginalization step of the EI-MCMC
// acquisition (Snoek et al. 2012) that the paper adopts (Section 3.4,
// "Acquisition function").
//
// Sampling runs n independent chains over the cached training set (see
// TrainSet.SampleHyper) on up to GOMAXPROCS workers. rng seeds the chain
// streams (one draw); results depend only on that seed, never on the worker
// count or scheduling. Callers that already hold a TrainSet — or want to
// bound the parallelism — use TrainSet.SampleHyper directly.
func SampleHyper(x [][]float64, y []float64, n int, rng *rand.Rand) []Hyper {
	if n <= 0 {
		return nil
	}
	ts, err := NewTrainSet(x, y, 0)
	if err != nil {
		// Degenerate data; fall back to the prior default, like a chain whose
		// starting posterior is -Inf.
		out := make([]Hyper, n)
		for i := range out {
			out[i] = DefaultHyper()
		}
		return out
	}
	return ts.SampleHyper(n, rng, 0)
}

// SampleHyper draws n posterior samples by running n independent
// slice-sampling chains over the cached training set, fanned over a bounded
// worker pool (workers ≤ 0 selects GOMAXPROCS). Chain c's randomness comes
// from its own splitmix64-derived stream — the same per-run determinism
// pattern sparksim uses — seeded by a single draw from rng, so for a fixed
// rng state the returned samples are bit-identical at every worker count;
// the pool size only changes wall-clock time. Each chain burns in
// independently and contributes one sample, so the marginalized samples are
// genuinely independent draws rather than the thinned, serially correlated
// states a single chain emits.
func (ts *TrainSet) SampleHyper(n int, rng *rand.Rand, workers int) []Hyper {
	if n <= 0 {
		return nil
	}
	base := rng.Int63()
	out := make([]Hyper, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Shared pilot walk: a few serial slice-sampling iterations from the
	// prior default toward the posterior bulk, on its own derived stream
	// (tag n — one past the chain indices). Every chain then forks from the
	// pilot state. The exp map may use the full worker budget here: no chain
	// runs yet.
	var pws FitWorkspace
	pilotRng := rand.New(rand.NewSource(chainSeed(base, n)))
	pilotPost := func(h Hyper) float64 { return ts.LogPosterior(h, &pws, workers) }
	start := DefaultHyper()
	startLP := pilotPost(start)
	if math.IsInf(startLP, -1) {
		// Degenerate data; the prior default is the only sane answer.
		for i := range out {
			out[i] = start
		}
		return out
	}
	for it := 0; it < pilotIters; it++ {
		for coord := 0; coord < 3; coord++ {
			start, startLP = sliceStep(pilotPost, start, startLP, coord, sliceWidth, pilotRng)
		}
	}

	// The chain pool never needs more workers than chains.
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for c := range out {
			out[c] = ts.sampleChain(chainSeed(base, c), start, startLP, &pws, 1)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ws FitWorkspace // one workspace per worker, reused across chains
			for {
				c := int(next.Add(1)) - 1
				if c >= n {
					return
				}
				out[c] = ts.sampleChain(chainSeed(base, c), start, startLP, &ws, 1)
			}
		}()
	}
	wg.Wait()
	return out
}

// sampleChain runs one independent slice-sampling chain from the pilot
// state through its own burn-in and returns its final state. All posterior
// evaluations happen in ws with zero allocations per step.
func (ts *TrainSet) sampleChain(seed int64, start Hyper, startLP float64, ws *FitWorkspace, workers int) Hyper {
	rng := rand.New(rand.NewSource(seed))
	logPost := func(h Hyper) float64 { return ts.LogPosterior(h, ws, workers) }
	cur, curLP := start, startLP
	for it := 0; it <= chainBurn; it++ {
		for coord := 0; coord < 3; coord++ {
			cur, curLP = sliceStep(logPost, cur, curLP, coord, sliceWidth, rng)
		}
	}
	return cur
}

// chainSeed derives chain c's rng seed from the base seed by a
// splitmix64-style mix (the decorrelation pattern of sparksim.runSeed), so
// neighbouring chains get independent streams.
func chainSeed(seed int64, chain int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(chain)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SampleHyperSerial is the single-chain reference sampler: one chain,
// Fit-per-evaluation posterior, burn-in then thinned emission — the exact
// pre-amortization implementation, kept for the statistical cross-check of
// the multi-chain sampler (and as the baseline of BenchmarkSampleHyper).
func SampleHyperSerial(x [][]float64, y []float64, n int, rng *rand.Rand) []Hyper {
	if n <= 0 {
		return nil
	}
	logPost := func(h Hyper) float64 { return logPosterior(x, y, h) }
	cur := DefaultHyper()
	curLP := logPost(cur)
	if math.IsInf(curLP, -1) {
		// Degenerate data; fall back to the prior default.
		out := make([]Hyper, n)
		for i := range out {
			out[i] = cur
		}
		return out
	}
	var out []Hyper
	total := sliceBurn + n*sliceThin
	for it := 0; it < total; it++ {
		for coord := 0; coord < 3; coord++ {
			cur, curLP = sliceStep(logPost, cur, curLP, coord, sliceWidth, rng)
		}
		if it >= sliceBurn && (it-sliceBurn)%sliceThin == 0 {
			out = append(out, cur)
		}
	}
	for len(out) < n {
		out = append(out, cur)
	}
	return out[:n]
}

// sliceStep performs one univariate slice-sampling update of coordinate
// coord of the hyperparameter vector against the log posterior logPost.
func sliceStep(logPost func(Hyper) float64, h Hyper, lp float64, coord int, width float64, rng *rand.Rand) (Hyper, float64) {
	get := func(h Hyper) float64 {
		switch coord {
		case 0:
			return h.LogLen
		case 1:
			return h.LogSignal
		default:
			return h.LogNoise
		}
	}
	set := func(h Hyper, v float64) Hyper {
		switch coord {
		case 0:
			h.LogLen = v
		case 1:
			h.LogSignal = v
		default:
			h.LogNoise = v
		}
		return h
	}

	x0 := get(h)
	logU := lp + math.Log(rng.Float64()+1e-300)

	// Step out.
	lo := x0 - width*rng.Float64()
	hi := lo + width
	for i := 0; i < 8 && logPost(set(h, lo)) > logU; i++ {
		lo -= width
	}
	for i := 0; i < 8 && logPost(set(h, hi)) > logU; i++ {
		hi += width
	}

	// Shrink.
	for i := 0; i < 20; i++ {
		v := lo + rng.Float64()*(hi-lo)
		cand := set(h, v)
		clp := logPost(cand)
		if clp > logU {
			return cand, clp
		}
		if v < x0 {
			lo = v
		} else {
			hi = v
		}
	}
	return h, lp
}
