package gp

import (
	"math"
	"math/rand"
)

// logPosterior is the unnormalized log posterior of hyperparameters h given
// the data: log marginal likelihood + log prior. Returns -Inf when the
// covariance matrix is not positive definite.
func logPosterior(x [][]float64, y []float64, h Hyper) float64 {
	g, err := Fit(x, y, h)
	if err != nil {
		return math.Inf(-1)
	}
	return g.LogMarginalLikelihood() + logPrior(h)
}

// SampleHyper draws n hyperparameter samples from the posterior using
// univariate slice sampling (Neal 2003) cycled over the three
// log-hyperparameters, starting from DefaultHyper. This is the MCMC
// marginalization step of the EI-MCMC acquisition (Snoek et al. 2012) that
// the paper adopts (Section 3.4, "Acquisition function").
func SampleHyper(x [][]float64, y []float64, n int, rng *rand.Rand) []Hyper {
	if n <= 0 {
		return nil
	}
	cur := DefaultHyper()
	curLP := logPosterior(x, y, cur)
	if math.IsInf(curLP, -1) {
		// Degenerate data; fall back to the prior default.
		out := make([]Hyper, n)
		for i := range out {
			out[i] = cur
		}
		return out
	}
	const (
		burn  = 5
		thin  = 2
		width = 0.8
	)
	var out []Hyper
	total := burn + n*thin
	for it := 0; it < total; it++ {
		for coord := 0; coord < 3; coord++ {
			cur, curLP = sliceStep(x, y, cur, curLP, coord, width, rng)
		}
		if it >= burn && (it-burn)%thin == 0 {
			out = append(out, cur)
		}
	}
	for len(out) < n {
		out = append(out, cur)
	}
	return out[:n]
}

// sliceStep performs one univariate slice-sampling update of coordinate
// coord of the hyperparameter vector.
func sliceStep(x [][]float64, y []float64, h Hyper, lp float64, coord int, width float64, rng *rand.Rand) (Hyper, float64) {
	get := func(h Hyper) float64 {
		switch coord {
		case 0:
			return h.LogLen
		case 1:
			return h.LogSignal
		default:
			return h.LogNoise
		}
	}
	set := func(h Hyper, v float64) Hyper {
		switch coord {
		case 0:
			h.LogLen = v
		case 1:
			h.LogSignal = v
		default:
			h.LogNoise = v
		}
		return h
	}

	x0 := get(h)
	logU := lp + math.Log(rng.Float64()+1e-300)

	// Step out.
	lo := x0 - width*rng.Float64()
	hi := lo + width
	for i := 0; i < 8 && logPosterior(x, y, set(h, lo)) > logU; i++ {
		lo -= width
	}
	for i := 0; i < 8 && logPosterior(x, y, set(h, hi)) > logU; i++ {
		hi += width
	}

	// Shrink.
	for i := 0; i < 20; i++ {
		v := lo + rng.Float64()*(hi-lo)
		cand := set(h, v)
		clp := logPosterior(x, y, cand)
		if clp > logU {
			return cand, clp
		}
		if v < x0 {
			lo = v
		} else {
			hi = v
		}
	}
	return h, lp
}
