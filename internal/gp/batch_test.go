package gp

import (
	"math"
	"math/rand"
	"testing"
)

func batchTrainingSet(n, d int, rng *rand.Rand) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		var s float64
		for j := range x {
			x[j] = rng.Float64()
			s += math.Sin(3 * x[j] * float64(j+1))
		}
		xs[i] = x
		ys[i] = s + rng.NormFloat64()*0.05
	}
	return xs, ys
}

// PredictBatch must agree with the per-point Predict loop to 1e-10 (the
// operations are in fact identical, so this is generous), with and without a
// caller-provided workspace, on both a freshly fitted and an Append-grown GP.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys := batchTrainingSet(60, 7, rng)
	g, err := Fit(xs, ys, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Fit(xs[:40], ys[:40], DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	if err := grown.AppendBatch(xs[40:], ys[40:]); err != nil {
		t.Fatal(err)
	}

	tests, _ := batchTrainingSet(50, 7, rng)
	var ws PredictWorkspace
	for name, model := range map[string]*GP{"fit": g, "grown": grown} {
		for pass := 0; pass < 2; pass++ { // second pass reuses the workspace buffers
			mus, vars := model.PredictBatch(tests, &ws)
			for i, x := range tests {
				mu, v := model.Predict(x)
				if math.Abs(mu-mus[i]) > 1e-10 || math.Abs(v-vars[i]) > 1e-10 {
					t.Fatalf("%s pass %d point %d: batch (%v,%v) vs loop (%v,%v)",
						name, pass, i, mus[i], vars[i], mu, v)
				}
			}
		}
	}

	// nil workspace allocates internally and must agree too.
	mus, vars := g.PredictBatch(tests[:5], nil)
	for i := range mus {
		mu, v := g.Predict(tests[i])
		if mu != mus[i] || v != vars[i] {
			t.Fatal("nil-workspace batch diverges")
		}
	}
}

// Growing and shrinking batch sizes through one workspace must not corrupt
// results (buffers are grow-only and re-sliced per call).
func TestPredictWorkspaceReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := batchTrainingSet(30, 5, rng)
	g, err := Fit(xs, ys, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	var ws PredictWorkspace
	for _, m := range []int{1, 64, 7, 128, 2} {
		tests, _ := batchTrainingSet(m, 5, rng)
		in := ws.Inputs(m, 5)
		for i := range tests {
			copy(in[i], tests[i])
		}
		mus, vars := g.PredictBatch(in, &ws)
		if len(mus) != m || len(vars) != m {
			t.Fatalf("m=%d: got %d/%d outputs", m, len(mus), len(vars))
		}
		for i := range tests {
			mu, v := g.Predict(tests[i])
			if mu != mus[i] || v != vars[i] {
				t.Fatalf("m=%d point %d: workspace reuse diverges", m, i)
			}
		}
	}
}
