package gp

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// hyperGrid returns a spread of hyperparameter points covering the region
// the slice sampler explores.
func hyperGrid() []Hyper {
	var out []Hyper
	for _, ll := range []float64{math.Log(0.05), math.Log(0.4), math.Log(2)} {
		for _, ls := range []float64{-1, 0, 1} {
			for _, ln := range []float64{math.Log(0.01), math.Log(0.1), math.Log(1)} {
				out = append(out, Hyper{LogLen: ll, LogSignal: ls, LogNoise: ln})
			}
		}
	}
	return out
}

// TestTrainSetLogPosteriorMatchesFit pins the amortized posterior evaluation
// to the Fit-per-step oracle: over a grid of hyperparameters and several
// training-set shapes, the cached-distance evaluation must agree to ≤1e-10
// (it is constructed to be bit-identical; the tolerance guards the pin
// against architecture-level FMA differences).
func TestTrainSetLogPosteriorMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{3, 17, 60} {
		for _, d := range []int{1, 4, 10} {
			xs, ys := trainSet(n, d, rng)
			ts, err := NewTrainSet(xs, ys, 0)
			if err != nil {
				t.Fatal(err)
			}
			var ws FitWorkspace
			for _, h := range hyperGrid() {
				want := logPosterior(xs, ys, h)
				got := ts.LogPosterior(h, &ws, 1)
				if math.IsInf(want, -1) != math.IsInf(got, -1) {
					t.Fatalf("n=%d d=%d h=%+v: PD disagreement: fit %v, cached %v", n, d, h, want, got)
				}
				if math.IsInf(want, -1) {
					continue
				}
				if diff := math.Abs(got - want); diff > 1e-10 {
					t.Fatalf("n=%d d=%d h=%+v: cached %v vs fit %v (diff %g)", n, d, h, got, want, diff)
				}
			}
		}
	}
}

// TestTrainSetLogPosteriorParallelMapIdentical: the row-parallel kernel map
// writes disjoint rows, so every worker count must produce the same value
// bit-for-bit.
func TestTrainSetLogPosteriorParallelMapIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	xs, ys := trainSet(40, 5, rng)
	ts, err := NewTrainSet(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := DefaultHyper()
	var ws FitWorkspace
	want := ts.LogPosterior(h, &ws, 1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		var pws FitWorkspace
		if got := ts.LogPosterior(h, &pws, workers); got != want {
			t.Fatalf("workers=%d: %v != %v", workers, got, want)
		}
	}
}

// TestTrainSetLogPosteriorZeroAlloc is the amortization guarantee itself:
// once the workspace is warm, a posterior evaluation — one slice-step's unit
// of work — must allocate nothing.
func TestTrainSetLogPosteriorZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	xs, ys := trainSet(50, 6, rng)
	ts, err := NewTrainSet(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ws FitWorkspace
	h := DefaultHyper()
	ts.LogPosterior(h, &ws, 1) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		ts.LogPosterior(h, &ws, 1)
	})
	if allocs > 0 {
		t.Fatalf("LogPosterior allocates %.1f objects per evaluation; want 0", allocs)
	}
}

// TestTrainSetFitMatchesFit: a GP materialized from the cached distances
// must be indistinguishable from gp.Fit on the same data — and must stay an
// independent model (appending to it does not corrupt the TrainSet).
func TestTrainSetFitMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	xs, ys := trainSet(30, 4, rng)
	ts, err := NewTrainSet(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Hyper{DefaultHyper(), {LogLen: math.Log(0.2), LogSignal: 0.5, LogNoise: math.Log(0.05)}} {
		want, err := Fit(xs, ys, h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ts.Fit(h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			q := make([]float64, 4)
			for j := range q {
				q[j] = rng.Float64()*1.2 - 0.1
			}
			mw, vw := want.Predict(q)
			mg, vg := got.Predict(q)
			if math.Abs(mw-mg) > 1e-12 || math.Abs(vw-vg) > 1e-12 {
				t.Fatalf("h=%+v q=%v: cached fit %v±%v vs Fit %v±%v", h, q, mg, vg, mw, vw)
			}
		}
		if diff := math.Abs(want.LogMarginalLikelihood() - got.LogMarginalLikelihood()); diff > 1e-10 {
			t.Fatalf("evidence differs by %g", diff)
		}
		// Appending to the materialized model must not disturb the TrainSet.
		var ws FitWorkspace
		before := ts.LogPosterior(h, &ws, 1)
		if err := got.Append([]float64{0.5, 0.5, 0.5, 0.5}, 1.0); err != nil {
			t.Fatal(err)
		}
		if after := ts.LogPosterior(h, &ws, 1); after != before {
			t.Fatalf("appending to a TrainSet.Fit model changed the TrainSet posterior: %v -> %v", before, after)
		}
	}
}

// TestTrainSetErrors mirrors Fit's validation.
func TestTrainSetErrors(t *testing.T) {
	if _, err := NewTrainSet(nil, nil, 0); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := NewTrainSet([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewTrainSet([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

// TestSampleHyperDeterministicAcrossWorkers: for one rng seed the
// multi-chain sampler must return bit-identical samples at every worker
// count — chain streams are a pure function of (seed, chain index), and the
// pool only schedules them.
func TestSampleHyperDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs, ys := trainSet(20, 3, rng)
	ts, err := NewTrainSet(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	want := ts.SampleHyper(n, rand.New(rand.NewSource(9)), 1)
	if len(want) != n {
		t.Fatalf("got %d samples", len(want))
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := ts.SampleHyper(n, rand.New(rand.NewSource(9)), workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d sample %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
	// The convenience wrapper is the workers=GOMAXPROCS path over a fresh
	// TrainSet of the same data — same samples.
	viaWrapper := SampleHyper(xs, ys, n, rand.New(rand.NewSource(9)))
	for i := range want {
		if viaWrapper[i] != want[i] {
			t.Fatalf("wrapper sample %d: %+v != %+v", i, viaWrapper[i], want[i])
		}
	}
}

// TestSampleHyperChainsIndependent: distinct chains must not share a stream
// (identical chains would defeat the marginalization).
func TestSampleHyperChainsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs, ys := trainSet(15, 2, rng)
	ts, err := NewTrainSet(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	hs := ts.SampleHyper(6, rand.New(rand.NewSource(3)), 0)
	moved := false
	for _, h := range hs[1:] {
		if h != hs[0] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("all chains returned the same state")
	}
}

// TestSampleHyperCrossCheckSerial is the statistical guard: the multi-chain
// sampler and the serial reference explore the same posterior, so the
// posterior mass their samples sit on must be comparable. (Positions are NOT
// comparable: the marginal-likelihood surface is nearly flat along a
// signal/length-scale ridge, so two correct short-run samplers drift to
// different coordinates at equal posterior height. Quality — did the chains
// burn into the posterior bulk? — is exactly the per-sample log posterior.)
func TestSampleHyperCrossCheckSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	xs, ys := trainSet(25, 3, rng)
	ts, err := NewTrainSet(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	multi := ts.SampleHyper(n, rand.New(rand.NewSource(7)), 0)
	serial := SampleHyperSerial(xs, ys, n, rand.New(rand.NewSource(7)))
	if len(multi) != n || len(serial) != n {
		t.Fatalf("sample counts %d / %d", len(multi), len(serial))
	}
	meanLP := func(hs []Hyper) float64 {
		var ws FitWorkspace
		var s float64
		for _, h := range hs {
			lp := ts.LogPosterior(h, &ws, 1)
			if math.IsInf(lp, -1) || math.IsNaN(lp) {
				t.Fatalf("sample %+v has unusable posterior %v", h, lp)
			}
			s += lp
		}
		return s / float64(len(hs))
	}
	mLP, sLP := meanLP(multi), meanLP(serial)
	// The multi-chain samples must sit on posterior mass comparable to the
	// reference's — a chain that failed to burn in sits tens of nats below.
	if mLP < sLP-3 {
		t.Fatalf("multi-chain samples average %.2f nats of log posterior vs serial %.2f", mLP, sLP)
	}
	// And they must not collapse to a point: the marginalization needs
	// spread. Compare total variance against the serial reference's.
	spread := func(hs []Hyper) float64 {
		var ml, ms, mn float64
		for _, h := range hs {
			ml += h.LogLen
			ms += h.LogSignal
			mn += h.LogNoise
		}
		k := float64(len(hs))
		ml, ms, mn = ml/k, ms/k, mn/k
		var v float64
		for _, h := range hs {
			v += (h.LogLen-ml)*(h.LogLen-ml) + (h.LogSignal-ms)*(h.LogSignal-ms) + (h.LogNoise-mn)*(h.LogNoise-mn)
		}
		return v / k
	}
	if mv, sv := spread(multi), spread(serial); mv < sv/25 {
		t.Fatalf("multi-chain spread %.4f collapsed vs serial %.4f", mv, sv)
	}
}

// TestSampleHyperSerialUnchanged pins the reference sampler's contract: same
// outputs shape, usable samples, movement — and, for degenerate data, the
// default-hyper fallback in both samplers.
func TestSampleHyperSerialUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	xs, ys := trainSet(15, 2, rng)
	hs := SampleHyperSerial(xs, ys, 5, rand.New(rand.NewSource(1)))
	if len(hs) != 5 {
		t.Fatalf("got %d samples", len(hs))
	}
	for i, h := range hs {
		if _, err := Fit(xs, ys, h); err != nil {
			t.Fatalf("sample %d unusable: %v", i, err)
		}
	}
	if got := SampleHyperSerial(xs, ys, 0, rand.New(rand.NewSource(1))); got != nil {
		t.Fatal("n=0 should return nil")
	}
	// Both samplers fall back to DefaultHyper on degenerate (non-PD) data.
	degX := [][]float64{{0.5}, {0.5}, {0.5}}
	degY := []float64{1, 2, 3}
	h := Hyper{LogLen: math.Log(0.4), LogSignal: -200, LogNoise: -200}
	if !math.IsInf(logPosterior(degX, degY, h), -1) {
		t.Skip("degenerate case unexpectedly PD on this platform")
	}
}
