package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultHyper()); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultHyper()); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultHyper()); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 1, 0, -1, 0}
	h := DefaultHyper()
	h.LogNoise = math.Log(1e-4) // near-noiseless
	g, err := Fit(x, y, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		m, v := g.Predict(x[i])
		if math.Abs(m-y[i]) > 0.05 {
			t.Fatalf("mean at training point %d = %v; want %v", i, m, y[i])
		}
		if v < 0 {
			t.Fatalf("negative variance %v", v)
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.4}, {0.5}, {0.6}}
	y := []float64{1, 2, 1}
	g, err := Fit(x, y, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{3.0})
	if vFar <= vNear {
		t.Fatalf("variance far (%v) not above variance near (%v)", vFar, vNear)
	}
}

func TestPredictRecoverSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(x float64) float64 { return math.Sin(3*x) + 0.5*x }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		v := rng.Float64()
		xs = append(xs, []float64{v})
		ys = append(ys, f(v)+rng.NormFloat64()*0.01)
	}
	h := Hyper{LogLen: math.Log(0.3), LogSignal: 0, LogNoise: math.Log(0.05)}
	g, err := Fit(xs, ys, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m, _ := g.Predict([]float64{q})
		if math.Abs(m-f(q)) > 0.15 {
			t.Fatalf("prediction at %v = %v; want ≈%v", q, m, f(q))
		}
	}
}

func TestHyperAccessors(t *testing.T) {
	h := Hyper{LogLen: math.Log(2), LogSignal: math.Log(3), LogNoise: math.Log(0.5)}
	if math.Abs(h.Len()-2) > 1e-12 {
		t.Fatal("Len wrong")
	}
	if math.Abs(h.Signal2()-9) > 1e-9 {
		t.Fatal("Signal2 wrong")
	}
	if math.Abs(h.Noise2()-0.25) > 1e-12 {
		t.Fatal("Noise2 wrong")
	}
}

func TestKernelProperties(t *testing.T) {
	h := DefaultHyper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := 0; i < d; i++ {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		kab := kernelEval(h, a, b)
		kba := kernelEval(h, b, a)
		kaa := kernelEval(h, a, a)
		// Symmetry, boundedness by the diagonal, positivity.
		return kab == kba && kab > 0 && kab <= kaa+1e-12 &&
			math.Abs(kaa-h.Signal2()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogMarginalLikelihoodPrefersGoodFit(t *testing.T) {
	// Data drawn from a smooth function: a sensible length-scale must have a
	// higher evidence than an absurdly tiny one that treats everything as
	// independent noise.
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		v := rng.Float64()
		xs = append(xs, []float64{v})
		ys = append(ys, math.Sin(4*v))
	}
	good := Hyper{LogLen: math.Log(0.3), LogSignal: 0, LogNoise: math.Log(0.05)}
	bad := Hyper{LogLen: math.Log(0.001), LogSignal: 0, LogNoise: math.Log(0.05)}
	gGood, err := Fit(xs, ys, good)
	if err != nil {
		t.Fatal(err)
	}
	gBad, err := Fit(xs, ys, bad)
	if err != nil {
		t.Fatal(err)
	}
	if gGood.LogMarginalLikelihood() <= gBad.LogMarginalLikelihood() {
		t.Fatalf("evidence: good %v <= bad %v", gGood.LogMarginalLikelihood(), gBad.LogMarginalLikelihood())
	}
}

func TestSampleHyper(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		v := rng.Float64()
		xs = append(xs, []float64{v})
		ys = append(ys, math.Sin(4*v)+rng.NormFloat64()*0.05)
	}
	hs := SampleHyper(xs, ys, 6, rng)
	if len(hs) != 6 {
		t.Fatalf("got %d samples", len(hs))
	}
	// All samples must yield fittable GPs, and the chain must move.
	moved := false
	for i, h := range hs {
		if _, err := Fit(xs, ys, h); err != nil {
			t.Fatalf("sample %d unusable: %v", i, err)
		}
		if h != hs[0] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("slice sampler never moved")
	}
	if got := SampleHyper(xs, ys, 0, rng); got != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestGPNAndHyper(t *testing.T) {
	g, err := Fit([][]float64{{0}, {1}}, []float64{1, 2}, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatal("N wrong")
	}
	if g.Hyper() != DefaultHyper() {
		t.Fatal("Hyper wrong")
	}
}

func TestConstantTargets(t *testing.T) {
	// Degenerate y (zero variance) must not blow up.
	g, err := Fit([][]float64{{0}, {0.5}, {1}}, []float64{5, 5, 5}, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	m, v := g.Predict([]float64{0.25})
	if math.Abs(m-5) > 0.5 || v < 0 {
		t.Fatalf("constant-target prediction = %v ± %v", m, v)
	}
}

// trainSet draws n noisy observations of a smooth d-dimensional function.
func trainSet(n, d int, rng *rand.Rand) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		var s float64
		for j := range x {
			x[j] = rng.Float64()
			s += math.Sin(3*x[j]) * float64(j+1)
		}
		xs[i] = x
		ys[i] = s + rng.NormFloat64()*0.05
	}
	return xs, ys
}

// TestAppendMatchesFit is the numerical-drift guard of the incremental
// surrogate layer: a GP grown point-by-point (and batch-by-batch) from a
// prefix must agree with a from-scratch Fit on the full set to 1e-8 in
// posterior mean, variance and evidence.
func TestAppendMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, d = 40, 3
	xs, ys := trainSet(n, d, rng)
	h := DefaultHyper()

	full, err := Fit(xs, ys, h)
	if err != nil {
		t.Fatal(err)
	}

	// One-at-a-time appends.
	inc, err := Fit(xs[:10], ys[:10], h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 25; i++ {
		if err := inc.Append(xs[i], ys[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// The rest as one batch — the warm-start prior-injection shape.
	if err := inc.AppendBatch(xs[25:], ys[25:]); err != nil {
		t.Fatal(err)
	}

	if inc.N() != full.N() {
		t.Fatalf("N = %d, want %d", inc.N(), full.N())
	}
	const tol = 1e-8
	for i := 0; i < 50; i++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()*1.4 - 0.2
		}
		mi, vi := inc.Predict(q)
		mf, vf := full.Predict(q)
		if math.Abs(mi-mf) > tol || math.Abs(vi-vf) > tol {
			t.Fatalf("predict(%v): incremental %v±%v vs fit %v±%v", q, mi, vi, mf, vf)
		}
	}
	if diff := math.Abs(inc.LogMarginalLikelihood() - full.LogMarginalLikelihood()); diff > tol {
		t.Fatalf("evidence drifted by %v", diff)
	}
}

func TestAppendErrors(t *testing.T) {
	g, err := Fit([][]float64{{0}, {0.5}, {1}}, []float64{1, 2, 3}, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Append([]float64{0, 1}, 4); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := g.AppendBatch([][]float64{{0.2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := g.AppendBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// A failed append must leave the model usable.
	if g.N() != 3 {
		t.Fatalf("N = %d after failed appends, want 3", g.N())
	}
	if m, v := g.Predict([]float64{0.25}); math.IsNaN(m) || v <= 0 {
		t.Fatalf("model unusable after failed appends: %v ± %v", m, v)
	}
}

func TestGPCloneIndependent(t *testing.T) {
	xs, ys := trainSet(12, 2, rand.New(rand.NewSource(22)))
	base, err := Fit(xs, ys, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.6}
	m0, v0 := base.Predict(q)
	cl := base.Clone()
	if err := cl.Append([]float64{0.41, 0.59}, 99); err != nil {
		t.Fatal(err)
	}
	if base.N() != 12 || cl.N() != 13 {
		t.Fatalf("N base=%d clone=%d", base.N(), cl.N())
	}
	if m, v := base.Predict(q); m != m0 || v != v0 {
		t.Fatal("appending to the clone changed the original's posterior")
	}
}
