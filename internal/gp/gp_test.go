package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultHyper()); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultHyper()); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultHyper()); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 1, 0, -1, 0}
	h := DefaultHyper()
	h.LogNoise = math.Log(1e-4) // near-noiseless
	g, err := Fit(x, y, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		m, v := g.Predict(x[i])
		if math.Abs(m-y[i]) > 0.05 {
			t.Fatalf("mean at training point %d = %v; want %v", i, m, y[i])
		}
		if v < 0 {
			t.Fatalf("negative variance %v", v)
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.4}, {0.5}, {0.6}}
	y := []float64{1, 2, 1}
	g, err := Fit(x, y, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{3.0})
	if vFar <= vNear {
		t.Fatalf("variance far (%v) not above variance near (%v)", vFar, vNear)
	}
}

func TestPredictRecoverSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(x float64) float64 { return math.Sin(3*x) + 0.5*x }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		v := rng.Float64()
		xs = append(xs, []float64{v})
		ys = append(ys, f(v)+rng.NormFloat64()*0.01)
	}
	h := Hyper{LogLen: math.Log(0.3), LogSignal: 0, LogNoise: math.Log(0.05)}
	g, err := Fit(xs, ys, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m, _ := g.Predict([]float64{q})
		if math.Abs(m-f(q)) > 0.15 {
			t.Fatalf("prediction at %v = %v; want ≈%v", q, m, f(q))
		}
	}
}

func TestHyperAccessors(t *testing.T) {
	h := Hyper{LogLen: math.Log(2), LogSignal: math.Log(3), LogNoise: math.Log(0.5)}
	if math.Abs(h.Len()-2) > 1e-12 {
		t.Fatal("Len wrong")
	}
	if math.Abs(h.Signal2()-9) > 1e-9 {
		t.Fatal("Signal2 wrong")
	}
	if math.Abs(h.Noise2()-0.25) > 1e-12 {
		t.Fatal("Noise2 wrong")
	}
}

func TestKernelProperties(t *testing.T) {
	h := DefaultHyper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := 0; i < d; i++ {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		kab := kernelEval(h, a, b)
		kba := kernelEval(h, b, a)
		kaa := kernelEval(h, a, a)
		// Symmetry, boundedness by the diagonal, positivity.
		return kab == kba && kab > 0 && kab <= kaa+1e-12 &&
			math.Abs(kaa-h.Signal2()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogMarginalLikelihoodPrefersGoodFit(t *testing.T) {
	// Data drawn from a smooth function: a sensible length-scale must have a
	// higher evidence than an absurdly tiny one that treats everything as
	// independent noise.
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		v := rng.Float64()
		xs = append(xs, []float64{v})
		ys = append(ys, math.Sin(4*v))
	}
	good := Hyper{LogLen: math.Log(0.3), LogSignal: 0, LogNoise: math.Log(0.05)}
	bad := Hyper{LogLen: math.Log(0.001), LogSignal: 0, LogNoise: math.Log(0.05)}
	gGood, err := Fit(xs, ys, good)
	if err != nil {
		t.Fatal(err)
	}
	gBad, err := Fit(xs, ys, bad)
	if err != nil {
		t.Fatal(err)
	}
	if gGood.LogMarginalLikelihood() <= gBad.LogMarginalLikelihood() {
		t.Fatalf("evidence: good %v <= bad %v", gGood.LogMarginalLikelihood(), gBad.LogMarginalLikelihood())
	}
}

func TestSampleHyper(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		v := rng.Float64()
		xs = append(xs, []float64{v})
		ys = append(ys, math.Sin(4*v)+rng.NormFloat64()*0.05)
	}
	hs := SampleHyper(xs, ys, 6, rng)
	if len(hs) != 6 {
		t.Fatalf("got %d samples", len(hs))
	}
	// All samples must yield fittable GPs, and the chain must move.
	moved := false
	for i, h := range hs {
		if _, err := Fit(xs, ys, h); err != nil {
			t.Fatalf("sample %d unusable: %v", i, err)
		}
		if h != hs[0] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("slice sampler never moved")
	}
	if got := SampleHyper(xs, ys, 0, rng); got != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestGPNAndHyper(t *testing.T) {
	g, err := Fit([][]float64{{0}, {1}}, []float64{1, 2}, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatal("N wrong")
	}
	if g.Hyper() != DefaultHyper() {
		t.Fatal("Hyper wrong")
	}
}

func TestConstantTargets(t *testing.T) {
	// Degenerate y (zero variance) must not blow up.
	g, err := Fit([][]float64{{0}, {0.5}, {1}}, []float64{5, 5, 5}, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	m, v := g.Predict([]float64{0.25})
	if math.Abs(m-5) > 0.5 || v < 0 {
		t.Fatalf("constant-target prediction = %v ± %v", m, v)
	}
}
