package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"locat/internal/service"
)

// Target is the service surface the load generator drives. *service.Service
// satisfies it directly (in-process load tests, the benchmark experiment);
// HTTPTarget adapts a remote locat-serve (cmd/locat-load).
type Target interface {
	Submit(spec service.JobSpec) (string, error)
	Status(id string) (service.JobStatus, error)
	Result(id string) (*service.JobResult, error)
	Recommend(req service.RecommendRequest) (*service.Recommendation, error)
}

// Rejection is an HTTP-level refusal (4xx/5xx) decoded from the service's
// error envelope, so HTTP runs classify rejections the way in-process runs
// classify typed errors.
type Rejection struct {
	// StatusCode is the HTTP status; Code the envelope's machine slug
	// ("queue_full", "over_budget", "unavailable", ...).
	StatusCode int
	Code       string
	Message    string
	// RetryAfterSec is the parsed Retry-After header (0 when absent).
	RetryAfterSec int
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("loadgen: %d %s: %s", r.StatusCode, r.Code, r.Message)
}

// Overload reports whether the rejection is admission back-pressure (429)
// rather than an error.
func (r *Rejection) Overload() bool { return r.StatusCode == http.StatusTooManyRequests }

// HTTPTarget drives a locat-serve instance over its /v1 API.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Client is the HTTP client (default: a client with a 60 s timeout —
	// generous because Result blocks server-side only after terminal state,
	// and plain GETs should never take that long).
	Client *http.Client
}

func (t *HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 60 * time.Second}
}

// do issues one request and decodes the 2xx body into out (ignored when
// nil); non-2xx responses come back as *Rejection.
func (t *HTTPTarget) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, t.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		rej := &Rejection{StatusCode: resp.StatusCode}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&env) == nil {
			rej.Code, rej.Message = env.Error.Code, env.Error.Message
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			rej.RetryAfterSec, _ = strconv.Atoi(ra)
		}
		return rej
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts the spec to /v1/jobs.
func (t *HTTPTarget) Submit(spec service.JobSpec) (string, error) {
	var resp struct {
		ID string `json:"id"`
	}
	if err := t.do(http.MethodPost, "/v1/jobs", spec, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status fetches /v1/jobs/{id}.
func (t *HTTPTarget) Status(id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := t.do(http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches /v1/jobs/{id}/result. The wire shape (apiResult) is a
// superset of JobResult under the same tags, so decoding into JobResult
// keeps the fields the report consumes.
func (t *HTTPTarget) Result(id string) (*service.JobResult, error) {
	var res service.JobResult
	if err := t.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Recommend posts to /v1/recommend.
func (t *HTTPTarget) Recommend(req service.RecommendRequest) (*service.Recommendation, error) {
	var rec service.Recommendation
	if err := t.do(http.MethodPost, "/v1/recommend", req, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}
