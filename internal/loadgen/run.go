package loadgen

import (
	"errors"
	"sync"
	"time"

	"locat/internal/service"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// SequentialSubmit issues every submission from a single goroutine in
	// workload order before any polling starts; only the polling fans out.
	// This makes the service's admission decisions (accept / reject / shed)
	// a pure function of the workload — the mode the benchmark gate uses.
	// Unset, clients submit and poll concurrently: realistic contention,
	// nondeterministic admission interleaving.
	SequentialSubmit bool
	// AfterSubmit, if non-nil, runs once after every submission has been
	// issued and before polling begins (SequentialSubmit only). The
	// benchmark experiment uses it to release a held worker pool, so the
	// whole admission sequence resolves against a full queue.
	AfterSubmit func()
	// PollInterval spaces the status polls of one job (default 2 ms).
	PollInterval time.Duration
	// Timeout bounds one job's wait for a terminal state (default 5 m);
	// a timed-out job counts as failed.
	Timeout time.Duration
}

// outcome is the per-op record the pollers fill in; the final accumulation
// pass folds them into the report in op order, so every count and float sum
// is independent of polling interleave.
type outcome struct {
	accepted bool
	rejected bool
	failed   bool
	state    service.State
	hit      bool
	recOK    bool
	res      *service.JobResult
}

// Run drives the workload against the target and reports latencies and
// outcome counts. Tune ops are submitted, polled to a terminal state, and
// their results fetched; recommend ops are synchronous. The error return is
// reserved for harness misuse (no ops); per-op failures are counted, not
// fatal — a load test's job is to observe refusals, not to stop on them.
func Run(target Target, ops []Op, cfg Config) (*Report, error) {
	if len(ops) == 0 {
		return nil, errors.New("loadgen: empty workload")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}

	start := time.Now()
	var mu sync.Mutex // guards the latency sample slices
	samples := map[string][]float64{}
	record := func(route string, d time.Duration) {
		mu.Lock()
		samples[route] = append(samples[route], d.Seconds())
		mu.Unlock()
	}

	outs := make([]outcome, len(ops))
	ids := make([]string, len(ops))

	// submit issues op i's submission (or synchronous recommendation).
	submit := func(i int) {
		op := ops[i]
		switch op.Kind {
		case KindRecommend:
			t0 := time.Now()
			rec, err := target.Recommend(service.RecommendRequest{JobSpec: op.Spec})
			record("recommend", time.Since(t0))
			switch {
			case err == nil:
				outs[i].recOK = true
				outs[i].hit = rec.Outcome == "hit"
			case isOverload(err):
				outs[i].rejected = true
			default:
				outs[i].failed = true
			}
		default:
			t0 := time.Now()
			id, err := target.Submit(op.Spec)
			record("submit", time.Since(t0))
			switch {
			case err == nil:
				outs[i].accepted = true
				ids[i] = id
			case isOverload(err):
				outs[i].rejected = true
			default:
				outs[i].failed = true
			}
		}
	}

	// settle polls op i's accepted job to a terminal state and fetches the
	// result of a success.
	settle := func(i int) {
		deadline := time.Now().Add(cfg.Timeout)
		for {
			t0 := time.Now()
			st, err := target.Status(ids[i])
			record("status", time.Since(t0))
			if err != nil {
				outs[i].failed = true
				return
			}
			if st.State.Terminal() {
				outs[i].state = st.State
				break
			}
			if time.Now().After(deadline) {
				outs[i].failed = true
				return
			}
			time.Sleep(cfg.PollInterval)
		}
		if outs[i].state == service.StateSucceeded {
			t0 := time.Now()
			res, err := target.Result(ids[i])
			record("result", time.Since(t0))
			if err != nil {
				outs[i].failed = true
				return
			}
			outs[i].res = res
		}
	}

	work := make(chan int, len(ops))
	var wg sync.WaitGroup
	pool := func(f func(int)) {
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					f(i)
				}
			}()
		}
	}

	if cfg.SequentialSubmit {
		for i := range ops {
			submit(i)
		}
		if cfg.AfterSubmit != nil {
			cfg.AfterSubmit()
		}
		pool(settle)
		for i := range ops {
			if outs[i].accepted {
				work <- i
			}
		}
	} else {
		pool(func(i int) {
			submit(i)
			if outs[i].accepted {
				settle(i)
			}
		})
		for i := range ops {
			work <- i
		}
	}
	close(work)
	wg.Wait()

	// Accumulate in op order: deterministic counts and float sums no matter
	// how the pollers interleaved.
	rep := &Report{Ops: len(ops), Routes: map[string]RouteStats{}}
	for i, op := range ops {
		c := rep.group(op)
		o := outs[i]
		c.Submitted++
		switch {
		case o.rejected:
			c.Rejected++
			continue
		case o.failed && !o.accepted:
			c.Failed++
			continue
		}
		if op.Kind == KindRecommend {
			if o.recOK {
				c.Completed++
				if o.hit {
					c.Hits++
				}
			}
			continue
		}
		c.Accepted++
		switch o.state {
		case service.StateSucceeded:
			if o.res != nil {
				c.Completed++
				if o.res.Degraded != "" {
					c.Degraded++
				}
				c.Runs += o.res.Runs
				c.ClusterSec += o.res.ClusterSec
			} else {
				c.Failed++
			}
		case service.StateShed:
			c.Shed++
		case service.StateSuspended:
			c.Suspended++
		case service.StateCancelled:
			c.Cancelled++
		default:
			c.Failed++
		}
	}
	for route, s := range samples {
		rep.Routes[route] = quantiles(s)
	}
	rep.WallSec = time.Since(start).Seconds()
	return rep, nil
}

// isOverload classifies admission back-pressure: the service's typed errors
// in-process, the 429 envelope over HTTP.
func isOverload(err error) bool {
	var be *service.BudgetError
	if errors.As(err, &be) {
		return true
	}
	var rej *Rejection
	if errors.As(err, &rej) {
		return rej.Overload()
	}
	return errors.Is(err, service.ErrQueueFull)
}
