package loadgen

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"locat/internal/service"
)

func quickTemplate() service.JobSpec {
	return service.JobSpec{
		Cluster:       "arm",
		Benchmark:     "TPC-H",
		NQCSA:         10,
		NIICP:         8,
		MaxIterations: 8,
	}
}

// The workload is a pure function of its options: same seed, same ops,
// bit for bit — the property the benchmark gate stands on.
func TestMixDeterministic(t *testing.T) {
	o := MixOptions{
		Seed:             7,
		BatchTunes:       5,
		InteractiveTunes: 3,
		Recommends:       2,
		Tenants:          []string{"acme", "globex"},
		Template:         quickTemplate(),
	}
	a, b := Mix(o), Mix(o)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same MixOptions produced different workloads")
	}
	if len(a) != 10 {
		t.Fatalf("len = %d, want 10", len(a))
	}
	for i, op := range a {
		if op.Index != i {
			t.Fatalf("op %d carries index %d", i, op.Index)
		}
		// Fixed class order: batch tunes, interactive tunes, recommends.
		switch {
		case i < 5:
			if op.Kind != KindTune || op.Spec.Priority != service.PriorityBatch {
				t.Fatalf("op %d = %s/%s, want batch tune", i, op.Kind, op.Spec.Priority)
			}
		case i < 8:
			if op.Kind != KindTune || op.Spec.Priority != service.PriorityInteractive {
				t.Fatalf("op %d = %s/%s, want interactive tune", i, op.Kind, op.Spec.Priority)
			}
		default:
			if op.Kind != KindRecommend {
				t.Fatalf("op %d = %s, want recommend", i, op.Kind)
			}
		}
		if op.Spec.Tenant != "acme" && op.Spec.Tenant != "globex" {
			t.Fatalf("op %d assigned unknown tenant %q", i, op.Spec.Tenant)
		}
		if want := []float64{100, 120, 140}[i%3]; op.Spec.DataSizeGB != want {
			t.Fatalf("op %d size = %v, want the default cycle value %v", i, op.Spec.DataSizeGB, want)
		}
		if op.Spec.Seed != o.Seed+int64(i)+1 {
			t.Fatalf("op %d seed = %d; per-op seeds must be distinct and derived", i, op.Spec.Seed)
		}
		if op.Spec.NQCSA != 10 {
			t.Fatalf("op %d dropped the template budgets", i)
		}
	}
	if got := a[0].Group(); got != a[0].Spec.Tenant+"/batch" {
		t.Fatalf("Group() = %q", got)
	}
	// No tenant list: the anonymous tenant.
	anon := Mix(MixOptions{BatchTunes: 1, Template: quickTemplate()})
	if g := anon[0].Group(); g != "default/batch" {
		t.Fatalf("anonymous group = %q, want default/batch", g)
	}
}

func TestQuantiles(t *testing.T) {
	if st := quantiles(nil); st.Count != 0 || st.P50 != 0 || st.Max != 0 {
		t.Fatalf("empty quantiles = %+v", st)
	}
	samples := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	st := quantiles(samples)
	if st.Count != 5 || st.P50 != 3 || st.P99 != 4 || st.Max != 5 {
		t.Fatalf("quantiles = %+v, want count 5 p50 3 p99 4 max 5", st)
	}
	if !reflect.DeepEqual(samples, []float64{5, 1, 3, 2, 4}) {
		t.Fatal("quantiles mutated its input")
	}
}

// Sequential submission against a held one-worker service: the admission
// outcome of every op is exactly predictable, down to who gets shed.
func TestRunSequentialExactCounts(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueCap: 2})
	defer svc.Close()
	svc.Hold()

	ops := Mix(MixOptions{
		Seed:             1,
		BatchTunes:       3,
		InteractiveTunes: 1,
		Template:         quickTemplate(),
	})
	rep, err := Run(svc, ops, Config{
		Clients:          2,
		SequentialSubmit: true,
		AfterSubmit:      svc.Release,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queue of 2: batch 1 and 2 queue, batch 3 is refused, the interactive
	// submission sheds batch 2 — then the released worker runs the rest.
	batch := rep.Groups["default/batch"]
	if batch == nil || batch.Submitted != 3 || batch.Accepted != 2 ||
		batch.Rejected != 1 || batch.Shed != 1 || batch.Completed != 1 {
		t.Fatalf("batch census = %+v; want 3 submitted, 2 accepted, 1 rejected, 1 shed, 1 completed", batch)
	}
	inter := rep.Groups["default/interactive"]
	if inter == nil || inter.Submitted != 1 || inter.Accepted != 1 || inter.Completed != 1 {
		t.Fatalf("interactive census = %+v; want 1 submitted, accepted and completed", inter)
	}
	tot := rep.Totals()
	if tot.Completed != 2 || tot.Failed != 0 || tot.Runs == 0 || tot.ClusterSec <= 0 {
		t.Fatalf("totals = %+v; want 2 clean completions with metered runs", tot)
	}
	if rep.Ops != 4 || rep.WallSec <= 0 {
		t.Fatalf("report ops/wall = %d/%v", rep.Ops, rep.WallSec)
	}
	sub := rep.Routes["submit"]
	if sub.Count != 4 || sub.Max < sub.P50 {
		t.Fatalf("submit route stats = %+v", sub)
	}
}

// The HTTP target decodes the service's refusal envelope into a Rejection
// that classifies as overload, so HTTP runs count back-pressure the same
// way in-process runs do.
func TestHTTPTargetDecodesRejection(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueCap: 1})
	defer svc.Close()
	svc.Hold()
	defer svc.Release()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	target := &HTTPTarget{Base: srv.URL, Client: srv.Client()}

	spec := quickTemplate()
	spec.DataSizeGB, spec.Seed = 100, 1
	id, err := target.Submit(spec)
	if err != nil || id == "" {
		t.Fatalf("first submit: id=%q err=%v", id, err)
	}
	st, err := target.Status(id)
	if err != nil || st.State != service.StateQueued {
		t.Fatalf("status: %+v, %v", st, err)
	}

	spec.Seed = 2
	_, err = target.Submit(spec)
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("second submit err = %v, want *Rejection", err)
	}
	if rej.StatusCode != 429 || rej.Code != "queue_full" || rej.RetryAfterSec < 1 {
		t.Fatalf("rejection = %+v; want 429 queue_full with Retry-After", rej)
	}
	if !rej.Overload() || !isOverload(rej) {
		t.Fatal("a 429 rejection must classify as overload")
	}
	if (&Rejection{StatusCode: 503}).Overload() {
		t.Fatal("a 503 is not admission back-pressure")
	}
}
