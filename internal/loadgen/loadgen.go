// Package loadgen is the deterministic load generator behind cmd/locat-load
// and the loadtest benchmark experiment: it drives a mixed-tenant workload
// of Submit/Status/Result/Recommend operations against a tuning service —
// in-process or over HTTP — and reports per-route latency quantiles plus
// per-tenant/priority outcome counts.
//
// Two layers keep determinism and realism separate. The workload (which
// operations, in which order, for which tenants) is a pure function of
// MixOptions — bit-identical for a given seed. The execution (how fast
// responses come back) is wall-clock and load-dependent; it feeds the
// latency quantiles, which gate only under the bench harness's -gate-wall.
// With Config.SequentialSubmit, the admission decisions themselves (who is
// accepted, rejected, shed) also become a pure function of the workload
// order, which is what the benchmark gate pins.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"

	"locat/internal/service"
)

// Kind is the operation type of one workload op.
type Kind string

// The operation kinds: a tuning-job submission (polled to completion) and a
// synchronous zero-execution recommendation.
const (
	KindTune      Kind = "tune"
	KindRecommend Kind = "recommend"
)

// Op is one client operation of the generated workload.
type Op struct {
	// Index is the op's position in the deterministic workload order.
	Index int
	Kind  Kind
	// Spec is the job spec of a tune op and the workload description of a
	// recommend op (the recommend request embeds it).
	Spec service.JobSpec
}

// Group renders the op's accounting bucket, "tenant/priority".
func (o Op) Group() string {
	return fmt.Sprintf("%s/%s", tenantLabel(o.Spec.Tenant), o.Spec.Priority)
}

func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// MixOptions parameterizes the deterministic workload mix.
type MixOptions struct {
	// Seed drives tenant and size assignment. Same seed, same workload.
	Seed int64
	// BatchTunes, InteractiveTunes and Recommends count the ops of each
	// class. The order is fixed — batch tunes, then interactive tunes, then
	// recommends — so saturation builds before the high-priority wave
	// arrives, which is the overload scenario the harness exists to probe.
	BatchTunes       int
	InteractiveTunes int
	Recommends       int
	// Tenants are assigned round-robin after a seeded shuffle of each
	// class's op list. Empty means the anonymous tenant.
	Tenants []string
	// DataSizesGB cycles through the ops' target sizes (default 100/120/140:
	// close enough to share fingerprint neighborhoods, distinct enough to
	// exercise retrieval).
	DataSizesGB []float64
	// Template seeds every op's spec: budgets (NQCSA/NIICP/MaxIterations),
	// backend, cold-start flag, MaxClusterSec. Per-op fields (Tenant,
	// Priority, DataSizeGB, Seed) are overwritten.
	Template service.JobSpec
}

// Mix expands the options into the deterministic op list.
func Mix(o MixOptions) []Op {
	if len(o.DataSizesGB) == 0 {
		o.DataSizesGB = []float64{100, 120, 140}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var ops []Op
	emit := func(n int, kind Kind, prio service.Priority) {
		for i := 0; i < n; i++ {
			spec := o.Template
			spec.Priority = prio
			spec.DataSizeGB = o.DataSizesGB[len(ops)%len(o.DataSizesGB)]
			spec.Seed = o.Seed + int64(len(ops)) + 1
			if len(o.Tenants) > 0 {
				spec.Tenant = o.Tenants[rng.Intn(len(o.Tenants))]
			}
			ops = append(ops, Op{Index: len(ops), Kind: kind, Spec: spec})
		}
	}
	emit(o.BatchTunes, KindTune, service.PriorityBatch)
	emit(o.InteractiveTunes, KindTune, service.PriorityInteractive)
	emit(o.Recommends, KindRecommend, service.PriorityInteractive)
	return ops
}

// Counts is the outcome census of one tenant/priority group. Submission
// order plus service configuration fully determine it under sequential
// submission, so the benchmark gate compares it bit for bit.
type Counts struct {
	// Submitted counts every op issued; Accepted the submissions the service
	// admitted; Rejected the admission refusals (queue full or over budget).
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	// Shed counts accepted batch jobs later displaced by interactive work.
	Shed int `json:"shed"`
	// Completed counts jobs that reached succeeded; Degraded the subset cut
	// short (deadline / cluster-second budget) that still returned a config.
	Completed int `json:"completed"`
	Degraded  int `json:"degraded"`
	// Suspended / Cancelled / Failed are the remaining terminal fates.
	Suspended int `json:"suspended,omitempty"`
	Cancelled int `json:"cancelled,omitempty"`
	Failed    int `json:"failed,omitempty"`
	// Hits counts recommend ops answered from retrieval alone.
	Hits int `json:"hits,omitempty"`
	// Runs / ClusterSec aggregate the completed jobs' execution tallies in
	// op order (deterministic for a deterministic service).
	Runs       int64   `json:"runs"`
	ClusterSec float64 `json:"cluster_sec"`
}

// RouteStats are one route's wall-clock latency quantiles in seconds,
// computed exactly over every recorded sample (no sketching: a load test's
// sample counts are small enough to sort).
type RouteStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_sec"`
	P99   float64 `json:"p99_sec"`
	Max   float64 `json:"max_sec"`
}

// Report is the outcome of one load-generation run.
type Report struct {
	// Ops is the workload size; WallSec the run's total wall-clock time.
	Ops     int     `json:"ops"`
	WallSec float64 `json:"wall_sec"`
	// Routes holds per-route latency quantiles: submit, status, result,
	// recommend.
	Routes map[string]RouteStats `json:"routes"`
	// Groups holds the per-"tenant/priority" outcome census.
	Groups map[string]*Counts `json:"groups"`
}

// group returns (creating) the counts bucket of an op.
func (r *Report) group(o Op) *Counts {
	if r.Groups == nil {
		r.Groups = map[string]*Counts{}
	}
	g := o.Group()
	c, ok := r.Groups[g]
	if !ok {
		c = &Counts{}
		r.Groups[g] = c
	}
	return c
}

// quantiles computes exact quantiles over samples (seconds).
func quantiles(samples []float64) RouteStats {
	st := RouteStats{Count: len(samples)}
	if len(samples) == 0 {
		return st
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	st.P50 = at(0.50)
	st.P99 = at(0.99)
	st.Max = s[len(s)-1]
	return st
}

// Totals sums every group's counts in sorted group order (so the float
// ClusterSec sum is as deterministic as the groups themselves).
func (r *Report) Totals() Counts {
	keys := make([]string, 0, len(r.Groups))
	for k := range r.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t Counts
	for _, k := range keys {
		c := r.Groups[k]
		t.Submitted += c.Submitted
		t.Accepted += c.Accepted
		t.Rejected += c.Rejected
		t.Shed += c.Shed
		t.Completed += c.Completed
		t.Degraded += c.Degraded
		t.Suspended += c.Suspended
		t.Cancelled += c.Cancelled
		t.Failed += c.Failed
		t.Hits += c.Hits
		t.Runs += c.Runs
		t.ClusterSec += c.ClusterSec
	}
	return t
}
