package stat

import "math/rand"

// LatinHypercube draws n samples in the d-dimensional unit cube using Latin
// Hypercube Sampling: each dimension's [0,1) range is cut into n equal strata
// and every stratum is hit exactly once, with strata assignments permuted
// independently per dimension. LOCAT seeds its Bayesian optimization with
// three LHS points (paper Section 3.4, "Start points").
func LatinHypercube(n, d int, rng *rand.Rand) [][]float64 {
	if n <= 0 || d <= 0 {
		panic("stat: LatinHypercube requires n > 0 and d > 0")
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	perm := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < n; i++ {
			// Jittered position inside stratum perm[i].
			out[i][j] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return out
}
