// Package stat provides the statistics toolkit used throughout the tuner:
// descriptive statistics (mean, standard deviation, coefficient of variation),
// rank correlation (Spearman), Pearson correlation, mean squared error, and
// Latin Hypercube Sampling for Bayesian-optimization warm starts.
//
// The coefficient of variation (CV) is the measure LOCAT's QCSA stage uses to
// decide whether a query is configuration-sensitive (paper Section 3.2,
// equation 3); Spearman correlation implements the CPS filter of IICP
// (Section 3.3.2).
package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (divide by n, matching the paper's
// equation 3 which uses 1/N inside the square root).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation: standard deviation divided by the
// mean (paper equation 3). A zero mean yields CV 0 to avoid division blowups
// on degenerate inputs.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MSE returns the mean squared error between predictions and targets.
// The slices must have equal, non-zero length.
func MSE(pred, want []float64) float64 {
	if len(pred) != len(want) || len(pred) == 0 {
		panic("stat: MSE length mismatch")
	}
	var s float64
	for i := range pred {
		d := pred[i] - want[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// Min returns the minimum of xs; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Ranks returns the fractional ranks of xs (average rank for ties), 1-based,
// as used by Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank over the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient between x and y.
// Constant inputs yield 0.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic("stat: Pearson length mismatch")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient between x and y:
// the Pearson correlation of their fractional ranks. This is the association
// measure used by LOCAT's CPS step; |SCC| < 0.2 marks a parameter as
// unimportant (paper Section 3.3.2).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic("stat: Spearman length mismatch")
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stat: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// NormPDF is the standard normal density.
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormCDF is the standard normal cumulative distribution function.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
