package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v; want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v; want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v; want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-input statistics should be 0")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CV(xs); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("CV = %v; want 0.4", got)
	}
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("CV of zero-mean input should be 0")
	}
	if CV([]float64{5, 5, 5}) != 0 {
		t.Fatal("CV of constant input should be 0")
	}
}

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2, 3}, []float64{1, 2, 5}); !almostEqual(got, 4.0/3, 1e-12) {
		t.Fatalf("MSE = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
}

func TestRanksSimple(t *testing.T) {
	r := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v; want %v", r, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v; want %v", r, want)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v; want 1", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Pearson(x, yneg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v; want -1", got)
	}
	if Pearson(x, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("Pearson vs constant should be 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is 1 for any monotone-increasing relationship, even nonlinear.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if got := Spearman(x, y); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v; want 1", got)
	}
	yd := []float64{125, 64, 27, 8, 1}
	if got := Spearman(x, yd); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Spearman = %v; want -1", got)
	}
}

func TestSpearmanIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	if got := Spearman(x, y); math.Abs(got) > 0.08 {
		t.Fatalf("Spearman of independent samples = %v; want ≈0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("median = %v; want 2.5", got)
	}
}

func TestNormPDFCDF(t *testing.T) {
	if !almostEqual(NormPDF(0), 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Fatal("NormPDF(0) wrong")
	}
	if !almostEqual(NormCDF(0), 0.5, 1e-12) {
		t.Fatal("NormCDF(0) wrong")
	}
	if !almostEqual(NormCDF(1.959963985), 0.975, 1e-6) {
		t.Fatal("NormCDF(1.96) wrong")
	}
	// Symmetry.
	if !almostEqual(NormCDF(-1.3)+NormCDF(1.3), 1, 1e-12) {
		t.Fatal("NormCDF symmetry broken")
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, d := 10, 3
	pts := LatinHypercube(n, d, rng)
	if len(pts) != n {
		t.Fatalf("got %d points", len(pts))
	}
	for j := 0; j < d; j++ {
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := pts[i][j]
			if v < 0 || v >= 1 {
				t.Fatalf("point outside unit cube: %v", v)
			}
			s := int(v * float64(n))
			if seen[s] {
				t.Fatalf("stratum %d hit twice in dim %d", s, j)
			}
			seen[s] = true
		}
	}
}

func TestLatinHypercubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LatinHypercube(0, 3, rand.New(rand.NewSource(1)))
}

// Property: Spearman is invariant under any strictly monotone transform of
// either argument, and always lies in [-1, 1].
func TestSpearmanProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		s := Spearman(x, y)
		if s < -1-1e-12 || s > 1+1e-12 {
			return false
		}
		// Monotone transform exp(x) preserves ranks exactly.
		xt := make([]float64, n)
		for i := range x {
			xt[i] = math.Exp(x[i])
		}
		return almostEqual(Spearman(xt, y), s, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CV is scale invariant for positive data (CV(c·x) = CV(x)).
func TestCVScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*10
		}
		c := 0.5 + rng.Float64()*5
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = c * xs[i]
		}
		return almostEqual(CV(scaled), CV(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is bounded by min and max and monotone in q.
func TestQuantileProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < Min(xs)-1e-12 || v > Max(xs)+1e-12 || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is invariant under positive affine transforms of either
// argument and flips sign under negation.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		a := 0.5 + rng.Float64()*3
		b := rng.NormFloat64()
		xt := make([]float64, n)
		xn := make([]float64, n)
		for i := range x {
			xt[i] = a*x[i] + b
			xn[i] = -x[i]
		}
		return almostEqual(Pearson(xt, y), r, 1e-9) && almostEqual(Pearson(xn, y), -r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks are a permutation of 1..n when values are distinct, and
// always sum to n(n+1)/2.
func TestRanksSumInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		var sum float64
		for _, r := range Ranks(xs) {
			sum += r
		}
		return almostEqual(sum, float64(n*(n+1))/2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LHS marginals are uniform — the per-dimension mean of n samples
// is within a few standard errors of 0.5.
func TestLHSMarginalUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, d = 200, 4
	pts := LatinHypercube(n, d, rng)
	for j := 0; j < d; j++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += pts[i][j]
		}
		mean /= n
		if math.Abs(mean-0.5) > 0.05 {
			t.Fatalf("dim %d mean %v far from 0.5", j, mean)
		}
	}
}
