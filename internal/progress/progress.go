// Package progress provides the lightweight structured logger the tuner and
// the tuning service report phase transitions through. It exists so that the
// public Quiet option has one authoritative sink: everything user-visible
// that is not a result goes through a Logger, and a nil / discarded Logger
// silences the whole stack.
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Logf is the logging callback threaded through the tuner. A nil Logf is
// always safe to call via F.
type Logf func(format string, args ...any)

// F calls f if it is non-nil; the universal guard so call sites never need
// nil checks.
func F(f Logf, format string, args ...any) {
	if f != nil {
		f(format, args...)
	}
}

// New returns a Logf writing timestamped lines prefixed with tag to w.
// A nil writer yields a nil Logf (silent). The returned Logf is safe for
// concurrent use — the tuning service shares one across worker goroutines.
func New(w io.Writer, tag string) Logf {
	if w == nil {
		return nil
	}
	var mu sync.Mutex
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "%s %s %s\n",
			time.Now().Format("15:04:05.000"), tag, fmt.Sprintf(format, args...))
	}
}

// Prefixed returns a Logf that prepends prefix to every message of f.
// Used by the service to tag lines with the job ID. Nil-safe.
func Prefixed(f Logf, prefix string) Logf {
	if f == nil {
		return nil
	}
	return func(format string, args ...any) {
		f("%s%s", prefix, fmt.Sprintf(format, args...))
	}
}
