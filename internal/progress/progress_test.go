package progress

import (
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a goroutine-safe string sink.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestNilSafety(t *testing.T) {
	F(nil, "must not panic %d", 1)
	if New(nil, "x") != nil {
		t.Fatal("New(nil) should be a nil Logf")
	}
	if Prefixed(nil, "p") != nil {
		t.Fatal("Prefixed(nil) should be a nil Logf")
	}
}

func TestWritesTaggedLines(t *testing.T) {
	var buf syncBuffer
	logf := New(&buf, "locat:")
	F(logf, "phase %d done", 1)
	F(Prefixed(logf, "[job-9] "), "queued")
	out := buf.String()
	if !strings.Contains(out, "locat: phase 1 done") {
		t.Fatalf("missing tagged line in %q", out)
	}
	if !strings.Contains(out, "locat: [job-9] queued") {
		t.Fatalf("missing prefixed line in %q", out)
	}
	if n := strings.Count(out, "\n"); n != 2 {
		t.Fatalf("want 2 lines, got %d: %q", n, out)
	}
}

func TestConcurrentUse(t *testing.T) {
	var buf syncBuffer
	logf := New(&buf, "t")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				logf("msg %d", j)
			}
		}()
	}
	wg.Wait()
	if n := strings.Count(buf.String(), "\n"); n != 16*50 {
		t.Fatalf("want %d lines, got %d", 16*50, n)
	}
}
