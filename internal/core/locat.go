// Package core implements the LOCAT tuner — the paper's primary
// contribution (Section 3). It orchestrates the three techniques:
//
//  1. An initial Bayesian-optimization phase with the datasize-aware
//     Gaussian process (DAGP) runs the full application N_QCSA = 30 times;
//     these executions double as the QCSA and IICP sample sets ("we leverage
//     the samples performed by the BO iterations", Section 5.1).
//  2. QCSA classifies queries by latency CV and removes the
//     configuration-insensitive ones, yielding the reduced query
//     application (RQA) that all further sample collection runs.
//  3. IICP (Spearman CPS + Gaussian-kernel KPCA CPE) selects the important
//     configuration parameters; Bayesian optimization continues over that
//     subspace only, warm-started with the phase-1 observations, until the
//     CherryPick-style stop condition fires (≥10 iterations and EI < 10%).
//
// All three techniques can be disabled independently for the paper's
// ablations (Figures 15 and 21).
package core

import (
	"errors"
	"math"
	"math/rand"

	"locat/internal/bo"
	"locat/internal/conf"
	"locat/internal/dagp"
	"locat/internal/iicp"
	"locat/internal/qcsa"
	"locat/internal/sparksim"
)

// Options configure the LOCAT tuner.
type Options struct {
	// NQCSA is the number of full-application sample runs used for QCSA
	// (paper: 30, Section 5.1). These are also the phase-1 BO iterations.
	NQCSA int
	// NIICP is the number of those samples used for IICP (paper: 20,
	// Section 5.3).
	NIICP int
	// SCCCutoff is the CPS Spearman threshold (paper: 0.2).
	SCCCutoff float64
	// MinIter, MaxIter and EIStopFrac control the phase-2 BO loop
	// (paper: ≥10 iterations, EI < 10%).
	MinIter    int
	MaxIter    int
	EIStopFrac float64
	// MCMCSamples is the EI-MCMC hyperparameter sample count.
	MCMCSamples int
	// UseQCSA, UseIICP and UseDAGP toggle the three techniques
	// (all true under DefaultOptions; the ablations of Figures 15/21
	// disable them selectively).
	UseQCSA bool
	UseIICP bool
	UseDAGP bool
	// DataSchedule, if non-nil, returns the input data size (GB) of the
	// i-th tuning run — the paper's online scenario where the size changes
	// over time. Nil runs everything at the Tune target size.
	DataSchedule func(run int) float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions mirror the paper's settings.
func DefaultOptions() Options {
	return Options{
		NQCSA:       30,
		NIICP:       20,
		SCCCutoff:   0.2,
		MinIter:     10,
		MaxIter:     60,
		EIStopFrac:  0.10,
		MCMCSamples: 5,
		UseQCSA:     true,
		UseIICP:     true,
		UseDAGP:     true,
	}
}

// Eval records one tuning run.
type Eval struct {
	// Conf is the configuration executed.
	Conf conf.Config
	// DataGB is the input size of the run.
	DataGB float64
	// Sec is the observed latency of whatever was run (full app in phase 1,
	// RQA in phase 2).
	Sec float64
	// FullApp distinguishes phase-1 full-application runs from RQA runs.
	FullApp bool
}

// Report is the outcome of a Tune call.
type Report struct {
	// Best is the chosen configuration.
	Best conf.Config
	// TunedSec is the noiseless full-application latency under Best at the
	// target size — the quantity the paper's speedup figures compare.
	TunedSec float64
	// OverheadSec is the total simulated cluster time consumed while
	// tuning — the paper's "optimization time".
	OverheadSec float64
	// FullRuns and RQARuns count the tuning executions by kind.
	FullRuns, RQARuns int
	// QCSA and IICP hold the analysis artifacts (nil when disabled).
	QCSA *qcsa.Result
	IICP *iicp.Result
	// History records every tuning run in order.
	History []Eval
}

// Evaluations returns the total number of tuning runs.
func (r *Report) Evaluations() int { return r.FullRuns + r.RQARuns }

// Tuner tunes one application on one simulated cluster.
type Tuner struct {
	sim  *sparksim.Simulator
	app  *sparksim.Application
	opts Options
}

// New returns a LOCAT tuner for the application on the simulator's cluster.
func New(sim *sparksim.Simulator, app *sparksim.Application, opts Options) *Tuner {
	if opts.NQCSA <= 0 {
		opts.NQCSA = 30
	}
	if opts.NIICP <= 0 || opts.NIICP > opts.NQCSA {
		opts.NIICP = min(20, opts.NQCSA)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 40
	}
	if opts.MinIter <= 0 {
		opts.MinIter = 10
	}
	if opts.MCMCSamples <= 0 {
		opts.MCMCSamples = 5
	}
	return &Tuner{sim: sim, app: app, opts: opts}
}

// Tune searches for the configuration minimizing the application latency at
// targetGB and reports the outcome.
func (t *Tuner) Tune(targetGB float64) (*Report, error) {
	if targetGB <= 0 {
		return nil, errors.New("core: target data size must be positive")
	}
	space := t.sim.Space()
	rep := &Report{}
	sizeOf := func(run int) float64 {
		if t.opts.DataSchedule != nil {
			return t.opts.DataSchedule(run)
		}
		return targetGB
	}
	ctxOf := func(run int) []float64 {
		if !t.opts.UseDAGP {
			return nil
		}
		return dagp.Ctx(sizeOf(run))
	}

	// ---- Phase 1: full-application BO with DAGP (sample collection). ----
	var phase1Runs []sparksim.AppResult
	var samples []iicp.Sample
	p1 := bo.Problem{
		Dim: space.Dim(),
		Eval: func(x, ctx []float64) float64 {
			c := space.Decode(x)
			ds := sizeOf(rep.Evaluations())
			run := t.sim.RunApp(t.app, c, ds)
			rep.OverheadSec += run.Sec
			rep.FullRuns++
			rep.History = append(rep.History, Eval{Conf: c, DataGB: ds, Sec: run.Sec, FullApp: true})
			phase1Runs = append(phase1Runs, run)
			samples = append(samples, iicp.Sample{Conf: c, Sec: run.Sec})
			return run.Sec
		},
		Context: func(it int) []float64 { return ctxOf(rep.Evaluations()) },
	}
	// A third of the sample-collection budget goes to space-filling LHS so
	// the QCSA/IICP statistics see uncorrelated coverage; the rest is
	// EI-guided ("BO with DAGP", Figure 4) and begins improving the
	// incumbent early.
	p1res := bo.Minimize(p1, bo.Options{
		InitPoints:  t.opts.NQCSA / 3,
		MinIter:     t.opts.NQCSA, // phase 1 always collects the full sample set
		MaxIter:     t.opts.NQCSA,
		EIStopFrac:  0, // no early stop while collecting samples
		MCMCSamples: t.opts.MCMCSamples,
		Candidates:  400,
		Seed:        t.opts.Seed,
	})

	// ---- QCSA: build the reduced query application. ----
	target := t.app
	keepAll := map[string]bool{}
	for _, q := range t.app.Queries {
		keepAll[q.Name] = true
	}
	keep := keepAll
	if t.opts.UseQCSA {
		qres, err := qcsa.Analyze(t.app, phase1Runs)
		if err != nil {
			return nil, err
		}
		rep.QCSA = qres
		target = qres.RQA
		keep = map[string]bool{}
		for _, n := range qres.Sensitive {
			keep[n] = true
		}
	}
	rqaSec := func(run sparksim.AppResult) float64 {
		var s float64
		for _, qr := range run.Queries {
			if keep[qr.Name] {
				s += qr.Sec
			}
		}
		return s
	}

	// ---- IICP: restrict the search space to important parameters. ----
	// The phase-2 base (which pins every non-important parameter) is chosen
	// by DAGP posterior mean over the phase-1 observations rather than by
	// the noisy observed minimum.
	bestPhase1 := space.Decode(t.bestOfHistory(p1res, targetGB))
	tuneIdx := allIndices(space.Dim())
	if t.opts.UseIICP {
		iopts := iicp.DefaultOptions()
		iopts.SCCCutoff = t.opts.SCCCutoff
		ires, err := iicp.Analyze(space, samples[:min(t.opts.NIICP, len(samples))], iopts)
		if err != nil {
			return nil, err
		}
		rep.IICP = ires
		if len(ires.Important) > 0 {
			tuneIdx = ires.Important
		}
	}
	sub, err := conf.NewSubspace(space, bestPhase1, tuneIdx)
	if err != nil {
		return nil, err
	}

	// Warm-start phase 2 with phase-1 observations re-expressed on the RQA
	// scale (per-query latencies were recorded, so the RQA portion of every
	// phase-1 run is known exactly).
	var init []bo.Step
	for i, run := range phase1Runs {
		init = append(init, bo.Step{
			X:   sub.Encode(rep.History[i].Conf),
			Ctx: ctxOf(i),
			Y:   rqaSec(run),
		})
	}

	// ---- Phase 2: BO over the important-parameter subspace on the RQA. ----
	p2 := bo.Problem{
		Dim: sub.Dim(),
		Eval: func(x, ctx []float64) float64 {
			c := sub.Decode(x)
			ds := sizeOf(rep.Evaluations())
			run := t.sim.RunApp(target, c, ds)
			rep.OverheadSec += run.Sec
			if t.opts.UseQCSA {
				rep.RQARuns++
			} else {
				rep.FullRuns++
			}
			rep.History = append(rep.History, Eval{Conf: c, DataGB: ds, Sec: run.Sec, FullApp: !t.opts.UseQCSA})
			return run.Sec
		},
		Context: func(it int) []float64 { return ctxOf(rep.Evaluations()) },
	}
	p2res := bo.Minimize(p2, bo.Options{
		InitPoints:  3,
		MinIter:     t.opts.MinIter,
		MaxIter:     t.opts.MaxIter,
		EIStopFrac:  t.opts.EIStopFrac,
		MCMCSamples: t.opts.MCMCSamples,
		Candidates:  800,
		Init:        init,
		Seed:        t.opts.Seed + 1,
	})

	// ---- Final selection. ----
	rep.Best = t.pickBest(space, sub, p2res, targetGB)
	rep.TunedSec = t.sim.NoiselessAppTime(t.app, rep.Best, targetGB)
	return rep, nil
}

// pickBest chooses the final configuration. Without DAGP the best observed
// RQA point wins; with DAGP the surrogate's posterior mean at the target
// size ranks every evaluated point, which both de-noises the selection
// (single runs are noisy; the GP pools information across neighbours) and
// transfers observations taken at other data sizes to the target size
// (Section 3.4's online adaptation).
func (t *Tuner) pickBest(space *conf.Space, sub *conf.Subspace, res bo.Result, targetGB float64) conf.Config {
	if !t.opts.UseDAGP {
		return sub.Decode(res.BestX)
	}
	rng := rand.New(rand.NewSource(t.opts.Seed + 2))
	var ds []dagp.Sample
	for _, s := range res.History {
		size := targetGB
		if len(s.Ctx) > 0 {
			size = s.Ctx[0] * dagp.ScaleGB
		}
		ds = append(ds, dagp.Sample{X: s.X, DataGB: size, Sec: s.Y})
	}
	model, err := dagp.Fit(ds, rng)
	if err != nil {
		return sub.Decode(res.BestX)
	}
	bestX := res.BestX
	bestPred := math.Inf(1)
	for _, s := range res.History {
		if m, _ := model.Predict(s.X, targetGB); m < bestPred {
			bestPred = m
			bestX = s.X
		}
	}
	return sub.Decode(bestX)
}

// bestOfHistory returns the decision point of res with the lowest DAGP
// posterior mean at targetGB (falling back to the observed best when the
// model cannot be fitted or DAGP is disabled).
func (t *Tuner) bestOfHistory(res bo.Result, targetGB float64) []float64 {
	if !t.opts.UseDAGP {
		return res.BestX
	}
	rng := rand.New(rand.NewSource(t.opts.Seed + 3))
	var ds []dagp.Sample
	for _, s := range res.History {
		size := targetGB
		if len(s.Ctx) > 0 {
			size = s.Ctx[0] * dagp.ScaleGB
		}
		ds = append(ds, dagp.Sample{X: s.X, DataGB: size, Sec: s.Y})
	}
	model, err := dagp.Fit(ds, rng)
	if err != nil {
		return res.BestX
	}
	bestX := res.BestX
	bestPred := math.Inf(1)
	for _, s := range res.History {
		if m, _ := model.Predict(s.X, targetGB); m < bestPred {
			bestPred = m
			bestX = s.X
		}
	}
	return bestX
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
