// Package core implements the LOCAT tuner — the paper's primary
// contribution (Section 3). It orchestrates the three techniques:
//
//  1. An initial Bayesian-optimization phase with the datasize-aware
//     Gaussian process (DAGP) runs the full application N_QCSA = 30 times;
//     these executions double as the QCSA and IICP sample sets ("we leverage
//     the samples performed by the BO iterations", Section 5.1).
//  2. QCSA classifies queries by latency CV and removes the
//     configuration-insensitive ones, yielding the reduced query
//     application (RQA) that all further sample collection runs.
//  3. IICP (Spearman CPS + Gaussian-kernel KPCA CPE) selects the important
//     configuration parameters; Bayesian optimization continues over that
//     subspace only, warm-started with the phase-1 observations, until the
//     CherryPick-style stop condition fires (≥10 iterations and EI < 10%).
//
// All three techniques can be disabled independently for the paper's
// ablations (Figures 15 and 21).
//
// Beyond the within-session pipeline, the tuner accepts a Prior — QCSA /
// IICP artifacts and observations retrieved from past sessions on similar
// workloads. With a sufficient prior the expensive phase-1 sample
// collection shrinks to a handful of anchor runs: the DAGP transfers the
// retrieved cross-size observations to the current target size, which is
// what the tuning service's history store exploits to warm-start sessions.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"locat/internal/bo"
	"locat/internal/conf"
	"locat/internal/dagp"
	"locat/internal/iicp"
	"locat/internal/obs"
	"locat/internal/progress"
	"locat/internal/qcsa"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// ErrStopped is returned by Tune when the Stop hook interrupts the session
// between evaluations.
var ErrStopped = errors.New("core: tuning stopped")

// minWarmObs is the smallest prior-observation count that activates the
// warm-start path; below it the prior cannot support a trustworthy
// surrogate and the session runs cold.
const minWarmObs = 5

// PriorObs is one observation retrieved from a past tuning session.
type PriorObs struct {
	// Conf is the full configuration that was executed.
	Conf conf.Config
	// DataGB is the input size the observation was taken at. The DAGP
	// transfers it to the current target size (Section 3.4).
	DataGB float64
	// Sec is the observed full-application latency.
	Sec float64
	// QuerySecs holds the per-query latencies of the run; warm-started
	// sessions use them to re-express the observation on the scale of the
	// current reduced query application.
	QuerySecs map[string]float64
}

// Prior carries knowledge retrieved from past sessions on similar
// workloads: raw observations plus the QCSA / IICP analysis artifacts that
// let a new session skip sample collection.
type Prior struct {
	// Obs are past observations (any data sizes; the DAGP bridges them).
	Obs []PriorObs
	// Sensitive, when non-empty, is a past session's QCSA result: the
	// configuration-sensitive query names the RQA keeps.
	Sensitive []string
	// Important, when non-empty, is a past session's IICP result: the
	// parameter indices phase-2 optimization is restricted to.
	Important []int
}

// Options configure the LOCAT tuner.
type Options struct {
	// NQCSA is the number of full-application sample runs used for QCSA
	// (paper: 30, Section 5.1). These are also the phase-1 BO iterations.
	NQCSA int
	// NIICP is the number of those samples used for IICP (paper: 20,
	// Section 5.3).
	NIICP int
	// SCCCutoff is the CPS Spearman threshold (paper: 0.2).
	SCCCutoff float64
	// MinIter, MaxIter and EIStopFrac control the phase-2 BO loop
	// (paper: ≥10 iterations, EI < 10%).
	MinIter    int
	MaxIter    int
	EIStopFrac float64
	// MCMCSamples is the EI-MCMC hyperparameter sample count.
	MCMCSamples int
	// HyperEvery re-samples the GP hyperparameters every k-th BO iteration
	// (default 3). In between, the surrogate keeps one live GP per posterior
	// sample and appends new observations with an O(n²) incremental
	// Cholesky extension instead of the O(n³) refit — the hot-path saving
	// that lets warm-started sessions carry dozens of prior observations
	// without blowing the tuning-overhead budget. 1 restores a resample
	// (and full refit) on every iteration.
	HyperEvery int
	// UseQCSA, UseIICP and UseDAGP toggle the three techniques
	// (all true under DefaultOptions; the ablations of Figures 15/21
	// disable them selectively).
	UseQCSA bool
	UseIICP bool
	UseDAGP bool
	// DataSchedule, if non-nil, returns the input data size (GB) of the
	// i-th tuning run — the paper's online scenario where the size changes
	// over time. Nil runs everything at the Tune target size.
	DataSchedule func(run int) float64
	// Prior, if non-nil and holding at least minWarmObs observations,
	// warm-starts the session: phase-1 sample collection shrinks to
	// WarmFreshRuns anchor executions and QCSA / IICP reuse the prior
	// artifacts (re-analysing only what the prior lacks). Requires UseDAGP —
	// transferring observations taken at other data sizes is exactly what
	// the datasize feature is for — and is ignored otherwise.
	Prior *Prior
	// WarmFreshRuns is the number of fresh full-application anchor runs a
	// warm-started session still executes (default 4). They ground the
	// surrogate in the session's current cluster conditions.
	WarmFreshRuns int
	// Workers bounds the goroutines used for the session's parallel work:
	// the simulated cluster slots that execute independent sample-collection
	// runs concurrently (the phase-1 LHS block of a cold session, the anchor
	// runs of a warm one) and the MCMC chains of every GP hyperparameter
	// resample (bo.Options.Workers / dagp.FitWorkers). 0 selects GOMAXPROCS,
	// 1 runs serially. Per-run noise streams, index-ordered batch reductions
	// and per-chain rng streams make the history — and therefore the whole
	// tuning trajectory — identical for every worker count; the knob only
	// changes wall-clock time.
	Workers int
	// Stop, if non-nil, is polled between evaluations; returning true
	// aborts the session and Tune returns ErrStopped. The tuning service
	// uses it for cooperative job cancellation.
	Stop func() bool
	// Expired, if non-nil, is polled between evaluations like Stop, but an
	// expired session degrades instead of aborting: Tune returns the best
	// configuration observed so far with Report.Degraded explaining the
	// deadline. The service wires a context deadline here. Wall-clock-based,
	// so where exactly the cutoff lands is not reproducible — use
	// MaxClusterSec for a deterministic budget.
	Expired func() bool
	// MaxClusterSec, when positive, bounds the simulated cluster seconds the
	// session may spend; past the budget it degrades like an expired
	// deadline. Overhead accrues only between evaluation batches on the
	// session goroutine, so the cutoff point — and therefore the degraded
	// result — is bit-for-bit reproducible at any worker count.
	MaxClusterSec float64
	// Tracer, if non-nil, receives one span per session phase (phase-1
	// sampling or warm anchors, QCSA, IICP, phase-2 search, final
	// selection, plus one per GP hyperparameter resample), each charged
	// with the wall time, simulated cluster seconds and run count the phase
	// consumed. Nil means no tracing: the no-op tracer costs nothing on the
	// hot path (zero allocations per span; see internal/obs).
	Tracer obs.Tracer
	// Logf, if non-nil, receives progress lines (phase transitions, run
	// counts, stop-condition firings).
	Logf progress.Logf
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions mirror the paper's settings.
func DefaultOptions() Options {
	return Options{
		NQCSA:       30,
		NIICP:       20,
		SCCCutoff:   0.2,
		MinIter:     10,
		MaxIter:     60,
		EIStopFrac:  0.10,
		MCMCSamples: 5,
		HyperEvery:  3,
		UseQCSA:     true,
		UseIICP:     true,
		UseDAGP:     true,
	}
}

// Eval records one tuning run.
type Eval struct {
	// Conf is the configuration executed.
	Conf conf.Config
	// DataGB is the input size of the run.
	DataGB float64
	// Sec is the observed latency of whatever was run (full app in phase 1,
	// RQA in phase 2).
	Sec float64
	// FullApp distinguishes phase-1 full-application runs from RQA runs.
	FullApp bool
	// QuerySecs holds the per-query latencies of the run. The history
	// store persists them so future sessions can re-express the
	// observation on any RQA scale.
	QuerySecs map[string]float64
}

// Report is the outcome of a Tune call.
type Report struct {
	// Best is the chosen configuration.
	Best conf.Config
	// TunedSec is the noiseless full-application latency under Best at the
	// target size — the quantity the paper's speedup figures compare.
	TunedSec float64
	// OverheadSec is the total simulated cluster time consumed while
	// tuning — the paper's "optimization time". It always equals
	// SamplingSec + SearchSec.
	OverheadSec float64
	// SamplingSec is the overhead of phase 1 (full-application sample
	// collection — or the anchor runs of a warm-started session).
	SamplingSec float64
	// SearchSec is the overhead of phase 2 (subspace BO on the RQA).
	SearchSec float64
	// FullRuns and RQARuns count the tuning executions by kind.
	FullRuns, RQARuns int
	// WarmStarted reports whether the session consumed a Prior instead of
	// collecting the full phase-1 sample set.
	WarmStarted bool
	// PriorObsUsed is the number of prior observations injected (0 cold).
	PriorObsUsed int
	// Degraded, when non-empty, records why the session ended early on a
	// failing backend (the sticky BackendErr). The session then returns the
	// best full-application configuration it observed instead of failing —
	// tuning is best-effort once real cluster time has been paid.
	Degraded string
	// FellBack reports that the final guardrail replaced the selected
	// configuration with the space default because the selection evaluated
	// worse: the recommendation is never worse than not tuning at all.
	FellBack bool
	// BaselineSec is the noiseless full-application latency of the default
	// configuration at the target size — what the guardrail compared
	// TunedSec against.
	BaselineSec float64
	// QCSA and IICP hold the analysis artifacts (nil when disabled). A
	// warm-started session that reused prior artifacts synthesizes minimal
	// results carrying the reused Sensitive / Important sets.
	QCSA *qcsa.Result
	IICP *iicp.Result
	// History records every tuning run in order.
	History []Eval
}

// Evaluations returns the total number of tuning runs.
func (r *Report) Evaluations() int { return r.FullRuns + r.RQARuns }

// Tuner tunes one application against one execution backend.
type Tuner struct {
	run  runner.Runner
	app  *sparksim.Application
	opts Options
}

// New returns a LOCAT tuner for the application on the given execution
// backend — the simulator adapter, a trace recorder/replayer, or a REST
// gateway (see internal/runner). *sparksim.Simulator satisfies the
// interface directly, so simulator sessions read exactly as before.
func New(run runner.Runner, app *sparksim.Application, opts Options) *Tuner {
	if opts.NQCSA <= 0 {
		opts.NQCSA = 30
	}
	if opts.NIICP <= 0 || opts.NIICP > opts.NQCSA {
		opts.NIICP = min(20, opts.NQCSA)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 40
	}
	if opts.MinIter <= 0 {
		opts.MinIter = 10
	}
	if opts.MCMCSamples <= 0 {
		opts.MCMCSamples = 5
	}
	if opts.HyperEvery <= 0 {
		opts.HyperEvery = 3
	}
	if opts.WarmFreshRuns <= 0 {
		opts.WarmFreshRuns = 4
	}
	return &Tuner{run: run, app: app, opts: opts}
}

func (t *Tuner) logf(format string, args ...any) { progress.F(t.opts.Logf, format, args...) }

func (t *Tuner) stopped() bool { return t.opts.Stop != nil && t.opts.Stop() }

// overBudget reports why the session must degrade to best-so-far: the
// cluster-second budget is exhausted or the wall-clock deadline passed. Nil
// means keep searching. The budget check reads rep.OverheadSec, which only
// the session goroutine mutates between evaluation batches, so a budget
// cutoff is deterministic across worker counts; the deadline is wall-clock
// and is not.
func (t *Tuner) overBudget(rep *Report) error {
	if t.opts.MaxClusterSec > 0 && rep.OverheadSec >= t.opts.MaxClusterSec {
		return fmt.Errorf("core: cluster-second budget exhausted (%.0f s of %.0f s)",
			rep.OverheadSec, t.opts.MaxClusterSec)
	}
	if t.opts.Expired != nil && t.opts.Expired() {
		return errors.New("core: deadline exceeded")
	}
	return nil
}

// warmPrior returns the usable prior, or nil when the session must run cold.
func (t *Tuner) warmPrior() *Prior {
	p := t.opts.Prior
	if p == nil || len(p.Obs) < minWarmObs || !t.opts.UseDAGP {
		return nil
	}
	return p
}

// querySecs flattens per-query results into the name→latency map the
// history store persists.
func querySecs(run sparksim.AppResult) map[string]float64 {
	out := make(map[string]float64, len(run.Queries))
	for _, qr := range run.Queries {
		out[qr.Name] += qr.Sec
	}
	return out
}

// Tune searches for the configuration minimizing the application latency at
// targetGB and reports the outcome.
func (t *Tuner) Tune(targetGB float64) (*Report, error) {
	if targetGB <= 0 {
		return nil, errors.New("core: target data size must be positive")
	}
	space := t.run.Space()
	rep := &Report{}
	// Every phase below opens a span on the injected tracer; the no-op
	// default makes this free. phaseSpan is the span sample-collection
	// charges run costs to — recordFull and the phase-2 evaluator run on
	// the session goroutine, so swapping it per phase is race-free.
	tr := obs.OrNop(t.opts.Tracer)
	phaseSpan := obs.Nop.Start("")
	sizeOf := func(run int) float64 {
		if t.opts.DataSchedule != nil {
			return t.opts.DataSchedule(run)
		}
		return targetGB
	}
	ctxOf := func(run int) []float64 {
		if !t.opts.UseDAGP {
			return nil
		}
		return dagp.Ctx(sizeOf(run))
	}
	priorCtx := func(dataGB float64) []float64 {
		if !t.opts.UseDAGP {
			return nil
		}
		return dagp.Ctx(dataGB)
	}

	// ---- Phase 1: collect full-application samples. ----
	// Cold sessions run the paper's N_QCSA-iteration BO-with-DAGP loop.
	// Warm sessions inherit prior observations and run only a few fresh
	// anchor executions — the overhead reduction the history store buys.
	var phase1Runs []sparksim.AppResult
	var samples []iicp.Sample
	recordFull := func(c conf.Config, ds float64, run sparksim.AppResult) float64 {
		rep.OverheadSec += run.Sec
		rep.SamplingSec += run.Sec
		rep.FullRuns++
		phaseSpan.Add(1, run.Sec)
		rep.History = append(rep.History, Eval{
			Conf: c, DataGB: ds, Sec: run.Sec, FullApp: true, QuerySecs: querySecs(run),
		})
		phase1Runs = append(phase1Runs, run)
		samples = append(samples, iicp.Sample{Conf: c, Sec: run.Sec})
		return run.Sec
	}
	runFull := func(c conf.Config) float64 {
		ds := sizeOf(rep.Evaluations())
		return recordFull(c, ds, t.run.RunApp(t.app, c, ds))
	}
	// sessionStop halts the search between evaluations for any reason: the
	// caller's cancellation hook, an exhausted deadline or cluster-second
	// budget, or a backend gone sticky-faulty (tripped circuit breaker, dead
	// gateway). Consulting BackendErr and the budget here — not only after
	// the search returns — is what stops a session from burning its
	// remaining iteration budget on runs it cannot afford or that can only
	// fail.
	sessionStop := func() bool {
		return runner.BackendErr(t.run) != nil || t.overBudget(rep) != nil || t.stopped()
	}
	// runFullBatch fans independent full-application runs over the worker
	// pool (Options.Workers simulated cluster slots) and reduces the results
	// in index order, so the recorded history matches a serial runFull loop
	// exactly. Run sizes are resolved against the evaluation counter before
	// the batch starts, just as the serial loop would see them. complete is
	// false when Stop cut the batch short after a prefix.
	runFullBatch := func(cs []conf.Config) (ys []float64, complete bool) {
		evalBase := rep.Evaluations()
		sizes := make([]float64, len(cs))
		for i := range cs {
			sizes[i] = sizeOf(evalBase + i)
		}
		runs, done := runner.RunBatch(t.run, t.app, cs, func(i int) float64 { return sizes[i] }, t.opts.Workers, sessionStop)
		ys = make([]float64, done)
		for i := 0; i < done; i++ {
			ys[i] = recordFull(cs[i], sizes[i], runs[i])
		}
		return ys, done == len(cs)
	}

	prior := t.warmPrior()
	var p1res bo.Result
	if prior == nil {
		t.logf("phase 1: collecting %d full-application samples (cold start)", t.opts.NQCSA)
		phaseSpan = tr.Start("phase1/sampling")
		p1 := bo.Problem{
			Dim:  space.Dim(),
			Eval: func(x, ctx []float64) float64 { return runFull(space.Decode(x)) },
			// Phase 1 injects no Init steps, so bo's iteration index is the
			// session run index. Context must be a function of it — the batch
			// evaluator precomputes contexts before any run executes, when the
			// live evaluation counter still points at the batch start.
			Context: func(it int) []float64 { return ctxOf(it) },
		}
		// A third of the sample-collection budget goes to space-filling LHS
		// so the QCSA/IICP statistics see uncorrelated coverage; the rest is
		// EI-guided ("BO with DAGP", Figure 4) and begins improving the
		// incumbent early. The LHS block's points are independent, so the
		// batch evaluator runs them on concurrent simulated cluster slots.
		p1res = bo.Minimize(p1, bo.Options{
			InitPoints:  t.opts.NQCSA / 3,
			MinIter:     t.opts.NQCSA, // phase 1 always collects the full sample set
			MaxIter:     t.opts.NQCSA,
			EIStopFrac:  0, // no early stop while collecting samples
			MCMCSamples: t.opts.MCMCSamples,
			HyperEvery:  t.opts.HyperEvery,
			Candidates:  400,
			Workers:     t.opts.Workers,
			Seed:        t.opts.Seed,
			Stop:        sessionStop,
			Tracer:      t.opts.Tracer,
			EvalBatch: func(xs, ctxs [][]float64) []float64 {
				cs := make([]conf.Config, len(xs))
				for i, x := range xs {
					cs[i] = space.Decode(x)
				}
				ys, _ := runFullBatch(cs)
				return ys
			},
		})
		phaseSpan.End()
	} else {
		rep.WarmStarted = true
		rep.PriorObsUsed = len(prior.Obs)
		fresh := min(t.opts.WarmFreshRuns, t.opts.NQCSA)
		t.logf("phase 1: warm start from %d prior observations, %d fresh anchor runs",
			len(prior.Obs), fresh)
		phaseSpan = tr.Start("phase1/warm-anchors")
		rng := rand.New(rand.NewSource(t.opts.Seed))
		_, complete := runFullBatch(space.LHS(fresh, rng))
		phaseSpan.End()
		if !complete {
			if err := runner.BackendErr(t.run); err != nil {
				return t.degrade(rep, space, targetGB, err)
			}
			if cause := t.overBudget(rep); cause != nil {
				return t.degrade(rep, space, targetGB, cause)
			}
			return nil, ErrStopped
		}
		// Prior observations and the fresh anchors together form the
		// phase-1 history the DAGP base selection and the phase-2 warm
		// start consume.
		p1res.BestY = math.Inf(1)
		for _, ob := range prior.Obs {
			p1res.History = append(p1res.History, bo.Step{
				X:   space.Encode(ob.Conf),
				Ctx: priorCtx(ob.DataGB),
				Y:   ob.Sec,
			})
		}
		for _, e := range rep.History {
			p1res.History = append(p1res.History, bo.Step{
				X:   space.Encode(e.Conf),
				Ctx: priorCtx(e.DataGB),
				Y:   e.Sec,
			})
		}
		for _, s := range p1res.History {
			if s.Y < p1res.BestY {
				p1res.BestY = s.Y
				p1res.BestX = s.X
			}
		}
	}
	// Backend death and budget exhaustion are checked before user
	// cancellation: a session that already paid for sample runs degrades to
	// its best observation instead of discarding them.
	if err := runner.BackendErr(t.run); err != nil {
		return t.degrade(rep, space, targetGB, err)
	}
	if cause := t.overBudget(rep); cause != nil {
		return t.degrade(rep, space, targetGB, cause)
	}
	if t.stopped() {
		return nil, ErrStopped
	}

	// ---- QCSA: build the reduced query application. ----
	target := t.app
	keepAll := map[string]bool{}
	for _, q := range t.app.Queries {
		keepAll[q.Name] = true
	}
	keep := keepAll
	if t.opts.UseQCSA {
		qs := tr.Start("qcsa/reduce")
		if prior != nil && len(prior.Sensitive) > 0 {
			// Reuse the past session's sensitivity analysis verbatim.
			keep = map[string]bool{}
			for _, n := range prior.Sensitive {
				keep[n] = true
			}
			rqa := t.app.Subset(keep)
			rep.QCSA = &qcsa.Result{
				Sensitive: append([]string(nil), prior.Sensitive...),
				RQA:       rqa,
			}
			target = rqa
			t.logf("qcsa: reusing %d sensitive queries from prior session", len(prior.Sensitive))
		} else {
			qres, err := qcsa.Analyze(t.app, phase1Runs)
			if err != nil {
				qs.End()
				return nil, err
			}
			rep.QCSA = qres
			target = qres.RQA
			keep = map[string]bool{}
			for _, n := range qres.Sensitive {
				keep[n] = true
			}
			t.logf("qcsa: kept %d/%d configuration-sensitive queries",
				len(qres.Sensitive), len(t.app.Queries))
		}
		qs.End()
	}
	rqaSec := func(qs map[string]float64, total float64) (float64, bool) {
		if !t.opts.UseQCSA {
			return total, true
		}
		if qs == nil {
			return 0, false
		}
		var s float64
		for n, sec := range qs {
			if keep[n] {
				s += sec
			}
		}
		return s, true
	}

	// ---- IICP: restrict the search space to important parameters. ----
	// The phase-2 base (which pins every non-important parameter) is chosen
	// by DAGP posterior mean over the phase-1 observations rather than by
	// the noisy observed minimum.
	// In the warm path p1res.History leads with the prior observations —
	// exactly the FitTransfer base.
	warmN := 0
	if prior != nil {
		warmN = len(prior.Obs)
	}
	dspan := tr.Start("dagp/select-base")
	bestPhase1 := space.Decode(t.bestOfHistory(p1res, warmN, targetGB))
	dspan.End()
	tuneIdx := allIndices(space.Dim())
	if t.opts.UseIICP {
		is := tr.Start("iicp/select")
		if prior != nil && len(prior.Important) > 0 {
			tuneIdx = append([]int(nil), prior.Important...)
			rep.IICP = &iicp.Result{Important: append([]int(nil), prior.Important...)}
			t.logf("iicp: reusing %d important parameters from prior session", len(tuneIdx))
		} else {
			isamples := samples
			if prior != nil {
				// A warm session's few anchors are not enough for stable
				// parameter statistics; fold the prior observations in.
				for _, ob := range prior.Obs {
					isamples = append(isamples, iicp.Sample{Conf: ob.Conf, Sec: ob.Sec})
				}
			}
			iopts := iicp.DefaultOptions()
			iopts.SCCCutoff = t.opts.SCCCutoff
			n := t.opts.NIICP
			if prior != nil {
				n = len(isamples)
			}
			ires, err := iicp.Analyze(space, isamples[:min(n, len(isamples))], iopts)
			if err != nil {
				is.End()
				return nil, err
			}
			rep.IICP = ires
			if len(ires.Important) > 0 {
				tuneIdx = ires.Important
			}
			t.logf("iicp: selected %d important parameters", len(tuneIdx))
		}
		is.End()
	}
	sub, err := conf.NewSubspace(space, bestPhase1, tuneIdx)
	if err != nil {
		return nil, err
	}

	// Warm-start phase 2 with every known observation re-expressed on the
	// RQA scale (per-query latencies are recorded, so the RQA portion of a
	// full run is known exactly; prior observations lacking per-query data
	// are dropped rather than mis-scaled).
	var init []bo.Step
	if prior != nil {
		for _, ob := range prior.Obs {
			if y, ok := rqaSec(ob.QuerySecs, ob.Sec); ok {
				init = append(init, bo.Step{X: sub.Encode(ob.Conf), Ctx: priorCtx(ob.DataGB), Y: y})
			}
		}
	}
	for _, e := range rep.History {
		if y, ok := rqaSec(e.QuerySecs, e.Sec); ok {
			init = append(init, bo.Step{X: sub.Encode(e.Conf), Ctx: priorCtx(e.DataGB), Y: y})
		}
	}

	// ---- Phase 2: BO over the important-parameter subspace on the RQA. ----
	t.logf("phase 2: subspace BO over %d parameters (%d warm observations)", sub.Dim(), len(init))
	phaseSpan = tr.Start("phase2/search")
	p2 := bo.Problem{
		Dim: sub.Dim(),
		Eval: func(x, ctx []float64) float64 {
			c := sub.Decode(x)
			ds := sizeOf(rep.Evaluations())
			run := t.run.RunApp(target, c, ds)
			rep.OverheadSec += run.Sec
			rep.SearchSec += run.Sec
			phaseSpan.Add(1, run.Sec)
			if t.opts.UseQCSA {
				rep.RQARuns++
			} else {
				rep.FullRuns++
			}
			rep.History = append(rep.History, Eval{
				Conf: c, DataGB: ds, Sec: run.Sec, FullApp: !t.opts.UseQCSA, QuerySecs: querySecs(run),
			})
			return run.Sec
		},
		// Phase 2 evaluates serially (no EvalBatch), so Context is called
		// immediately before each Eval and the live counter is the session
		// run index the data schedule expects. bo's own iteration index would
		// be wrong here: it counts the injected Init steps (prior
		// observations included), not this session's executed runs.
		Context: func(it int) []float64 { return ctxOf(rep.Evaluations()) },
	}
	p2res := bo.Minimize(p2, bo.Options{
		InitPoints:  3,
		MinIter:     t.opts.MinIter,
		MaxIter:     t.opts.MaxIter,
		EIStopFrac:  t.opts.EIStopFrac,
		MCMCSamples: t.opts.MCMCSamples,
		HyperEvery:  t.opts.HyperEvery,
		Candidates:  800,
		Workers:     t.opts.Workers,
		Init:        init,
		Seed:        t.opts.Seed + 1,
		Stop:        sessionStop,
		Tracer:      t.opts.Tracer,
	})
	phaseSpan.End()
	if err := runner.BackendErr(t.run); err != nil {
		return t.degrade(rep, space, targetGB, err)
	}
	if cause := t.overBudget(rep); cause != nil {
		return t.degrade(rep, space, targetGB, cause)
	}
	if t.stopped() {
		return nil, ErrStopped
	}

	// ---- Final selection. ----
	// For a warm session the init steps (prior observations re-expressed on
	// the RQA scale plus the phase-1 anchors) are the transfer base.
	p2warm := 0
	if prior != nil {
		p2warm = len(init)
	}
	fs := tr.Start("final/select")
	rep.Best = t.pickBest(sub, p2res, p2warm, targetGB)
	rep.TunedSec = t.run.NoiselessAppTime(t.app, rep.Best, targetGB)
	t.applyGuardrail(rep, space, targetGB)
	fs.End()
	t.logf("done: %d runs, %.0f s overhead (%.0f sampling + %.0f search), tuned latency %.0f s",
		rep.Evaluations(), rep.OverheadSec, rep.SamplingSec, rep.SearchSec, rep.TunedSec)
	return rep, nil
}

// degrade finishes a session cut short mid-way — backend gone
// sticky-faulty, deadline expired, or cluster-second budget exhausted: the
// report keeps everything the session measured and recommends the best
// full-application configuration actually observed (prior observations
// included for warm sessions) rather than failing — cluster time already
// paid for those samples. A session cut short before any successful run
// leaves nothing to recommend and fails with the cause.
func (t *Tuner) degrade(rep *Report, space *conf.Space, targetGB float64, cause error) (*Report, error) {
	var best conf.Config
	bestSec := math.Inf(1)
	if prior := t.warmPrior(); prior != nil {
		for _, ob := range prior.Obs {
			if ob.Sec > 0 && ob.Sec < bestSec {
				best, bestSec = ob.Conf, ob.Sec
			}
		}
	}
	// Failed runs report zero seconds; they are observations of nothing and
	// must not win. Only full-application runs qualify — an RQA latency is
	// on a different scale.
	for _, e := range rep.History {
		if e.FullApp && e.Sec > 0 && e.Sec < bestSec {
			best, bestSec = e.Conf, e.Sec
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: session ended before any successful sample run: %w", cause)
	}
	rep.Best = best
	rep.Degraded = cause.Error()
	// NoiselessAppTime models execution without touching the (dead) backend,
	// so the degraded recommendation still gets an evaluated latency and the
	// guardrail below still applies.
	rep.TunedSec = t.run.NoiselessAppTime(t.app, rep.Best, targetGB)
	t.applyGuardrail(rep, space, targetGB)
	t.logf("degraded: %v; returning best of %d observed runs (%.0f s observed)",
		cause, rep.Evaluations(), bestSec)
	return rep, nil
}

// applyGuardrail pins the session's floor: the recommendation is never
// worse than the default configuration it started from. When the selected
// configuration evaluates slower than the default at the target size, the
// default wins and the report says so — "tuned" must never mean "worse".
func (t *Tuner) applyGuardrail(rep *Report, space *conf.Space, targetGB float64) {
	rep.BaselineSec = t.run.NoiselessAppTime(t.app, space.Default(), targetGB)
	if rep.BaselineSec > 0 && rep.TunedSec > rep.BaselineSec {
		rep.Best = space.Default()
		rep.TunedSec = rep.BaselineSec
		rep.FellBack = true
		t.logf("guardrail: selected configuration (%.0f s) loses to the default (%.0f s); recommending the default",
			rep.TunedSec, rep.BaselineSec)
	}
}

// dagpRank fits a DAGP on the steps and returns the decision point with the
// lowest posterior mean at targetGB — the de-noised, size-transferred
// incumbent. ok is false when the model cannot be fitted. warmN is the
// number of leading steps that came from a warm-start prior: when positive,
// hyperparameters are inferred on that prior alone and the session's own
// runs arrive as a batch append (dagp.FitTransfer), so the MCMC's repeated
// cubic refits do not grow with the session length. workers bounds the
// inference parallelism (Options.Workers; results are identical for every
// worker count).
func dagpRank(hist []bo.Step, warmN int, targetGB float64, seed int64, workers int) (best []float64, ok bool) {
	rng := rand.New(rand.NewSource(seed))
	var ds []dagp.Sample
	for _, s := range hist {
		size := targetGB
		if len(s.Ctx) > 0 {
			size = s.Ctx[0] * dagp.ScaleGB
		}
		ds = append(ds, dagp.Sample{X: s.X, DataGB: size, Sec: s.Y})
	}
	var model *dagp.Model
	var err error
	if warmN > 0 && warmN < len(ds) {
		model, err = dagp.FitTransferWorkers(ds[:warmN], ds[warmN:], rng, workers)
	} else {
		model, err = dagp.FitWorkers(ds, rng, workers)
	}
	if err != nil {
		return nil, false
	}
	// Rank every evaluated point by posterior mean at the target size in one
	// batched prediction instead of a per-point Predict loop.
	xs := make([][]float64, len(hist))
	for i, s := range hist {
		xs[i] = s.X
	}
	means := model.PredictBatch(xs, targetGB, nil)
	bestPred := math.Inf(1)
	for i, m := range means {
		if m < bestPred {
			bestPred = m
			best = hist[i].X
		}
	}
	return best, best != nil
}

// pickBest chooses the final configuration. Without DAGP the best observed
// RQA point wins; with DAGP the surrogate's posterior mean at the target
// size ranks every evaluated point, which both de-noises the selection
// (single runs are noisy; the GP pools information across neighbours) and
// transfers observations taken at other data sizes to the target size
// (Section 3.4's online adaptation).
func (t *Tuner) pickBest(sub *conf.Subspace, res bo.Result, warmN int, targetGB float64) conf.Config {
	if !t.opts.UseDAGP {
		return sub.Decode(res.BestX)
	}
	if x, ok := dagpRank(res.History, warmN, targetGB, t.opts.Seed+2, t.opts.Workers); ok {
		return sub.Decode(x)
	}
	return sub.Decode(res.BestX)
}

// bestOfHistory returns the decision point of res with the lowest DAGP
// posterior mean at targetGB (falling back to the observed best when the
// model cannot be fitted or DAGP is disabled).
func (t *Tuner) bestOfHistory(res bo.Result, warmN int, targetGB float64) []float64 {
	if !t.opts.UseDAGP {
		return res.BestX
	}
	if x, ok := dagpRank(res.History, warmN, targetGB, t.opts.Seed+3, t.opts.Workers); ok {
		return x
	}
	return res.BestX
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
