package core

import (
	"math"
	"testing"

	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// priorFromReport converts a finished session's full-application history
// into a Prior, the way the tuning service's history store does.
func priorFromReport(rep *Report) *Prior {
	p := &Prior{}
	for _, e := range rep.History {
		if !e.FullApp {
			continue
		}
		p.Obs = append(p.Obs, PriorObs{
			Conf: e.Conf, DataGB: e.DataGB, Sec: e.Sec, QuerySecs: e.QuerySecs,
		})
	}
	if rep.QCSA != nil {
		p.Sensitive = append([]string(nil), rep.QCSA.Sensitive...)
	}
	if rep.IICP != nil {
		p.Important = append([]int(nil), rep.IICP.Important...)
	}
	return p
}

func TestPhaseOverheadAccounting(t *testing.T) {
	sim := sparksim.New(sparksim.ARM(), 11)
	rep, err := New(sim, workloads.TPCH(), quickOpts()).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SamplingSec <= 0 || rep.SearchSec <= 0 {
		t.Fatalf("per-phase overhead not populated: sampling %v search %v",
			rep.SamplingSec, rep.SearchSec)
	}
	if math.Abs(rep.SamplingSec+rep.SearchSec-rep.OverheadSec) > 1e-6 {
		t.Fatalf("phases %v+%v do not sum to total %v",
			rep.SamplingSec, rep.SearchSec, rep.OverheadSec)
	}
	if rep.WarmStarted || rep.PriorObsUsed != 0 {
		t.Fatal("cold session reported as warm")
	}
}

func TestWarmStartFromPrior(t *testing.T) {
	app := workloads.TPCH()

	cold := func(seed int64, gb float64) *Report {
		sim := sparksim.New(sparksim.ARM(), seed)
		rep, err := New(sim, app, quickOpts()).Tune(gb)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// A finished session at 100 GB becomes the prior for a neighboring
	// 140 GB target.
	first := cold(21, 100)
	prior := priorFromReport(first)

	o := quickOpts()
	o.Prior = prior
	sim := sparksim.New(sparksim.ARM(), 22)
	warm, err := New(sim, app, o).Tune(140)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("session did not warm-start despite a sufficient prior")
	}
	if warm.PriorObsUsed != len(prior.Obs) {
		t.Fatalf("PriorObsUsed = %d, want %d", warm.PriorObsUsed, len(prior.Obs))
	}
	if warm.FullRuns != 4 {
		t.Fatalf("warm session ran %d full-app anchors, want WarmFreshRuns=4", warm.FullRuns)
	}
	if warm.QCSA == nil || len(warm.QCSA.Sensitive) != len(prior.Sensitive) {
		t.Fatal("prior QCSA artifact not reused")
	}
	if warm.IICP == nil || len(warm.IICP.Important) != len(prior.Important) {
		t.Fatal("prior IICP artifact not reused")
	}
	if math.Abs(warm.SamplingSec+warm.SearchSec-warm.OverheadSec) > 1e-6 {
		t.Fatalf("phases %v+%v do not sum to total %v",
			warm.SamplingSec, warm.SearchSec, warm.OverheadSec)
	}

	// The headline claim: tuning the neighboring size warm costs less
	// simulated cluster time than tuning it cold.
	coldNeighbor := cold(22, 140)
	if warm.OverheadSec >= coldNeighbor.OverheadSec {
		t.Fatalf("warm overhead %v not below cold overhead %v",
			warm.OverheadSec, coldNeighbor.OverheadSec)
	}

	// And the warm result must still beat the Spark defaults.
	def := sparksim.New(sparksim.ARM(), 22).NoiselessAppTime(app, sim.Space().Default(), 140)
	if warm.TunedSec >= def {
		t.Fatalf("warm-tuned %v not better than default %v", warm.TunedSec, def)
	}
}

func TestWarmStartRequiresEnoughObs(t *testing.T) {
	sim := sparksim.New(sparksim.ARM(), 31)
	app := workloads.TPCH()
	o := quickOpts()
	o.Prior = &Prior{Obs: make([]PriorObs, minWarmObs-1)}
	// Too few observations: the prior must be ignored, not crash the cold
	// pipeline.
	rep, err := New(sim, app, o).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmStarted {
		t.Fatal("warm-started on an insufficient prior")
	}
	if rep.FullRuns != o.NQCSA {
		t.Fatalf("FullRuns = %d; want the cold N_QCSA %d", rep.FullRuns, o.NQCSA)
	}
}

func TestWarmStartRequiresDAGP(t *testing.T) {
	first, err := New(sparksim.New(sparksim.ARM(), 41), workloads.TPCH(), quickOpts()).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.Prior = priorFromReport(first)
	o.UseDAGP = false
	rep, err := New(sparksim.New(sparksim.ARM(), 42), workloads.TPCH(), o).Tune(140)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmStarted {
		t.Fatal("warm-started without the DAGP, which the size transfer requires")
	}
}

func TestStopHook(t *testing.T) {
	sim := sparksim.New(sparksim.ARM(), 51)
	o := quickOpts()
	calls := 0
	o.Stop = func() bool { calls++; return calls > 3 }
	_, err := New(sim, workloads.TPCH(), o).Tune(100)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}
