package core

import (
	"math"
	"strings"
	"testing"

	"locat/internal/runner"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// A cluster-second budget too small for the full session must degrade to
// the best observed configuration, not fail — and because overhead accrues
// only between evaluation batches on the session goroutine, the cutoff
// point is bit-for-bit reproducible at any worker count.
func TestClusterSecondBudgetDegradesDeterministically(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		opts := quickOpts()
		opts.MaxClusterSec = 1 // exhausted right after the first sampling batch
		opts.Workers = workers
		rep, err := New(sparksim.New(sparksim.ARM(), 1), workloads.TPCH(), opts).Tune(100)
		if err != nil {
			t.Fatalf("budget exhaustion failed the session: %v", err)
		}
		return rep
	}
	a := run(1)
	if a.Degraded == "" || !strings.Contains(a.Degraded, "budget") {
		t.Fatalf("Degraded = %q; want the budget cause", a.Degraded)
	}
	if a.FullRuns == 0 {
		t.Fatal("no successful run before the cutoff; degrade had nothing to recommend")
	}
	if a.FullRuns >= quickOpts().NQCSA {
		t.Fatalf("FullRuns = %d; the 1 s budget should cut phase 1 short of %d", a.FullRuns, quickOpts().NQCSA)
	}
	if err := sparksim.ARM().Space().Validate(a.Best); err != nil {
		t.Fatalf("degraded recommendation invalid: %v", err)
	}
	if a.TunedSec > a.BaselineSec {
		t.Fatalf("degraded recommendation (%v s) worse than default (%v s)", a.TunedSec, a.BaselineSec)
	}
	for _, workers := range []int{2, 4} {
		b := run(workers)
		if math.Float64bits(a.OverheadSec) != math.Float64bits(b.OverheadSec) ||
			a.FullRuns != b.FullRuns || a.TunedSec != b.TunedSec {
			t.Fatalf("workers=%d diverged: overhead %v/%v runs %d/%d tuned %v/%v",
				workers, a.OverheadSec, b.OverheadSec, a.FullRuns, b.FullRuns, a.TunedSec, b.TunedSec)
		}
		for i := range a.Best {
			if a.Best[i] != b.Best[i] {
				t.Fatalf("workers=%d chose a different configuration", workers)
			}
		}
	}
}

// An expired deadline degrades mid-session: the report carries the cause
// and everything measured before the cutoff.
func TestDeadlineExpiryDegrades(t *testing.T) {
	var tally runner.Tally
	r := runner.Observe(sparksim.New(sparksim.ARM(), 1), &tally)
	opts := quickOpts()
	// Deterministic stand-in for a wall clock: "expired" once three runs
	// have been paid for.
	opts.Expired = func() bool { runs, _ := tally.Snapshot(); return runs >= 3 }
	rep, err := New(r, workloads.TPCH(), opts).Tune(100)
	if err != nil {
		t.Fatalf("deadline expiry failed the session: %v", err)
	}
	if !strings.Contains(rep.Degraded, "deadline") {
		t.Fatalf("Degraded = %q; want the deadline cause", rep.Degraded)
	}
	if rep.FullRuns == 0 || rep.FullRuns >= quickOpts().NQCSA {
		t.Fatalf("FullRuns = %d; want a partial phase-1 sample set", rep.FullRuns)
	}
	if rep.TunedSec > rep.BaselineSec {
		t.Fatalf("degraded recommendation (%v s) worse than default (%v s)", rep.TunedSec, rep.BaselineSec)
	}
}

// A deadline that expires before a single run completes leaves nothing to
// recommend: that stays an error.
func TestDeadlineBeforeFirstRunFails(t *testing.T) {
	opts := quickOpts()
	opts.Expired = func() bool { return true }
	if _, err := New(sparksim.New(sparksim.ARM(), 1), workloads.TPCH(), opts).Tune(100); err == nil {
		t.Fatal("session with an instantly expired deadline produced a report")
	}
}
