package core

import (
	"math"
	"testing"

	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// quickOpts shrink the loop for tests while keeping the full pipeline.
func quickOpts() Options {
	o := DefaultOptions()
	o.NQCSA = 12
	o.NIICP = 10
	o.MaxIter = 12
	o.MinIter = 5
	o.MCMCSamples = 2
	return o
}

func TestTuneTPCH(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 1)
	app := workloads.TPCH()
	tuner := New(sim, app, quickOpts())
	rep, err := tuner.Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRuns != 12 {
		t.Fatalf("FullRuns = %d; want 12 (N_QCSA)", rep.FullRuns)
	}
	if rep.RQARuns < 5 || rep.RQARuns > 12 {
		t.Fatalf("RQARuns = %d; want within [MinIter, MaxIter]", rep.RQARuns)
	}
	if rep.QCSA == nil || rep.IICP == nil {
		t.Fatal("missing analysis artifacts")
	}
	if len(rep.History) != rep.Evaluations() {
		t.Fatalf("history %d != evaluations %d", len(rep.History), rep.Evaluations())
	}
	var sum float64
	for _, e := range rep.History {
		sum += e.Sec
	}
	if math.Abs(sum-rep.OverheadSec) > 1e-6 {
		t.Fatalf("overhead %v != history sum %v", rep.OverheadSec, sum)
	}
	if err := sim.Space().Validate(rep.Best); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	// The tuned configuration must beat the Spark defaults.
	def := sim.NoiselessAppTime(app, sim.Space().Default(), 100)
	if rep.TunedSec >= def {
		t.Fatalf("tuned %v not better than default %v", rep.TunedSec, def)
	}
}

func TestRQARunsAreCheaper(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 2)
	app := workloads.TPCDS()
	tuner := New(sim, app, quickOpts())
	rep, err := tuner.Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	// Mean RQA run must be well below mean full run — that is QCSA's whole
	// point (shorter sample collection).
	var fullSum, rqaSum float64
	var nFull, nRQA int
	for _, e := range rep.History {
		if e.FullApp {
			fullSum += e.Sec
			nFull++
		} else {
			rqaSum += e.Sec
			nRQA++
		}
	}
	if nFull == 0 || nRQA == 0 {
		t.Fatal("missing run kinds")
	}
	if rqaSum/float64(nRQA) >= 0.9*fullSum/float64(nFull) {
		t.Fatalf("RQA runs (%v avg) not cheaper than full runs (%v avg)",
			rqaSum/float64(nRQA), fullSum/float64(nFull))
	}
}

func TestAblationDisableQCSA(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 3)
	app := workloads.TPCH()
	o := quickOpts()
	o.UseQCSA = false
	rep, err := New(sim, app, o).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QCSA != nil {
		t.Fatal("QCSA artifact present despite being disabled")
	}
	if rep.RQARuns != 0 {
		t.Fatalf("RQARuns = %d; want 0 when QCSA disabled", rep.RQARuns)
	}
}

func TestAblationDisableIICP(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 4)
	app := workloads.TPCH()
	o := quickOpts()
	o.UseIICP = false
	rep, err := New(sim, app, o).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IICP != nil {
		t.Fatal("IICP artifact present despite being disabled")
	}
}

func TestOnlineDataSchedule(t *testing.T) {
	// The online scenario: input size changes across tuning runs; the DAGP
	// shares observations across sizes and the tuner still returns a valid
	// configuration evaluated at the target size.
	cl := sparksim.X86()
	sim := sparksim.New(cl, 5)
	app := workloads.TPCH()
	sizes := []float64{100, 200, 300, 400, 500}
	o := quickOpts()
	o.DataSchedule = func(run int) float64 { return sizes[run%len(sizes)] }
	rep, err := New(sim, app, o).Tune(300)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, e := range rep.History {
		seen[e.DataGB] = true
	}
	if len(seen) != len(sizes) {
		t.Fatalf("observed sizes %v; want all of %v", seen, sizes)
	}
	if err := sim.Space().Validate(rep.Best); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	def := sim.NoiselessAppTime(app, sim.Space().Default(), 300)
	if rep.TunedSec >= def {
		t.Fatalf("online-tuned %v not better than default %v", rep.TunedSec, def)
	}
}

func TestTuneErrors(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 6)
	tuner := New(sim, workloads.TPCH(), quickOpts())
	if _, err := tuner.Tune(0); err == nil {
		t.Fatal("zero data size accepted")
	}
	if _, err := tuner.Tune(-5); err == nil {
		t.Fatal("negative data size accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Report {
		cl := sparksim.ARM()
		sim := sparksim.New(cl, 7)
		rep, err := New(sim, workloads.TPCH(), quickOpts()).Tune(100)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.TunedSec != b.TunedSec || a.OverheadSec != b.OverheadSec ||
		a.Evaluations() != b.Evaluations() {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatalf("best configs diverged at param %d", i)
		}
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.NQCSA != 30 || o.NIICP != 20 || o.SCCCutoff != 0.2 ||
		o.MinIter != 10 || o.EIStopFrac != 0.10 {
		t.Fatalf("defaults diverge from the paper: %+v", o)
	}
	if !o.UseQCSA || !o.UseIICP || !o.UseDAGP {
		t.Fatal("techniques not enabled by default")
	}
}

func TestWarmStartReusesPhase1(t *testing.T) {
	// Phase 2 must start from the phase-1 observations: its BO history
	// includes them as Init steps, so the subspace search never re-explores
	// from scratch. Observable effect: RQA runs alone are fewer than the
	// phase-2 budget would allow from a cold start, and tuning still beats
	// the best phase-1 sample.
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 9)
	app := workloads.TPCH()
	o := quickOpts()
	rep, err := New(sim, app, o).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	bestFull := math.Inf(1)
	for _, e := range rep.History {
		if e.FullApp && e.Sec < bestFull {
			bestFull = e.Sec
		}
	}
	// The final tuned latency should not be dramatically worse than the
	// best full-app observation (it is a noiseless evaluation, so allow a
	// noise margin).
	if rep.TunedSec > bestFull*1.5 {
		t.Fatalf("tuned %v much worse than best phase-1 sample %v", rep.TunedSec, bestFull)
	}
}

func TestIICPSubspaceSmallerThanFull(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 10)
	rep, err := New(sim, workloads.TPCDS(), quickOpts()).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.IICP.NumImportant(); n <= 0 || n >= 38 {
		t.Fatalf("important-parameter count %d not a strict subset", n)
	}
}
