package core

import (
	"strings"
	"testing"
	"time"

	"locat/internal/runner"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// A backend that dies mid-session must not fail the session: the tuner
// stops between iterations, keeps everything it measured and recommends
// the best full-application configuration actually observed, flagged as
// degraded.
func TestBackendDeathMidSessionDegrades(t *testing.T) {
	cl := sparksim.ARM()
	app := workloads.TPCH()
	// Sticky failure after 8 executions: mid phase 1 (NQCSA is 12).
	chaos := runner.NewChaos(runner.NewSim(sparksim.New(cl, 1)), runner.ChaosOptions{FailAfter: 8, Seed: 1})
	rep, err := New(chaos, app, quickOpts()).Tune(100)
	if err != nil {
		t.Fatalf("mid-session backend death failed the session: %v", err)
	}
	if rep.Degraded == "" || !strings.Contains(rep.Degraded, "chaos") {
		t.Fatalf("Degraded = %q; want the backend failure cause", rep.Degraded)
	}
	if err := cl.Space().Validate(rep.Best); err != nil {
		t.Fatalf("degraded recommendation invalid: %v", err)
	}
	if rep.TunedSec <= 0 || rep.BaselineSec <= 0 {
		t.Fatalf("degraded report costs: tuned %v, baseline %v", rep.TunedSec, rep.BaselineSec)
	}
	// The guardrail holds even in degradation: never worse than the default.
	if rep.TunedSec > rep.BaselineSec {
		t.Fatalf("degraded recommendation (%v s) worse than default (%v s)", rep.TunedSec, rep.BaselineSec)
	}
	// Only paid runs are in the history; the sticky failure stopped the
	// session well short of the full budget.
	if rep.FullRuns == 0 || rep.FullRuns >= 12 {
		t.Fatalf("FullRuns = %d; want a partial phase-1 sample set", rep.FullRuns)
	}
}

// A backend dead from the very first run leaves nothing to recommend —
// that must stay an error, not a fabricated result.
func TestBackendDeadFromStartFails(t *testing.T) {
	cl := sparksim.ARM()
	chaos := runner.NewChaos(runner.NewSim(sparksim.New(cl, 1)), runner.ChaosOptions{FailAfter: 1, Seed: 1})
	// Consume the single allowed run so the session starts against a corpse.
	chaos.RunApp(&sparksim.Application{Name: "warmup", Queries: workloads.TPCH().Queries[:1]}, cl.Space().Default(), 100)
	if _, err := New(chaos, workloads.TPCH(), quickOpts()).Tune(100); err == nil {
		t.Fatal("session against a dead backend produced a report")
	}
}

// A tripped circuit breaker is a sticky backend failure like any other:
// the session degrades cleanly through the full production wrapper chain.
func TestBreakerTripDegrades(t *testing.T) {
	cl := sparksim.ARM()
	app := workloads.TPCH()
	// Every run fails all its attempts once 6 executions have happened
	// (failafter trips the chaos error, which is sticky, so the breaker's
	// consecutive-failure counter climbs immediately after).
	chain := runner.NewRetrying(
		runner.NewChaos(runner.NewSim(sparksim.New(cl, 3)), runner.ChaosOptions{FailAfter: 6, Seed: 2}),
		runner.RetryOptions{MaxAttempts: 2, BreakerThreshold: 2, Sleep: func(d time.Duration) {}},
	)
	rep, err := New(chain, app, quickOpts()).Tune(100)
	if err != nil {
		t.Fatalf("breaker trip failed the session: %v", err)
	}
	if rep.Degraded == "" {
		t.Fatal("report not flagged degraded after backend death")
	}
	if rep.TunedSec > rep.BaselineSec {
		t.Fatalf("degraded recommendation (%v s) worse than default (%v s)", rep.TunedSec, rep.BaselineSec)
	}
}
