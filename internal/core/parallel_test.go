package core

import (
	"testing"

	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// reportsEqual pins two reports to bit-for-bit equality of everything the
// tuner observed and decided.
func reportsEqual(t *testing.T, a, b *Report) {
	t.Helper()
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		ea, eb := a.History[i], b.History[i]
		if ea.Sec != eb.Sec || ea.DataGB != eb.DataGB || ea.FullApp != eb.FullApp {
			t.Fatalf("history step %d diverged: %+v vs %+v", i, ea, eb)
		}
		for j := range ea.Conf {
			if ea.Conf[j] != eb.Conf[j] {
				t.Fatalf("history step %d config diverged at param %d", i, j)
			}
		}
	}
	if a.OverheadSec != b.OverheadSec || a.SamplingSec != b.SamplingSec ||
		a.SearchSec != b.SearchSec || a.TunedSec != b.TunedSec {
		t.Fatalf("accounting diverged: %+v vs %+v", a, b)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatalf("best configs diverged at param %d", i)
		}
	}
}

// Parallel phase-1 sampling must reproduce the serial history exactly: the
// simulator derives each run's noise from its run index and the batch
// reduction is index-ordered, so Workers only changes wall-clock time.
func TestParallelSamplingMatchesSerial(t *testing.T) {
	run := func(workers int) *Report {
		sim := sparksim.New(sparksim.ARM(), 13)
		o := quickOpts()
		o.Workers = workers
		rep, err := New(sim, workloads.TPCH(), o).Tune(100)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	for _, w := range []int{2, 4, 0} { // 0 = GOMAXPROCS
		reportsEqual(t, serial, run(w))
	}
}

// Under a changing data-size schedule the batch path must label every run —
// and the context the DAGP trains on — with its own size (the batch
// evaluator precomputes contexts by iteration index, so a context derived
// from anything else would stamp the whole LHS block with run 0's size),
// and stay worker-count invariant.
func TestParallelSamplingWithDataSchedule(t *testing.T) {
	sizes := []float64{100, 200, 300, 400, 500}
	run := func(workers int) *Report {
		sim := sparksim.New(sparksim.X86(), 19)
		o := quickOpts()
		o.Workers = workers
		o.DataSchedule = func(run int) float64 { return sizes[run%len(sizes)] }
		rep, err := New(sim, workloads.TPCH(), o).Tune(300)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	for i, e := range serial.History {
		if e.DataGB != sizes[i%len(sizes)] {
			t.Fatalf("run %d executed at %v GB; schedule says %v", i, e.DataGB, sizes[i%len(sizes)])
		}
	}
	reportsEqual(t, serial, run(4))
}

// The warm-start anchor runs go through the same batch path; a warm session
// must also be worker-count invariant.
func TestParallelWarmAnchorsMatchSerial(t *testing.T) {
	app := workloads.TPCH()
	first, err := New(sparksim.New(sparksim.ARM(), 61), app, quickOpts()).Tune(100)
	if err != nil {
		t.Fatal(err)
	}
	prior := priorFromReport(first)
	run := func(workers int) *Report {
		o := quickOpts()
		o.Prior = prior
		o.Workers = workers
		rep, err := New(sparksim.New(sparksim.ARM(), 62), app, o).Tune(140)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.WarmStarted {
			t.Fatal("session did not warm-start")
		}
		return rep
	}
	reportsEqual(t, run(1), run(4))
}
