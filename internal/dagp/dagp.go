// Package dagp implements the Datasize-Aware Gaussian Process — the third of
// LOCAT's three techniques (paper Section 3.4). The execution time of an
// application is modeled as t = f(conf, ds) (equation 7): a GP over the
// encoded configuration vector with the input data size appended as an extra
// feature. Observations taken at different data sizes therefore train one
// shared surrogate, which is what lets LOCAT keep tuning online while the
// input size changes instead of re-tuning from scratch (the CherryPick
// limitation the paper calls out).
package dagp

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"locat/internal/gp"
)

// ScaleGB normalizes a data size in GB into the model's unit range.
// 1 TB maps to 1.0, keeping the datasize feature commensurate with the
// unit-cube configuration features.
const ScaleGB = 1024.0

// Ctx encodes a data size as the BO context vector appended to every model
// input.
func Ctx(dataGB float64) []float64 { return []float64{dataGB / ScaleGB} }

// Sample is one observation for direct model fitting.
type Sample struct {
	// X is the encoded configuration (unit cube).
	X []float64
	// DataGB is the input data size of the run.
	DataGB float64
	// Sec is the observed latency.
	Sec float64
}

// Model is a fitted datasize-aware GP usable for direct prediction —
// the experiment harness uses it to pick the best evaluated configuration
// for a target data size, and the ablations use it to quantify the value of
// the datasize feature.
type Model struct {
	g *gp.GP
}

// encode flattens samples into GP training data: configuration vector with
// the normalized data size appended.
func encode(samples []Sample) (xs [][]float64, ys []float64) {
	xs = make([][]float64, len(samples))
	ys = make([]float64, len(samples))
	for i, s := range samples {
		x := make([]float64, 0, len(s.X)+1)
		x = append(x, s.X...)
		x = append(x, s.DataGB/ScaleGB)
		xs[i] = x
		ys[i] = s.Sec
	}
	return xs, ys
}

// Fit trains the DAGP on the samples, marginalizing hyperparameters by
// picking the posterior sample with the highest marginal likelihood from a
// short MCMC run. Equivalent to FitWorkers with the default worker budget.
func Fit(samples []Sample, rng *rand.Rand) (*Model, error) {
	return FitWorkers(samples, rng, 0)
}

// FitWorkers is Fit with an explicit bound on the goroutines used for
// hyperparameter inference: the MCMC chains run on a worker pool over one
// shared distance cache (gp.TrainSet), which the candidate model fits then
// reuse. 0 selects GOMAXPROCS, 1 runs serially; the fitted model is
// identical for every worker count.
func FitWorkers(samples []Sample, rng *rand.Rand, workers int) (*Model, error) {
	if len(samples) < 2 {
		return nil, errors.New("dagp: need at least 2 samples")
	}
	xs, ys := encode(samples)
	ts, err := gp.NewTrainSet(xs, ys, workers)
	if err != nil {
		return nil, err
	}
	var best *gp.GP
	bestML := 0.0
	for _, h := range ts.SampleHyper(5, rng, workers) {
		m, err := ts.Fit(h)
		if err != nil {
			continue
		}
		if ml := m.LogMarginalLikelihood(); best == nil || ml > bestML {
			best, bestML = m, ml
		}
	}
	if best == nil {
		return nil, errors.New("dagp: no usable hyperparameter sample")
	}
	return &Model{g: best}, nil
}

// Append extends a fitted model with additional observations without
// refitting: each costs one O(n²) incremental Cholesky extension under the
// hyperparameters the model was fitted with (gp.AppendBatch). On error the
// model is unchanged and still usable.
func (m *Model) Append(samples ...Sample) error {
	xs, ys := encode(samples)
	return m.g.AppendBatch(xs, ys)
}

// N returns the number of observations the model holds.
func (m *Model) N() int { return m.g.N() }

// FitTransfer builds a DAGP for the warm-start path: hyperparameters are
// inferred on base — the prior observations a SelectTransfer call ranked,
// which dominate the training set — and the fresh samples then arrive as a
// batch append under those hyperparameters. The expensive part of Fit is
// the MCMC's repeated O(n³) refits; restricting it to the prior and
// extending incrementally keeps that cost independent of how many fresh
// runs the session accumulates. Falls back to a joint Fit when base is too
// small to infer hyperparameters or the extension is numerically rejected.
func FitTransfer(base, fresh []Sample, rng *rand.Rand) (*Model, error) {
	return FitTransferWorkers(base, fresh, rng, 0)
}

// FitTransferWorkers is FitTransfer with an explicit worker bound for the
// hyperparameter inference over the transfer prior (see FitWorkers).
func FitTransferWorkers(base, fresh []Sample, rng *rand.Rand, workers int) (*Model, error) {
	joint := func() (*Model, error) {
		all := make([]Sample, 0, len(base)+len(fresh))
		all = append(all, base...)
		all = append(all, fresh...)
		return FitWorkers(all, rng, workers)
	}
	if len(fresh) == 0 {
		return FitWorkers(base, rng, workers)
	}
	if len(base) < 2 {
		return joint()
	}
	m, err := FitWorkers(base, rng, workers)
	if err != nil {
		return joint()
	}
	if err := m.Append(fresh...); err != nil {
		return joint()
	}
	return m, nil
}

// SelectTransfer picks at most max prior observations worth transferring to
// a session targeting targetGB and returns their indices into samples, most
// relevant first. Relevance combines two ranks: distance in log-datasize
// (the GP's datasize feature interpolates well between nearby sizes and
// poorly across decades) and observed latency (low-latency points carry the
// information the acquisition function needs around the optimum;
// high-latency points mostly teach the model what to avoid, which a few
// suffice for). The tuning service calls this before injecting
// history-store observations as a core.Prior, bounding both the GP's cubic
// fitting cost and the influence of far-away sizes.
func SelectTransfer(samples []Sample, targetGB float64, max int) []int {
	if max <= 0 || len(samples) <= max {
		out := make([]int, len(samples))
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Rank by log-size distance.
	sizeRank := make([]int, len(samples))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	logDist := func(i int) float64 {
		s := samples[i].DataGB
		if s <= 0 || targetGB <= 0 {
			return math.Inf(1)
		}
		return math.Abs(math.Log(s / targetGB))
	}
	sort.SliceStable(idx, func(a, b int) bool { return logDist(idx[a]) < logDist(idx[b]) })
	for r, i := range idx {
		sizeRank[i] = r
	}
	// Rank by latency.
	secRank := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return samples[idx[a]].Sec < samples[idx[b]].Sec })
	for r, i := range idx {
		secRank[i] = r
	}
	// Combined relevance: size proximity dominates, latency breaks ties and
	// pulls in near-optimal points from slightly farther sizes.
	for i := range idx {
		idx[i] = i
	}
	score := func(i int) int { return 2*sizeRank[i] + secRank[i] }
	sort.SliceStable(idx, func(a, b int) bool { return score(idx[a]) < score(idx[b]) })
	return append([]int(nil), idx[:max]...)
}

// Predict returns the posterior mean and variance of the latency of the
// encoded configuration x at the given data size (equation 10).
func (m *Model) Predict(x []float64, dataGB float64) (mean, variance float64) {
	in := make([]float64, 0, len(x)+1)
	in = append(in, x...)
	in = append(in, dataGB/ScaleGB)
	return m.g.Predict(in)
}

// PredictBatch returns the posterior mean latency of every encoded
// configuration at the given data size through gp.PredictBatch — one
// cross-kernel assembly and row-parallel batch math instead of a fresh
// prediction per point. Numerically identical to looping Predict. ws may be
// nil; when provided its buffers are reused and the returned slice is valid
// until the workspace's next use.
func (m *Model) PredictBatch(xs [][]float64, dataGB float64, ws *gp.PredictWorkspace) []float64 {
	if ws == nil {
		ws = &gp.PredictWorkspace{}
	}
	if len(xs) == 0 {
		return nil
	}
	in := ws.Inputs(len(xs), len(xs[0])+1)
	for i, x := range xs {
		copy(in[i], x)
		in[i][len(x)] = dataGB / ScaleGB
	}
	means, _ := m.g.PredictBatch(in, ws)
	return means
}
