package dagp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCtx(t *testing.T) {
	c := Ctx(512)
	if len(c) != 1 || math.Abs(c[0]-0.5) > 1e-12 {
		t.Fatalf("Ctx(512) = %v", c)
	}
}

func TestFitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Fit(nil, rng); err == nil {
		t.Fatal("empty sample set accepted")
	}
	if _, err := Fit([]Sample{{X: []float64{0}, DataGB: 100, Sec: 1}}, rng); err == nil {
		t.Fatal("single sample accepted")
	}
}

// TestDataSizeAwareness is the DAGP selling point: a model trained on mixed
// data sizes predicts that the same configuration runs longer on more data,
// without any observation at the queried size.
func TestDataSizeAwareness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := func(x float64, gb float64) float64 {
		// Latency grows with data size and has a config optimum at x=0.6.
		return gb / 100 * (1 + 4*(x-0.6)*(x-0.6))
	}
	var samples []Sample
	for i := 0; i < 40; i++ {
		x := rng.Float64()
		gb := []float64{100, 200, 400}[rng.Intn(3)]
		samples = append(samples, Sample{X: []float64{x}, DataGB: gb, Sec: truth(x, gb)})
	}
	m, err := Fit(samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolated size 300 GB was never observed.
	lo, _ := m.Predict([]float64{0.6}, 100)
	mid, _ := m.Predict([]float64{0.6}, 300)
	hi, _ := m.Predict([]float64{0.6}, 400)
	if !(lo < mid && mid < hi) {
		t.Fatalf("latency not increasing in data size: %v, %v, %v", lo, mid, hi)
	}
	// The config optimum must be recognizable at the unseen size.
	good, _ := m.Predict([]float64{0.6}, 300)
	bad, _ := m.Predict([]float64{0.05}, 300)
	if good >= bad {
		t.Fatalf("optimum not transferred across sizes: good %v, bad %v", good, bad)
	}
}

func TestPredictVarianceNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 12; i++ {
		samples = append(samples, Sample{
			X:      []float64{rng.Float64(), rng.Float64()},
			DataGB: 100 + rng.Float64()*400,
			Sec:    10 + rng.Float64()*5,
		})
	}
	m, err := Fit(samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_, v := m.Predict([]float64{rng.Float64(), rng.Float64()}, 100+rng.Float64()*900)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad variance %v", v)
		}
	}
}
