package dagp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCtx(t *testing.T) {
	c := Ctx(512)
	if len(c) != 1 || math.Abs(c[0]-0.5) > 1e-12 {
		t.Fatalf("Ctx(512) = %v", c)
	}
}

func TestFitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Fit(nil, rng); err == nil {
		t.Fatal("empty sample set accepted")
	}
	if _, err := Fit([]Sample{{X: []float64{0}, DataGB: 100, Sec: 1}}, rng); err == nil {
		t.Fatal("single sample accepted")
	}
}

// TestDataSizeAwareness is the DAGP selling point: a model trained on mixed
// data sizes predicts that the same configuration runs longer on more data,
// without any observation at the queried size.
func TestDataSizeAwareness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := func(x float64, gb float64) float64 {
		// Latency grows with data size and has a config optimum at x=0.6.
		return gb / 100 * (1 + 4*(x-0.6)*(x-0.6))
	}
	var samples []Sample
	for i := 0; i < 40; i++ {
		x := rng.Float64()
		gb := []float64{100, 200, 400}[rng.Intn(3)]
		samples = append(samples, Sample{X: []float64{x}, DataGB: gb, Sec: truth(x, gb)})
	}
	m, err := Fit(samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolated size 300 GB was never observed.
	lo, _ := m.Predict([]float64{0.6}, 100)
	mid, _ := m.Predict([]float64{0.6}, 300)
	hi, _ := m.Predict([]float64{0.6}, 400)
	if !(lo < mid && mid < hi) {
		t.Fatalf("latency not increasing in data size: %v, %v, %v", lo, mid, hi)
	}
	// The config optimum must be recognizable at the unseen size.
	good, _ := m.Predict([]float64{0.6}, 300)
	bad, _ := m.Predict([]float64{0.05}, 300)
	if good >= bad {
		t.Fatalf("optimum not transferred across sizes: good %v, bad %v", good, bad)
	}
}

func TestSelectTransfer(t *testing.T) {
	// 30 observations spread across three sizes; target 150 GB.
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, Sample{X: []float64{0.1}, DataGB: 100, Sec: 100 + float64(i)})
		samples = append(samples, Sample{X: []float64{0.2}, DataGB: 200, Sec: 200 + float64(i)})
		samples = append(samples, Sample{X: []float64{0.3}, DataGB: 3200, Sec: 900 + float64(i)})
	}
	sel := SelectTransfer(samples, 150, 12)
	if len(sel) != 12 {
		t.Fatalf("got %d samples, want 12", len(sel))
	}
	// The far-away 3.2 TB observations must be crowded out by the two
	// neighboring sizes.
	for _, i := range sel {
		if samples[i].DataGB > 1000 {
			t.Fatalf("far-size sample (%.0f GB) selected over near sizes", samples[i].DataGB)
		}
	}
	// Short-input and under-max passthrough copies everything.
	if got := SelectTransfer(samples[:3], 150, 12); len(got) != 3 {
		t.Fatalf("passthrough returned %d, want 3", len(got))
	}
	if got := SelectTransfer(samples, 150, 0); len(got) != len(samples) {
		t.Fatalf("max<=0 returned %d, want all %d", len(got), len(samples))
	}
}

func TestSelectTransferPrefersLowLatencyAtEqualSize(t *testing.T) {
	var samples []Sample
	for i := 0; i < 20; i++ {
		samples = append(samples, Sample{X: []float64{float64(i) / 20}, DataGB: 100, Sec: float64(1 + i)})
	}
	sel := SelectTransfer(samples, 100, 5)
	for _, i := range sel {
		if samples[i].Sec > 5 {
			t.Fatalf("high-latency sample (%.0f s) selected; want the 5 fastest", samples[i].Sec)
		}
	}
}

func TestPredictVarianceNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 12; i++ {
		samples = append(samples, Sample{
			X:      []float64{rng.Float64(), rng.Float64()},
			DataGB: 100 + rng.Float64()*400,
			Sec:    10 + rng.Float64()*5,
		})
	}
	m, err := Fit(samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_, v := m.Predict([]float64{rng.Float64(), rng.Float64()}, 100+rng.Float64()*900)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad variance %v", v)
		}
	}
}

func TestAppendExtendsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	truth := func(x, gb float64) float64 { return gb / 100 * (1 + 4*(x-0.6)*(x-0.6)) }
	mk := func(n int) []Sample {
		out := make([]Sample, 0, n)
		for i := 0; i < n; i++ {
			x := rng.Float64()
			gb := []float64{100, 200, 400}[rng.Intn(3)]
			out = append(out, Sample{X: []float64{x}, DataGB: gb, Sec: truth(x, gb)})
		}
		return out
	}
	base := mk(25)
	fresh := mk(10)
	m, err := Fit(base, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(fresh...); err != nil {
		t.Fatal(err)
	}
	if m.N() != 35 {
		t.Fatalf("N = %d; want 35", m.N())
	}
	// The extended model must still be datasize-aware.
	small, _ := m.Predict([]float64{0.6}, 100)
	large, _ := m.Predict([]float64{0.6}, 400)
	if large <= small {
		t.Fatalf("appended model lost size awareness: %v <= %v", large, small)
	}
}

func TestFitTransferMatchesFitQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := func(x, gb float64) float64 { return gb / 100 * (1 + 4*(x-0.55)*(x-0.55)) }
	var base, fresh []Sample
	for i := 0; i < 30; i++ {
		x := rng.Float64()
		gb := []float64{150, 300}[rng.Intn(2)]
		base = append(base, Sample{X: []float64{x}, DataGB: gb, Sec: truth(x, gb)})
	}
	for i := 0; i < 6; i++ {
		x := rng.Float64()
		fresh = append(fresh, Sample{X: []float64{x}, DataGB: 200, Sec: truth(x, 200)})
	}
	m, err := FitTransfer(base, fresh, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 36 {
		t.Fatalf("N = %d; want 36", m.N())
	}
	// Prediction at the target size must roughly track the truth around the
	// optimum — the transfer didn't corrupt the surrogate.
	got, _ := m.Predict([]float64{0.55}, 200)
	if math.Abs(got-truth(0.55, 200)) > 0.5 {
		t.Fatalf("transfer model predicts %v at the optimum; want ≈%v", got, truth(0.55, 200))
	}
	// Degenerate splits fall back to a joint fit.
	if m, err := FitTransfer(base[:1], fresh, rng); err != nil || m.N() != 7 {
		t.Fatalf("tiny base fallback: %v, n=%v", err, m.N())
	}
	if m, err := FitTransfer(base, nil, rng); err != nil || m.N() != 30 {
		t.Fatalf("no-fresh path: %v", err)
	}
}
