package conf

import (
	"fmt"
	"math/rand"

	"locat/internal/stat"
)

// Subspace is a projection of a Space onto a subset of parameter indices.
// LOCAT's IICP stage restricts Bayesian optimization to the important
// parameters; a Subspace holds the free indices while pinning every other
// parameter to a base configuration.
type Subspace struct {
	space   *Space
	base    Config
	indices []int
}

// NewSubspace returns a subspace of s over the given parameter indices.
// Parameters not listed stay fixed at base's values. The index list must be
// non-empty, in-range and free of duplicates.
func NewSubspace(s *Space, base Config, indices []int) (*Subspace, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("conf: empty subspace")
	}
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= NumParams {
			return nil, fmt.Errorf("conf: subspace index %d out of range", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("conf: duplicate subspace index %d", i)
		}
		seen[i] = true
	}
	idx := append([]int(nil), indices...)
	return &Subspace{space: s, base: base.Clone(), indices: idx}, nil
}

// Dim returns the number of free parameters.
func (ss *Subspace) Dim() int { return len(ss.indices) }

// Indices returns the free parameter indices (a copy).
func (ss *Subspace) Indices() []int { return append([]int(nil), ss.indices...) }

// Space returns the underlying full space.
func (ss *Subspace) Space() *Space { return ss.space }

// Base returns the pinned base configuration (a copy).
func (ss *Subspace) Base() Config { return ss.base.Clone() }

// Decode expands a unit-cube point over the free dimensions into a full,
// repaired configuration.
func (ss *Subspace) Decode(u []float64) Config {
	if len(u) != len(ss.indices) {
		panic(fmt.Sprintf("conf: Subspace.Decode point length %d, want %d", len(u), len(ss.indices)))
	}
	c := ss.base.Clone()
	for k, i := range ss.indices {
		v := u[k]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		r := ss.space.ranges[i]
		c[i] = r.Lo + v*r.Width()
	}
	return ss.space.Repair(c)
}

// Encode projects a full configuration onto the free dimensions in [0,1].
func (ss *Subspace) Encode(c Config) []float64 {
	full := ss.space.Encode(c)
	u := make([]float64, len(ss.indices))
	for k, i := range ss.indices {
		u[k] = full[i]
	}
	return u
}

// Random returns a valid configuration with free parameters sampled
// uniformly and the rest pinned to base.
func (ss *Subspace) Random(rng *rand.Rand) Config {
	u := make([]float64, len(ss.indices))
	for k := range u {
		u[k] = rng.Float64()
	}
	return ss.Decode(u)
}

// LHS returns n configurations drawn by Latin Hypercube Sampling over the
// free dimensions.
func (ss *Subspace) LHS(n int, rng *rand.Rand) []Config {
	pts := stat.LatinHypercube(n, len(ss.indices), rng)
	out := make([]Config, n)
	for i, u := range pts {
		out[i] = ss.Decode(u)
	}
	return out
}
