package conf

import (
	"fmt"
	"math"
	"math/rand"

	"locat/internal/stat"
)

// ClusterProfile selects which Table 2 range column applies.
type ClusterProfile int

const (
	// ProfileARM uses "Range A" (four-node KUNPENG ARM cluster).
	ProfileARM ClusterProfile = iota
	// ProfileX86 uses "Range B" (eight-node Xeon x86 cluster).
	ProfileX86
)

// String returns the profile name.
func (p ClusterProfile) String() string {
	if p == ProfileARM {
		return "ARM"
	}
	return "x86"
}

// ResourceLimits captures the cluster-manager (Yarn) capacities that bound
// resource parameters (paper Section 5.12): per-container limits and
// cluster-wide totals available to executors.
type ResourceLimits struct {
	// ContainerCores is the maximum CPU cores a single Yarn container may use.
	ContainerCores int
	// ContainerMemMB is the maximum memory (MB) of a single Yarn container.
	ContainerMemMB int
	// TotalCores is the total executor-usable cores in the cluster.
	TotalCores int
	// TotalMemMB is the total executor-usable memory (MB) in the cluster.
	TotalMemMB int
}

// Config is one full assignment of the 38 parameters, in natural units and
// canonical index order (see the P* index constants). Boolean parameters
// hold 0 or 1.
type Config []float64

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Bool reports whether the boolean parameter at index i is enabled.
func (c Config) Bool(i int) bool { return c[i] >= 0.5 }

// Space binds the Table 2 parameter list to one cluster's ranges and
// resource limits, and provides sampling, encoding and validation.
type Space struct {
	profile ClusterProfile
	limits  ResourceLimits
	ranges  [NumParams]Range
}

// NewSpace returns the configuration space for the given cluster profile and
// resource limits.
func NewSpace(profile ClusterProfile, limits ResourceLimits) *Space {
	s := &Space{profile: profile, limits: limits}
	for i, p := range params {
		if profile == ProfileARM {
			s.ranges[i] = p.RangeARM
		} else {
			s.ranges[i] = p.RangeX86
		}
	}
	return s
}

// Profile returns the cluster profile the space was built for.
func (s *Space) Profile() ClusterProfile { return s.profile }

// Limits returns the resource limits.
func (s *Space) Limits() ResourceLimits { return s.limits }

// Dim returns the number of parameters (38).
func (s *Space) Dim() int { return NumParams }

// RangeOf returns the value range of parameter i under this space's profile.
func (s *Space) RangeOf(i int) Range { return s.ranges[i] }

// Default returns the Spark default configuration, repaired to satisfy the
// space's ranges and resource constraints.
func (s *Space) Default() Config {
	c := make(Config, NumParams)
	for i, p := range params {
		c[i] = p.Default
	}
	return s.Repair(c)
}

// Random returns a uniformly random valid configuration.
func (s *Space) Random(rng *rand.Rand) Config {
	c := make(Config, NumParams)
	for i := range params {
		r := s.ranges[i]
		c[i] = r.Lo + rng.Float64()*r.Width()
	}
	return s.Repair(c)
}

// LHS returns n valid configurations drawn by Latin Hypercube Sampling over
// the full 38-dimensional space.
func (s *Space) LHS(n int, rng *rand.Rand) []Config {
	pts := stat.LatinHypercube(n, NumParams, rng)
	out := make([]Config, n)
	for i, u := range pts {
		out[i] = s.Decode(u)
	}
	return out
}

// Encode maps a configuration to the unit cube [0,1]^38 for model input.
func (s *Space) Encode(c Config) []float64 {
	if len(c) != NumParams {
		panic(fmt.Sprintf("conf: Encode config length %d", len(c)))
	}
	u := make([]float64, NumParams)
	for i := range c {
		r := s.ranges[i]
		if r.Width() == 0 {
			u[i] = 0
			continue
		}
		u[i] = (c[i] - r.Lo) / r.Width()
	}
	return u
}

// Decode maps a unit-cube point back to a valid configuration (rounding
// integer parameters and repairing resource constraints).
func (s *Space) Decode(u []float64) Config {
	if len(u) != NumParams {
		panic(fmt.Sprintf("conf: Decode point length %d", len(u)))
	}
	c := make(Config, NumParams)
	for i := range u {
		v := u[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		r := s.ranges[i]
		c[i] = r.Lo + v*r.Width()
	}
	return s.Repair(c)
}

// procMemMB returns the total per-executor-process memory demand in MB:
// heap + overhead + off-heap (paper Section 5.12).
func procMemMB(c Config) float64 {
	m := c[PExecutorMemory]*1024 + c[PExecutorMemoryOverhead]
	if c.Bool(POffHeapEnabled) {
		m += c[POffHeapSize]
	}
	return m
}

// Validate checks ranges, integrality and the resource constraints of
// Section 5.12. It returns nil for a valid configuration.
func (s *Space) Validate(c Config) error {
	if len(c) != NumParams {
		return fmt.Errorf("conf: config has %d values, want %d", len(c), NumParams)
	}
	for i, p := range params {
		r := s.ranges[i]
		if !r.Contains(c[i]) {
			return fmt.Errorf("conf: %s = %v outside range [%v, %v]", p.Name, c[i], r.Lo, r.Hi)
		}
		if p.Integer && c[i] != math.Round(c[i]) {
			return fmt.Errorf("conf: %s = %v is not integral", p.Name, c[i])
		}
	}
	// Per-process memory must fit in a Yarn container.
	if pm := procMemMB(c); pm > float64(s.limits.ContainerMemMB) {
		return fmt.Errorf("conf: per-executor memory %0.f MB exceeds container capacity %d MB",
			pm, s.limits.ContainerMemMB)
	}
	if int(c[PExecutorCores]) > s.limits.ContainerCores {
		return fmt.Errorf("conf: executor cores %v exceed container capacity %d",
			c[PExecutorCores], s.limits.ContainerCores)
	}
	// Cluster-wide: instances × per-process resources ≤ totals.
	inst := c[PExecutorInstances]
	if tot := inst * c[PExecutorCores]; tot > float64(s.limits.TotalCores) {
		return fmt.Errorf("conf: %v executors × %v cores = %v exceeds cluster cores %d",
			inst, c[PExecutorCores], tot, s.limits.TotalCores)
	}
	if tot := inst * procMemMB(c); tot > float64(s.limits.TotalMemMB) {
		return fmt.Errorf("conf: total executor memory %0.f MB exceeds cluster memory %d MB",
			tot, s.limits.TotalMemMB)
	}
	return nil
}

// shrinkProcMem reduces the per-executor memory components of c — overhead
// first, then off-heap, then heap — until their sum is at most capMB. The
// heap is never shrunk below its range minimum.
func (s *Space) shrinkProcMem(c Config, capMB float64) {
	if excess := procMemMB(c) - capMB; excess > 0 {
		cut := math.Min(excess, c[PExecutorMemoryOverhead])
		c[PExecutorMemoryOverhead] -= math.Ceil(cut)
	}
	if excess := procMemMB(c) - capMB; excess > 0 && c.Bool(POffHeapEnabled) {
		cut := math.Min(excess, c[POffHeapSize])
		c[POffHeapSize] -= math.Ceil(cut)
	}
	if excess := procMemMB(c) - capMB; excess > 0 {
		heapGB := math.Floor((c[PExecutorMemory]*1024 - excess) / 1024)
		c[PExecutorMemory] = math.Max(s.ranges[PExecutorMemory].Lo, heapGB)
	}
}

// Repair returns a valid configuration derived from c: values are clamped to
// their ranges, integer parameters rounded, and resource constraints enforced
// by scaling down memory components, cores and executor instances — mirroring
// how the paper bounds the search space rather than rejecting samples.
func (s *Space) Repair(c Config) Config {
	out := c.Clone()
	for i, p := range params {
		out[i] = s.ranges[i].Clamp(out[i])
		if p.Integer {
			out[i] = math.Round(out[i])
			out[i] = s.ranges[i].Clamp(out[i])
		}
	}
	// Container caps: per-executor cores and memory must fit one container.
	if int(out[PExecutorCores]) > s.limits.ContainerCores {
		out[PExecutorCores] = float64(s.limits.ContainerCores)
	}
	s.shrinkProcMem(out, float64(s.limits.ContainerMemMB))

	// Cluster totals at the minimum instance count: if even the fewest
	// executors would oversubscribe the cluster, shrink per-executor
	// resources first.
	minInst := s.ranges[PExecutorInstances].Lo
	if maxCores := math.Floor(float64(s.limits.TotalCores) / minInst); out[PExecutorCores] > maxCores {
		out[PExecutorCores] = math.Max(s.ranges[PExecutorCores].Lo, math.Max(1, maxCores))
	}
	s.shrinkProcMem(out, math.Floor(float64(s.limits.TotalMemMB)/minInst))

	// Now reduce the instance count to fit cores and memory totals.
	maxByCores := float64(s.limits.TotalCores) / math.Max(1, out[PExecutorCores])
	maxByMem := float64(s.limits.TotalMemMB) / math.Max(1, procMemMB(out))
	maxInst := math.Floor(math.Min(maxByCores, maxByMem))
	if out[PExecutorInstances] > maxInst {
		out[PExecutorInstances] = math.Max(minInst, maxInst)
	}
	return out
}

// Distance returns the normalized Euclidean distance between two
// configurations in encoded space.
func (s *Space) Distance(a, b Config) float64 {
	ua, ub := s.Encode(a), s.Encode(b)
	var d float64
	for i := range ua {
		x := ua[i] - ub[i]
		d += x * x
	}
	return math.Sqrt(d / float64(len(ua)))
}

// Neighbor returns a valid configuration obtained by perturbing c with
// Gaussian noise of the given relative scale in encoded space. Used by
// search heuristics (e.g. the DAC baseline's genetic mutation and BO's
// local candidate refinement).
func (s *Space) Neighbor(c Config, scale float64, rng *rand.Rand) Config {
	u := s.Encode(c)
	for i := range u {
		u[i] += rng.NormFloat64() * scale
	}
	return s.Decode(u)
}

// Crossover returns a valid configuration taking each parameter from a or b
// uniformly at random (the DAC baseline's genetic crossover).
func (s *Space) Crossover(a, b Config, rng *rand.Rand) Config {
	child := a.Clone()
	for i := range child {
		if rng.Intn(2) == 1 {
			child[i] = b[i]
		}
	}
	return s.Repair(child)
}
