package conf

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Limits matching the paper's clusters. ARM: 3 slave nodes × 128 cores ×
// 512 GB; x86: 7 slave nodes × 20 cores × 64 GB.
func armLimits() ResourceLimits {
	return ResourceLimits{ContainerCores: 8, ContainerMemMB: 64 * 1024, TotalCores: 384, TotalMemMB: 1536 * 1024}
}
func x86Limits() ResourceLimits {
	return ResourceLimits{ContainerCores: 16, ContainerMemMB: 56 * 1024, TotalCores: 140, TotalMemMB: 448 * 1024}
}

func TestParamsCount(t *testing.T) {
	ps := Params()
	if len(ps) != 38 {
		t.Fatalf("len(Params()) = %d; want 38 (Table 2)", len(ps))
	}
	var numeric, boolean int
	for _, p := range ps {
		switch p.Type {
		case Numeric:
			numeric++
		case Bool:
			boolean++
		}
	}
	if numeric != 27 || boolean != 11 {
		t.Fatalf("numeric=%d boolean=%d; want 27/11 per Table 2", numeric, boolean)
	}
}

func TestParamsTableSanity(t *testing.T) {
	seen := map[string]bool{}
	for i, p := range Params() {
		if p.Name == "" || !strings.HasPrefix(p.Name, "spark.") {
			t.Fatalf("param %d has bad name %q", i, p.Name)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate param %q", p.Name)
		}
		seen[p.Name] = true
		if p.Desc == "" {
			t.Fatalf("%s missing description", p.Name)
		}
		if p.RangeARM.Lo > p.RangeARM.Hi || p.RangeX86.Lo > p.RangeX86.Hi {
			t.Fatalf("%s has inverted range", p.Name)
		}
		if p.SQLLevel != strings.HasPrefix(p.Name, "spark.sql.") {
			t.Fatalf("%s SQLLevel flag inconsistent with name", p.Name)
		}
	}
}

func TestResourceParamsMarked(t *testing.T) {
	// Exactly the six starred parameters in Table 2.
	want := map[string]bool{
		"spark.driver.cores":            true,
		"spark.driver.memory":           true,
		"spark.executor.cores":          true,
		"spark.executor.memory":         true,
		"spark.executor.memoryOverhead": true,
		"spark.memory.offHeap.size":     true,
	}
	var got int
	for _, p := range Params() {
		if p.Resource {
			if !want[p.Name] {
				t.Fatalf("%s unexpectedly marked Resource", p.Name)
			}
			got++
		}
	}
	if got != len(want) {
		t.Fatalf("got %d resource params; want %d", got, len(want))
	}
}

func TestParamByName(t *testing.T) {
	p, idx, ok := ParamByName("spark.sql.shuffle.partitions")
	if !ok || idx != PSQLShufflePartitions || p.Default != 200 {
		t.Fatalf("ParamByName = %+v, %d, %v", p, idx, ok)
	}
	if _, _, ok := ParamByName("spark.nonexistent"); ok {
		t.Fatal("found nonexistent param")
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{2, 10}
	if !r.Contains(2) || !r.Contains(10) || r.Contains(1.9) || r.Contains(10.1) {
		t.Fatal("Contains wrong")
	}
	if r.Clamp(1) != 2 || r.Clamp(11) != 10 || r.Clamp(5) != 5 {
		t.Fatal("Clamp wrong")
	}
	if r.Width() != 8 {
		t.Fatal("Width wrong")
	}
}

func TestProfileRanges(t *testing.T) {
	arm := NewSpace(ProfileARM, armLimits())
	x86 := NewSpace(ProfileX86, x86Limits())
	// spark.executor.cores: ARM 1-8, x86 1-16 (Table 2).
	if arm.RangeOf(PExecutorCores) != (Range{1, 8}) {
		t.Fatalf("ARM executor.cores range = %v", arm.RangeOf(PExecutorCores))
	}
	if x86.RangeOf(PExecutorCores) != (Range{1, 16}) {
		t.Fatalf("x86 executor.cores range = %v", x86.RangeOf(PExecutorCores))
	}
	// spark.executor.instances: ARM 48-384, x86 9-112.
	if arm.RangeOf(PExecutorInstances) != (Range{48, 384}) || x86.RangeOf(PExecutorInstances) != (Range{9, 112}) {
		t.Fatal("executor.instances ranges wrong")
	}
	if arm.Profile() != ProfileARM || x86.Profile() != ProfileX86 {
		t.Fatal("Profile() wrong")
	}
	if ProfileARM.String() != "ARM" || ProfileX86.String() != "x86" {
		t.Fatal("String() wrong")
	}
}

func TestDefaultIsValid(t *testing.T) {
	for _, s := range []*Space{NewSpace(ProfileARM, armLimits()), NewSpace(ProfileX86, x86Limits())} {
		c := s.Default()
		if err := s.Validate(c); err != nil {
			t.Fatalf("%v default invalid: %v", s.Profile(), err)
		}
	}
}

func TestRandomConfigsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []*Space{NewSpace(ProfileARM, armLimits()), NewSpace(ProfileX86, x86Limits())} {
		for i := 0; i < 200; i++ {
			c := s.Random(rng)
			if err := s.Validate(c); err != nil {
				t.Fatalf("%v random config %d invalid: %v\nconfig: %v", s.Profile(), i, err, c)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		c := s.Random(rng)
		u := s.Encode(c)
		for _, v := range u {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("encoded value %v outside unit interval", v)
			}
		}
		c2 := s.Decode(u)
		// Decode(Encode(c)) must be the same configuration up to repair
		// idempotence (c is already valid, so it should round-trip exactly).
		for j := range c {
			if math.Abs(c[j]-c2[j]) > 1e-6 {
				t.Fatalf("round trip changed param %d: %v -> %v", j, c[j], c2[j])
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	if err := s.Validate(make(Config, 5)); err == nil {
		t.Fatal("short config accepted")
	}
	c := s.Default()
	c[PExecutorCores] = 99
	if err := s.Validate(c); err == nil {
		t.Fatal("out-of-range cores accepted")
	}
	c = s.Default()
	c[PMemoryFraction] = 0.6123 // allowed: fractional param
	if err := s.Validate(c); err != nil {
		t.Fatalf("fractional memory.fraction rejected: %v", err)
	}
	c = s.Default()
	c[PExecutorInstances] = 100.5
	if err := s.Validate(c); err == nil {
		t.Fatal("non-integral instances accepted")
	}
}

func TestRepairEnforcesContainerMemory(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	c := s.Default()
	c[PExecutorMemory] = 48
	c[PExecutorMemoryOverhead] = 49152
	c[POffHeapEnabled] = 1
	c[POffHeapSize] = 49152
	r := s.Repair(c)
	if err := s.Validate(r); err != nil {
		t.Fatalf("repaired config invalid: %v", err)
	}
	if pm := procMemMB(r); pm > float64(x86Limits().ContainerMemMB) {
		t.Fatalf("per-process memory %v exceeds container", pm)
	}
}

func TestRepairEnforcesClusterTotals(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	c := s.Default()
	c[PExecutorInstances] = 112
	c[PExecutorCores] = 16
	r := s.Repair(c)
	if err := s.Validate(r); err != nil {
		t.Fatalf("repaired config invalid: %v", err)
	}
	if r[PExecutorInstances]*r[PExecutorCores] > float64(x86Limits().TotalCores) {
		t.Fatal("cluster core total still violated")
	}
}

func TestRepairIdempotent(t *testing.T) {
	s := NewSpace(ProfileARM, armLimits())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		c := s.Random(rng)
		r := s.Repair(c)
		for j := range c {
			if c[j] != r[j] {
				t.Fatalf("Repair not idempotent on valid config at param %d", j)
			}
		}
	}
}

func TestLHSValidAndSpread(t *testing.T) {
	s := NewSpace(ProfileARM, armLimits())
	rng := rand.New(rand.NewSource(4))
	cs := s.LHS(10, rng)
	if len(cs) != 10 {
		t.Fatalf("LHS returned %d configs", len(cs))
	}
	for _, c := range cs {
		if err := s.Validate(c); err != nil {
			t.Fatalf("LHS config invalid: %v", err)
		}
	}
	// A free parameter (no repair interference) should be well spread.
	vals := make([]float64, len(cs))
	for i, c := range cs {
		vals[i] = c[PSQLShufflePartitions]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 500 {
		t.Fatalf("LHS shuffle.partitions spread too small: [%v, %v]", lo, hi)
	}
}

func TestSubspace(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	base := s.Default()
	idx := []int{PSQLShufflePartitions, PExecutorMemory, PShuffleCompress}
	ss, err := NewSubspace(s, base, idx)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Dim() != 3 {
		t.Fatalf("Dim = %d", ss.Dim())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		c := ss.Random(rng)
		if err := s.Validate(c); err != nil {
			t.Fatalf("subspace sample invalid: %v", err)
		}
		// Pinned parameters must match base (except those repair may touch;
		// locality.wait is never touched by repair).
		if c[PLocalityWait] != base[PLocalityWait] {
			t.Fatal("pinned parameter changed")
		}
	}
	// Encode/Decode round trip over free dims.
	c := ss.Random(rng)
	u := ss.Encode(c)
	c2 := ss.Decode(u)
	for _, i := range idx {
		if math.Abs(c[i]-c2[i]) > 1e-6 {
			t.Fatalf("subspace round trip changed param %d", i)
		}
	}
}

func TestSubspaceErrors(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	base := s.Default()
	if _, err := NewSubspace(s, base, nil); err == nil {
		t.Fatal("empty subspace accepted")
	}
	if _, err := NewSubspace(s, base, []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := NewSubspace(s, base, []int{1, 1}); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

func TestNeighborAndCrossoverValid(t *testing.T) {
	s := NewSpace(ProfileARM, armLimits())
	rng := rand.New(rand.NewSource(6))
	a, b := s.Random(rng), s.Random(rng)
	for i := 0; i < 50; i++ {
		if err := s.Validate(s.Neighbor(a, 0.1, rng)); err != nil {
			t.Fatalf("Neighbor invalid: %v", err)
		}
		if err := s.Validate(s.Crossover(a, b, rng)); err != nil {
			t.Fatalf("Crossover invalid: %v", err)
		}
	}
}

func TestDistance(t *testing.T) {
	s := NewSpace(ProfileARM, armLimits())
	c := s.Default()
	if d := s.Distance(c, c); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	rng := rand.New(rand.NewSource(7))
	a, b := s.Random(rng), s.Random(rng)
	if d := s.Distance(a, b); d <= 0 || d > 1 {
		t.Fatalf("distance = %v; want in (0, 1]", d)
	}
}

// Property: Repair always yields a configuration that Validate accepts, from
// arbitrary (even wildly out-of-range) input.
func TestRepairAlwaysValid(t *testing.T) {
	s := NewSpace(ProfileX86, x86Limits())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := make(Config, NumParams)
		for i := range c {
			c[i] = (rng.Float64() - 0.2) * 1e5
		}
		return s.Validate(s.Repair(c)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigBoolClone(t *testing.T) {
	c := Config{0, 1, 0.7}
	if c.Bool(0) || !c.Bool(1) || !c.Bool(2) {
		t.Fatal("Bool wrong")
	}
	cl := c.Clone()
	cl[0] = 9
	if c[0] != 0 {
		t.Fatal("Clone aliases")
	}
}
