package conf

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatSparkConfDefault(t *testing.T) {
	s := NewSpace(ProfileARM, ResourceLimits{ContainerCores: 8, ContainerMemMB: 64 * 1024, TotalCores: 384, TotalMemMB: 1536 * 1024})
	var buf bytes.Buffer
	if err := FormatSparkConf(&buf, s.Default()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != NumParams {
		t.Fatalf("emitted %d lines; want %d", len(lines), NumParams)
	}
	// Unit suffixes and booleans.
	if !strings.Contains(out, "spark.executor.memory") {
		t.Fatal("missing executor.memory")
	}
	for _, want := range []string{
		"spark.shuffle.compress                                         true",
		"spark.locality.wait                                            3s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted keys.
	for i := 1; i < len(lines); i++ {
		if strings.Fields(lines[i])[0] < strings.Fields(lines[i-1])[0] {
			t.Fatal("keys not sorted")
		}
	}
}

func TestFormatSparkConfErrors(t *testing.T) {
	if err := FormatSparkConf(&bytes.Buffer{}, make(Config, 3)); err == nil {
		t.Fatal("short config accepted")
	}
}

func TestParseSparkConfRoundTrip(t *testing.T) {
	s := NewSpace(ProfileX86, ResourceLimits{ContainerCores: 16, ContainerMemMB: 56 * 1024, TotalCores: 140, TotalMemMB: 448 * 1024})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		c := s.Random(rng)
		var buf bytes.Buffer
		if err := FormatSparkConf(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := ParseSparkConf(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for j := range c {
			// Fractional params round-trip exactly; integer params were
			// already integral.
			if math.Abs(got[j]-c[j]) > 1e-9 {
				t.Fatalf("param %d: %v -> %v", j, c[j], got[j])
			}
		}
	}
}

func TestParseSparkConfUnits(t *testing.T) {
	in := `
# comment, then blank line

spark.executor.memory          8g
spark.executor.memoryOverhead  2g
spark.kryoserializer.buffer    64k
spark.locality.wait            4s
spark.shuffle.compress         false
spark.memory.fraction          0.75
`
	c, err := ParseSparkConf(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c[PExecutorMemory] != 8 {
		t.Fatalf("executor.memory = %v; want 8 (GB)", c[PExecutorMemory])
	}
	if c[PExecutorMemoryOverhead] != 2048 {
		t.Fatalf("memoryOverhead = %v; want 2048 (MB)", c[PExecutorMemoryOverhead])
	}
	if c[PKryoBuffer] != 64 {
		t.Fatalf("kryo buffer = %v; want 64 (KB)", c[PKryoBuffer])
	}
	if c[PLocalityWait] != 4 || c.Bool(PShuffleCompress) || c[PMemoryFraction] != 0.75 {
		t.Fatal("values wrong")
	}
	// Unlisted keys stay at defaults.
	if c[PSQLShufflePartitions] != 200 {
		t.Fatal("default not preserved")
	}
}

func TestParseSparkConfErrors(t *testing.T) {
	cases := []string{
		"spark.executor.memory",            // missing value
		"spark.not.a.param 3",              // unknown key
		"spark.executor.memory notanumber", // bad number
		"spark.shuffle.compress maybe",     // bad boolean
	}
	for _, in := range cases {
		if _, err := ParseSparkConf(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

// Property: format→parse round-trips every valid configuration.
func TestPropsRoundTripProperty(t *testing.T) {
	s := NewSpace(ProfileARM, ResourceLimits{ContainerCores: 8, ContainerMemMB: 64 * 1024, TotalCores: 384, TotalMemMB: 1536 * 1024})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := s.Random(rng)
		var buf bytes.Buffer
		if FormatSparkConf(&buf, c) != nil {
			return false
		}
		got, err := ParseSparkConf(&buf)
		if err != nil {
			return false
		}
		for j := range c {
			if math.Abs(got[j]-c[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
