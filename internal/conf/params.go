// Package conf models the Spark / Spark SQL configuration space tuned by
// LOCAT: the 38 parameters of the paper's Table 2, with their defaults, their
// value ranges on the ARM cluster (Range A) and the x86 cluster (Range B),
// and the resource-consistency constraints of Section 5.12.
//
// A Config is a vector of parameter values in natural units (booleans are
// 0/1). A Space binds the parameter table to one cluster's ranges and
// resource limits and provides sampling, unit-cube encoding for model input,
// validation and repair.
package conf

// Type distinguishes numeric parameters from boolean switches.
type Type int

const (
	// Numeric parameters take integer or fractional values within a range.
	Numeric Type = iota
	// Bool parameters are true/false switches, stored as 1/0.
	Bool
)

// Range is an inclusive numeric value range.
type Range struct {
	Lo, Hi float64
}

// Contains reports whether v lies within the range.
func (r Range) Contains(v float64) bool { return v >= r.Lo && v <= r.Hi }

// Clamp returns v limited to the range.
func (r Range) Clamp(v float64) float64 {
	if v < r.Lo {
		return r.Lo
	}
	if v > r.Hi {
		return r.Hi
	}
	return v
}

// Width returns Hi - Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Param describes one tunable Spark or Spark SQL configuration parameter
// (one row of the paper's Table 2).
type Param struct {
	// Name is the full Spark property key, e.g. "spark.executor.memory".
	Name string
	// Desc is the one-line description from Table 2.
	Desc string
	// Type is Numeric or Bool.
	Type Type
	// Unit is the value unit for numeric parameters ("MB", "GB", "KB", "s",
	// "" for counts and fractions).
	Unit string
	// Default is the Spark default value (booleans: 1 = true).
	Default float64
	// RangeARM is "Range A" (four-node ARM cluster).
	RangeARM Range
	// RangeX86 is "Range B" (eight-node x86 cluster).
	RangeX86 Range
	// Resource marks parameters whose ranges derive from cluster resources
	// (starred in Table 2): cores and memory sizes.
	Resource bool
	// SQLLevel marks upper-level Spark SQL parameters (spark.sql.*).
	SQLLevel bool
	// Integer marks numeric parameters that only take whole values.
	Integer bool
}

// Index constants for the canonical parameter order. Having stable indices
// lets the simulator read configuration values without map lookups on the
// hot path.
const (
	PBroadcastBlockSize = iota
	PDefaultParallelism
	PDriverCores
	PDriverMemory
	PExecutorCores
	PExecutorInstances
	PExecutorMemory
	PExecutorMemoryOverhead
	PZstdBufferSize
	PZstdLevel
	PKryoBuffer
	PKryoBufferMax
	PLocalityWait
	PMemoryFraction
	PMemoryStorageFraction
	POffHeapSize
	PReducerMaxSizeInFlight
	PSchedulerReviveInterval
	PShuffleFileBuffer
	PShuffleNumConnections
	PShuffleBypassMergeThreshold
	PAutoBroadcastJoinThreshold
	PCartesianBufferThreshold
	PCodegenMaxFields
	PColumnarBatchSize
	PSQLShufflePartitions
	PMemoryMapThreshold
	PBroadcastCompress
	POffHeapEnabled
	PRDDCompress
	PShuffleCompress
	PShuffleSpillCompress
	PTwoLevelAggMap
	PColumnarCompressed
	PPartitionPruning
	PPreferSortMergeJoin
	PRetainGroupColumns
	PRadixSort
	// NumParams is the total parameter count (38, matching Table 2).
	NumParams
)

// params is the canonical Table 2 parameter list, in index order.
// Note: the paper's prose says "28 numeric and 10 non-numeric", but Table 2
// itself lists 27 numeric rows and 11 boolean rows (38 total); we follow the
// table.
var params = [NumParams]Param{
	PBroadcastBlockSize: {
		Name: "spark.broadcast.blockSize", Unit: "MB", Default: 4, Integer: true,
		Desc:     "Size of each piece of a block for TorrentBroadcastFactory",
		RangeARM: Range{1, 16}, RangeX86: Range{1, 16},
	},
	PDefaultParallelism: {
		Name: "spark.default.parallelism", Default: 200, Integer: true,
		Desc:     "Maximum number of partitions in a parent RDD for shuffle operations",
		RangeARM: Range{100, 1000}, RangeX86: Range{100, 1000},
	},
	PDriverCores: {
		Name: "spark.driver.cores", Default: 1, Resource: true, Integer: true,
		Desc:     "Number of cores to use for the driver process",
		RangeARM: Range{1, 8}, RangeX86: Range{1, 16},
	},
	PDriverMemory: {
		Name: "spark.driver.memory", Unit: "GB", Default: 1, Resource: true, Integer: true,
		Desc:     "Amount of memory to use for the driver process",
		RangeARM: Range{4, 32}, RangeX86: Range{4, 48},
	},
	PExecutorCores: {
		Name: "spark.executor.cores", Default: 1, Resource: true, Integer: true,
		Desc:     "How many CPU cores each executor process uses",
		RangeARM: Range{1, 8}, RangeX86: Range{1, 16},
	},
	PExecutorInstances: {
		Name: "spark.executor.instances", Default: 2, Integer: true,
		Desc:     "Total number of Executor processes used for the Spark job",
		RangeARM: Range{48, 384}, RangeX86: Range{9, 112},
	},
	PExecutorMemory: {
		Name: "spark.executor.memory", Unit: "GB", Default: 1, Resource: true, Integer: true,
		Desc:     "How much memory each executor process uses",
		RangeARM: Range{4, 32}, RangeX86: Range{4, 48},
	},
	PExecutorMemoryOverhead: {
		Name: "spark.executor.memoryOverhead", Unit: "MB", Default: 384, Resource: true, Integer: true,
		Desc:     "Additional memory size to be allocated per executor",
		RangeARM: Range{0, 32768}, RangeX86: Range{0, 49152},
	},
	PZstdBufferSize: {
		Name: "spark.io.compression.zstd.bufferSize", Unit: "KB", Default: 32, Integer: true,
		Desc:     "Buffer size used in Zstd compression",
		RangeARM: Range{16, 96}, RangeX86: Range{16, 96},
	},
	PZstdLevel: {
		Name: "spark.io.compression.zstd.level", Default: 1, Integer: true,
		Desc:     "Compression level for Zstd compression codec",
		RangeARM: Range{1, 5}, RangeX86: Range{1, 5},
	},
	PKryoBuffer: {
		Name: "spark.kryoserializer.buffer", Unit: "KB", Default: 64, Integer: true,
		Desc:     "Initial size of Kryo's serialization buffer",
		RangeARM: Range{32, 128}, RangeX86: Range{32, 128},
	},
	PKryoBufferMax: {
		Name: "spark.kryoserializer.buffer.max", Unit: "MB", Default: 64, Integer: true,
		Desc:     "Maximum allowable size of Kryo serialization buffer",
		RangeARM: Range{32, 128}, RangeX86: Range{32, 128},
	},
	PLocalityWait: {
		Name: "spark.locality.wait", Unit: "s", Default: 3, Integer: true,
		Desc:     "Wait time to launch a task in a data-local before in a less-local node",
		RangeARM: Range{1, 6}, RangeX86: Range{1, 6},
	},
	PMemoryFraction: {
		Name: "spark.memory.fraction", Default: 0.6,
		Desc:     "Fraction of (heap space - 300MB) used for execution and storage",
		RangeARM: Range{0.5, 0.9}, RangeX86: Range{0.5, 0.9},
	},
	PMemoryStorageFraction: {
		Name: "spark.memory.storageFraction", Default: 0.5,
		Desc:     "Amount of storage memory immune to eviction",
		RangeARM: Range{0.5, 0.9}, RangeX86: Range{0.5, 0.9},
	},
	POffHeapSize: {
		Name: "spark.memory.offHeap.size", Unit: "MB", Default: 0, Resource: true, Integer: true,
		Desc:     "Memory size which can be used for off-heap allocation",
		RangeARM: Range{0, 32768}, RangeX86: Range{0, 49152},
	},
	PReducerMaxSizeInFlight: {
		Name: "spark.reducer.maxSizeInFlight", Unit: "MB", Default: 48, Integer: true,
		Desc:     "Maximum size to fetch simultaneously from a reduce task",
		RangeARM: Range{24, 144}, RangeX86: Range{24, 144},
	},
	PSchedulerReviveInterval: {
		Name: "spark.scheduler.revive.interval", Unit: "s", Default: 1, Integer: true,
		Desc:     "Interval for the scheduler to revive the worker resource",
		RangeARM: Range{1, 5}, RangeX86: Range{1, 5},
	},
	PShuffleFileBuffer: {
		Name: "spark.shuffle.file.buffer", Unit: "KB", Default: 32, Integer: true,
		Desc:     "In-memory buffer size for each shuffle file output stream",
		RangeARM: Range{16, 96}, RangeX86: Range{16, 96},
	},
	PShuffleNumConnections: {
		Name: "spark.shuffle.io.numConnectionsPerPeer", Default: 1, Integer: true,
		Desc:     "Amount of connections between hosts that are reused",
		RangeARM: Range{1, 5}, RangeX86: Range{1, 5},
	},
	PShuffleBypassMergeThreshold: {
		Name: "spark.shuffle.sort.bypassMergeThreshold", Default: 200, Integer: true,
		Desc:     "Partition number to skip mapper side sorts",
		RangeARM: Range{100, 400}, RangeX86: Range{100, 400},
	},
	PAutoBroadcastJoinThreshold: {
		Name: "spark.sql.autoBroadcastJoinThreshold", Unit: "KB", Default: 1024, SQLLevel: true, Integer: true,
		Desc:     "Maximum size for a broadcasted table",
		RangeARM: Range{1024, 8192}, RangeX86: Range{1024, 8192},
	},
	PCartesianBufferThreshold: {
		Name: "spark.sql.cartesianProductExec.buffer.in.memory.threshold", Default: 4096, SQLLevel: true, Integer: true,
		Desc:     "Row numbers of Cartesian cache",
		RangeARM: Range{1024, 8192}, RangeX86: Range{1024, 8192},
	},
	PCodegenMaxFields: {
		Name: "spark.sql.codegen.maxFields", Default: 100, SQLLevel: true, Integer: true,
		Desc:     "Maximum field supported before activating the entire stage codegen",
		RangeARM: Range{50, 200}, RangeX86: Range{50, 200},
	},
	PColumnarBatchSize: {
		Name: "spark.sql.inMemoryColumnarStorage.batchSize", Default: 10000, SQLLevel: true, Integer: true,
		Desc:     "Size of the batch used for column caching",
		RangeARM: Range{5000, 20000}, RangeX86: Range{5000, 20000},
	},
	PSQLShufflePartitions: {
		Name: "spark.sql.shuffle.partitions", Default: 200, SQLLevel: true, Integer: true,
		Desc:     "Default partition number when shuffling data for joins or aggregations",
		RangeARM: Range{100, 1000}, RangeX86: Range{100, 1000},
	},
	PMemoryMapThreshold: {
		Name: "spark.storage.memoryMapThreshold", Unit: "MB", Default: 1, Integer: true,
		Desc:     "Mapped memory size when reading a block from the disk",
		RangeARM: Range{1, 10}, RangeX86: Range{1, 10},
	},
	PBroadcastCompress: {
		Name: "spark.broadcast.compress", Type: Bool, Default: 1,
		Desc: "Whether to compress broadcast variables before sending them",
	},
	POffHeapEnabled: {
		Name: "spark.memory.offHeap.enabled", Type: Bool, Default: 1,
		Desc: "Whether to use off-heap memory for certain operations",
	},
	PRDDCompress: {
		Name: "spark.rdd.compress", Type: Bool, Default: 1,
		Desc: "Whether to compress serialized RDD partitions",
	},
	PShuffleCompress: {
		Name: "spark.shuffle.compress", Type: Bool, Default: 1,
		Desc: "Whether to compress map output files",
	},
	PShuffleSpillCompress: {
		Name: "spark.shuffle.spill.compress", Type: Bool, Default: 1,
		Desc: "Whether to compress data spilled during shuffles",
	},
	PTwoLevelAggMap: {
		Name: "spark.sql.codegen.aggregate.map.twolevel.enable", Type: Bool, Default: 1, SQLLevel: true,
		Desc: "Whether to enable two-level aggregate hash mapping",
	},
	PColumnarCompressed: {
		Name: "spark.sql.inMemoryColumnarStorage.compressed", Type: Bool, Default: 1, SQLLevel: true,
		Desc: "Whether to compress each column based on data",
	},
	PPartitionPruning: {
		Name: "spark.sql.inMemoryColumnarStorage.partitionPruning", Type: Bool, Default: 1, SQLLevel: true,
		Desc: "Whether to prune partitions in memory",
	},
	PPreferSortMergeJoin: {
		Name: "spark.sql.join.preferSortMergeJoin", Type: Bool, Default: 1, SQLLevel: true,
		Desc: "Whether to use sort-merge join instead of shuffle hash join",
	},
	PRetainGroupColumns: {
		Name: "spark.sql.retainGroupColumns", Type: Bool, Default: 1, SQLLevel: true,
		Desc: "Whether to retain group columns",
	},
	PRadixSort: {
		Name: "spark.sql.sort.enableRadixSort", Type: Bool, Default: 1, SQLLevel: true,
		Desc: "Whether to use radix sort",
	},
}

func init() {
	// Boolean parameters all range over {0, 1} on both clusters.
	for i := range params {
		if params[i].Type == Bool {
			params[i].RangeARM = Range{0, 1}
			params[i].RangeX86 = Range{0, 1}
			params[i].Integer = true
		}
	}
}

// Params returns the canonical 38-parameter table (a copy).
func Params() []Param {
	out := make([]Param, NumParams)
	copy(out, params[:])
	return out
}

// ParamByName returns the parameter with the given Spark property key and
// its index, or ok=false if it is not in Table 2.
func ParamByName(name string) (p Param, idx int, ok bool) {
	for i, q := range params {
		if q.Name == name {
			return q, i, true
		}
	}
	return Param{}, -1, false
}
