package conf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// unitSuffix returns the value suffix Spark expects for a parameter's unit.
func unitSuffix(unit string) string {
	switch unit {
	case "GB":
		return "g"
	case "MB":
		return "m"
	case "KB":
		return "k"
	case "s":
		return "s"
	}
	return ""
}

// FormatSparkConf renders a configuration in spark-defaults.conf syntax —
// one "key value" pair per line, with Spark's unit suffixes (g/m/k/s) on
// sized parameters and true/false on switches — ready to drop into a real
// cluster's conf directory. Keys are emitted in lexicographic order.
func FormatSparkConf(w io.Writer, c Config) error {
	if len(c) != NumParams {
		return fmt.Errorf("conf: config has %d values, want %d", len(c), NumParams)
	}
	type kv struct{ k, v string }
	out := make([]kv, 0, NumParams)
	for i, p := range params {
		var v string
		switch {
		case p.Type == Bool:
			v = "false"
			if c.Bool(i) {
				v = "true"
			}
		case p.Integer:
			v = strconv.FormatInt(int64(math.Round(c[i])), 10) + unitSuffix(p.Unit)
		default:
			v = strconv.FormatFloat(c[i], 'g', -1, 64)
		}
		out = append(out, kv{p.Name, v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].k < out[b].k })
	for _, e := range out {
		if _, err := fmt.Fprintf(w, "%-62s %s\n", e.k, e.v); err != nil {
			return err
		}
	}
	return nil
}

// ParseSparkConf reads spark-defaults.conf syntax and returns the
// configuration it denotes, with unlisted parameters at their defaults.
// Lines starting with '#' and blank lines are ignored; unknown keys are
// reported as errors (they would silently do nothing on a tuner that only
// controls Table 2). The space's Repair is NOT applied — callers validate.
func ParseSparkConf(r io.Reader) (Config, error) {
	c := make(Config, NumParams)
	for i, p := range params {
		c[i] = p.Default
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("conf: line %d: want \"key value\", got %q", lineNo, line)
		}
		key, raw := fields[0], fields[1]
		p, idx, ok := ParamByName(key)
		if !ok {
			return nil, fmt.Errorf("conf: line %d: unknown parameter %q", lineNo, key)
		}
		v, err := parseValue(p, raw)
		if err != nil {
			return nil, fmt.Errorf("conf: line %d: %v", lineNo, err)
		}
		c[idx] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// parseValue converts one Spark property value to the parameter's natural
// unit, accepting Spark's usual size suffixes.
func parseValue(p Param, raw string) (float64, error) {
	if p.Type == Bool {
		switch strings.ToLower(raw) {
		case "true", "1":
			return 1, nil
		case "false", "0":
			return 0, nil
		}
		return 0, fmt.Errorf("%s: bad boolean %q", p.Name, raw)
	}
	// Strip a recognized unit suffix and convert to the parameter's unit.
	factorTo := map[string]float64{"k": 1.0 / 1024, "m": 1, "g": 1024, "t": 1024 * 1024}
	mbWanted := map[string]float64{"KB": 1.0 / 1024, "MB": 1, "GB": 1024}
	lower := strings.ToLower(raw)
	if n := len(lower); n > 0 {
		suffix := lower[n-1:]
		if f, ok := factorTo[suffix]; ok && p.Unit != "" && p.Unit != "s" {
			num, err := strconv.ParseFloat(lower[:n-1], 64)
			if err != nil {
				return 0, fmt.Errorf("%s: bad value %q", p.Name, raw)
			}
			// Value in MB, then into the parameter's own unit.
			mb := num * f
			return mb / mbWanted[p.Unit], nil
		}
		if suffix == "s" && p.Unit == "s" {
			num, err := strconv.ParseFloat(lower[:n-1], 64)
			if err != nil {
				return 0, fmt.Errorf("%s: bad value %q", p.Name, raw)
			}
			return num, nil
		}
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad value %q", p.Name, raw)
	}
	return v, nil
}
