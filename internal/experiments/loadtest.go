package experiments

import (
	"fmt"
	"reflect"
	"sort"

	"locat/internal/core"
	"locat/internal/loadgen"
	"locat/internal/runner"
	"locat/internal/service"
	"locat/internal/workloads"
)

// LoadTest drives the service's overload machinery — priority shedding,
// per-tenant in-flight budgets, cluster-second degrades, zero-execution
// recommendation — with a deterministic mixed-tenant workload, and proves
// the admission outcome is a pure function of the workload: the same
// census of accepted / rejected / shed / degraded jobs per tenant and
// priority class, bit for bit, at worker pools of 1, 2 and 4.
//
// The scenario is 2x saturation by construction: 12 batch tuning jobs
// against a queue of 8, then 4 interactive jobs into the full queue, then
// 8 recommendations against a pre-seeded history. Submission happens in
// workload order with the worker pool held, so every admission decision
// resolves against the same queue state regardless of how many workers
// later drain it. Batch jobs carry a 1-cluster-second budget, which the
// core session can only notice after its first sampling batch — every
// surviving batch job therefore completes Degraded with its best observed
// configuration, deterministically.
//
// The driver fails if any interactive job is shed, if no batch job is shed
// or rejected (no overload — the harness lost its subject), if any
// recommendation misses the seeded neighborhood, or if the census differs
// across worker counts. The per-group counts are published as exact
// counters, which the benchmark baseline gate compares bit for bit.
func LoadTest(s *Session) ([]Table, error) {
	const clusterName, benchName = "arm", "TPC-H"
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}

	// Seed a history neighborhood around the workload's sizes, persisted the
	// way the service persists finished sessions, so the recommend ops can be
	// answered from retrieval alone.
	var entries []service.Entry
	for i, gb := range []float64{100, 140} {
		r, err := s.runner(clusterName, fmt.Sprintf("loadtest/seed/%v", gb))
		if err != nil {
			return nil, err
		}
		rep, err := core.New(r, app, s.locatOptions()).Tune(gb)
		if err != nil {
			return nil, err
		}
		entries = append(entries, historyEntry(rep, clusterName, benchName, gb, i))
	}

	ops := loadtestOps(s.Seed)
	workerCounts := []int{1, 2, 4}
	reports := make([]*loadgen.Report, 0, len(workerCounts))
	for _, w := range workerCounts {
		rep, err := runLoadtest(s, entries, ops, w)
		if err != nil {
			return nil, fmt.Errorf("loadtest: workers=%d: %w", w, err)
		}
		reports = append(reports, rep)
	}

	base := reports[0]
	for i, rep := range reports[1:] {
		if !reflect.DeepEqual(base.Groups, rep.Groups) {
			return nil, fmt.Errorf("loadtest: census diverges between workers=%d and workers=%d:\n%v\nvs\n%v",
				workerCounts[0], workerCounts[i+1], censusString(base), censusString(rep))
		}
	}
	if err := checkCensus(base); err != nil {
		return nil, err
	}

	// Publish the census as exact counters: the baseline gate compares these
	// bit for bit, so any drift in admission, shedding or degrade behavior
	// fails the bench even when aggregate cluster seconds stay in tolerance.
	groups := make([]string, 0, len(base.Groups))
	for g := range base.Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		c := base.Groups[g]
		s.SetCounter(g+"/submitted", float64(c.Submitted))
		s.SetCounter(g+"/accepted", float64(c.Accepted))
		s.SetCounter(g+"/rejected", float64(c.Rejected))
		s.SetCounter(g+"/shed", float64(c.Shed))
		s.SetCounter(g+"/completed", float64(c.Completed))
		s.SetCounter(g+"/degraded", float64(c.Degraded))
		s.SetCounter(g+"/hits", float64(c.Hits))
		s.SetCounter(g+"/runs", float64(c.Runs))
		s.SetCounter(g+"/cluster_sec", c.ClusterSec)
	}

	t := Table{
		ID: "loadtest",
		Title: fmt.Sprintf("overload census of %d ops (census identical at workers %v)",
			len(ops), workerCounts),
		Header: []string{"group", "submitted", "accepted", "rejected", "shed",
			"completed", "degraded", "hits", "runs", "cluster (s)"},
	}
	row := func(name string, c *loadgen.Counts) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", c.Submitted), fmt.Sprintf("%d", c.Accepted),
			fmt.Sprintf("%d", c.Rejected), fmt.Sprintf("%d", c.Shed),
			fmt.Sprintf("%d", c.Completed), fmt.Sprintf("%d", c.Degraded),
			fmt.Sprintf("%d", c.Hits), fmt.Sprintf("%d", c.Runs),
			fmt.Sprintf("%.0f", c.ClusterSec),
		})
	}
	for _, g := range groups {
		row(g, base.Groups[g])
	}
	totals := base.Totals()
	row("total", &totals)
	return []Table{t}, nil
}

// loadtestOps is the deterministic workload: batch wave, interactive wave,
// recommend wave, split between two tenants by the seeded mix.
func loadtestOps(seed int64) []loadgen.Op {
	ops := loadgen.Mix(loadgen.MixOptions{
		Seed:             seed,
		BatchTunes:       12,
		InteractiveTunes: 4,
		Recommends:       8,
		Tenants:          []string{"acme", "globex"},
		Template: service.JobSpec{
			Cluster:   "arm",
			Benchmark: "TPC-H",
			// Tuning jobs opt out of retrieval so each one's cost is a pure
			// function of its own spec, not of what earlier jobs deposited.
			ColdStart: true,
			// Always-quick budgets (independent of Session.Quick): the
			// harness measures admission, not tuning quality.
			NQCSA: 10, NIICP: 8, MaxIterations: 8,
		},
	})
	for i := range ops {
		switch {
		case ops[i].Kind == loadgen.KindRecommend:
			// Retrieval is the point of the recommend wave.
			ops[i].Spec.ColdStart = false
		case ops[i].Spec.Priority == service.PriorityBatch:
			// One cluster second: exhausted after the first sampling batch,
			// so every surviving batch job degrades deterministically to its
			// best observed configuration.
			ops[i].Spec.MaxClusterSec = 1
		}
	}
	return ops
}

// runLoadtest plays the workload against a fresh service with the given
// worker-pool size. Only the single-worker run is metered into the session
// tally: with one worker the execution order is serial and the float
// accumulation deterministic; wider pools interleave jobs and are checked
// for census equality only.
func runLoadtest(s *Session, entries []service.Entry, ops []loadgen.Op, workers int) (*loadgen.Report, error) {
	store := service.NewMemStore()
	for _, e := range entries {
		if err := store.Put(e); err != nil {
			return nil, err
		}
	}
	cfg := service.Config{
		Workers:  workers,
		QueueCap: 8,
		Store:    store,
		// Checkpointing off: the harness never kills this service, and the
		// run stays lean without mid-job snapshots.
		CheckpointEvery: -1,
		Tenants: map[string]service.TenantBudget{
			"acme":   {MaxInFlight: 6},
			"globex": {MaxInFlight: 6},
		},
	}
	if workers == 1 {
		cfg.Observers = []runner.RunObserver{&s.tally}
	}
	svc := service.New(cfg)
	defer svc.Close()
	svc.Hold()
	return loadgen.Run(svc, ops, loadgen.Config{
		Clients:          4,
		SequentialSubmit: true,
		AfterSubmit:      svc.Release,
	})
}

// checkCensus enforces the overload invariants on the (cross-worker
// identical) census.
func checkCensus(rep *loadgen.Report) error {
	totals := rep.Totals()
	if totals.Failed > 0 || totals.Suspended > 0 || totals.Cancelled > 0 {
		return fmt.Errorf("loadtest: unexpected terminal states (failed=%d suspended=%d cancelled=%d):\n%v",
			totals.Failed, totals.Suspended, totals.Cancelled, censusString(rep))
	}
	if totals.Rejected == 0 {
		return fmt.Errorf("loadtest: no rejections — the workload did not saturate admission:\n%v", censusString(rep))
	}
	if totals.Hits != 8 {
		return fmt.Errorf("loadtest: %d of 8 recommendations hit the seeded neighborhood:\n%v",
			totals.Hits, censusString(rep))
	}
	var batchShed, interShed, interAccepted, interCompleted, batchCompleted, batchDegraded int
	for g, c := range rep.Groups {
		if isPriority(g, service.PriorityInteractive) {
			interShed += c.Shed
			interAccepted += c.Accepted
			interCompleted += c.Completed
		}
		if isPriority(g, service.PriorityBatch) {
			batchShed += c.Shed
			batchCompleted += c.Completed
			batchDegraded += c.Degraded
		}
	}
	if interShed > 0 {
		return fmt.Errorf("loadtest: %d interactive jobs shed — priority inversion:\n%v", interShed, censusString(rep))
	}
	if batchShed == 0 {
		return fmt.Errorf("loadtest: no batch job was shed for the interactive wave:\n%v", censusString(rep))
	}
	// Accepted counts only the interactive tuning jobs (recommend ops never
	// enqueue); completed additionally counts the 8 answered recommendations.
	if interCompleted != interAccepted+8 {
		return fmt.Errorf("loadtest: interactive completed=%d, want accepted (%d) + 8 recommendations:\n%v",
			interCompleted, interAccepted, censusString(rep))
	}
	if batchDegraded != batchCompleted {
		return fmt.Errorf("loadtest: %d of %d completed batch jobs degraded (all should hit the 1 s budget):\n%v",
			batchDegraded, batchCompleted, censusString(rep))
	}
	return nil
}

// isPriority reports whether the census group name ("tenant/priority")
// belongs to the class.
func isPriority(group string, p service.Priority) bool {
	return len(group) > len(p) && group[len(group)-len(p):] == string(p) &&
		group[len(group)-len(p)-1] == '/'
}

// censusString renders the per-group counts for error messages.
func censusString(rep *loadgen.Report) string {
	groups := make([]string, 0, len(rep.Groups))
	for g := range rep.Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	out := ""
	for _, g := range groups {
		out += fmt.Sprintf("  %s: %+v\n", g, *rep.Groups[g])
	}
	return out
}
