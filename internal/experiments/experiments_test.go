package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickSession returns a reduced-budget session shared by the smoke tests.
func quickSession() *Session { return NewSession(1, true) }

func TestEveryDriverRunsQuick(t *testing.T) {
	s := quickSession()
	for _, id := range IDs() {
		run := Registry[id]
		tables, err := run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tab := range tables {
			if tab.Title == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("%s: malformed table %+v", id, tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("%s: row width %d != header %d", id, len(row), len(tab.Header))
				}
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), tab.Title) {
				t.Fatalf("%s: render missing title", id)
			}
		}
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d; registry has %d", len(ids), len(Registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not sorted")
		}
	}
	for _, want := range []string{"fig2", "fig8", "fig11", "fig13", "fig21", "table3"} {
		if _, ok := Registry[want]; !ok {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestTuneMemoization(t *testing.T) {
	s := quickSession()
	a, err := s.Tune("arm", "Join", "GBO-RL", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Tune("arm", "Join", "GBO-RL", 100)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Tune did not memoize")
	}
	if _, err := s.Tune("arm", "Join", "NoSuchTuner", 100); err == nil {
		t.Fatal("unknown tuner accepted")
	}
	if _, err := s.Tune("arm", "NoSuchBench", "LOCAT", 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFig11LOCATWinsOptimizationTime(t *testing.T) {
	// The paper's primary claim: LOCAT reduces every SOTA tuner's
	// optimization time. Every reduction factor must exceed 1.
	s := quickSession()
	tables, err := Fig11OptTimeARM(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q: %v", cell, err)
			}
			if v <= 1 {
				t.Fatalf("optimization-time reduction %v ≤ 1 in row %v", v, row)
			}
		}
	}
}

func TestFig8ShapeFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full QCSA protocol")
	}
	// Non-quick Figure 8 must reproduce the paper's classification shape.
	s := NewSession(1, false)
	tables, err := Fig8QueryCV(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	if len(tables[0].Rows) != 104 {
		t.Fatalf("fig8 lists %d queries; want 104", len(tables[0].Rows))
	}
	// Summary row 0: kept count within the paper's neighbourhood.
	kept := tables[1].Rows[0][1]
	n, _ := strconv.Atoi(strings.Fields(kept)[0])
	if n < 16 || n > 30 {
		t.Fatalf("kept %d queries; want ≈23", n)
	}
}

func TestClusterLookup(t *testing.T) {
	if Cluster("x86").Name != "x86" || Cluster("arm").Name != "arm" {
		t.Fatal("cluster lookup wrong")
	}
	if Cluster("anything-else").Name != "arm" {
		t.Fatal("default cluster should be ARM")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := Table{ID: "x", Title: "t", Header: []string{"a", "long-header"},
		Rows: [][]string{{"wide-cell-content", "1"}}}
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "== x: t ==") {
		t.Fatalf("header line %q", lines[0])
	}
}
