package experiments

import (
	"fmt"
	"math/rand"

	"locat/internal/conf"
	"locat/internal/iicp"
	"locat/internal/qcsa"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// hours formats simulated seconds as hours.
func hours(sec float64) string { return fmt.Sprintf("%.1f", sec/3600) }

// iicpSamples collects n random-configuration samples of the benchmark over
// concurrent execution slots (qcsa.Collect).
func (s *Session) iicpSamples(clusterName, benchName string, gb float64, n int) ([]iicp.Sample, error) {
	cl := Cluster(clusterName)
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	r, err := s.runner(clusterName, fmt.Sprintf("iicp/%s/%s/%v/%d", clusterName, benchName, gb, n))
	if err != nil {
		return nil, err
	}
	space := cl.Space()
	rng := newRng(s.Seed + 13)
	cs := make([]conf.Config, n)
	for i := range cs {
		cs[i] = space.Random(rng)
	}
	runs := qcsa.Collect(r, app, cs, gb, 0)
	out := make([]iicp.Sample, n)
	for i, r := range runs {
		out[i] = iicp.Sample{Conf: cs[i], Sec: r.Sec}
	}
	return out, nil
}

// benchNames returns the session benchmark names.
func (s *Session) benchNames() []string {
	apps := s.benchmarks()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// avg returns the arithmetic mean.
func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// analyzeRuns is a thin qcsa wrapper used by the CV-convergence figure.
func analyzeRuns(app *sparksim.Application, runs []sparksim.AppResult) (*qcsa.Result, error) {
	return qcsa.Analyze(app, runs)
}
