package experiments

import "fmt"

// Fig2Motivation regenerates Figure 2: hours the four SOTA approaches need
// to find the optimal TPC-DS configuration at 100–500 GB (ARM cluster).
func Fig2Motivation(s *Session) ([]Table, error) {
	t := Table{
		ID:     "fig2",
		Title:  "Optimization overhead (h) of SOTA tuners, TPC-DS on ARM",
		Header: []string{"size(GB)", "Tuneful", "DAC", "GBO-RL", "QTune"},
	}
	for _, gb := range s.sizes() {
		row := []string{f0(gb)}
		for _, tn := range TunerNames[1:] {
			o, err := s.Tune("arm", "TPC-DS", tn, gb)
			if err != nil {
				return nil, err
			}
			row = append(row, hours(o.OverheadSec))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// optTimeReduction builds Figure 11/12: the factor by which LOCAT reduces
// each SOTA tuner's optimization time, per benchmark, at 300 GB.
func (s *Session) optTimeReduction(clusterName, id, title string) ([]Table, error) {
	gb := 300.0
	if s.Quick {
		gb = 100
	}
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"benchmark", "Tuneful", "DAC", "GBO-RL", "QTune"},
	}
	sums := make([]float64, 4)
	benches := s.benchNames()
	for _, bn := range benches {
		locat, err := s.Tune(clusterName, bn, "LOCAT", gb)
		if err != nil {
			return nil, err
		}
		row := []string{bn}
		for i, tn := range TunerNames[1:] {
			o, err := s.Tune(clusterName, bn, tn, gb)
			if err != nil {
				return nil, err
			}
			r := o.OverheadSec / locat.OverheadSec
			sums[i] += r
			row = append(row, f1(r))
		}
		t.Rows = append(t.Rows, row)
	}
	avgRow := []string{"Average"}
	for _, v := range sums {
		avgRow = append(avgRow, f1(v/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avgRow)
	return []Table{t}, nil
}

// Fig11OptTimeARM regenerates Figure 11 (paper averages: Tuneful 6.4×,
// DAC 7.0×, GBO-RL 4.1×, QTune 9.7×).
func Fig11OptTimeARM(s *Session) ([]Table, error) {
	return s.optTimeReduction("arm", "fig11",
		"Optimization-time reduction over SOTA (×), four-node ARM cluster, 300 GB")
}

// Fig12OptTimeX86 regenerates Figure 12 (paper averages: 6.4/6.3/4.0/9.2×).
func Fig12OptTimeX86(s *Session) ([]Table, error) {
	return s.optTimeReduction("x86", "fig12",
		"Optimization-time reduction over SOTA (×), eight-node x86 cluster, 300 GB")
}

// speedup builds Figure 13/14: the speedup of the LOCAT-tuned configuration
// over each SOTA-tuned configuration for every program-input pair.
func (s *Session) speedup(clusterName, id, title string) ([]Table, error) {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"benchmark", "size(GB)", "Tuneful", "DAC", "GBO-RL", "QTune"},
	}
	sums := make([]float64, 4)
	var n int
	for _, bn := range s.benchNames() {
		for _, gb := range s.sizes() {
			locat, err := s.Tune(clusterName, bn, "LOCAT", gb)
			if err != nil {
				return nil, err
			}
			row := []string{bn, f0(gb)}
			for i, tn := range TunerNames[1:] {
				o, err := s.Tune(clusterName, bn, tn, gb)
				if err != nil {
					return nil, err
				}
				sp := o.TunedSec / locat.TunedSec
				sums[i] += sp
				row = append(row, f2(sp))
			}
			t.Rows = append(t.Rows, row)
			n++
		}
	}
	avgRow := []string{"Average", ""}
	for _, v := range sums {
		avgRow = append(avgRow, f2(v/float64(n)))
	}
	t.Rows = append(t.Rows, avgRow)
	return []Table{t}, nil
}

// Fig13SpeedupARM regenerates Figure 13 (paper averages: 2.4/2.2/2.0/1.9×).
func Fig13SpeedupARM(s *Session) ([]Table, error) {
	return s.speedup("arm", "fig13",
		"Speedup of LOCAT-tuned over SOTA-tuned configurations, ARM cluster")
}

// Fig14SpeedupX86 regenerates Figure 14 (paper averages: 2.8/2.6/2.3/2.1×).
func Fig14SpeedupX86(s *Session) ([]Table, error) {
	return s.speedup("x86", "fig14",
		"Speedup of LOCAT-tuned over SOTA-tuned configurations, x86 cluster")
}

// Fig20OverheadGrowth regenerates Figure 20: tuning overhead versus input
// size for LOCAT and the SOTA tuners (TPC-DS, ARM).
func Fig20OverheadGrowth(s *Session) ([]Table, error) {
	sizes := []float64{100, 200, 300}
	if s.Quick {
		sizes = []float64{100, 300}
	}
	t := Table{
		ID:     "fig20",
		Title:  "Tuning overhead (h) vs input data size, TPC-DS on ARM",
		Header: []string{"size(GB)", "LOCAT", "Tuneful", "DAC", "GBO-RL", "QTune"},
	}
	for _, gb := range sizes {
		row := []string{f0(gb)}
		for _, tn := range TunerNames {
			o, err := s.Tune("arm", "TPC-DS", tn, gb)
			if err != nil {
				return nil, err
			}
			row = append(row, hours(o.OverheadSec))
		}
		t.Rows = append(t.Rows, row)
	}
	// Growth factor 100→max size per tuner.
	last := sizes[len(sizes)-1]
	row := []string{fmt.Sprintf("growth 100→%v", last)}
	for _, tn := range TunerNames {
		a, err := s.Tune("arm", "TPC-DS", tn, 100)
		if err != nil {
			return nil, err
		}
		b, err := s.Tune("arm", "TPC-DS", tn, last)
		if err != nil {
			return nil, err
		}
		row = append(row, f2(b.OverheadSec/a.OverheadSec))
	}
	t.Rows = append(t.Rows, row)
	return []Table{t}, nil
}
