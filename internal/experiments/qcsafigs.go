package experiments

import (
	"fmt"

	"locat/internal/workloads"
)

// Fig7NQCSA regenerates Figure 7: how the mean query CV of TPC-DS and TPC-H
// changes as the QCSA sample count grows from 10 to 55 — the experiment that
// fixes N_QCSA = 30.
func Fig7NQCSA(s *Session) ([]Table, error) {
	counts := []int{10, 15, 20, 25, 30, 35, 40, 45, 50, 55}
	benches := []string{"TPC-DS", "TPC-H"}
	if s.Quick {
		counts = []int{10, 20, 30}
		benches = []string{"TPC-H"}
	}
	t := Table{
		ID:     "fig7",
		Title:  "Mean query CV vs number of QCSA samples (100 GB, ARM)",
		Header: append([]string{"samples"}, benches...),
	}
	max := counts[len(counts)-1]
	runsBy := map[string][]float64{}
	for _, bn := range benches {
		runs, err := s.randomRuns("arm", bn, 100, max)
		if err != nil {
			return nil, err
		}
		app, err := workloads.ByName(bn)
		if err != nil {
			return nil, err
		}
		for _, n := range counts {
			res, err := analyzeRuns(app, runs[:n])
			if err != nil {
				return nil, err
			}
			runsBy[bn] = append(runsBy[bn], res.MeanCV())
		}
	}
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, bn := range benches {
			row = append(row, fmt.Sprintf("%.3f", runsBy[bn][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig8QueryCV regenerates Figure 8: the configuration-sensitivity CV of
// every TPC-DS query at 100 GB, plus the QCSA classification (Section 5.2
// keeps 23 of 104 queries).
func Fig8QueryCV(s *Session) ([]Table, error) {
	n := 30
	if s.Quick {
		n = 15
	}
	res, err := s.canonicalQCSA("arm", "TPC-DS", 100, n)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("Per-query CV, TPC-DS 100 GB (cut=%.2f, kept %d/104)", res.Cut, len(res.Sensitive)),
		Header: []string{"query", "CV", "mean(s)", "class"},
	}
	for _, q := range res.Queries {
		class := "CIQ"
		if q.Sensitive {
			class = "CSQ"
		}
		t.Rows = append(t.Rows, []string{q.Name, f2(q.CV), f1(q.MeanSec), class})
	}
	// Summary block: overlap with the paper's 23-query list.
	paper := map[string]bool{}
	for _, n := range workloads.SensitiveTPCDS {
		paper[n] = true
	}
	match := 0
	for _, n := range res.Sensitive {
		if paper[n] {
			match++
		}
	}
	sum := Table{
		ID:     "fig8-summary",
		Title:  "QCSA classification vs the paper's Section 5.2 result",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"queries kept", fmt.Sprintf("%d (paper: 23)", len(res.Sensitive))},
			{"overlap with paper's CSQ set", fmt.Sprintf("%d/23", match)},
			{"max CV (Q72 in paper, 3.49)", f2(res.MaxCV)},
			{"RQA time fraction", f2(res.RQATimeFrac)},
		},
	}
	return []Table{t, sum}, nil
}
