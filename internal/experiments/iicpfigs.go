package experiments

import (
	"fmt"
	"math"
	"strings"

	"locat/internal/conf"
	"locat/internal/iicp"
	"locat/internal/kpca"
	"locat/internal/ml"
	"locat/internal/stat"
	"locat/internal/workloads"
)

// varyParams runs the application n times with the given parameter indices
// drawn uniformly at random (all other parameters at defaults) and returns
// the execution times. This is the paper's probe for "how important is this
// parameter set": more important sets produce a larger spread (Figures 6
// and 17).
func (s *Session) varyParams(clusterName, benchName string, gb float64, idx []int, n int, seed int64) ([]float64, error) {
	cl := Cluster(clusterName)
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	stream := fmt.Sprintf("vary/%s/%s/%v/%s/%d/%d", clusterName, benchName, gb, idxKey(idx), n, seed)
	r, err := s.runnerSeeded(clusterName, seed, stream)
	if err != nil {
		return nil, err
	}
	space := cl.Space()
	sub, err := conf.NewSubspace(space, space.Default(), idx)
	if err != nil {
		return nil, err
	}
	rng := newRng(seed)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.RunApp(app, sub.Random(rng), gb).Sec)
	}
	return out, nil
}

// idxKey renders a parameter-index set as a compact stable stream-key part.
func idxKey(idx []int) string {
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = fmt.Sprint(j)
	}
	return strings.Join(parts, "-")
}

// Fig6KernelComparison regenerates Figure 6: the standard deviation of
// execution times when the application is configured by the parameters
// selected by KPCA under the Gaussian, perceptron and polynomial kernels.
// The paper selects the Gaussian kernel because it yields the largest S.D.
func Fig6KernelComparison(s *Session) ([]Table, error) {
	benches := []string{"TPC-DS", "TPC-H"}
	nSamples, nRuns := 20, 20
	if s.Quick {
		benches = []string{"TPC-H"}
		nSamples, nRuns = 10, 8
	}
	kernels := []kpca.Kernel{
		{Kind: kpca.Gaussian},
		{Kind: kpca.Perceptron},
		{Kind: kpca.Polynomial},
	}
	t := Table{
		ID:     "fig6",
		Title:  "S.D. of execution times by CPE kernel (100 GB, ARM)",
		Header: []string{"benchmark", "gaussian", "perceptron", "polynomial"},
	}
	for _, bn := range benches {
		samples, err := s.iicpSamples("arm", bn, 100, nSamples)
		if err != nil {
			return nil, err
		}
		row := []string{bn}
		for _, k := range kernels {
			opts := iicp.DefaultOptions()
			opts.Kernel = k
			res, err := iicp.Analyze(Cluster("arm").Space(), samples, opts)
			if err != nil {
				return nil, err
			}
			times, err := s.varyParams("arm", bn, 100, res.Important, nRuns, s.Seed+21)
			if err != nil {
				return nil, err
			}
			row = append(row, f0(stat.StdDev(times)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig9NIICP regenerates Figure 9: the identified-important-parameter count
// as N_IICP grows from 5 to 50 — the experiment that fixes N_IICP = 20.
func Fig9NIICP(s *Session) ([]Table, error) {
	counts := []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	if s.Quick {
		counts = []int{5, 10, 20}
	}
	benches := s.benchNames()
	t := Table{
		ID:     "fig9",
		Title:  "Number of identified important parameters vs N_IICP (100 GB, ARM)",
		Header: append([]string{"samples"}, benches...),
	}
	max := counts[len(counts)-1]
	space := Cluster("arm").Space()
	perBench := map[string][]int{}
	for _, bn := range benches {
		samples, err := s.iicpSamples("arm", bn, 100, max)
		if err != nil {
			return nil, err
		}
		for _, n := range counts {
			res, err := iicp.Analyze(space, samples[:n], iicp.DefaultOptions())
			if err != nil {
				return nil, err
			}
			perBench[bn] = append(perBench[bn], res.NumImportant())
		}
	}
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, bn := range benches {
			row = append(row, fmt.Sprintf("%d", perBench[bn][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig10CPSCPE regenerates Figure 10: how many of the 38 parameters survive
// CPS, and how many CPE extracts, per benchmark (paper: 38 → ~26-31 → ~8-15).
func Fig10CPSCPE(s *Session) ([]Table, error) {
	n := 20
	if s.Quick {
		n = 10
	}
	t := Table{
		ID:     "fig10",
		Title:  "Parameter counts: original vs CPS-selected vs CPE-extracted (N_IICP samples)",
		Header: []string{"benchmark", "original", "CPS", "CPE"},
	}
	space := Cluster("arm").Space()
	for _, bn := range s.benchNames() {
		samples, err := s.iicpSamples("arm", bn, 100, n)
		if err != nil {
			return nil, err
		}
		res, err := iicp.Analyze(space, samples, iicp.DefaultOptions())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			bn, fmt.Sprintf("%d", conf.NumParams),
			fmt.Sprintf("%d", res.NumSelected()), fmt.Sprintf("%d", res.NumImportant()),
		})
	}
	return []Table{t}, nil
}

// Table3TopParams regenerates Table 3: the five most important parameters
// (by CPS Spearman rank) for TPC-DS at 100 GB, 500 GB and 1 TB. A larger
// sample count is used than N_IICP so the ranking reflects the response
// surface rather than Spearman sampling noise (see EXPERIMENTS.md).
func Table3TopParams(s *Session) ([]Table, error) {
	n := 100
	sizes := []float64{100, 500, 1024}
	if s.Quick {
		n = 30
		sizes = []float64{100, 500}
	}
	t := Table{
		ID:     "table3",
		Title:  "Top-5 important parameters by CPS, TPC-DS",
		Header: []string{"rank"},
	}
	space := Cluster("arm").Space()
	tops := make([][]string, 0, len(sizes))
	for _, gb := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%.0fGB", gb))
		samples, err := s.iicpSamples("arm", "TPC-DS", gb, n)
		if err != nil {
			return nil, err
		}
		res, err := iicp.Analyze(space, samples, iicp.DefaultOptions())
		if err != nil {
			return nil, err
		}
		tops = append(tops, res.TopParams(5))
	}
	for r := 0; r < 5; r++ {
		row := []string{fmt.Sprintf("%d", r+1)}
		for _, top := range tops {
			row = append(row, top[r])
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig16ModelMSE regenerates Figure 16: the accuracy (MSE on [0,1]-normalized
// latencies) of performance models built by GBRT, SVR, LinearR, LR and
// KNNAR; GBRT must come out lowest.
func Fig16ModelMSE(s *Session) ([]Table, error) {
	train, test := 100, 40
	if s.Quick {
		train, test = 30, 15
	}
	t := Table{
		ID:     "fig16",
		Title:  "Performance-model MSE by learning algorithm (100 GB, ARM)",
		Header: []string{"benchmark", "GBRT", "SVR", "LinearR", "LR", "KNNAR"},
	}
	space := Cluster("arm").Space()
	sums := make([]float64, 5)
	benches := s.benchNames()
	for _, bn := range benches {
		samples, err := s.iicpSamples("arm", bn, 100, train+test)
		if err != nil {
			return nil, err
		}
		// Model log-latency normalized to [0,1] over the whole set (the
		// paper's MSE axis is unit-scaled; the log transform keeps the
		// OOM-thrash tail from compressing the bulk of the scale).
		logSec := func(v float64) float64 { return math.Log(v) }
		lo, hi := logSec(samples[0].Sec), logSec(samples[0].Sec)
		for _, sm := range samples {
			v := logSec(sm.Sec)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		var xs [][]float64
		var ys []float64
		for _, sm := range samples {
			xs = append(xs, space.Encode(sm.Conf))
			ys = append(ys, (logSec(sm.Sec)-lo)/span)
		}
		row := []string{bn}
		for i, m := range ml.All() {
			if err := m.Fit(xs[:train], ys[:train]); err != nil {
				return nil, err
			}
			pred := make([]float64, test)
			for j := 0; j < test; j++ {
				pred[j] = m.Predict(xs[train+j])
			}
			mse := stat.MSE(pred, ys[train:])
			sums[i] += mse
			row = append(row, fmt.Sprintf("%.3f", mse))
		}
		t.Rows = append(t.Rows, row)
	}
	avgRow := []string{"AVG"}
	for _, v := range sums {
		avgRow = append(avgRow, fmt.Sprintf("%.3f", v/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avgRow)
	return []Table{t}, nil
}

// Fig17IICPvsGBRT regenerates Figure 17: the spread (S.D.) of execution
// times when the application is configured by the important parameters
// identified by IICP versus by GBRT feature importance, as the probe run
// count grows. Higher spread = the method found parameters that matter more.
func Fig17IICPvsGBRT(s *Session) ([]Table, error) {
	benches := []string{"TPC-DS", "Join"}
	runCounts := []int{5, 10, 15, 20, 25, 30}
	nSamples := 20
	if s.Quick {
		benches = []string{"Join"}
		runCounts = []int{5, 10}
		nSamples = 10
	}
	space := Cluster("arm").Space()
	var tables []Table
	for _, bn := range benches {
		samples, err := s.iicpSamples("arm", bn, 100, nSamples)
		if err != nil {
			return nil, err
		}
		ires, err := iicp.Analyze(space, samples, iicp.DefaultOptions())
		if err != nil {
			return nil, err
		}
		// GBRT importance on the same samples, taking the same number of
		// parameters as IICP identified.
		var xs [][]float64
		var ys []float64
		for _, sm := range samples {
			xs = append(xs, space.Encode(sm.Conf))
			ys = append(ys, sm.Sec)
		}
		g := ml.NewGBRT(ml.GBRTOptions{})
		if err := g.Fit(xs, ys); err != nil {
			return nil, err
		}
		gbrtIdx := topIndices(g.FeatureImportance(), len(ires.Important))

		t := Table{
			ID:     "fig17",
			Title:  fmt.Sprintf("S.D. of execution times, params by IICP vs GBRT (%s, 100 GB)", bn),
			Header: []string{"runs", "IICP", "GBRT"},
		}
		var iicpSDs, gbrtSDs []float64
		for _, rc := range runCounts {
			ti, err := s.varyParams("arm", bn, 100, ires.Important, rc, s.Seed+31)
			if err != nil {
				return nil, err
			}
			tg, err := s.varyParams("arm", bn, 100, gbrtIdx, rc, s.Seed+31)
			if err != nil {
				return nil, err
			}
			iicpSDs = append(iicpSDs, stat.StdDev(ti))
			gbrtSDs = append(gbrtSDs, stat.StdDev(tg))
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", rc), f0(iicpSDs[len(iicpSDs)-1]), f0(gbrtSDs[len(gbrtSDs)-1])})
		}
		t.Rows = append(t.Rows, []string{"AVG", f0(avg(iicpSDs)), f0(avg(gbrtSDs))})
		tables = append(tables, t)
	}
	return tables, nil
}

// topIndices returns the indices of the k largest values.
func topIndices(vals []float64, k int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		m := i
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[m]] {
				m = j
			}
		}
		idx[i], idx[m] = idx[m], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
