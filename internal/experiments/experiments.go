// Package experiments contains one driver per figure and table of the
// paper's evaluation (Section 5). Each driver regenerates the corresponding
// rows/series on the simulated clusters and returns them as printable
// tables; cmd/locat-bench renders them and the repository's benchmark suite
// (bench_test.go) runs them as testing.B benchmarks.
//
// All drivers run off a Session, which memoizes tuning runs (a LOCAT run of
// TPC-DS at one size is reused by Figures 11, 13, 18, 19 and 20) and scales
// budgets down in Quick mode so the full suite stays test-friendly.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"locat/internal/baselines"
	"locat/internal/conf"
	"locat/internal/core"
	"locat/internal/obs"
	"locat/internal/qcsa"
	"locat/internal/runner"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// Table is one printable result block.
type Table struct {
	// ID is the paper artifact this regenerates, e.g. "fig11".
	ID string
	// Title describes the experiment.
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Session runs experiments with memoized tuning results.
type Session struct {
	// Seed drives all randomness.
	Seed int64
	// Quick scales every budget down for fast test/bench runs.
	Quick bool

	tuned    map[string]*Outcome
	factory  *runner.Factory
	tally    runner.Tally
	timeline *obs.Timeline

	// usage cursors for TakeUsage / TakePhases deltas.
	lastRuns int64
	lastSec  float64
	cost     float64
	lastCost float64
	lastSpan int

	// counters are exact deterministic outcome counters the running
	// experiment publishes (the loadtest experiment's per-group census);
	// the bench harness drains them per experiment and the baseline gate
	// compares them bit for bit, not within a tolerance.
	counters map[string]float64
}

// NewSession returns a session on the simulator backend.
func NewSession(seed int64, quick bool) *Session {
	s, _ := NewSessionBackend(seed, quick, "")
	return s
}

// NewSessionBackend returns a session on the given execution-backend spec
// (see internal/runner: "sim", "record=PATH", "replay=PATH", …). Replay
// sessions regenerate figures hermetically from a recorded trace; Close
// must be called to flush a recording.
func NewSessionBackend(seed int64, quick bool, backend string) (*Session, error) {
	f, err := runner.ParseSpec(backend)
	if err != nil {
		return nil, err
	}
	return &Session{
		Seed: seed, Quick: quick,
		tuned:    map[string]*Outcome{},
		factory:  f,
		timeline: obs.NewTimeline(),
	}, nil
}

// Close flushes the backend factory (the trace sink of a recording
// session).
func (s *Session) Close() error { return s.factory.Close() }

// runner materializes one metered execution backend for an experiment
// stage. Stream keys are deterministic strings derived from what the stage
// computes, so a recorded session replays stage by stage.
func (s *Session) runner(clusterName, stream string, opts ...sparksim.Option) (runner.Runner, error) {
	return s.runnerSeeded(clusterName, s.Seed, stream, opts...)
}

// runnerSeeded is runner with an explicit seed (probe stages that vary it).
func (s *Session) runnerSeeded(clusterName string, seed int64, stream string, opts ...sparksim.Option) (runner.Runner, error) {
	r, err := s.factory.New(Cluster(clusterName), seed, stream, opts...)
	if err != nil {
		return nil, err
	}
	return runner.Metered(r, &s.tally), nil
}

// SetCounter publishes one exact deterministic counter for the current
// experiment. Unlike TakeUsage's metrics (gated within a tolerance),
// counters must reproduce bit for bit against the baseline.
func (s *Session) SetCounter(name string, v float64) {
	if s.counters == nil {
		s.counters = map[string]float64{}
	}
	s.counters[name] = v
}

// TakeCounters drains the counters the experiment published since the last
// call (nil when none).
func (s *Session) TakeCounters() map[string]float64 {
	c := s.counters
	s.counters = nil
	return c
}

// chargeCost accrues a tuned-latency figure into the session's final-cost
// accounting (charged on every request, memoized or fresh, so the total is
// independent of which experiment computed the outcome first).
func (s *Session) chargeCost(sec float64) { s.cost += sec }

// TakeUsage returns the execution accounting accumulated since the last
// call: runs executed, simulated cluster seconds consumed, and the sum of
// tuned final costs requested. The benchmark harness snapshots it around
// each experiment to emit the machine-readable perf report the CI
// regression gate compares.
func (s *Session) TakeUsage() (runs int64, clusterSec, finalCost float64) {
	r, sec := s.tally.Snapshot()
	runs, clusterSec, finalCost = r-s.lastRuns, sec-s.lastSec, s.cost-s.lastCost
	s.lastRuns, s.lastSec, s.lastCost = r, sec, s.cost
	return runs, clusterSec, finalCost
}

// TakePhases returns the phase spans the session's LOCAT tuning runs
// recorded since the last call, aggregated by phase name (repeated
// hyperparameter resamples collapse into one row), in first-appearance
// order. Experiments that only exercise baselines or raw sample collection
// return nothing — only the LOCAT pipeline is phase-traced. Memoized tuning
// outcomes record no new spans, matching how TakeUsage charges nothing for
// a cache hit.
func (s *Session) TakePhases() []obs.SpanRecord {
	spans := s.timeline.Snapshot()
	fresh := spans[min(s.lastSpan, len(spans)):]
	s.lastSpan = len(spans)
	return obs.Aggregate(fresh)
}

// Outcome is one tuner's result on one (cluster, benchmark, size) triple.
type Outcome struct {
	Tuner       string
	Best        conf.Config
	TunedSec    float64
	OverheadSec float64
	Runs        int
}

// TunerNames is the paper's comparison order.
var TunerNames = []string{"LOCAT", "Tuneful", "DAC", "GBO-RL", "QTune"}

// sizes returns the evaluation data sizes, reduced in Quick mode.
func (s *Session) sizes() []float64 {
	if s.Quick {
		return []float64{100, 300}
	}
	return workloads.DataSizesGB
}

// benchmarks returns the benchmark suite, reduced in Quick mode.
func (s *Session) benchmarks() []*sparksim.Application {
	if s.Quick {
		return []*sparksim.Application{workloads.TPCH(), workloads.HiBenchJoin()}
	}
	return workloads.Suites()
}

// locatOptions returns the LOCAT budget for this session.
func (s *Session) locatOptions() core.Options {
	o := core.DefaultOptions()
	o.Seed = s.Seed
	o.Tracer = s.timeline
	if s.Quick {
		o.NQCSA = 10
		o.NIICP = 8
		o.MaxIter = 8
		o.MinIter = 4
		o.MCMCSamples = 2
	}
	return o
}

// baselineTuners returns the four SOTA baselines at session budgets.
func (s *Session) baselineTuners() []baselines.Tuner {
	if s.Quick {
		return []baselines.Tuner{
			&baselines.Tuneful{TopK: 6, BOIter: 24},
			&baselines.DAC{TrainRuns: 32, Generations: 8, Population: 16, Validate: 5},
			&baselines.GBORL{MemProbes: 10, RLSteps: 44, Epsilon: 0.25},
			&baselines.QTune{Generations: 8, Episodes: 10, EliteFrac: 0.25},
		}
	}
	return baselines.All()
}

// cluster returns the named cluster ("arm" or "x86").
func Cluster(name string) *sparksim.Cluster {
	if name == "x86" {
		return sparksim.X86()
	}
	return sparksim.ARM()
}

// Tune returns the memoized outcome of running the named tuner on the
// benchmark at the given size and cluster.
func (s *Session) Tune(clusterName, benchName, tuner string, gb float64) (*Outcome, error) {
	key := fmt.Sprintf("%s/%s/%s/%v", clusterName, benchName, tuner, gb)
	if o, ok := s.tuned[key]; ok {
		s.chargeCost(o.TunedSec)
		return o, nil
	}
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	r, err := s.runner(clusterName, "tune/"+key)
	if err != nil {
		return nil, err
	}
	var out *Outcome
	if tuner == "LOCAT" {
		rep, err := core.New(r, app, s.locatOptions()).Tune(gb)
		if err != nil {
			return nil, err
		}
		out = &Outcome{Tuner: "LOCAT", Best: rep.Best, TunedSec: rep.TunedSec,
			OverheadSec: rep.OverheadSec, Runs: rep.Evaluations()}
	} else {
		var bt baselines.Tuner
		for _, t := range s.baselineTuners() {
			if t.Name() == tuner {
				bt = t
				break
			}
		}
		if bt == nil {
			return nil, fmt.Errorf("experiments: unknown tuner %q", tuner)
		}
		rep, err := bt.Tune(r, app, gb, s.Seed+7)
		if err != nil {
			return nil, err
		}
		out = &Outcome{Tuner: rep.Tuner, Best: rep.Best, TunedSec: rep.TunedSec,
			OverheadSec: rep.OverheadSec, Runs: rep.Runs}
	}
	s.tuned[key] = out
	s.chargeCost(out.TunedSec)
	return out, nil
}

// canonicalQCSA runs the paper's QCSA protocol (N_QCSA random
// configurations) for a benchmark on a cluster and memoizes the result.
func (s *Session) canonicalQCSA(clusterName, benchName string, gb float64, n int) (*qcsa.Result, error) {
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	runs, err := s.randomRuns(clusterName, benchName, gb, n)
	if err != nil {
		return nil, err
	}
	return qcsa.Analyze(app, runs)
}

// randomRuns executes the benchmark n times under random configurations,
// fanned over concurrent execution slots (qcsa.Collect); per-run noise
// streams keep the results identical to the serial loop this was.
func (s *Session) randomRuns(clusterName, benchName string, gb float64, n int) ([]sparksim.AppResult, error) {
	cl := Cluster(clusterName)
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	r, err := s.runner(clusterName, fmt.Sprintf("random/%s/%s/%v/%d", clusterName, benchName, gb, n))
	if err != nil {
		return nil, err
	}
	return qcsa.CollectRandom(r, app, cl.Space(), n, gb, 0, newRng(s.Seed+11)), nil
}

// Registry maps figure/table IDs to drivers.
var Registry = map[string]func(*Session) ([]Table, error){
	"fig2":   Fig2Motivation,
	"fig6":   Fig6KernelComparison,
	"fig7":   Fig7NQCSA,
	"fig8":   Fig8QueryCV,
	"fig9":   Fig9NIICP,
	"fig10":  Fig10CPSCPE,
	"table3": Table3TopParams,
	"fig11":  Fig11OptTimeARM,
	"fig12":  Fig12OptTimeX86,
	"fig13":  Fig13SpeedupARM,
	"fig14":  Fig14SpeedupX86,
	"fig15":  Fig15APvsIP,
	"fig16":  Fig16ModelMSE,
	"fig17":  Fig17IICPvsGBRT,
	"fig18":  Fig18CSQCIQ,
	"fig19":  Fig19GCTime,
	"fig20":  Fig20OverheadGrowth,
	"fig21":  Fig21Hybrid,

	// Beyond the paper: the service's zero-execution retrieval tier against
	// cold and warm tuning on the same seeded neighborhood.
	"retrieval": RetrievalTiers,

	// Beyond the paper: the serving layer's overload behavior — priority
	// shedding, tenant budgets, budget degrades — as a deterministic census
	// gated bit for bit by the baseline.
	"loadtest": LoadTest,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
