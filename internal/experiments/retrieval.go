package experiments

import (
	"fmt"
	"math"

	"locat/internal/conf"
	"locat/internal/core"
	"locat/internal/dagp"
	"locat/internal/service"
	"locat/internal/workloads"
)

// RetrievalTiers compares the three ways the service can answer a tuning
// request whose workload neighborhood is already in the history store:
//
//	cold   a full LOCAT session, no prior                (the paper's path)
//	warm   a session seeded with the stored observations (PR-2's warm start)
//	zero   k-NN retrieval + blending, no execution at all (the serve-now tier)
//	refine a session seeded from the k-NN neighbors      (the refine path)
//
// Two seed sessions populate an in-memory history around the target size;
// each tier then answers the same 120 GB request. The table reports the
// simulated cluster seconds each tier consumed and the final latency of the
// configuration it served. The driver fails if the zero tier executes even
// one run, or if the retrieval-seeded refine session lands more than 15%
// away from the exact-warm-start final cost — the acceptance bound of the
// retrieval tier.
func RetrievalTiers(s *Session) ([]Table, error) {
	const clusterName, benchName = "arm", "TPC-H"
	const targetGB = 120.0
	app, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	space := Cluster(clusterName).Space()

	// tierUsage snapshots the metered tally around one tier.
	tierUsage := func() func() (int64, float64) {
		r0, s0 := s.tally.Snapshot()
		return func() (int64, float64) {
			r1, s1 := s.tally.Snapshot()
			return r1 - r0, s1 - s0
		}
	}

	// Seed the history store with two cold sessions in the target's size
	// neighborhood, persisted exactly as the service would persist them.
	store := service.NewMemStore()
	var seedReps []*core.Report
	for i, gb := range []float64{100, 140} {
		r, err := s.runner(clusterName, fmt.Sprintf("retrieval/seed/%v", gb))
		if err != nil {
			return nil, err
		}
		rep, err := core.New(r, app, s.locatOptions()).Tune(gb)
		if err != nil {
			return nil, err
		}
		if err := store.Put(historyEntry(rep, clusterName, benchName, gb, i)); err != nil {
			return nil, err
		}
		seedReps = append(seedReps, rep)
	}

	spec := service.JobSpec{Cluster: clusterName, Benchmark: benchName, DataSizeGB: targetGB}
	t := Table{
		ID:     "retrieval",
		Title:  fmt.Sprintf("serving tiers for %s at %v GB with a seeded history", benchName, targetGB),
		Header: []string{"tier", "cluster (s)", "runs", "final (s)", "notes"},
	}
	row := func(tier string, sec float64, runs int64, final float64, notes string) {
		t.Rows = append(t.Rows, []string{
			tier, fmt.Sprintf("%.0f", sec), fmt.Sprintf("%d", runs),
			fmt.Sprintf("%.0f", final), notes,
		})
	}

	// Cold: the price of ignoring the history.
	done := tierUsage()
	rCold, err := s.runner(clusterName, "retrieval/cold")
	if err != nil {
		return nil, err
	}
	coldRep, err := core.New(rCold, app, s.locatOptions()).Tune(targetGB)
	if err != nil {
		return nil, err
	}
	coldRuns, coldSec := done()
	s.chargeCost(coldRep.TunedSec)
	row("cold", coldSec, coldRuns, coldRep.TunedSec, "full LOCAT session")

	// Zero: retrieve, blend, serve — and verify not a single run was paid.
	done = tierUsage()
	rec, knnPrior, err := service.NewRecommender(store).Recommend(spec, service.RecommendOptions{})
	if err != nil {
		return nil, err
	}
	zeroRuns, zeroSec := done()
	if zeroRuns != 0 || zeroSec != 0 {
		return nil, fmt.Errorf("retrieval: zero tier executed %d runs / %.0f cluster seconds", zeroRuns, zeroSec)
	}
	if rec.Outcome != "hit" {
		return nil, fmt.Errorf("retrieval: seeded neighborhood gave outcome %q (confidence %.2f)", rec.Outcome, rec.Confidence)
	}
	// Quality measurement (noiseless model evaluation) is free: it is how
	// every tier's final cost is defined, not part of the tuning bill.
	rZero, err := s.runner(clusterName, "retrieval/zero")
	if err != nil {
		return nil, err
	}
	zeroFinal := rZero.NoiselessAppTime(app, rec.BestConfig, targetGB)
	s.chargeCost(zeroFinal)
	row("zero", 0, 0, zeroFinal,
		fmt.Sprintf("confidence %.2f, %d neighbors", rec.Confidence, len(rec.Neighbors)))

	// Warm: the exact warm start a same-fingerprint service session builds.
	warm := func(tier string, prior *core.Prior) (*core.Report, float64, error) {
		done := tierUsage()
		r, err := s.runner(clusterName, "retrieval/"+tier)
		if err != nil {
			return nil, 0, err
		}
		opts := s.locatOptions()
		opts.Prior = prior
		rep, err := core.New(r, app, opts).Tune(targetGB)
		if err != nil {
			return nil, 0, err
		}
		runs, sec := done()
		if !rep.WarmStarted {
			return nil, 0, fmt.Errorf("retrieval: %s session did not warm-start (%d prior obs)", tier, len(prior.Obs))
		}
		s.chargeCost(rep.TunedSec)
		row(tier, sec, runs, rep.TunedSec, fmt.Sprintf("%d prior obs", rep.PriorObsUsed))
		return rep, sec, nil
	}
	warmRep, _, err := warm("warm", exactPrior(seedReps, space, targetGB))
	if err != nil {
		return nil, err
	}
	refineRep, _, err := warm("refine", knnPrior)
	if err != nil {
		return nil, err
	}

	// Acceptance bound: seeding from retrieved neighbors must land within
	// 15% of the exact warm start's final cost.
	if tol := 0.15 * warmRep.TunedSec; math.Abs(refineRep.TunedSec-warmRep.TunedSec) > tol {
		return nil, fmt.Errorf("retrieval: refine final %.0f s is over 15%% from warm final %.0f s",
			refineRep.TunedSec, warmRep.TunedSec)
	}
	return []Table{t}, nil
}

// historyEntry persists a finished session the way the service does:
// full-application observations, QCSA/IICP artifacts by name, and the best
// configuration as a name→value map. CreatedUnix is synthetic (the driver
// is deterministic; wall clocks are banned here).
func historyEntry(rep *core.Report, clusterName, benchName string, gb float64, ordinal int) service.Entry {
	e := service.Entry{
		Fingerprint: service.NewFingerprint(service.JobSpec{
			Cluster: clusterName, Benchmark: benchName, DataSizeGB: gb,
		}),
		JobID:       fmt.Sprintf("job-%06d", ordinal+1),
		CreatedUnix: int64(ordinal + 1),
		TargetGB:    gb,
		TunedSec:    rep.TunedSec,
		OverheadSec: rep.OverheadSec,
		BestParams:  map[string]float64{},
	}
	for i, p := range conf.Params() {
		e.BestParams[p.Name] = rep.Best[i]
	}
	if rep.QCSA != nil {
		e.Sensitive = append([]string(nil), rep.QCSA.Sensitive...)
	}
	if rep.IICP != nil {
		for _, idx := range rep.IICP.Important {
			e.Important = append(e.Important, conf.Params()[idx].Name)
		}
	}
	for _, ev := range rep.History {
		if !ev.FullApp {
			continue
		}
		e.Obs = append(e.Obs, service.Observation{
			Params:    append([]float64(nil), ev.Conf...),
			DataGB:    ev.DataGB,
			Sec:       ev.Sec,
			QuerySecs: ev.QuerySecs,
		})
	}
	return e
}

// exactPrior builds the warm-start prior a service session with the same
// fingerprint would retrieve: every stored full-application observation,
// ranked and capped by dagp.SelectTransfer against the target size, with the
// newest session's QCSA/IICP artifacts.
func exactPrior(reps []*core.Report, space *conf.Space, targetGB float64) *core.Prior {
	var obs []core.PriorObs
	var samples []dagp.Sample
	for _, rep := range reps {
		for _, ev := range rep.History {
			if !ev.FullApp {
				continue
			}
			obs = append(obs, core.PriorObs{Conf: ev.Conf, DataGB: ev.DataGB, Sec: ev.Sec, QuerySecs: ev.QuerySecs})
			samples = append(samples, dagp.Sample{X: space.Encode(ev.Conf), DataGB: ev.DataGB, Sec: ev.Sec})
		}
	}
	prior := &core.Prior{}
	for _, i := range dagp.SelectTransfer(samples, targetGB, 48) {
		prior.Obs = append(prior.Obs, obs[i])
	}
	for i := len(reps) - 1; i >= 0; i-- {
		if prior.Sensitive == nil && reps[i].QCSA != nil {
			prior.Sensitive = append([]string(nil), reps[i].QCSA.Sensitive...)
		}
		if prior.Important == nil && reps[i].IICP != nil {
			prior.Important = append([]int(nil), reps[i].IICP.Important...)
		}
	}
	return prior
}
