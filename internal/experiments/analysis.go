package experiments

import (
	"fmt"

	"locat/internal/baselines"
	"locat/internal/conf"
	"locat/internal/core"
	"locat/internal/iicp"
	"locat/internal/qcsa"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// Fig15APvsIP regenerates Figure 15: TPC-DS tuned by LOCAT with all 38
// parameters (AP) versus with the IICP-selected important parameters (IP).
// The paper finds IP ≈ 1.8× better on average — tuning unimportant
// parameters wastes the search budget and counteracts the important ones.
func Fig15APvsIP(s *Session) ([]Table, error) {
	t := Table{
		ID:     "fig15",
		Title:  "TPC-DS duration (s) tuned with all parameters (AP) vs important parameters (IP), ARM",
		Header: []string{"size(GB)", "AP", "IP", "IP gain (×)"},
	}
	app := workloads.TPCDS()
	var ratios []float64
	for _, gb := range s.sizes() {
		opts := s.locatOptions()
		opts.UseIICP = false
		rAP, err := s.runner("arm", fmt.Sprintf("fig15/ap/%v", gb))
		if err != nil {
			return nil, err
		}
		ap, err := core.New(rAP, app, opts).Tune(gb)
		if err != nil {
			return nil, err
		}
		s.chargeCost(ap.TunedSec)
		ip, err := s.Tune("arm", "TPC-DS", "LOCAT", gb)
		if err != nil {
			return nil, err
		}
		r := ap.TunedSec / ip.TunedSec
		ratios = append(ratios, r)
		t.Rows = append(t.Rows, []string{f0(gb), f0(ap.TunedSec), f0(ip.TunedSec), f2(r)})
	}
	t.Rows = append(t.Rows, []string{"Avg", "", "", f2(avg(ratios))})
	return []Table{t}, nil
}

// tunedSplit runs the tuned configuration noiselessly and splits the
// per-query latency into CSQ and CIQ shares using a canonical QCSA
// classification, and reports the GC time.
func (s *Session) tunedSplit(clusterName, benchName string, gb float64, best conf.Config,
	classify *qcsa.Result) (csq, ciq, gc float64, err error) {
	app, err := workloads.ByName(benchName)
	if err != nil {
		return 0, 0, 0, err
	}
	sens := map[string]bool{}
	for _, n := range classify.Sensitive {
		sens[n] = true
	}
	r, err := s.runner(clusterName, fmt.Sprintf("split/%s/%s/%v", clusterName, benchName, gb), sparksim.WithNoise(0))
	if err != nil {
		return 0, 0, 0, err
	}
	res := r.RunApp(app, best, gb)
	for _, qr := range res.Queries {
		if sens[qr.Name] {
			csq += qr.Sec
		} else {
			ciq += qr.Sec
		}
	}
	return csq, ciq, res.GCSec, nil
}

// Fig18CSQCIQ regenerates Figure 18: the execution time of the
// configuration-sensitive (CSQ) and insensitive (CIQ) query groups of
// TPC-DS under each tuner's final configuration, at 100–300 GB. The tuners'
// gains come almost entirely from the CSQ share.
func Fig18CSQCIQ(s *Session) ([]Table, error) {
	sizes := []float64{100, 200, 300}
	nq := 30
	if s.Quick {
		sizes = []float64{100}
		nq = 12
	}
	classify, err := s.canonicalQCSA("arm", "TPC-DS", 100, nq)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "fig18",
		Title:  "CSQ vs CIQ execution time (s) of tuned TPC-DS, ARM",
		Header: []string{"size(GB)", "tuner", "CSQ", "CIQ", "total"},
	}
	for _, gb := range sizes {
		for _, tn := range TunerNames {
			o, err := s.Tune("arm", "TPC-DS", tn, gb)
			if err != nil {
				return nil, err
			}
			csq, ciq, _, err := s.tunedSplit("arm", "TPC-DS", gb, o.Best, classify)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{f0(gb), tn, f0(csq), f0(ciq), f0(csq + ciq)})
		}
	}
	return []Table{t}, nil
}

// Fig19GCTime regenerates Figure 19: the JVM garbage-collection time of
// TPC-DS and HiBench Join under each tuner's final configuration across the
// input sizes. LOCAT's memory settings keep GC lowest and growing slowest.
func Fig19GCTime(s *Session) ([]Table, error) {
	benches := []string{"TPC-DS", "Join"}
	nq := 30
	if s.Quick {
		benches = []string{"Join"}
		nq = 12
	}
	var tables []Table
	for _, bn := range benches {
		classify, err := s.canonicalQCSA("arm", bn, 100, nq)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:     "fig19",
			Title:  fmt.Sprintf("JVM GC time (s) of tuned %s by input size, ARM", bn),
			Header: append([]string{"tuner"}, sizesHeader(s.sizes())...),
		}
		for _, tn := range TunerNames {
			row := []string{tn}
			for _, gb := range s.sizes() {
				o, err := s.Tune("arm", bn, tn, gb)
				if err != nil {
					return nil, err
				}
				_, _, gc, err := s.tunedSplit("arm", bn, gb, o.Best, classify)
				if err != nil {
					return nil, err
				}
				row = append(row, f1(gc))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func sizesHeader(sizes []float64) []string {
	out := make([]string, len(sizes))
	for i, gb := range sizes {
		out[i] = fmt.Sprintf("%.0fGB", gb)
	}
	return out
}

// Fig21Hybrid regenerates Figure 21: QCSA and IICP grafted onto the SOTA
// tuners (and onto plain DAGP-BO). Four modes per tuner: APT (all-parameter
// tuning of the full application), IICP only, QCSA only, and QIT (both).
// Reported: the tuned duration and the optimization overhead.
func Fig21Hybrid(s *Session) ([]Table, error) {
	gb := 500.0
	prepN := 30
	if s.Quick {
		gb = 100
		prepN = 12
	}
	cl := Cluster("arm")
	app := workloads.TPCDS()
	space := cl.Space()

	// Preparation artifacts, shared by all hybrids: the QCSA classification
	// and the IICP important-parameter subspace. Their collection cost
	// (prepN full-application runs under random configurations) is charged
	// to every mode that uses them.
	runs, err := s.randomRuns("arm", "TPC-DS", gb, prepN)
	if err != nil {
		return nil, err
	}
	var prepCost float64
	for _, r := range runs {
		prepCost += r.Sec
	}
	qres, err := qcsa.Analyze(app, runs)
	if err != nil {
		return nil, err
	}
	var samples []iicp.Sample
	// Re-derive the sampled configurations for IICP from a fresh pass (the
	// same seed draws the same configurations as randomRuns).
	rng := newRng(s.Seed + 11)
	for i := 0; i < prepN; i++ {
		c := space.Random(rng)
		samples = append(samples, iicp.Sample{Conf: c, Sec: runs[i].Sec})
	}
	ires, err := iicp.Analyze(space, samples, iicp.DefaultOptions())
	if err != nil {
		return nil, err
	}
	sub, err := conf.NewSubspace(space, space.Default(), ires.Important)
	if err != nil {
		return nil, err
	}

	duration := Table{
		ID:     "fig21",
		Title:  fmt.Sprintf("Tuned TPC-DS duration (s) at %.0f GB with QCSA/IICP grafted onto each tuner", gb),
		Header: []string{"tuner", "APT", "IICP", "QCSA", "QIT"},
	}
	overhead := Table{
		ID:     "fig21-overhead",
		Title:  "Optimization overhead (h) with QCSA/IICP grafted onto each tuner",
		Header: []string{"tuner", "APT", "IICP", "QCSA", "QIT"},
	}

	type mode struct {
		name     string
		restrict bool
		rqa      bool
	}
	modes := []mode{
		{"APT", false, false},
		{"IICP", true, false},
		{"QCSA", false, true},
		{"QIT", true, true},
	}
	for _, tn := range TunerNames {
		drow := []string{tn}
		orow := []string{tn}
		for _, m := range modes {
			tuned, over, err := s.runHybrid(app, qres, sub, tn, gb, m.restrict, m.rqa)
			if err != nil {
				return nil, err
			}
			if m.restrict || m.rqa {
				over += prepCost
			}
			drow = append(drow, f0(tuned))
			orow = append(orow, hours(over))
		}
		duration.Rows = append(duration.Rows, drow)
		overhead.Rows = append(overhead.Rows, orow)
	}
	return []Table{duration, overhead}, nil
}

// runHybrid runs one tuner in one hybrid mode and returns the tuned
// full-application latency and the tuner's own optimization overhead.
func (s *Session) runHybrid(app *sparksim.Application,
	qres *qcsa.Result, sub *conf.Subspace, tuner string, gb float64,
	restrict, rqa bool) (tuned, overhead float64, err error) {

	target := app
	if rqa {
		target = qres.RQA
	}
	mode := fmt.Sprintf("hybrid/%s/r%v-q%v/%v", tuner, restrict, rqa, gb)
	r, err := s.runner("arm", mode)
	if err != nil {
		return 0, 0, err
	}

	if tuner == "LOCAT" {
		// "DAGP" in the paper's Figure 21: BO with the datasize-aware GP,
		// with QCSA/IICP applied per mode via the tuner's switches.
		opts := s.locatOptions()
		opts.UseQCSA = rqa
		opts.UseIICP = restrict
		rep, err := core.New(r, app, opts).Tune(gb)
		if err != nil {
			return 0, 0, err
		}
		s.chargeCost(rep.TunedSec)
		return rep.TunedSec, rep.OverheadSec, nil
	}

	var bt baselines.Tuner
	for _, t := range s.baselineTuners() {
		if t.Name() == tuner {
			bt = t
			break
		}
	}
	if bt == nil {
		return 0, 0, fmt.Errorf("experiments: unknown tuner %q", tuner)
	}
	if restrict {
		switch b := bt.(type) {
		case *baselines.Tuneful:
			b.Restrict = sub
		case *baselines.DAC:
			b.Restrict = sub
		case *baselines.GBORL:
			b.Restrict = sub
		case *baselines.QTune:
			b.Restrict = sub
		}
	}
	rep, err := bt.Tune(r, target, gb, s.Seed+7)
	if err != nil {
		return 0, 0, err
	}
	// The hybrid's final configuration is evaluated on the full application
	// (NoiselessAppTime is deterministic, so the tuning backend serves).
	tuned = r.NoiselessAppTime(app, rep.Best, gb)
	s.chargeCost(tuned)
	return tuned, rep.OverheadSec, nil
}
