// Package ml implements the five machine-learning regressors the paper
// compares against in Sections 5.7 (Figures 16 and 17): Gradient Boosted
// Regression Trees (GBRT), Support Vector Regression (SVR), Linear
// Regression (LinearR), Logistic Regression (LR, with targets squashed to
// (0,1)), and K-Nearest-Neighbor regression (KNNAR). GBRT additionally
// exposes split-gain feature importances, which is how the GBRT-based
// important-parameter identification baseline of Figure 17 works.
package ml

import (
	"errors"
	"fmt"
)

// Regressor is the common interface of all five models.
type Regressor interface {
	// Name is the short model name used in the paper's figures.
	Name() string
	// Fit trains on rows x (equal lengths) and targets y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the model output at x.
	Predict(x []float64) float64
}

// All returns fresh instances of the five paper models, in the paper's
// order: GBRT, SVR, LinearR, LR, KNNAR.
func All() []Regressor {
	return []Regressor{
		NewGBRT(GBRTOptions{}),
		NewSVR(SVROptions{}),
		NewLinear(),
		NewLogistic(LogisticOptions{}),
		NewKNN(5),
	}
}

func checkXY(x [][]float64, y []float64) (int, error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, errors.New("ml: empty or mismatched training data")
	}
	d := len(x[0])
	if d == 0 {
		return 0, errors.New("ml: zero-dimensional inputs")
	}
	for i := range x {
		if len(x[i]) != d {
			return 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(x[i]), d)
		}
	}
	return d, nil
}
