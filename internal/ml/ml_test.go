package ml

import (
	"math"
	"math/rand"
	"testing"

	"locat/internal/stat"
)

// synth generates a nonlinear regression problem with two informative
// features (0 and 1) and the rest noise.
func synth(n, d int, rng *rand.Rand) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		t := 3*row[0]*row[0] + math.Sin(4*row[1]) + 0.05*rng.NormFloat64()
		x = append(x, row)
		y = append(y, t)
	}
	return x, y
}

func TestAllModelsTrainAndPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synth(120, 6, rng)
	xt, yt := synth(40, 6, rng)
	baseline := stat.Variance(yt) // predicting the mean scores ≈ this MSE
	for _, m := range All() {
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		pred := make([]float64, len(xt))
		for i := range xt {
			pred[i] = m.Predict(xt[i])
			if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
				t.Fatalf("%s: bad prediction", m.Name())
			}
		}
		mse := stat.MSE(pred, yt)
		if mse > 2*baseline {
			t.Fatalf("%s: MSE %v worse than 2× mean-baseline %v", m.Name(), mse, baseline)
		}
	}
}

func TestModelNames(t *testing.T) {
	want := []string{"GBRT", "SVR", "LinearR", "LR", "KNNAR"}
	models := All()
	if len(models) != len(want) {
		t.Fatalf("All() returned %d models", len(models))
	}
	for i, m := range models {
		if m.Name() != want[i] {
			t.Fatalf("model %d = %q; want %q", i, m.Name(), want[i])
		}
	}
}

func TestGBRTBeatsLinearOnNonlinearData(t *testing.T) {
	// The Figure 16 phenomenon: GBRT has the lowest error of the five on a
	// nonlinear response surface.
	rng := rand.New(rand.NewSource(2))
	x, y := synth(200, 8, rng)
	xt, yt := synth(60, 8, rng)
	mses := map[string]float64{}
	for _, m := range All() {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		pred := make([]float64, len(xt))
		for i := range xt {
			pred[i] = m.Predict(xt[i])
		}
		mses[m.Name()] = stat.MSE(pred, yt)
	}
	for name, mse := range mses {
		if name == "GBRT" {
			continue
		}
		if mses["GBRT"] > mse {
			t.Fatalf("GBRT MSE %v not lowest: %s has %v", mses["GBRT"], name, mse)
		}
	}
}

func TestGBRTFeatureImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synth(200, 6, rng)
	g := NewGBRT(GBRTOptions{})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp := g.FeatureImportance()
	if len(imp) != 6 {
		t.Fatalf("importance length %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	// Features 0 and 1 are informative; the rest are noise.
	for j := 2; j < 6; j++ {
		if imp[j] > imp[0] || imp[j] > imp[1] {
			t.Fatalf("noise feature %d ranked above informative: %v", j, imp)
		}
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, 2*a-3*b+0.5)
	}
	l := NewLinear()
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := l.Predict([]float64{1, 1}); math.Abs(got-(-0.5)) > 1e-4 {
		t.Fatalf("Predict(1,1) = %v; want -0.5", got)
	}
	if got := l.Predict([]float64{0, 0}); math.Abs(got-0.5) > 1e-4 {
		t.Fatalf("Predict(0,0) = %v; want 0.5", got)
	}
}

func TestKNNExactOnTrainingPoints(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	y := []float64{1, 2, 3, 4}
	k := NewKNN(1)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := k.Predict(x[i]); math.Abs(got-y[i]) > 1e-6 {
			t.Fatalf("KNN(1) at training point %d = %v; want %v", i, got, y[i])
		}
	}
	// Default k.
	if NewKNN(0).k != 5 {
		t.Fatal("default k should be 5")
	}
}

func TestSVRFitsLinearTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		a := rng.Float64()
		x = append(x, []float64{a})
		y = append(y, 10*a+5)
	}
	s := NewSVR(SVROptions{})
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.2, 0.5, 0.8} {
		if got := s.Predict([]float64{q}); math.Abs(got-(10*q+5)) > 1.5 {
			t.Fatalf("SVR(%v) = %v; want ≈%v", q, got, 10*q+5)
		}
	}
}

func TestLogisticStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := synth(100, 4, rng)
	l := NewLogistic(LogisticOptions{})
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := stat.Min(y), stat.Max(y)
	span := hi - lo
	for i := 0; i < 50; i++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		p := l.Predict(q)
		if p < lo-0.2*span || p > hi+0.2*span {
			t.Fatalf("logistic prediction %v far outside target range [%v, %v]", p, lo, hi)
		}
	}
}

func TestFitErrorsPropagate(t *testing.T) {
	for _, m := range All() {
		if err := m.Fit(nil, nil); err == nil {
			t.Fatalf("%s accepted empty training set", m.Name())
		}
		if err := m.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
			t.Fatalf("%s accepted ragged training set", m.Name())
		}
	}
}

func TestGBRTConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}, {0.2}}
	y := []float64{7, 7, 7, 7}
	g := NewGBRT(GBRTOptions{})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{0.3}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant-target prediction %v", got)
	}
}
