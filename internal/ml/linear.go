package ml

import (
	"math"

	"locat/internal/mat"
	"locat/internal/stat"
)

// Linear is ordinary least squares with a small ridge term for stability.
type Linear struct {
	w     []float64 // weights, last entry is the intercept
	dim   int
	ridge float64
}

// NewLinear returns an untrained linear regressor.
func NewLinear() *Linear { return &Linear{ridge: 1e-6} }

// Name implements Regressor.
func (l *Linear) Name() string { return "LinearR" }

// Fit implements Regressor: solves (XᵀX + λI)w = Xᵀy with an intercept
// column appended.
func (l *Linear) Fit(x [][]float64, y []float64) error {
	d, err := checkXY(x, y)
	if err != nil {
		return err
	}
	l.dim = d
	n := len(x)
	xa := mat.NewDense(n, d+1, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xa.Set(i, j, x[i][j])
		}
		xa.Set(i, d, 1)
	}
	xt := xa.T()
	gram := mat.Mul(xt, xa).AddDiag(l.ridge * float64(n))
	rhs := mat.MulVec(xt, y)
	ch, err := mat.NewCholesky(gram)
	if err != nil {
		// Increase ridge until solvable.
		for lam := 1e-4; lam <= 1; lam *= 10 {
			g2 := mat.Mul(xt, xa).AddDiag(lam * float64(n))
			if ch2, err2 := mat.NewCholesky(g2); err2 == nil {
				l.w = ch2.SolveVec(rhs)
				return nil
			}
		}
		return err
	}
	l.w = ch.SolveVec(rhs)
	return nil
}

// Predict implements Regressor.
func (l *Linear) Predict(x []float64) float64 {
	s := l.w[len(l.w)-1]
	for i := 0; i < l.dim && i < len(x); i++ {
		s += l.w[i] * x[i]
	}
	return s
}

// LogisticOptions configure the logistic-output regressor.
type LogisticOptions struct {
	// Iters is the number of full-batch gradient steps (default 500).
	Iters int
	// LearningRate is the step size (default 0.5).
	LearningRate float64
}

// Logistic fits y ≈ lo + (hi-lo)·σ(wᵀx + b) by gradient descent on squared
// loss — the paper's "LR" comparator applied to a regression target (the
// target range is learned from the training data).
type Logistic struct {
	opts   LogisticOptions
	w      []float64
	b      float64
	lo, hi float64
	dim    int
}

// NewLogistic returns an untrained logistic regressor.
func NewLogistic(o LogisticOptions) *Logistic {
	if o.Iters <= 0 {
		o.Iters = 500
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
	return &Logistic{opts: o}
}

// Name implements Regressor.
func (l *Logistic) Name() string { return "LR" }

// Fit implements Regressor.
func (l *Logistic) Fit(x [][]float64, y []float64) error {
	d, err := checkXY(x, y)
	if err != nil {
		return err
	}
	l.dim = d
	l.lo = stat.Min(y)
	l.hi = stat.Max(y)
	if l.hi-l.lo < 1e-12 {
		l.hi = l.lo + 1
	}
	n := len(x)
	// Targets scaled into (0,1) with a margin so the sigmoid can reach them.
	t := make([]float64, n)
	for i := range y {
		t[i] = 0.05 + 0.9*(y[i]-l.lo)/(l.hi-l.lo)
	}
	l.w = make([]float64, d)
	l.b = 0
	lr := l.opts.LearningRate
	for it := 0; it < l.opts.Iters; it++ {
		gw := make([]float64, d)
		gb := 0.0
		for i := 0; i < n; i++ {
			p := sigmoid(dot(l.w, x[i]) + l.b)
			// d/dz of ½(p-t)²: (p-t)·p·(1-p)
			g := (p - t[i]) * p * (1 - p)
			for j := 0; j < d; j++ {
				gw[j] += g * x[i][j]
			}
			gb += g
		}
		for j := 0; j < d; j++ {
			l.w[j] -= lr * gw[j] / float64(n)
		}
		l.b -= lr * gb / float64(n)
	}
	return nil
}

// Predict implements Regressor.
func (l *Logistic) Predict(x []float64) float64 {
	p := sigmoid(dot(l.w, x) + l.b)
	return l.lo + (l.hi-l.lo)*(p-0.05)/0.9
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func dot(w, x []float64) float64 {
	var s float64
	for i := range w {
		if i < len(x) {
			s += w[i] * x[i]
		}
	}
	return s
}
