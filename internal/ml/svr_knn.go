package ml

import (
	"math"
	"sort"
)

// SVROptions configure the linear epsilon-insensitive support vector
// regressor trained by subgradient descent.
type SVROptions struct {
	// Epsilon is the insensitivity tube half-width on standardized targets
	// (default 0.1).
	Epsilon float64
	// C is the slack weight (default 1).
	C float64
	// Iters is the number of epochs (default 300).
	Iters int
	// LearningRate is the initial step size (default 0.1).
	LearningRate float64
}

// SVR is a linear ε-SVR: minimize ½|w|² + C·Σ max(0, |wᵀx+b − y| − ε).
// Targets are standardized internally.
type SVR struct {
	opts        SVROptions
	w           []float64
	b           float64
	yMean, yStd float64
	dim         int
}

// NewSVR returns an untrained SVR with defaults filled in.
func NewSVR(o SVROptions) *SVR {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.C <= 0 {
		o.C = 1
	}
	if o.Iters <= 0 {
		o.Iters = 300
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	return &SVR{opts: o}
}

// Name implements Regressor.
func (s *SVR) Name() string { return "SVR" }

// Fit implements Regressor.
func (s *SVR) Fit(x [][]float64, y []float64) error {
	d, err := checkXY(x, y)
	if err != nil {
		return err
	}
	s.dim = d
	n := len(x)
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var sd float64
	for _, v := range y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(n))
	if sd < 1e-12 {
		sd = 1
	}
	s.yMean, s.yStd = mean, sd

	s.w = make([]float64, d)
	s.b = 0
	lam := 1 / (s.opts.C * float64(n))
	for it := 0; it < s.opts.Iters; it++ {
		lr := s.opts.LearningRate / (1 + 0.05*float64(it))
		for i := 0; i < n; i++ {
			t := (y[i] - mean) / sd
			pred := dot(s.w, x[i]) + s.b
			r := pred - t
			var g float64
			switch {
			case r > s.opts.Epsilon:
				g = 1
			case r < -s.opts.Epsilon:
				g = -1
			}
			for j := 0; j < d; j++ {
				s.w[j] -= lr * (g*x[i][j] + lam*s.w[j])
			}
			s.b -= lr * g
		}
	}
	return nil
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	return (dot(s.w, x)+s.b)*s.yStd + s.yMean
}

// KNN is k-nearest-neighbor regression with inverse-distance weighting
// (the paper's "KNNAR").
type KNN struct {
	k int
	x [][]float64
	y []float64
}

// NewKNN returns an untrained KNN regressor; k ≤ 0 defaults to 5.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{k: k}
}

// Name implements Regressor.
func (k *KNN) Name() string { return "KNNAR" }

// Fit implements Regressor (memorizes the training set).
func (k *KNN) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	k.x = x
	k.y = y
	return nil
}

// Predict implements Regressor.
func (k *KNN) Predict(q []float64) float64 {
	type nb struct {
		d float64
		y float64
	}
	nbs := make([]nb, len(k.x))
	for i := range k.x {
		var d2 float64
		for j := range k.x[i] {
			if j < len(q) {
				dd := k.x[i][j] - q[j]
				d2 += dd * dd
			}
		}
		nbs[i] = nb{d: math.Sqrt(d2), y: k.y[i]}
	}
	sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
	kk := k.k
	if kk > len(nbs) {
		kk = len(nbs)
	}
	var num, den float64
	for i := 0; i < kk; i++ {
		w := 1 / (nbs[i].d + 1e-9)
		num += w * nbs[i].y
		den += w
	}
	return num / den
}
