package ml

import (
	"sort"

	"locat/internal/stat"
)

// GBRTOptions configure the gradient-boosted regression trees.
type GBRTOptions struct {
	// Trees is the boosting-round count (default 120).
	Trees int
	// MaxDepth is the per-tree depth (default 3).
	MaxDepth int
	// LearningRate is the shrinkage (default 0.1).
	LearningRate float64
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
}

// GBRT is gradient boosting with regression trees under squared loss.
type GBRT struct {
	opts  GBRTOptions
	base  float64
	trees []*tree
	dim   int
	// gains accumulates total squared-error reduction per feature across
	// all splits — the feature-importance measure.
	gains []float64
}

// NewGBRT returns an untrained GBRT with defaults filled in.
func NewGBRT(o GBRTOptions) *GBRT {
	if o.Trees <= 0 {
		o.Trees = 120
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	return &GBRT{opts: o}
}

// Name implements Regressor.
func (g *GBRT) Name() string { return "GBRT" }

// Fit implements Regressor.
func (g *GBRT) Fit(x [][]float64, y []float64) error {
	d, err := checkXY(x, y)
	if err != nil {
		return err
	}
	g.dim = d
	g.gains = make([]float64, d)
	g.base = stat.Mean(y)
	g.trees = g.trees[:0]

	resid := make([]float64, len(y))
	for i := range y {
		resid[i] = y[i] - g.base
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < g.opts.Trees; t++ {
		tr := buildTree(x, resid, idx, g.opts.MaxDepth, g.opts.MinLeaf, g.gains)
		if tr == nil {
			break
		}
		g.trees = append(g.trees, tr)
		for i := range resid {
			resid[i] -= g.opts.LearningRate * tr.predict(x[i])
		}
	}
	return nil
}

// Predict implements Regressor.
func (g *GBRT) Predict(x []float64) float64 {
	out := g.base
	for _, tr := range g.trees {
		out += g.opts.LearningRate * tr.predict(x)
	}
	return out
}

// FeatureImportance returns per-feature importances (split-gain totals,
// normalized to sum to 1). Zero-length before Fit.
func (g *GBRT) FeatureImportance() []float64 {
	out := make([]float64, len(g.gains))
	var total float64
	for _, v := range g.gains {
		total += v
	}
	if total <= 0 {
		return out
	}
	for i, v := range g.gains {
		out[i] = v / total
	}
	return out
}

// tree is a binary regression tree over float features.
type tree struct {
	feature     int
	threshold   float64
	left, right *tree
	value       float64
	leaf        bool
}

func (t *tree) predict(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// buildTree greedily grows a depth-limited regression tree on the subset
// idx, accumulating split gains into gains (indexed by feature).
func buildTree(x [][]float64, y []float64, idx []int, depth, minLeaf int, gains []float64) *tree {
	if len(idx) == 0 {
		return nil
	}
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	mean := sum / float64(len(idx))
	if depth == 0 || len(idx) < 2*minLeaf {
		return &tree{leaf: true, value: mean}
	}

	bestGain := 0.0
	bestFeat, bestIdx := -1, -1
	var order []int
	bestOrder := make([]int, len(idx))
	d := len(x[0])

	order = append(order[:0], idx...)
	for f := 0; f < d; f++ {
		fc := f
		sort.Slice(order, func(a, b int) bool { return x[order[a]][fc] < x[order[b]][fc] })
		// Prefix sums for O(n) split scan.
		var lsum float64
		var lcnt int
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lsum += y[i]
			lcnt++
			if lcnt < minLeaf || len(order)-lcnt < minLeaf {
				continue
			}
			if x[order[k]][f] == x[order[k+1]][f] {
				continue // cannot split between equal values
			}
			rsum := sum - lsum
			rcnt := len(order) - lcnt
			gain := lsum*lsum/float64(lcnt) + rsum*rsum/float64(rcnt) - sum*sum/float64(len(order))
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestIdx = k
				copy(bestOrder, order)
			}
		}
	}
	if bestFeat < 0 {
		return &tree{leaf: true, value: mean}
	}
	gains[bestFeat] += bestGain

	thr := (x[bestOrder[bestIdx]][bestFeat] + x[bestOrder[bestIdx+1]][bestFeat]) / 2
	left := append([]int(nil), bestOrder[:bestIdx+1]...)
	right := append([]int(nil), bestOrder[bestIdx+1:]...)
	lt := buildTree(x, y, left, depth-1, minLeaf, gains)
	rt := buildTree(x, y, right, depth-1, minLeaf, gains)
	if lt == nil || rt == nil {
		return &tree{leaf: true, value: mean}
	}
	return &tree{feature: bestFeat, threshold: thr, left: lt, right: rt}
}
