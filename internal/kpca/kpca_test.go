package kpca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int, rng *rand.Rand) [][]float64 {
	// Points on a noisy circle: 1-dimensional manifold in 2D that linear PCA
	// cannot unfold but KPCA separates by radius.
	out := make([][]float64, n)
	for i := range out {
		theta := rng.Float64() * 2 * math.Pi
		r := 1 + rng.NormFloat64()*0.02
		out[i] = []float64{r * math.Cos(theta), r * math.Sin(theta)}
	}
	return out
}

func TestKernelEval(t *testing.T) {
	a, b := []float64{0, 0}, []float64{1, 0}
	g := Kernel{Kind: Gaussian, Gamma: 1}
	if math.Abs(g.Eval(a, b)-math.Exp(-1)) > 1e-12 {
		t.Fatal("gaussian kernel wrong")
	}
	if g.Eval(a, a) != 1 {
		t.Fatal("gaussian self-similarity should be 1")
	}
	p := Kernel{Kind: Perceptron}
	if math.Abs(p.Eval(a, b)+1) > 1e-12 {
		t.Fatal("perceptron kernel wrong")
	}
	poly := Kernel{Kind: Polynomial, Degree: 2}
	if math.Abs(poly.Eval([]float64{1, 1}, []float64{2, 0})-9) > 1e-12 {
		t.Fatal("polynomial kernel wrong: (2+1)^2 = 9")
	}
	// Default degree 3, default gamma 1/d.
	poly0 := Kernel{Kind: Polynomial}
	if math.Abs(poly0.Eval([]float64{1}, []float64{1})-8) > 1e-12 {
		t.Fatal("default polynomial degree should be 3")
	}
	if Gaussian.String() != "gaussian" || Perceptron.String() != "perceptron" || Polynomial.String() != "polynomial" {
		t.Fatal("KernelKind.String wrong")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Kernel{Kind: Gaussian}, Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit([][]float64{{1}}, Kernel{Kind: Gaussian}, Options{}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, Kernel{Kind: Gaussian}, Options{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestComponentsOrderedAndPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := ring(40, rng)
	p, err := Fit(x, Kernel{Kind: Gaussian, Gamma: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Eigenvalues()
	if len(ev) == 0 {
		t.Fatal("no components kept")
	}
	for i, l := range ev {
		if l <= 0 {
			t.Fatalf("eigenvalue %d = %v; want > 0", i, l)
		}
		if i > 0 && l > ev[i-1]+1e-9 {
			t.Fatal("eigenvalues not descending")
		}
	}
	if p.NumComponents() != len(ev) {
		t.Fatal("NumComponents mismatch")
	}
}

func TestMaxComponentsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := ring(30, rng)
	p, err := Fit(x, Kernel{Kind: Gaussian, Gamma: 2}, Options{MaxComponents: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumComponents() != 3 {
		t.Fatalf("NumComponents = %d; want 3", p.NumComponents())
	}
}

func TestTransformSeparatesClusters(t *testing.T) {
	// Two Gaussian blobs: the first KPCA component must separate them.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	labels := make([]int, 0, 40)
	for i := 0; i < 20; i++ {
		x = append(x, []float64{rng.NormFloat64()*0.05 + 0.2, rng.NormFloat64()*0.05 + 0.2})
		labels = append(labels, 0)
		x = append(x, []float64{rng.NormFloat64()*0.05 + 0.8, rng.NormFloat64()*0.05 + 0.8})
		labels = append(labels, 1)
	}
	p, err := Fit(x, Kernel{Kind: Gaussian, Gamma: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var m0, m1 float64
	var n0, n1 int
	for i := range x {
		c := p.Transform(x[i])[0]
		if labels[i] == 0 {
			m0 += c
			n0++
		} else {
			m1 += c
			n1++
		}
	}
	m0 /= float64(n0)
	m1 /= float64(n1)
	if math.Abs(m0-m1) < 0.5 {
		t.Fatalf("first component does not separate blobs: %v vs %v", m0, m1)
	}
}

func TestTransformConsistentWithTraining(t *testing.T) {
	// Projecting a training point through Transform must agree with the
	// eigendecomposition-based coordinates (centered Gram × alpha).
	rng := rand.New(rand.NewSource(4))
	x := ring(25, rng)
	p, err := Fit(x, Kernel{Kind: Gaussian, Gamma: 2}, Options{MaxComponents: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Projections of training points should reproduce pairwise distances in
	// component space reasonably: identical points → identical projections.
	a := p.Transform(x[0])
	b := p.Transform(append([]float64(nil), x[0]...))
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("Transform not deterministic")
		}
	}
}

func TestPreImageRoundTrip(t *testing.T) {
	// For points on the training manifold, PreImage(Transform(x)) should
	// return something close to x (Gaussian kernel).
	rng := rand.New(rand.NewSource(5))
	x := ring(60, rng)
	p, err := Fit(x, Kernel{Kind: Gaussian, Gamma: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 10; i++ {
		z := p.PreImage(p.Transform(x[i]))
		var d float64
		for j := range z {
			dd := z[j] - x[i][j]
			d += dd * dd
		}
		d = math.Sqrt(d)
		if d > worst {
			worst = d
		}
	}
	if worst > 0.35 {
		t.Fatalf("pre-image reconstruction error %v too large", worst)
	}
}

func TestPreImagePanicsOnBadDim(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, err := Fit(ring(20, rng), Kernel{Kind: Gaussian, Gamma: 2}, Options{MaxComponents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.PreImage([]float64{1, 2, 3})
}

func TestNonGaussianKernelsFitAndTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := ring(25, rng)
	for _, k := range []Kernel{{Kind: Perceptron}, {Kind: Polynomial}} {
		p, err := Fit(x, k, Options{})
		if err != nil {
			t.Fatalf("%v: %v", k.Kind, err)
		}
		if p.NumComponents() == 0 {
			t.Fatalf("%v: no components", k.Kind)
		}
		out := p.Transform(x[0])
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: bad projection %v", k.Kind, out)
			}
		}
		// Pre-image fallback path must return a finite point of input dim.
		z := p.PreImage(out)
		if len(z) != 2 {
			t.Fatalf("%v: preimage dim %d", k.Kind, len(z))
		}
	}
}

// Property: the kept-component count under the relative-eigenvalue rule
// stabilizes as sample count grows (the Figure 9 phenomenon): counts at
// n=40 and n=60 from the same distribution differ by at most a few.
func TestComponentCountStabilizes(t *testing.T) {
	count := func(n int, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		x := make([][]float64, n)
		for i := range x {
			// 3-dimensional latent structure embedded in 6 dims.
			a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
			x[i] = []float64{a, b, c, a + 0.1*b, b - 0.2*c, a * c}
		}
		p, err := Fit(x, Kernel{Kind: Gaussian}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p.NumComponents()
	}
	c40 := count(40, 1)
	c60 := count(60, 2)
	if diff := c40 - c60; diff < -4 || diff > 4 {
		t.Fatalf("component count unstable: n=40 → %d, n=60 → %d", c40, c60)
	}
}

// Property: transforms are finite for arbitrary query points.
func TestTransformFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, err := Fit(ring(30, rng), Kernel{Kind: Gaussian, Gamma: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Clamp to a sane box.
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		for _, v := range p.Transform([]float64{a, b}) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
