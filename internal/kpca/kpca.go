// Package kpca implements Kernel Principal Component Analysis — the
// configuration-parameter extraction (CPE) step of LOCAT's IICP (paper
// Section 3.3.2). Three kernels are provided, matching the paper's Figure 6
// comparison: Gaussian (the one LOCAT adopts), perceptron and polynomial.
//
// Fit centers the kernel Gram matrix in feature space, eigendecomposes it,
// and keeps the leading components by a relative-eigenvalue rule; Transform
// projects new points onto the kept components; PreImage approximately maps
// component-space points back to input space by the fixed-point iteration of
// Mika et al. (1998), which is how the tuner derives original configuration
// values from the extracted parameters after BO converges.
package kpca

import (
	"errors"
	"fmt"
	"math"

	"locat/internal/mat"
)

// KernelKind selects the KPCA kernel.
type KernelKind int

const (
	// Gaussian is k(a,b) = exp(-γ·|a-b|²) — the kernel the paper selects
	// (Figure 6).
	Gaussian KernelKind = iota
	// Perceptron is the (conditionally positive definite) kernel
	// k(a,b) = -|a-b|.
	Perceptron
	// Polynomial is k(a,b) = (aᵀb + 1)³.
	Polynomial
)

// String returns the kernel name.
func (k KernelKind) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Perceptron:
		return "perceptron"
	case Polynomial:
		return "polynomial"
	}
	return "unknown"
}

// Kernel is a configured KPCA kernel.
type Kernel struct {
	Kind KernelKind
	// Gamma is the Gaussian bandwidth; ≤0 selects 1/d (d = input dim).
	Gamma float64
	// Degree is the polynomial degree; ≤0 selects 3.
	Degree int
}

// Eval computes k(a, b).
func (k Kernel) Eval(a, b []float64) float64 {
	switch k.Kind {
	case Gaussian:
		g := k.Gamma
		if g <= 0 {
			g = 1 / float64(len(a))
		}
		var d2 float64
		for i := range a {
			d := a[i] - b[i]
			d2 += d * d
		}
		return math.Exp(-g * d2)
	case Perceptron:
		var d2 float64
		for i := range a {
			d := a[i] - b[i]
			d2 += d * d
		}
		return -math.Sqrt(d2)
	case Polynomial:
		deg := k.Degree
		if deg <= 0 {
			deg = 3
		}
		var dot float64
		for i := range a {
			dot += a[i] * b[i]
		}
		return math.Pow(dot+1, float64(deg))
	}
	panic(fmt.Sprintf("kpca: unknown kernel %d", k.Kind))
}

// KPCA is a fitted kernel PCA model.
type KPCA struct {
	kernel  Kernel
	x       [][]float64
	alphas  *mat.Dense // n × m, column j = normalized eigenvector of component j
	lambdas []float64  // kept eigenvalues (descending)
	rowMean []float64  // per-row mean of the uncentered Gram matrix
	allMean float64    // grand mean of the uncentered Gram matrix
}

// Options control component selection.
type Options struct {
	// MaxComponents caps the number of kept components (0 = no cap).
	MaxComponents int
	// MinEigenFrac keeps components whose eigenvalue is at least this
	// fraction of the total positive spectrum (default 0.02). The relative
	// rule makes the kept-component count stabilize as samples grow, which
	// is what the paper observes when calibrating N_IICP (Figure 9).
	MinEigenFrac float64
}

// Fit computes kernel PCA over the rows of x.
func Fit(x [][]float64, kernel Kernel, opts Options) (*KPCA, error) {
	n := len(x)
	if n < 2 {
		return nil, errors.New("kpca: need at least 2 samples")
	}
	d := len(x[0])
	for i := range x {
		if len(x[i]) != d {
			return nil, fmt.Errorf("kpca: row %d has %d features, want %d", i, len(x[i]), d)
		}
	}
	if opts.MinEigenFrac <= 0 {
		opts.MinEigenFrac = 0.02
	}

	// Uncentered Gram matrix, assembled row-parallel. The lower triangle is
	// ragged (row i holds i+1 entries), so each range unit processes the
	// complementary row pair (i, n-1-i) to keep worker loads even; writes
	// are disjoint per pair, so the result is deterministic.
	k := mat.NewDense(n, n, nil)
	half := (n + 1) / 2
	mat.ParRange(half, 0, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			rows := [2]int{u, n - 1 - u}
			for ri, i := range rows {
				if ri == 1 && i == rows[0] { // odd n: the middle row pairs with itself
					continue
				}
				for j := 0; j <= i; j++ {
					v := kernel.Eval(x[i], x[j])
					k.Set(i, j, v)
					k.Set(j, i, v)
				}
			}
		}
	})
	// Row means and grand mean for double centering:
	// K̃ = K - 1ₙK - K1ₙ + 1ₙK1ₙ.
	rowMean := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += k.At(i, j)
		}
		rowMean[i] = s / float64(n)
	}
	var allMean float64
	for _, rm := range rowMean {
		allMean += rm
	}
	allMean /= float64(n)
	// Double-center in place — the Gram matrix itself becomes K̃, dropping
	// the n×n copy the old path allocated.
	mat.ParRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := k.RowView(i)
			for j := range row {
				row[j] -= rowMean[i] + rowMean[j] - allMean
			}
		}
	})

	eig, err := mat.SymEigen(k)
	if err != nil {
		return nil, err
	}

	// Total positive spectrum.
	var total float64
	for _, l := range eig.Values {
		if l > 0 {
			total += l
		}
	}
	if total <= 0 {
		return nil, errors.New("kpca: degenerate kernel matrix (no positive eigenvalues)")
	}

	var kept []int
	for i, l := range eig.Values {
		if l <= 0 {
			continue
		}
		if l/total < opts.MinEigenFrac {
			continue
		}
		kept = append(kept, i)
		if opts.MaxComponents > 0 && len(kept) >= opts.MaxComponents {
			break
		}
	}
	if len(kept) == 0 {
		kept = []int{0}
	}

	alphas := mat.NewDense(n, len(kept), nil)
	lambdas := make([]float64, len(kept))
	col := make([]float64, n) // one reusable eigenvector buffer for all components
	for j, idx := range kept {
		lambdas[j] = eig.Values[idx]
		// Normalize so that λ·αᵀα = 1 (unit-norm feature-space components).
		scale := 1 / math.Sqrt(eig.Values[idx])
		eig.Vectors.ColInto(idx, col)
		for i := 0; i < n; i++ {
			alphas.Set(i, j, col[i]*scale)
		}
	}

	return &KPCA{
		kernel:  kernel,
		x:       x,
		alphas:  alphas,
		lambdas: lambdas,
		rowMean: rowMean,
		allMean: allMean,
	}, nil
}

// NumComponents returns the number of kept principal components.
func (p *KPCA) NumComponents() int { return len(p.lambdas) }

// Eigenvalues returns the kept eigenvalues in descending order (a copy).
func (p *KPCA) Eigenvalues() []float64 { return append([]float64(nil), p.lambdas...) }

// Transform projects x onto the kept components.
func (p *KPCA) Transform(x []float64) []float64 {
	n := len(p.x)
	kx := make([]float64, n)
	var kxMean float64
	for i := range p.x {
		kx[i] = p.kernel.Eval(p.x[i], x)
		kxMean += kx[i]
	}
	kxMean /= float64(n)
	// Center the test kernel vector consistently with the training Gram.
	kc := make([]float64, n)
	for i := range kx {
		kc[i] = kx[i] - p.rowMean[i] - kxMean + p.allMean
	}
	out := make([]float64, p.NumComponents())
	col := make([]float64, n)
	for j := range out {
		out[j] = mat.Dot(p.alphas.ColInto(j, col), kc)
	}
	return out
}

// PreImage approximately inverts Transform for the Gaussian kernel using the
// fixed-point iteration of Mika et al.: the pre-image z of a feature-space
// point is a kernel-weighted average of training inputs, iterated to a fixed
// point. For non-Gaussian kernels it falls back to the weighted average of
// the training points by component-space proximity.
func (p *KPCA) PreImage(y []float64) []float64 {
	if len(y) != p.NumComponents() {
		panic(fmt.Sprintf("kpca: PreImage got %d coords, want %d", len(y), p.NumComponents()))
	}
	n := len(p.x)
	d := len(p.x[0])

	// Projection coefficients of the target feature-space point onto the
	// training expansion: β_i = Σ_j y_j α_ij (plus centering terms folded
	// into the iteration below).
	beta := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := range y {
			s += p.alphas.At(i, j) * y[j]
		}
		beta[i] = s + 1.0/float64(n) // centering restores the mean component
	}

	// Initialize at the β-weighted mean of training points.
	z := make([]float64, d)
	var bsum float64
	for i := range beta {
		w := beta[i]
		if w < 0 {
			w = 0
		}
		bsum += w
		for j := 0; j < d; j++ {
			z[j] += w * p.x[i][j]
		}
	}
	if bsum > 1e-12 {
		for j := range z {
			z[j] /= bsum
		}
	}
	if p.kernel.Kind != Gaussian {
		return z
	}

	// Fixed-point refinement: z ← Σ β_i k(x_i,z) x_i / Σ β_i k(x_i,z).
	for it := 0; it < 30; it++ {
		var wsum float64
		zn := make([]float64, d)
		for i := range p.x {
			w := beta[i] * p.kernel.Eval(p.x[i], z)
			if w <= 0 {
				continue
			}
			wsum += w
			for j := 0; j < d; j++ {
				zn[j] += w * p.x[i][j]
			}
		}
		if wsum < 1e-12 {
			break
		}
		var moved float64
		for j := range zn {
			zn[j] /= wsum
			moved += math.Abs(zn[j] - z[j])
		}
		z = zn
		if moved < 1e-9 {
			break
		}
	}
	return z
}
