// Package iicp implements Identification of Important Configuration
// Parameters — the second of LOCAT's three techniques (paper Section 3.3).
// It is the paper's hybrid of feature selection and feature extraction:
//
//   - CPS (configuration parameter selection) computes the Spearman
//     correlation coefficient between each parameter's value and the
//     observed execution time across N_IICP sampled runs, and drops
//     parameters with |SCC| < 0.2 (the standard poor-correlation boundary).
//   - CPE (configuration parameter extraction) runs kernel PCA with the
//     Gaussian kernel (the winner of the paper's Figure 6 comparison) over
//     the CPS-selected parameters and keeps the leading nonlinear
//     components.
//
// The kept-component count is CPE's estimate of how many independent
// directions of the configuration space drive performance; the important
// original parameters handed to Bayesian optimization are the equally many
// strongest CPS correlates (this realizes the "derive the values of the
// original configuration parameters from the new parameters" step of
// Section 3.3.2 — the kpca package's PreImage offers the fixed-point
// pre-image alternative, compared in an ablation bench).
package iicp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"locat/internal/conf"
	"locat/internal/kpca"
	"locat/internal/stat"
)

// Sample is one observed execution: a configuration and its latency.
type Sample struct {
	// Conf is the full 38-parameter configuration.
	Conf conf.Config
	// Sec is the observed application (or RQA) latency.
	Sec float64
}

// Options control the analysis.
type Options struct {
	// SCCCutoff is the |Spearman| threshold below which a parameter is
	// dropped by CPS (paper: 0.2).
	SCCCutoff float64
	// Kernel is the CPE kernel (default Gaussian, per Figure 6).
	Kernel kpca.Kernel
	// MaxComponents caps the CPE component count (0 = no cap).
	MaxComponents int
	// MinEigenFrac is the relative-eigenvalue keep rule passed to KPCA
	// (default 0.012, which yields ≈15 components for TPC-DS at
	// N_IICP = 20, matching the paper's Figure 10).
	MinEigenFrac float64
}

// DefaultOptions mirror the paper.
func DefaultOptions() Options {
	return Options{SCCCutoff: 0.2, Kernel: kpca.Kernel{Kind: kpca.Gaussian}, MinEigenFrac: 0.012}
}

// ParamScore is one parameter's CPS record.
type ParamScore struct {
	// Index is the parameter index (conf.P* constants).
	Index int
	// Name is the Spark property key.
	Name string
	// SCC is the Spearman correlation between the parameter and latency.
	SCC float64
}

// Result is the outcome of IICP.
type Result struct {
	// Scores holds every parameter's SCC, sorted by |SCC| descending.
	Scores []ParamScore
	// Selected are the CPS-surviving parameter indices (|SCC| ≥ cutoff),
	// ordered by |SCC| descending.
	Selected []int
	// KPCA is the fitted CPE model over the selected parameter columns
	// (encoded to the unit cube).
	KPCA *kpca.KPCA
	// Important are the original-parameter indices attributed to the kept
	// KPCA components, in component order — the set BO tunes.
	Important []int
}

// Analyze runs CPS then CPE on the samples. The paper determines
// N_IICP = 20 empirically (Section 5.3); Analyze accepts any count ≥ 4.
func Analyze(space *conf.Space, samples []Sample, opts Options) (*Result, error) {
	if len(samples) < 4 {
		return nil, errors.New("iicp: need at least 4 samples")
	}
	if opts.SCCCutoff <= 0 {
		opts.SCCCutoff = 0.2
	}
	n := len(samples)
	d := space.Dim()

	// Encode all configurations once.
	enc := make([][]float64, n)
	times := make([]float64, n)
	for i, s := range samples {
		if len(s.Conf) != d {
			return nil, fmt.Errorf("iicp: sample %d has %d parameters, want %d", i, len(s.Conf), d)
		}
		enc[i] = space.Encode(s.Conf)
		times[i] = s.Sec
	}

	// CPS: Spearman of each parameter column against latency.
	res := &Result{}
	params := conf.Params()
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			col[i] = enc[i][j]
		}
		res.Scores = append(res.Scores, ParamScore{
			Index: j,
			Name:  params[j].Name,
			SCC:   stat.Spearman(col, times),
		})
	}
	sort.SliceStable(res.Scores, func(a, b int) bool {
		return math.Abs(res.Scores[a].SCC) > math.Abs(res.Scores[b].SCC)
	})
	for _, s := range res.Scores {
		if math.Abs(s.SCC) >= opts.SCCCutoff {
			res.Selected = append(res.Selected, s.Index)
		}
	}
	if len(res.Selected) == 0 {
		// Degenerate data: keep the single best-correlated parameter so the
		// tuner always has something to tune.
		res.Selected = []int{res.Scores[0].Index}
	}

	// CPE: kernel PCA over the selected columns.
	sub := make([][]float64, n)
	for i := range enc {
		row := make([]float64, len(res.Selected))
		for k, j := range res.Selected {
			row[k] = enc[i][j]
		}
		sub[i] = row
	}
	if opts.MinEigenFrac <= 0 {
		opts.MinEigenFrac = 0.012
	}
	k, err := kpca.Fit(sub, opts.Kernel, kpca.Options{
		MaxComponents: opts.MaxComponents,
		MinEigenFrac:  opts.MinEigenFrac,
	})
	if err != nil {
		return nil, fmt.Errorf("iicp: CPE failed: %w", err)
	}
	res.KPCA = k

	// The kept-component count is CPE's estimate of the number of
	// independent directions that matter; the important original parameters
	// are the equally many strongest CPS correlates. (KPCA is unsupervised:
	// attributing components directly to parameters by component-score
	// correlation reflects the sampling distribution, not the response, and
	// demotes the true drivers — the count is the robust signal.)
	nimp := k.NumComponents()
	if nimp > len(res.Selected) {
		nimp = len(res.Selected)
	}
	res.Important = append([]int(nil), res.Selected[:nimp]...)
	return res, nil
}

// TopParams returns the k most important parameter names by |SCC| — the
// CPS ranking the paper reports in Table 3.
func (r *Result) TopParams(k int) []string {
	if k > len(r.Scores) {
		k = len(r.Scores)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = r.Scores[i].Name
	}
	return out
}

// NumSelected returns the CPS-selected parameter count (Figure 10, "CPS").
func (r *Result) NumSelected() int { return len(r.Selected) }

// NumImportant returns the CPE-extracted important-parameter count
// (Figure 10, "CPE"; Figure 9's stabilizing count).
func (r *Result) NumImportant() int { return len(r.Important) }
