package iicp

import (
	"math"
	"math/rand"
	"testing"

	"locat/internal/conf"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// collect returns n (config, latency) samples of the TPC-DS application at
// the given size.
func collect(t *testing.T, n int, dataGB float64, seed int64) (*conf.Space, []Sample) {
	t.Helper()
	cl := sparksim.ARM()
	sim := sparksim.New(cl, seed)
	space := cl.Space()
	app := workloads.TPCDS()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		c := space.Random(rng)
		out = append(out, Sample{Conf: c, Sec: sim.RunApp(app, c, dataGB).Sec})
	}
	return space, out
}

func TestAnalyzeErrors(t *testing.T) {
	space, samples := collect(t, 5, 100, 1)
	if _, err := Analyze(space, samples[:2], DefaultOptions()); err == nil {
		t.Fatal("too-few samples accepted")
	}
	bad := append([]Sample(nil), samples...)
	bad[0].Conf = bad[0].Conf[:5]
	if _, err := Analyze(space, bad, DefaultOptions()); err == nil {
		t.Fatal("short config accepted")
	}
}

func TestCPSReducesAndCPEExtractsFurther(t *testing.T) {
	space, samples := collect(t, 20, 100, 2)
	res, err := Analyze(space, samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != conf.NumParams {
		t.Fatalf("got %d scores", len(res.Scores))
	}
	// Figure 10 shape: CPS keeps a strict subset (≈2/3 of 38), CPE extracts
	// fewer still.
	if res.NumSelected() >= conf.NumParams || res.NumSelected() < 8 {
		t.Fatalf("CPS selected %d params; want a meaningful subset of 38", res.NumSelected())
	}
	if res.NumImportant() >= res.NumSelected() && res.NumSelected() > 4 {
		t.Fatalf("CPE (%d) did not reduce below CPS (%d)", res.NumImportant(), res.NumSelected())
	}
	if res.NumImportant() < 4 || res.NumImportant() > 20 {
		t.Fatalf("CPE extracted %d; want ≈8–16 (paper: 15 for TPC-DS)", res.NumImportant())
	}
	// All selected must clear the cutoff, all important must be selected.
	scoreOf := map[int]float64{}
	for _, s := range res.Scores {
		scoreOf[s.Index] = s.SCC
	}
	sel := map[int]bool{}
	for _, j := range res.Selected {
		if math.Abs(scoreOf[j]) < 0.2 {
			t.Fatalf("selected param %d has |SCC| %v < 0.2", j, scoreOf[j])
		}
		sel[j] = true
	}
	seen := map[int]bool{}
	for _, j := range res.Important {
		if !sel[j] {
			t.Fatalf("important param %d not CPS-selected", j)
		}
		if seen[j] {
			t.Fatalf("important param %d repeated", j)
		}
		seen[j] = true
	}
}

func TestShufflePartitionsTopRanked(t *testing.T) {
	// Table 3: spark.sql.shuffle.partitions ranks among the most important
	// parameters at every data size; memory/executor parameters populate
	// the top of the list. (With the paper's N_IICP = 20 the Spearman
	// estimates carry ±0.23 of sampling noise, so the membership check uses
	// a larger sample and the top eight.)
	space, samples := collect(t, 60, 100, 3)
	res, err := Analyze(space, samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopParams(8)
	found := false
	for _, n := range top {
		if n == "spark.sql.shuffle.partitions" {
			found = true
		}
	}
	if !found {
		t.Fatalf("shuffle.partitions not in top-8: %v", top)
	}
	// The important set must include at least one memory-related and one
	// parallelism-related parameter.
	names := map[string]bool{}
	params := conf.Params()
	for _, j := range res.Important {
		names[params[j].Name] = true
	}
	mem := names["spark.executor.memory"] || names["spark.memory.offHeap.size"] ||
		names["spark.memory.fraction"] || names["spark.memory.storageFraction"] ||
		names["spark.executor.memoryOverhead"] || names["spark.memory.offHeap.enabled"]
	par := names["spark.sql.shuffle.partitions"] || names["spark.executor.instances"] ||
		names["spark.executor.cores"]
	if !mem || !par {
		t.Fatalf("important set misses memory (%v) or parallelism (%v): %v", mem, par, names)
	}
}

func TestImportantCountStabilizes(t *testing.T) {
	// Figure 9: the identified-important count flattens for N_IICP ≥ 20.
	space, samples := collect(t, 50, 100, 4)
	at := func(n int) int {
		res, err := Analyze(space, samples[:n], DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.NumImportant()
	}
	c20, c35, c50 := at(20), at(35), at(50)
	if d := c20 - c35; d < -5 || d > 5 {
		t.Fatalf("count unstable 20→35: %d vs %d", c20, c35)
	}
	if d := c35 - c50; d < -5 || d > 5 {
		t.Fatalf("count unstable 35→50: %d vs %d", c35, c50)
	}
}

func TestTopParamsBounds(t *testing.T) {
	space, samples := collect(t, 10, 100, 5)
	res, err := Analyze(space, samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TopParams(1000); len(got) != conf.NumParams {
		t.Fatalf("TopParams(1000) returned %d", len(got))
	}
	if got := res.TopParams(3); len(got) != 3 {
		t.Fatalf("TopParams(3) returned %d", len(got))
	}
}

func TestDefaultCutoffApplied(t *testing.T) {
	space, samples := collect(t, 20, 100, 6)
	res, err := Analyze(space, samples, Options{Kernel: DefaultOptions().Kernel})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSelected() == 0 {
		t.Fatal("zero selection under default cutoff")
	}
}
