package workloads

import (
	"fmt"

	"locat/internal/sparksim"
)

// tpchHeavy pins the shuffle-heavy TPC-H queries: the deep multi-join
// queries over lineitem/orders (Q5, Q7, Q8, Q9, Q17, Q18, Q21) dominate the
// benchmark's configuration sensitivity.
var tpchHeavy = map[string]sparksim.Query{
	"Q05": {Class: sparksim.Join, InputFrac: 0.72, ShuffleFrac: 0.52, Stages: 5, SmallTableMB: 900, CPUWeight: 1.9, Skew: 0.25},
	"Q07": {Class: sparksim.Join, InputFrac: 0.68, ShuffleFrac: 0.48, Stages: 4, SmallTableMB: 700, CPUWeight: 1.8, Skew: 0.22},
	"Q08": {Class: sparksim.Join, InputFrac: 0.75, ShuffleFrac: 0.50, Stages: 5, SmallTableMB: 850, CPUWeight: 2.0, Skew: 0.24},
	"Q09": {Class: sparksim.Join, InputFrac: 0.85, ShuffleFrac: 0.62, Stages: 5, SmallTableMB: 1200, CPUWeight: 2.3, Skew: 0.35},
	"Q17": {Class: sparksim.Join, InputFrac: 0.66, ShuffleFrac: 0.45, Stages: 3, SmallTableMB: 500, CPUWeight: 1.6, Skew: 0.20},
	"Q18": {Class: sparksim.Aggregation, InputFrac: 0.80, ShuffleFrac: 0.58, Stages: 4, CPUWeight: 2.1, Skew: 0.30},
	"Q21": {Class: sparksim.Join, InputFrac: 0.78, ShuffleFrac: 0.55, Stages: 5, SmallTableMB: 950, CPUWeight: 2.2, Skew: 0.32},
}

// tpchLight pins the scan-dominated queries.
var tpchLight = map[string]sparksim.Query{
	// Q1: full lineitem scan with a tiny group-by (4 groups).
	"Q01": {Class: sparksim.Aggregation, InputFrac: 0.72, ShuffleFrac: 0.0005, Stages: 2, CPUWeight: 1.3, Skew: 0.03},
	// Q6: pure selection.
	"Q06": {Class: sparksim.Selection, InputFrac: 0.72, ShuffleFrac: 0.0001, Stages: 1, CPUWeight: 0.8, Skew: 0.02},
}

// TPCH returns the 22-query TPC-H application profile.
func TPCH() *sparksim.Application {
	app := &sparksim.Application{Name: "TPC-H"}
	for i := 1; i <= 22; i++ {
		name := fmt.Sprintf("Q%02d", i)
		var q sparksim.Query
		switch {
		case tpchHeavy[name].Stages != 0:
			q = tpchHeavy[name]
		case tpchLight[name].Stages != 0:
			q = tpchLight[name]
		default:
			h := hashFloats("tpch-"+name, 6)
			class := sparksim.Join
			if h[5] < 0.4 {
				class = sparksim.Aggregation
			}
			q = sparksim.Query{
				Class:       class,
				InputFrac:   lerp(0.08, 0.35, h[0]),
				ShuffleFrac: lerp(0.004, 0.05, h[1]*h[1]),
				Stages:      2 + int(h[2]*2),
				CPUWeight:   lerp(0.9, 1.5, h[3]),
				Skew:        lerp(0.02, 0.12, h[4]),
			}
			if class == sparksim.Join {
				q.SmallTableMB = lerp(0.3, 25, h[4])
				q.DimSmall = true
			}
		}
		q.Name = name
		if q.FixedSec == 0 {
			q.FixedSec = 1.0
		}
		app.Queries = append(app.Queries, q)
	}
	return app
}
