package workloads

import "locat/internal/sparksim"

// HiBenchJoin returns the HiBench Join workload: a single two-phase
// (Map + Reduce) join query over the full uservisits/rankings dataset.
func HiBenchJoin() *sparksim.Application {
	return &sparksim.Application{
		Name: "Join",
		Queries: []sparksim.Query{{
			Name:         "join",
			Class:        sparksim.Join,
			InputFrac:    1.0,
			ShuffleFrac:  0.55,
			Stages:       3,
			SmallTableMB: 12000, // rankings side scales with the dataset
			CPUWeight:    1.8,
			Skew:         0.30,
			FixedSec:     1.0,
		}},
	}
}

// HiBenchScan returns the HiBench Scan workload: a single Map-only
// "select" over the full dataset — the canonical configuration-insensitive
// query (bounded by aggregate disk bandwidth).
func HiBenchScan() *sparksim.Application {
	return &sparksim.Application{
		Name: "Scan",
		Queries: []sparksim.Query{{
			Name:        "scan",
			Class:       sparksim.Selection,
			InputFrac:   1.0,
			ShuffleFrac: 0.0001,
			Stages:      1,
			CPUWeight:   0.9,
			Skew:        0.02,
			FixedSec:    1.0,
		}},
	}
}

// HiBenchAggregation returns the HiBench Aggregation workload: a single
// Map + Reduce "group by" over the full dataset.
func HiBenchAggregation() *sparksim.Application {
	return &sparksim.Application{
		Name: "Aggregation",
		Queries: []sparksim.Query{{
			Name:        "aggregation",
			Class:       sparksim.Aggregation,
			InputFrac:   1.0,
			ShuffleFrac: 0.38,
			Stages:      2,
			CPUWeight:   1.5,
			Skew:        0.20,
			FixedSec:    1.0,
		}},
	}
}
