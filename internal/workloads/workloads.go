// Package workloads defines the analytical query profiles of the three
// benchmark suites the paper evaluates on (Table 1): TPC-DS (104 queries),
// TPC-H (22 queries) and the three SQL workloads of HiBench (Join, Scan,
// Aggregation), each at input data sizes of 100–500 GB.
//
// Each query's profile (class, input fraction, shuffle fraction, join shape,
// CPU weight, skew) is derived from the structure of the public query text:
// 'selection'-category queries are scan-bound and configuration-insensitive,
// while deep join/aggregation queries shuffle large fractions of their input
// and respond strongly to partition, parallelism, memory and compression
// settings — the Section 5.11 taxonomy. Profiles for queries the paper
// discusses by name (Q72's 52 GB shuffle, Q08's 5 MB shuffle, Q04's long
// insensitive run, the 23 configuration-sensitive queries of Section 5.2,
// the 13 'selection' queries of Section 5.11) are pinned to match the
// paper's description; the remaining queries receive deterministic
// name-hashed profiles within their class's realistic range.
package workloads

import (
	"fmt"
	"hash/fnv"

	"locat/internal/sparksim"
)

// DataSizesGB are the input data sizes used throughout the evaluation
// (Table 1).
var DataSizesGB = []float64{100, 200, 300, 400, 500}

// Suites returns all five benchmark applications in the paper's order:
// TPC-DS, TPC-H, HiBench Join, Scan, Aggregation.
func Suites() []*sparksim.Application {
	return []*sparksim.Application{TPCDS(), TPCH(), HiBenchJoin(), HiBenchScan(), HiBenchAggregation()}
}

// ByName returns the named benchmark application. Recognized names (case
// sensitive): "TPC-DS", "TPC-H", "Join", "Scan", "Aggregation".
func ByName(name string) (*sparksim.Application, error) {
	switch name {
	case "TPC-DS":
		return TPCDS(), nil
	case "TPC-H":
		return TPCH(), nil
	case "Join":
		return HiBenchJoin(), nil
	case "Scan":
		return HiBenchScan(), nil
	case "Aggregation":
		return HiBenchAggregation(), nil
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// hashFloats returns n deterministic pseudo-random values in [0,1) derived
// from a string key — used to give unpinned queries stable, plausible
// profiles without a table of 104 hand-written rows.
func hashFloats(key string, n int) []float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	out := make([]float64, n)
	for i := range out {
		// xorshift* step
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		out[i] = float64((x*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	}
	return out
}

func lerp(lo, hi, t float64) float64 { return lo + (hi-lo)*t }
