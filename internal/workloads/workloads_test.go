package workloads

import (
	"math/rand"
	"sort"
	"testing"

	"locat/internal/sparksim"
	"locat/internal/stat"
)

func TestSuiteInventory(t *testing.T) {
	suites := Suites()
	if len(suites) != 5 {
		t.Fatalf("got %d suites; want 5 (Table 1)", len(suites))
	}
	wantNames := []string{"TPC-DS", "TPC-H", "Join", "Scan", "Aggregation"}
	wantQueries := []int{104, 22, 1, 1, 1}
	for i, app := range suites {
		if app.Name != wantNames[i] {
			t.Fatalf("suite %d = %q; want %q", i, app.Name, wantNames[i])
		}
		if len(app.Queries) != wantQueries[i] {
			t.Fatalf("%s has %d queries; want %d", app.Name, len(app.Queries), wantQueries[i])
		}
	}
	if len(DataSizesGB) != 5 || DataSizesGB[0] != 100 || DataSizesGB[4] != 500 {
		t.Fatalf("DataSizesGB = %v", DataSizesGB)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"TPC-DS", "TPC-H", "Join", "Scan", "Aggregation"} {
		app, err := ByName(n)
		if err != nil || app.Name != n {
			t.Fatalf("ByName(%q) = %v, %v", n, app, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestTPCDSNames(t *testing.T) {
	app := TPCDS()
	seen := map[string]bool{}
	for _, q := range app.Queries {
		if seen[q.Name] {
			t.Fatalf("duplicate query %s", q.Name)
		}
		seen[q.Name] = true
	}
	// The a/b variant pairs of the official 104-query set.
	for _, n := range []string{"Q14a", "Q14b", "Q23a", "Q23b", "Q24a", "Q24b", "Q39a", "Q39b", "Q64a", "Q64b"} {
		if !seen[n] {
			t.Fatalf("missing variant %s", n)
		}
	}
	if !seen["Q01"] || !seen["Q99"] {
		t.Fatal("missing boundary queries")
	}
}

func TestProfilesWellFormed(t *testing.T) {
	for _, app := range Suites() {
		for _, q := range app.Queries {
			if q.InputFrac <= 0 || q.InputFrac > 1 {
				t.Fatalf("%s/%s InputFrac %v", app.Name, q.Name, q.InputFrac)
			}
			if q.ShuffleFrac < 0 || q.ShuffleFrac > 1.3 {
				t.Fatalf("%s/%s ShuffleFrac %v", app.Name, q.Name, q.ShuffleFrac)
			}
			if q.Stages < 1 || q.Stages > 8 {
				t.Fatalf("%s/%s Stages %v", app.Name, q.Name, q.Stages)
			}
			if q.CPUWeight <= 0 || q.Skew < 0 || q.Skew >= 1 {
				t.Fatalf("%s/%s CPUWeight/Skew %v/%v", app.Name, q.Name, q.CPUWeight, q.Skew)
			}
			if q.Class == sparksim.Selection && q.Stages != 1 {
				t.Fatalf("%s/%s selection with %d stages", app.Name, q.Name, q.Stages)
			}
		}
	}
}

func TestSensitiveListMatchesProfiles(t *testing.T) {
	if len(SensitiveTPCDS) != 23 {
		t.Fatalf("len(SensitiveTPCDS) = %d; want 23 (Section 5.2)", len(SensitiveTPCDS))
	}
	app := TPCDS()
	byName := map[string]sparksim.Query{}
	for _, q := range app.Queries {
		byName[q.Name] = q
	}
	for _, n := range SensitiveTPCDS {
		q, ok := byName[n]
		if !ok {
			t.Fatalf("sensitive query %s not in TPC-DS", n)
		}
		if eff := q.InputFrac * q.ShuffleFrac; eff < 0.25 {
			t.Fatalf("%s effective shuffle fraction %v too small for a CSQ", n, eff)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := TPCDS(), TPCDS()
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("TPCDS() not deterministic at %s", a.Queries[i].Name)
		}
	}
	h1, h2 := hashFloats("x", 3), hashFloats("x", 3)
	for i := range h1 {
		if h1[i] != h2[i] || h1[i] < 0 || h1[i] >= 1 {
			t.Fatalf("hashFloats not stable/in-range: %v vs %v", h1, h2)
		}
	}
}

// TestQCSAShapeOnARM is the headline phenomenology check: CV analysis over
// 30 random configurations at 100 GB must (a) rank Q72 at the top with
// CV ≈ 3.5, (b) give Q04 a small CV despite its long runtime, and (c) keep
// approximately the paper's 23 sensitive queries under the CV
// three-partition rule.
func TestQCSAShapeOnARM(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 1)
	space := cl.Space()
	app := TPCDS()
	rng := rand.New(rand.NewSource(7))
	times := map[string][]float64{}
	for i := 0; i < 30; i++ {
		c := space.Random(rng)
		for _, qr := range sim.RunApp(app, c, 100).Queries {
			times[qr.Name] = append(times[qr.Name], qr.Sec)
		}
	}
	cvs := map[string]float64{}
	var all []float64
	for n, ts := range times {
		cvs[n] = stat.CV(ts)
		all = append(all, cvs[n])
	}
	sort.Float64s(all)
	maxCV, minCV := all[len(all)-1], all[0]
	if cvs["Q72"] != maxCV {
		t.Errorf("Q72 CV %v is not the maximum %v", cvs["Q72"], maxCV)
	}
	if cvs["Q72"] < 1.8 {
		t.Errorf("Q72 CV = %v; want > 1.8 (paper: 3.49)", cvs["Q72"])
	}
	if cvs["Q04"] > 0.45 {
		t.Errorf("Q04 CV = %v; want < 0.45 (paper: 0.24)", cvs["Q04"])
	}
	cut := minCV + (maxCV-minCV)/3
	kept := map[string]bool{}
	for n, cv := range cvs {
		if cv >= cut {
			kept[n] = true
		}
	}
	if len(kept) < 18 || len(kept) > 28 {
		t.Errorf("CV rule keeps %d queries; want ≈23", len(kept))
	}
	// The kept set must be dominated by the paper's sensitive list.
	match := 0
	for _, n := range SensitiveTPCDS {
		if kept[n] {
			match++
		}
	}
	if match < 20 {
		t.Errorf("only %d/23 of the paper's sensitive queries kept", match)
	}
}

func TestAppScaleSanity(t *testing.T) {
	// Total TPC-DS latency at 100 GB under the default configuration should
	// land in the paper's plausible range (minutes–hour, not seconds/days).
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 1, sparksim.WithNoise(0))
	total := sim.NoiselessAppTime(TPCDS(), cl.Space().Default(), 100)
	if total < 500 || total > 20000 {
		t.Fatalf("TPC-DS default total = %.0fs; want within [500, 20000]", total)
	}
	// HiBench Scan is a single disk-bound query.
	scan := sim.NoiselessAppTime(HiBenchScan(), cl.Space().Default(), 100)
	if scan < 10 || scan > 500 {
		t.Fatalf("Scan default total = %.0fs", scan)
	}
}

func TestTPCHHeavySubset(t *testing.T) {
	cl := sparksim.ARM()
	sim := sparksim.New(cl, 2)
	space := cl.Space()
	app := TPCH()
	rng := rand.New(rand.NewSource(9))
	times := map[string][]float64{}
	for i := 0; i < 30; i++ {
		c := space.Random(rng)
		for _, qr := range sim.RunApp(app, c, 100).Queries {
			times[qr.Name] = append(times[qr.Name], qr.Sec)
		}
	}
	// Heavy join queries must be clearly more sensitive than Q6 (selection).
	q6 := stat.CV(times["Q06"])
	for _, n := range []string{"Q09", "Q18", "Q21"} {
		if cv := stat.CV(times[n]); cv < 2*q6 {
			t.Errorf("%s CV %v not well above Q06 CV %v", n, cv, q6)
		}
	}
}
