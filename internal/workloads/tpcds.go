package workloads

import (
	"fmt"
	"sort"

	"locat/internal/sparksim"
)

// SensitiveTPCDS is the set of 23 configuration-sensitive TPC-DS queries the
// paper's QCSA retains (Section 5.2). QCSA should rediscover (approximately)
// this set from CV analysis.
var SensitiveTPCDS = []string{
	"Q72", "Q29", "Q14b", "Q43", "Q41", "Q99", "Q57", "Q33", "Q14a", "Q69",
	"Q40", "Q64a", "Q50", "Q21", "Q70", "Q95", "Q54", "Q23a", "Q23b", "Q15",
	"Q58", "Q62", "Q20",
}

// selectionTPCDS is the 'selection' category of Section 5.11: simple filter
// queries that consume few resources and are configuration-insensitive.
var selectionTPCDS = []string{
	"Q09", "Q13", "Q16", "Q28", "Q32", "Q38", "Q48", "Q61", "Q84", "Q87",
	"Q88", "Q94", "Q96",
}

// csqProfile pins the shuffle-heavy profile of each sensitive query.
// ShuffleFrac is relative to scanned bytes; Q72 scans ~60 % of the dataset
// and shuffles ~52 GB at 100 GB scale (Section 5.11).
var csqProfile = map[string]sparksim.Query{
	"Q72":  {Class: sparksim.Join, InputFrac: 0.61, ShuffleFrac: 0.85, Stages: 6, SmallTableMB: 9000, CPUWeight: 2.6, Skew: 0.45},
	"Q29":  {Class: sparksim.Join, InputFrac: 0.38, ShuffleFrac: 0.95, Stages: 5, SmallTableMB: 5200, CPUWeight: 2.1, Skew: 0.30},
	"Q14b": {Class: sparksim.Aggregation, InputFrac: 0.42, ShuffleFrac: 1.00, Stages: 5, CPUWeight: 2.4, Skew: 0.35},
	"Q14a": {Class: sparksim.Aggregation, InputFrac: 0.45, ShuffleFrac: 0.89, Stages: 5, CPUWeight: 2.3, Skew: 0.33},
	"Q43":  {Class: sparksim.Aggregation, InputFrac: 0.30, ShuffleFrac: 1.00, Stages: 3, CPUWeight: 1.6, Skew: 0.22},
	"Q41":  {Class: sparksim.Join, InputFrac: 0.30, ShuffleFrac: 1.00, Stages: 4, SmallTableMB: 3600, CPUWeight: 1.7, Skew: 0.25},
	"Q99":  {Class: sparksim.Aggregation, InputFrac: 0.30, ShuffleFrac: 1.05, Stages: 3, CPUWeight: 1.8, Skew: 0.28},
	"Q57":  {Class: sparksim.Aggregation, InputFrac: 0.30, ShuffleFrac: 1.00, Stages: 4, CPUWeight: 1.9, Skew: 0.26},
	"Q33":  {Class: sparksim.Join, InputFrac: 0.28, ShuffleFrac: 1.10, Stages: 4, SmallTableMB: 4200, CPUWeight: 1.8, Skew: 0.24},
	"Q69":  {Class: sparksim.Join, InputFrac: 0.30, ShuffleFrac: 1.00, Stages: 4, SmallTableMB: 3000, CPUWeight: 1.6, Skew: 0.21},
	"Q40":  {Class: sparksim.Join, InputFrac: 0.30, ShuffleFrac: 1.03, Stages: 3, SmallTableMB: 2800, CPUWeight: 1.6, Skew: 0.23},
	"Q64a": {Class: sparksim.Join, InputFrac: 0.48, ShuffleFrac: 0.94, Stages: 6, SmallTableMB: 7400, CPUWeight: 2.5, Skew: 0.38},
	"Q50":  {Class: sparksim.Join, InputFrac: 0.30, ShuffleFrac: 1.00, Stages: 3, SmallTableMB: 3400, CPUWeight: 1.5, Skew: 0.20},
	"Q21":  {Class: sparksim.Aggregation, InputFrac: 0.32, ShuffleFrac: 0.91, Stages: 3, CPUWeight: 1.4, Skew: 0.18},
	"Q70":  {Class: sparksim.Aggregation, InputFrac: 0.29, ShuffleFrac: 1.14, Stages: 4, CPUWeight: 1.9, Skew: 0.27},
	"Q95":  {Class: sparksim.Join, InputFrac: 0.33, ShuffleFrac: 1.06, Stages: 4, SmallTableMB: 5600, CPUWeight: 2.0, Skew: 0.31},
	"Q54":  {Class: sparksim.Join, InputFrac: 0.31, ShuffleFrac: 1.06, Stages: 4, SmallTableMB: 4800, CPUWeight: 1.8, Skew: 0.25},
	"Q23a": {Class: sparksim.Aggregation, InputFrac: 0.52, ShuffleFrac: 0.87, Stages: 5, CPUWeight: 2.4, Skew: 0.36},
	"Q23b": {Class: sparksim.Aggregation, InputFrac: 0.50, ShuffleFrac: 0.88, Stages: 5, CPUWeight: 2.4, Skew: 0.35},
	"Q15":  {Class: sparksim.Join, InputFrac: 0.32, ShuffleFrac: 0.94, Stages: 3, SmallTableMB: 2400, CPUWeight: 1.4, Skew: 0.19},
	"Q58":  {Class: sparksim.Join, InputFrac: 0.30, ShuffleFrac: 1.00, Stages: 4, SmallTableMB: 3800, CPUWeight: 1.7, Skew: 0.22},
	"Q62":  {Class: sparksim.Aggregation, InputFrac: 0.30, ShuffleFrac: 0.97, Stages: 3, CPUWeight: 1.5, Skew: 0.20},
	"Q20":  {Class: sparksim.Aggregation, InputFrac: 0.32, ShuffleFrac: 0.88, Stages: 3, CPUWeight: 1.4, Skew: 0.17},
}

// pinnedCIQ pins the insensitive queries the paper describes explicitly.
var pinnedCIQ = map[string]sparksim.Query{
	// Q04: long (~80 s at 100 GB) yet insensitive — scans the bulk of the
	// store/catalog/web sales but its year_total aggregation shuffles little.
	"Q04": {Class: sparksim.Aggregation, InputFrac: 0.70, ShuffleFrac: 0.018, Stages: 3, CPUWeight: 1.3, Skew: 0.05},
	// Q08: joins whose shuffles move only ~5 MB (Section 5.11).
	"Q08": {Class: sparksim.Join, InputFrac: 0.22, ShuffleFrac: 0.00008, Stages: 3, SmallTableMB: 3, DimSmall: true, CPUWeight: 1.0, Skew: 0.02},
	// Q11 is a smaller sibling of Q04.
	"Q11": {Class: sparksim.Aggregation, InputFrac: 0.45, ShuffleFrac: 0.02, Stages: 3, CPUWeight: 1.2, Skew: 0.05},
}

// tpcdsNames returns the 104 query names: Q01..Q99 with a/b variants for
// Q14, Q23, Q24, Q39 and Q64.
func tpcdsNames() []string {
	variants := map[int]bool{14: true, 23: true, 24: true, 39: true, 64: true}
	var names []string
	for i := 1; i <= 99; i++ {
		if variants[i] {
			names = append(names, fmt.Sprintf("Q%02da", i), fmt.Sprintf("Q%02db", i))
		} else {
			names = append(names, fmt.Sprintf("Q%02d", i))
		}
	}
	return names
}

// TPCDS returns the 104-query TPC-DS application profile.
func TPCDS() *sparksim.Application {
	sens := make(map[string]bool, len(SensitiveTPCDS))
	for _, n := range SensitiveTPCDS {
		sens[n] = true
	}
	sel := make(map[string]bool, len(selectionTPCDS))
	for _, n := range selectionTPCDS {
		sel[n] = true
	}

	app := &sparksim.Application{Name: "TPC-DS"}
	for _, name := range tpcdsNames() {
		var q sparksim.Query
		switch {
		case sens[name]:
			q = csqProfile[name]
		case pinnedCIQ[name].Stages != 0:
			q = pinnedCIQ[name]
		case sel[name]:
			// 'Selection' queries: scan+filter, no meaningful shuffle.
			h := hashFloats("tpcds-"+name, 4)
			q = sparksim.Query{
				Class:       sparksim.Selection,
				InputFrac:   lerp(0.05, 0.25, h[0]),
				ShuffleFrac: lerp(0.0001, 0.002, h[1]),
				Stages:      1,
				CPUWeight:   lerp(0.7, 1.1, h[2]),
				Skew:        0.02,
				FixedSec:    lerp(1.0, 3.0, h[3]),
			}
		default:
			// Moderate join/aggregation queries: shuffles exist but are
			// small relative to the scan, leaving them below the QCSA cut.
			h := hashFloats("tpcds-"+name, 6)
			class := sparksim.Join
			if h[5] < 0.45 {
				class = sparksim.Aggregation
			}
			q = sparksim.Query{
				Class:       class,
				InputFrac:   lerp(0.06, 0.30, h[0]),
				ShuffleFrac: lerp(0.003, 0.05, h[1]*h[1]),
				Stages:      2 + int(h[2]*3),
				CPUWeight:   lerp(0.9, 1.6, h[3]),
				Skew:        lerp(0.02, 0.12, h[4]),
			}
			if class == sparksim.Join {
				// Mostly dimension-table joins → broadcastable small side.
				q.SmallTableMB = lerp(0.5, 40, h[4])
				q.DimSmall = h[4] < 0.8
			}
		}
		q.Name = name
		if q.FixedSec == 0 {
			q.FixedSec = 1.2
		}
		app.Queries = append(app.Queries, q)
	}
	sort.SliceStable(app.Queries, func(i, j int) bool { return app.Queries[i].Name < app.Queries[j].Name })
	return app
}
