package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "runs", "kind", "app")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Same name+labels resolves to the same instance.
	if r.Counter("runs_total", "runs", "kind", "app") != c {
		t.Fatal("re-registration returned a new counter")
	}
	// Different labels are a different series.
	c2 := r.Counter("runs_total", "runs", "kind", "query")
	if c2 == c || c2.Value() != 0 {
		t.Fatal("label set not independent")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("m", "m")
}

// TestHistogramQuantileOracle pins the bucket-interpolated quantile
// estimate against the exact sorted-slice quantile: the two must agree to
// within the width of the bucket the quantile lands in.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := DurationBuckets
	for trial := 0; trial < 5; trial++ {
		h := newHistogram(bounds)
		n := 2000
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over the bucket range, plus some overflow values.
			v := math.Exp(rng.Float64()*math.Log(5000)) * 0.001
			vals[i] = v
			h.Observe(v)
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			// The estimator interpolates inside the bucket where the
			// cumulative count crosses q·N — the bucket holding the
			// ceil(q·N)-th observation.
			exact := vals[int(math.Ceil(q*float64(n)))-1]
			est := h.Quantile(q)
			// Tolerance: the width of the bucket holding the exact value.
			i := sort.SearchFloat64s(bounds, exact)
			lo, hi := 0.0, math.Inf(1)
			if i > 0 {
				lo = bounds[i-1]
			}
			if i < len(bounds) {
				hi = bounds[i]
			} else {
				hi = bounds[len(bounds)-1] // overflow clamps
				lo = hi
			}
			if est < lo-1e-12 || est > hi+1e-12 {
				t.Fatalf("trial %d q%.2f: estimate %v outside bucket [%v,%v] of exact %v",
					trial, q, est, lo, hi, exact)
			}
		}
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	h.Observe(100) // overflow bucket
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
	if h.Count() != 1 || h.Sum() != 100 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("locat_runs_total", "Executions.", "kind", "app").Add(3)
	r.Counter("locat_runs_total", "Executions.", "kind", "query").Add(1)
	r.Gauge("locat_jobs", "Jobs by state.", "state", "queued").Set(2)
	r.GaugeFunc("locat_up", "Liveness.", func() float64 { return 1 })
	h := r.Histogram("locat_submit_seconds", "Submit latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP locat_runs_total Executions.",
		"# TYPE locat_runs_total counter",
		`locat_runs_total{kind="app"} 3`,
		`locat_runs_total{kind="query"} 1`,
		`locat_jobs{state="queued"} 2`,
		"# TYPE locat_up gauge",
		"locat_up 1",
		"# TYPE locat_submit_seconds histogram",
		`locat_submit_seconds_bucket{le="0.1"} 1`,
		`locat_submit_seconds_bucket{le="1"} 2`,
		`locat_submit_seconds_bucket{le="+Inf"} 3`,
		"locat_submit_seconds_sum 5.55",
		"locat_submit_seconds_count 3",
		"locat_submit_seconds_p50",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families appear in sorted name order, each exactly once.
	if strings.Count(out, "# TYPE locat_runs_total") != 1 {
		t.Fatalf("family header duplicated:\n%s", out)
	}
	if strings.Index(out, "# HELP locat_jobs") > strings.Index(out, "# HELP locat_runs_total") {
		t.Fatalf("families not name-sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `m{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

// TestConcurrentMetrics hammers writers against scrapes; run under -race.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits", "worker", "a") // visible from the first scrape
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits_total", "hits", "worker", string(rune('a'+w)))
			h := r.Histogram("lat_seconds", "latency", nil)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		r.WritePrometheus(&b)
		if !strings.Contains(b.String(), "hits_total") {
			t.Fatal("scrape missing family")
		}
	}
	close(stop)
	wg.Wait()
}
