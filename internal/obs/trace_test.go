package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTimelineSpans(t *testing.T) {
	tl := NewTimeline()
	s1 := tl.Start("phase1/sampling")
	s1.Add(10, 1234.5)
	s1.Add(2, 100)
	s1.End()
	s2 := tl.Start("phase2/search")
	s2.Add(6, 600)

	snap := tl.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d spans, want 2", len(snap))
	}
	if snap[0].Name != "phase1/sampling" || snap[0].Runs != 12 || snap[0].ClusterSec != 1334.5 || !snap[0].Done {
		t.Fatalf("span 0 = %+v", snap[0])
	}
	// The second span is still open: wall accrues, Done is false.
	if snap[1].Name != "phase2/search" || snap[1].Done {
		t.Fatalf("span 1 = %+v", snap[1])
	}
	time.Sleep(2 * time.Millisecond)
	snap2 := tl.Snapshot()
	if snap2[1].WallMS <= snap[1].WallMS {
		t.Fatalf("open span wall did not accrue: %v -> %v", snap[1].WallMS, snap2[1].WallMS)
	}
	s2.End()
	end1 := tl.Snapshot()[1].WallMS
	time.Sleep(2 * time.Millisecond)
	if got := tl.Snapshot()[1].WallMS; got != end1 {
		t.Fatalf("ended span wall still accrues: %v -> %v", end1, got)
	}
	// Double End is a no-op.
	s2.End()
	if tl.Len() != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}

	// The snapshot marshals to the documented JSON schema.
	data, err := json.Marshal(tl.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []SpanRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].ClusterSec != 1334.5 {
		t.Fatalf("roundtrip span = %+v", back[0])
	}
}

// TestTimelineConcurrentSnapshot snapshots while a span is being charged;
// run under -race.
func TestTimelineConcurrentSnapshot(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := tl.Start("phase")
			s.Add(1, 10)
			s.End()
		}
	}()
	for i := 0; i < 200; i++ {
		for _, sr := range tl.Snapshot() {
			if sr.Done && sr.Runs != 1 {
				t.Fatalf("ended span with runs %d", sr.Runs)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestNopTracerZeroAlloc pins the acceptance criterion: with the no-op
// tracer, the span open/charge/close pattern the tuner hot paths execute
// allocates nothing.
func TestNopTracerZeroAlloc(t *testing.T) {
	tr := OrNop(nil)
	if tr != Nop {
		t.Fatal("OrNop(nil) != Nop")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("phase1/sampling")
		s.Add(1, 42)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer allocates %v per span, want 0", allocs)
	}
}

// BenchmarkNopTracer is the instrumentation-overhead floor: what every
// traced phase costs when tracing is off.
func BenchmarkNopTracer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Nop.Start("phase")
		s.Add(1, 1)
		s.End()
	}
}

// BenchmarkTimelineSpan is the cost with tracing on (per span, not per
// run — sessions open a handful of spans).
func BenchmarkTimelineSpan(b *testing.B) {
	tl := NewTimeline()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%8192 == 0 { // bound the recorded-span memory at large b.N
			tl = NewTimeline()
		}
		s := tl.Start("phase")
		s.Add(1, 1)
		s.End()
	}
}

// BenchmarkHistogramObserve is the per-run metrics cost on the runner hot
// path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 997)
	}
}
