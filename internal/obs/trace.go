package obs

import (
	"sync"
	"time"
)

// Tracer opens named spans. The tuner threads one through its phases
// (phase-1 sampling, QCSA, IICP, phase-2 search, hyperparameter resamples)
// so a finished session can answer "where did the seconds go". The default
// is Nop, which costs nothing on the hot path — zero allocations per span,
// pinned by BenchmarkNopTracer.
type Tracer interface {
	// Start opens a span. The caller must End it; spans of one tracer are
	// started and ended by one goroutine (phases are sequential), but Add
	// may be called while the span is open from the goroutine driving it.
	Start(name string) Span
}

// Span is one traced phase. Add charges executions to it; End closes it.
type Span interface {
	// Add charges runs executions consuming clusterSec simulated cluster
	// seconds to the span.
	Add(runs int64, clusterSec float64)
	// End closes the span, fixing its wall duration.
	End()
}

type nopTracer struct{}
type nopSpan struct{}

func (nopTracer) Start(string) Span { return nopSpan{} }
func (nopSpan) Add(int64, float64)  {}
func (nopSpan) End()                {}

// Nop is the no-op tracer: Start returns a zero-width span, so the
// instrumented hot paths stay allocation-free when tracing is off.
var Nop Tracer = nopTracer{}

// OrNop returns t, or Nop when t is nil — the guard every Options.Tracer
// consumer applies once so call sites never nil-check.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// SpanRecord is one recorded span of a Timeline — the JSON the trace
// endpoint and the bench phase breakdown serve.
type SpanRecord struct {
	// Name identifies the phase ("phase1/sampling", "phase2/search", ...).
	Name string `json:"name"`
	// StartMS is the span's start offset from the timeline origin.
	StartMS float64 `json:"start_ms"`
	// WallMS is the span's wall-clock duration (for a still-open span, the
	// duration up to the snapshot).
	WallMS float64 `json:"wall_ms"`
	// ClusterSec is the simulated cluster time charged to the span.
	ClusterSec float64 `json:"cluster_sec"`
	// Runs is the number of executions charged to the span.
	Runs int64 `json:"runs"`
	// Done reports whether the span has ended.
	Done bool `json:"done"`
}

// Timeline is a Tracer that records every span with wall time, charged
// cluster seconds and run counts, relative to a fixed origin. Safe for
// concurrent use: the session goroutine writes spans while HTTP trace
// requests snapshot them.
type Timeline struct {
	mu    sync.Mutex
	start time.Time
	spans []*timelineSpan
}

type timelineSpan struct {
	tl         *Timeline
	name       string
	start      time.Time
	wall       time.Duration
	clusterSec float64
	runs       int64
	done       bool
}

// NewTimeline returns a timeline with its origin at now.
func NewTimeline() *Timeline {
	return &Timeline{start: time.Now()}
}

// Start opens a recorded span.
func (t *Timeline) Start(name string) Span {
	s := &timelineSpan{tl: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Add charges executions to the span.
func (s *timelineSpan) Add(runs int64, clusterSec float64) {
	s.tl.mu.Lock()
	s.runs += runs
	s.clusterSec += clusterSec
	s.tl.mu.Unlock()
}

// End closes the span.
func (s *timelineSpan) End() {
	s.tl.mu.Lock()
	if !s.done {
		s.wall = time.Since(s.start)
		s.done = true
	}
	s.tl.mu.Unlock()
}

// Snapshot returns the recorded spans in start order. Open spans report
// their wall time up to the snapshot with Done false.
func (t *Timeline) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		wall := s.wall
		if !s.done {
			wall = time.Since(s.start)
		}
		out[i] = SpanRecord{
			Name:       s.name,
			StartMS:    float64(s.start.Sub(t.start)) / float64(time.Millisecond),
			WallMS:     float64(wall) / float64(time.Millisecond),
			ClusterSec: s.clusterSec,
			Runs:       s.runs,
			Done:       s.done,
		}
	}
	return out
}

// Len returns the number of spans recorded so far.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Aggregate merges spans with the same name, summing wall time, cluster
// seconds and run counts. Names keep first-appearance order, each merged
// record starts at its earliest occurrence, and Done holds only when every
// merged span ended. Repeated spans ("gp/hyper-resample" fires once per
// refresh) collapse into one row — the shape the bench phase breakdown and
// the facade report.
func Aggregate(spans []SpanRecord) []SpanRecord {
	idx := make(map[string]int, len(spans))
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		i, ok := idx[s.Name]
		if !ok {
			idx[s.Name] = len(out)
			out = append(out, s)
			continue
		}
		if s.StartMS < out[i].StartMS {
			out[i].StartMS = s.StartMS
		}
		out[i].WallMS += s.WallMS
		out[i].ClusterSec += s.ClusterSec
		out[i].Runs += s.Runs
		out[i].Done = out[i].Done && s.Done
	}
	return out
}
