// Package obs is the observability substrate of the repository: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// histograms with quantile estimation, exposed in the Prometheus text
// format) and a per-session span tracer that records where a tuning
// session's seconds went (trace.go).
//
// The package deliberately has no dependencies beyond the standard library
// and is safe for concurrent use throughout: metrics are written from the
// execution hot path (every sample run charges a counter and a histogram)
// and read by /metrics scrapes at arbitrary times. Writers never take a
// lock — counters, gauges and histogram buckets are single atomics — so
// instrumentation cannot serialize the worker pools it observes.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates v (must be non-negative for Prometheus semantics; not
// enforced).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v (negative values allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= v, with an implicit +Inf overflow bucket.
// Buckets, count and sum are individual atomics, so Observe is lock-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over the given (sorted, ascending) upper
// bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket where the cumulative count crosses q·N. The estimate is
// exact to within the width of that bucket; values in the +Inf overflow
// bucket clamp to the largest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= rank && n > 0 {
			if i >= len(h.bounds) { // overflow bucket: no finite upper bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / n
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets cover request/run latencies from 1 ms to 100 s.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// ClusterSecBuckets cover per-run simulated cluster seconds: individual
// Spark SQL runs range from seconds to hours.
var ClusterSecBuckets = []float64{
	1, 5, 15, 60, 300, 900, 1800, 3600, 2 * 3600, 4 * 3600, 12 * 3600,
}

// metricKind discriminates exposition formats.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindHistogram:
		return "histogram"
	case kindCounter:
		return "counter"
	}
	return "gauge"
}

// series is one registered metric instance (a name plus one label set).
type series struct {
	name    string
	labels  string // rendered {k="v",...} or ""
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series of one metric name.
type family struct {
	help string
	kind metricKind
}

// Registry is a set of named metrics. Registration methods return the
// existing instance when called again with the same name and labels, so
// call sites can resolve metrics lazily without caching them; the returned
// Counter/Gauge/Histogram handles are lock-free to update.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	series   map[string]*series // keyed by name + rendered labels
	order    []string           // registration order of series keys
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, series: map[string]*series{}}
}

// renderLabels renders k/v pairs as a stable exposition label string.
// Pairs are sorted by key; values are escaped per the text format.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register resolves or creates a series, enforcing one kind per name.
func (r *Registry) register(name, help string, kind metricKind, kv []string, mk func() *series) *series {
	labels := renderLabels(kv)
	key := name + labels
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
	} else {
		r.families[name] = &family{help: help, kind: kind}
	}
	s = mk()
	s.name, s.labels, s.kind = name, labels, kind
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter resolves (or registers) a counter. kv is an alternating
// key/value label list.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	s := r.register(name, help, kindCounter, kv, func() *series { return &series{counter: &Counter{}} })
	return s.counter
}

// Gauge resolves (or registers) a gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	s := r.register(name, help, kindGauge, kv, func() *series { return &series{gauge: &Gauge{}} })
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time (pool
// occupancy, queue depth). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.register(name, help, kindGaugeFunc, kv, func() *series { return &series{gaugeFn: fn} })
}

// Histogram resolves (or registers) a fixed-bucket histogram over the given
// upper bounds (nil selects DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	s := r.register(name, help, kindHistogram, kv, func() *series { return &series{hist: newHistogram(bounds)} })
	return s.hist
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), grouped by family in name order with HELP/TYPE
// headers. Histograms expose cumulative _bucket series plus _sum, _count
// and estimated p50/p95/p99 quantile gauges (as <name>_p50 families, since
// the plain text format has no native quantile type for histograms).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	keys := append([]string(nil), r.order...)
	byFamily := map[string][]*series{}
	var names []string
	for _, k := range keys {
		s := r.series[k]
		if _, ok := byFamily[s.name]; !ok {
			names = append(names, s.name)
		}
		byFamily[s.name] = append(byFamily[s.name], s)
	}
	families := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		families[n] = f
	}
	r.mu.RUnlock()

	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind)
		ss := byFamily[name]
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		for _, s := range ss {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %s\n", name, s.labels, fmtFloat(s.counter.Value()))
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", name, s.labels, fmtFloat(s.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %s\n", name, s.labels, fmtFloat(s.gaugeFn()))
			case kindHistogram:
				writeHistogram(w, name, s)
			}
		}
	}
}

func writeHistogram(w io.Writer, name string, s *series) {
	h := s.hist
	inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	le := func(bound string) string {
		if inner == "" {
			return `{le="` + bound + `"}`
		}
		return "{" + inner + `,le="` + bound + `"}`
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(fmtFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, le("+Inf"), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	if h.Count() > 0 {
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			fmt.Fprintf(w, "%s_%s%s %s\n", name, q.suffix, s.labels, fmtFloat(h.Quantile(q.q)))
		}
	}
}

// fmtFloat renders a float the way the exposition format expects: integral
// values without an exponent or trailing zeros.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
