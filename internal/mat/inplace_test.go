package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestFactorInPlaceMatchesNewCholesky: the in-place factorization must
// produce the exact factor NewCholesky computes into fresh storage (the
// recurrences are the same, in the same order), and the solves and log
// determinant must agree bit-for-bit.
func TestFactorInPlaceMatchesNewCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{1, 2, 7, 40} {
		a := spdMatrix(n, rng)
		want, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		var c Cholesky
		work := a.Clone()
		if err := c.FactorInPlace(work); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if got, w := c.L().At(i, j), want.L().At(i, j); got != w {
					t.Fatalf("n=%d L(%d,%d) = %v, want %v", n, i, j, got, w)
				}
			}
		}
		if c.LogDet() != want.LogDet() {
			t.Fatalf("n=%d logdet %v != %v", n, c.LogDet(), want.LogDet())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, x2 := want.SolveVec(b), c.SolveVec(b)
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("n=%d solve diverged at %d: %v vs %v", n, i, x1[i], x2[i])
			}
		}
	}
}

func TestFactorInPlaceErrors(t *testing.T) {
	var c Cholesky
	if err := c.FactorInPlace(NewDense(2, 3, nil)); err == nil {
		t.Fatal("non-square accepted")
	}
	notPD := NewDense(2, 2, []float64{1, 2, 2, 1})
	if err := c.FactorInPlace(notPD); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	// The receiver must be untouched by failures: factoring a valid matrix
	// afterwards still works.
	ok := NewDense(2, 2, []float64{4, 1, 1, 3})
	if err := c.FactorInPlace(ok); err != nil {
		t.Fatal(err)
	}
	if got := c.L().At(0, 0); got != 2 {
		t.Fatalf("L(0,0) = %v, want 2", got)
	}
}

// TestSolveVecIntoAliasing: dst may alias b — the substitution contract the
// zero-allocation α refresh of gp's hyperparameter sampler relies on.
func TestSolveVecIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 12
	a := spdMatrix(n, rng)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := c.SolveVec(b)
	inPlace := append([]float64(nil), b...)
	got := c.SolveVecInto(inPlace, inPlace)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aliased solve diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Residual check: A·x ≈ b.
	ax := MulVec(a, want)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-8 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}
