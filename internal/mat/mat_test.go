package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4, nil)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d; want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v; want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero rows", func() { NewDense(0, 3, nil) }},
		{"negative cols", func() { NewDense(3, -1, nil) }},
		{"bad data len", func() { NewDense(2, 2, make([]float64, 3)) }},
		{"index out of range", func() { NewDense(2, 2, nil).At(2, 0) }},
		{"set out of range", func() { NewDense(2, 2, nil).Set(0, 5, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3, nil)
	m.Set(1, 2, 42.5)
	if got := m.At(1, 2); got != 42.5 {
		t.Fatalf("At = %v; want 42.5", got)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %v; want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestRowColClone(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[1] != 5 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col(2) = %v", col)
	}
	// Mutating the returned slices must not affect the matrix.
	row[0] = 99
	col[0] = 99
	if m.At(1, 0) != 4 || m.At(0, 2) != 3 {
		t.Fatal("Row/Col returned aliased storage")
	}
	cl := m.Clone()
	cl.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := Mul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(p.At(i, j), want[i][j], eps) {
				t.Fatalf("Mul[%d,%d] = %v; want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3, nil), NewDense(2, 3, nil))
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := MulVec(a, []float64{1, 0, -1})
	if !almostEqual(y[0], -2, eps) || !almostEqual(y[1], -2, eps) {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestAddScaleAddDiag(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2, []float64{4, 3, 2, 1})
	s := Add(a, b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if s.At(i, j) != 5 {
				t.Fatalf("Add[%d,%d] = %v", i, j, s.At(i, j))
			}
		}
	}
	sc := Scale(2, a)
	if sc.At(1, 1) != 8 {
		t.Fatalf("Scale = %v", sc.At(1, 1))
	}
	a.AddDiag(10)
	if a.At(0, 0) != 11 || a.At(1, 1) != 14 || a.At(0, 1) != 2 {
		t.Fatal("AddDiag wrong")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, eps) {
		t.Fatal("Norm2 wrong")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := NewDense(3, 3, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	wantL := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(ch.L().At(i, j), wantL[i][j], eps) {
				t.Fatalf("L[%d,%d] = %v; want %v", i, j, ch.L().At(i, j), wantL[i][j])
			}
		}
	}
	// log|A| = log(4·1·9... ) = 2·(log2+log1+log3)
	wantLogDet := 2 * (math.Log(2) + math.Log(1) + math.Log(3))
	if !almostEqual(ch.LogDet(), wantLogDet, eps) {
		t.Fatalf("LogDet = %v; want %v", ch.LogDet(), wantLogDet)
	}
}

func TestCholeskySolve(t *testing.T) {
	a := NewDense(3, 3, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := []float64{1, -2, 0.5}
	b := MulVec(a, xTrue)
	x := ch.SolveVec(b)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-8) {
			t.Fatalf("SolveVec[%d] = %v; want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v; want ErrNotPositiveDefinite", err)
	}
	if _, err := NewCholesky(NewDense(2, 3, nil)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestCholeskySolveLowerVec(t *testing.T) {
	a := NewDense(2, 2, []float64{4, 2, 2, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 5}
	y := ch.SolveLowerVec(b)
	// Verify L·y = b.
	got := MulVec(ch.L(), y)
	for i := range b {
		if !almostEqual(got[i], b[i], 1e-9) {
			t.Fatalf("L·y = %v; want %v", got, b)
		}
	}
}

// Property: for random SPD matrices A = MᵀM + n·I, Cholesky reconstructs A
// and SolveVec inverts MulVec.
func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := NewDense(n, n, nil)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a := Mul(m.T(), m).AddDiag(float64(n))
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		// Reconstruct: L·Lᵀ = A.
		rec := Mul(ch.L(), ch.L().T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(rec.At(i, j), a.At(i, j), 1e-7) {
					return false
				}
			}
		}
		// Solve round trip.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := ch.SolveVec(MulVec(a, x))
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewDense(3, 3, []float64{3, 0, 0, 0, 1, 0, 0, 0, 2})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEqual(e.Values[i], w, 1e-10) {
			t.Fatalf("Values = %v; want %v", e.Values, want)
		}
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2 and (1,-1)/√2.
	a := NewDense(2, 2, []float64{2, 1, 1, 2})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Fatalf("Values = %v", e.Values)
	}
	v0 := e.Vectors.Col(0)
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-9) {
		t.Fatalf("first eigenvector = %v", v0)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, err := SymEigen(NewDense(2, 3, nil)); err == nil {
		t.Fatal("expected error")
	}
}

// Property: eigendecomposition of random symmetric matrices satisfies
// A·v = λ·v, vectors are orthonormal, and trace = Σλ.
func TestSymEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := NewDense(n, n, nil)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		if !almostEqual(trace, sum, 1e-7) {
			return false
		}
		for k := 0; k < n; k++ {
			v := e.Vectors.Col(k)
			av := MulVec(a, v)
			for i := 0; i < n; i++ {
				if !almostEqual(av[i], e.Values[k]*v[i], 1e-6) {
					return false
				}
			}
			// Orthonormality against earlier vectors.
			if !almostEqual(Norm2(v), 1, 1e-7) {
				return false
			}
			for k2 := 0; k2 < k; k2++ {
				if !almostEqual(Dot(v, e.Vectors.Col(k2)), 0, 1e-7) {
					return false
				}
			}
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// spdMatrix returns a random n×n symmetric positive definite matrix.
func spdMatrix(n int, rng *rand.Rand) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return Mul(m.T(), m).AddDiag(float64(n))
}

func TestCholeskyExtendMatchesFullFactorization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := spdMatrix(n+1, rng)

		// Factor the leading n×n block, then border-extend by the last
		// row/column of a.
		lead := NewDense(n, n, nil)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				lead.Set(i, j, a.At(i, j))
			}
		}
		ch, err := NewCholesky(lead)
		if err != nil {
			return false
		}
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = a.At(n, i)
		}
		if err := ch.Extend(col, a.At(n, n)); err != nil {
			return false
		}

		full, err := NewCholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i <= n; i++ {
			for j := 0; j <= i; j++ {
				if !almostEqual(ch.L().At(i, j), full.L().At(i, j), 1e-8) {
					return false
				}
			}
		}
		// The extended factor must solve against the bordered matrix.
		x := make([]float64, n+1)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := ch.SolveVec(MulVec(a, x))
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-6) {
				return false
			}
		}
		return almostEqual(ch.LogDet(), full.LogDet(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyExtendRejectsNotPD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := spdMatrix(3, rng)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L().Clone()
	// A border whose diagonal is dominated by the off-diagonal column makes
	// the extension indefinite.
	col := []float64{100, 100, 100}
	if err := ch.Extend(col, 1e-9); err != ErrNotPositiveDefinite {
		t.Fatalf("Extend accepted an indefinite border: %v", err)
	}
	// The factor must be untouched and still usable.
	r, c := ch.L().Dims()
	if r != 3 || c != 3 {
		t.Fatalf("factor resized to %d×%d after failed Extend", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if ch.L().At(i, j) != before.At(i, j) {
				t.Fatal("factor mutated by failed Extend")
			}
		}
	}
}

func TestCholeskyExtendLengthPanics(t *testing.T) {
	ch, err := NewCholesky(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = ch.Extend([]float64{1}, 1)
}

func TestCholeskyCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := spdMatrix(3, rng)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	cl := ch.Clone()
	if err := cl.Extend([]float64{0, 0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if r, _ := ch.L().Dims(); r != 3 {
		t.Fatal("extending a clone resized the original")
	}
	if r, _ := cl.L().Dims(); r != 4 {
		t.Fatal("clone not extended")
	}
}
