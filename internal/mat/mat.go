// Package mat provides the small dense linear-algebra kernel used by the
// Gaussian-process and kernel-PCA code: a row-major dense matrix type,
// Cholesky factorization with triangular solves, and a symmetric Jacobi
// eigendecomposition.
//
// The package is deliberately minimal — it implements exactly the operations
// the tuner needs, with defensive dimension checks that panic on programmer
// error (mismatched shapes are bugs, not runtime conditions).
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c matrix. If data is non-nil it must have
// length r*c and is used directly (not copied).
func NewDense(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	return m.ColInto(j, make([]float64, m.rows))
}

// ColInto copies column j into dst (which must have length rows) and
// returns dst. Hot loops that walk columns — eigenvector extraction, the
// KPCA transform — use it to reuse one buffer instead of allocating a fresh
// slice per column.
func (m *Dense) ColInto(j int, dst []float64) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: ColInto dst length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
	return dst
}

// RowView returns row i as a slice sharing the matrix's storage (no copy).
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols, nil)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a·x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	return MulVecInto(a, x, make([]float64, a.rows))
}

// MulVecInto computes a·x into dst (length rows) and returns dst —
// the allocation-free form batch prediction builds on.
func MulVecInto(a *Dense, x, dst []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %d×%d · %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVecInto dst length %d, want %d", len(dst), a.rows))
	}
	mulVecRange(a, x, dst, 0, a.rows)
	return dst
}

// mulVecRange computes rows [lo,hi) of a·x into dst.
func mulVecRange(a *Dense, x, dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Add returns a+b.
func Add(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Add shape mismatch")
	}
	out := NewDense(a.rows, a.cols, nil)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.rows, a.cols, nil)
	for i := range a.data {
		out.data[i] = s * a.data[i]
	}
	return out
}

// AddDiag adds v to every diagonal element in place and returns m.
func (m *Dense) AddDiag(v float64) *Dense {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += v
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }
