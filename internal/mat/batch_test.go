package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randomSPD(n int, rng *rand.Rand) *Dense {
	b := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := Mul(b.T(), b)
	a.AddDiag(0.1)
	return a
}

// eigenResidual returns max_i ‖A·v_i − λ_i·v_i‖ / ‖A‖_F.
func eigenResidual(a *Dense, e *Eigen) float64 {
	n, _ := a.Dims()
	fro := frobeniusNorm(a)
	if fro == 0 {
		fro = 1
	}
	var worst float64
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		e.Vectors.ColInto(j, col)
		av := MulVec(a, col)
		var r2 float64
		for i := 0; i < n; i++ {
			d := av[i] - e.Values[j]*col[i]
			r2 += d * d
		}
		if r := math.Sqrt(r2) / fro; r > worst {
			worst = r
		}
	}
	return worst
}

func TestSymEigenQLvsJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 40} {
		a := randomSPD(n, rng)
		ql, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: QL: %v", n, err)
		}
		jac, err := SymEigenJacobi(a)
		if err != nil {
			t.Fatalf("n=%d: Jacobi: %v", n, err)
		}
		scale := math.Abs(ql.Values[0])
		for i := range ql.Values {
			if math.Abs(ql.Values[i]-jac.Values[i]) > 1e-9*scale {
				t.Fatalf("n=%d: eigenvalue %d: QL %v vs Jacobi %v", n, i, ql.Values[i], jac.Values[i])
			}
		}
		if r := eigenResidual(a, ql); r > 1e-10 {
			t.Fatalf("n=%d: QL residual %v", n, r)
		}
		if r := eigenResidual(a, jac); r > 1e-10 {
			t.Fatalf("n=%d: Jacobi residual %v", n, r)
		}
	}
}

// Degenerate spectra (repeated eigenvalues) must not break either solver.
func TestSymEigenRepeatedEigenvalues(t *testing.T) {
	n := 6
	a := Identity(n)
	a.Set(3, 3, 5)
	for _, solve := range []func(*Dense) (*Eigen, error){SymEigen, SymEigenJacobi} {
		e, err := solve(a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.Values[0]-5) > 1e-12 || math.Abs(e.Values[n-1]-1) > 1e-12 {
			t.Fatalf("spectrum = %v", e.Values)
		}
		if r := eigenResidual(a, e); r > 1e-12 {
			t.Fatalf("residual %v", r)
		}
	}
}

// The Jacobi tolerance is relative to the Frobenius norm: rescaling the
// matrix by 12 orders of magnitude either way must neither stall convergence
// (large matrices under the old absolute 1e-12 cutoff span all 64 sweeps)
// nor produce garbage on tiny ones. Both solvers must keep relative accuracy
// across scales.
func TestSymEigenScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := randomSPD(12, rng)
	ref, err := SymEigen(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{1e-12, 1e-6, 1, 1e6, 1e12} {
		scaled := Scale(scale, base)
		for name, solve := range map[string]func(*Dense) (*Eigen, error){
			"QL": SymEigen, "Jacobi": SymEigenJacobi,
		} {
			e, err := solve(scaled)
			if err != nil {
				t.Fatalf("%s scale=%g: %v", name, scale, err)
			}
			for i := range e.Values {
				want := ref.Values[i] * scale
				if math.Abs(e.Values[i]-want) > 1e-9*math.Abs(ref.Values[0])*scale {
					t.Fatalf("%s scale=%g: eigenvalue %d = %v, want %v", name, scale, i, e.Values[i], want)
				}
			}
			if r := eigenResidual(scaled, e); r > 1e-10 {
				t.Fatalf("%s scale=%g: residual %v", name, scale, r)
			}
		}
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	z := NewDense(4, 4, nil)
	for _, solve := range []func(*Dense) (*Eigen, error){SymEigen, SymEigenJacobi} {
		e, err := solve(z)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range e.Values {
			if v != 0 {
				t.Fatalf("zero matrix spectrum = %v", e.Values)
			}
		}
	}
}

func TestColInto(t *testing.T) {
	m := NewDense(3, 2, []float64{1, 2, 3, 4, 5, 6})
	buf := make([]float64, 3)
	if got := m.ColInto(1, buf); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("ColInto = %v", got)
	}
	if c := m.Col(0); c[0] != 1 || c[1] != 3 || c[2] != 5 {
		t.Fatalf("Col = %v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	m.ColInto(0, make([]float64, 2))
}

func TestSolveLowerVecIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(15, rng)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 15)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := c.SolveLowerVec(b)
	got := append([]float64(nil), b...)
	c.SolveLowerVecInto(got, got) // in place
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aliased solve diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestParRangeCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1000} {
		hit := make([]int, n)
		ParRange(n, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestParMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewDense(37, 21, nil)
	for i := 0; i < 37; i++ {
		for j := 0; j < 21; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	x := make([]float64, 21)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := MulVec(a, x)
	got := make([]float64, 37)
	ParMulVecInto(a, x, got, 4)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}
}
