package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Dense // lower triangular, n×n
}

// NewCholesky factors the symmetric positive definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Dense) (*Cholesky, error) {
	n, c := a.Dims()
	if n != c {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	l := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		copy(l.data[i*n:i*n+i+1], a.data[i*a.cols:i*a.cols+i+1])
	}
	if err := factorLower(l); err != nil {
		return nil, err
	}
	return &Cholesky{l: l}, nil
}

// factorLower runs the Cholesky recurrences in place over the lower triangle
// of l: on entry the lower triangle holds A, on exit it holds L. The column-j
// recurrences read position (i,j) exactly once — while it still holds A's
// value — before overwriting it, so the factor is identical to one computed
// into separate storage. Entries above the diagonal are never touched (every
// consumer of the factor — the triangular solves, LogDet, Extend — reads the
// lower triangle only). Inner loops run over row slices, which is what makes
// the zero-allocation refit path of gp's hyperparameter sampler cheap.
func factorLower(l *Dense) error {
	n := l.rows
	ld := l.data
	for j := 0; j < n; j++ {
		lrowj := ld[j*n : j*n+j+1]
		d := lrowj[j]
		for _, v := range lrowj[:j] {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		dj := math.Sqrt(d)
		lrowj[j] = dj
		lj := lrowj[:j]              // explicit length match with the i-row prefix: lets
		for i := j + 1; i < n; i++ { // the compiler drop the lj[k] bounds check
			lrowi := ld[i*n : i*n+j+1]
			s := lrowi[j]
			for k, v := range lrowi[:j] {
				s -= v * lj[k]
			}
			lrowi[j] = s / dj
		}
	}
	return nil
}

// FactorInPlace factors the symmetric positive definite matrix a in place —
// the lower triangle of a is overwritten with L, no fresh storage — and
// points the receiver at it. On error the receiver is left unchanged (a's
// lower triangle is partially overwritten and must be reassembled before
// retrying). a must be square and is owned by the receiver afterwards.
//
// This is the refit primitive of gp's amortized hyperparameter inference:
// every slice-sampling step reassembles the kernel matrix into one reusable
// buffer and refactors it here, so the O(n³) work stays but the O(n²)
// allocation (and its GC pressure — hundreds of MB per MCMC run at n=300)
// disappears.
func (c *Cholesky) FactorInPlace(a *Dense) error {
	n, cols := a.Dims()
	if n != cols {
		return errors.New("mat: Cholesky of non-square matrix")
	}
	if err := factorLower(a); err != nil {
		return err
	}
	c.l = a
	return nil
}

// L returns the lower-triangular factor (not a copy).
func (c *Cholesky) L() *Dense { return c.l }

// Clone returns an independent copy of the factorization. Extending the
// clone leaves the original untouched, which is how GP.AppendBatch keeps a
// model consistent when a mid-batch extension fails.
func (c *Cholesky) Clone() *Cholesky { return &Cholesky{l: c.l.Clone()} }

// Extend appends one row/column to the factored matrix in O(n²) — the
// rank-1 border update that makes incremental GP training cheap. Given the
// bordered matrix
//
//	A' = [A  col]
//	     [colᵀ d ]
//
// the extended factor is
//
//	L' = [L    0  ]     l21 = L⁻¹·col (forward substitution)
//	     [l21ᵀ l22]     l22 = √(d - |l21|²)
//
// The forward substitution is the updatable triangular solve: it reuses the
// existing factor verbatim, so Extend costs O(n²) where a fresh NewCholesky
// of the bordered matrix costs O(n³). The recurrences are the same ones the
// full factorization would run for the last row, so the extended factor
// matches a from-scratch factorization to rounding error.
//
// col is the new off-diagonal column (length n) and diag the new diagonal
// element. On ErrNotPositiveDefinite the receiver is left unchanged.
func (c *Cholesky) Extend(col []float64, diag float64) error {
	n, _ := c.l.Dims()
	if len(col) != n {
		panic("mat: Cholesky.Extend column length mismatch")
	}
	l21 := c.SolveLowerVec(col)
	d := diag - Dot(l21, l21)
	if d <= 0 || math.IsNaN(d) {
		return ErrNotPositiveDefinite
	}
	nl := NewDense(n+1, n+1, nil)
	for i := 0; i < n; i++ {
		copy(nl.data[i*nl.cols:i*nl.cols+n], c.l.data[i*c.l.cols:i*c.l.cols+n])
	}
	copy(nl.data[n*nl.cols:n*nl.cols+n], l21)
	nl.data[n*nl.cols+n] = math.Sqrt(d)
	c.l = nl
	return nil
}

// SolveVec solves A·x = b in place-free fashion and returns x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	n, _ := c.l.Dims()
	return c.SolveVecInto(b, make([]float64, n))
}

// SolveVecInto solves A·x = b into dst and returns dst. dst may alias b:
// the forward substitution only reads b[i] before writing dst[i], and the
// back substitution rewrites dst from the tail using only entries it has
// already produced. No scratch vector is allocated, which is what keeps the
// per-step cost of gp's slice sampler allocation-free.
func (c *Cholesky) SolveVecInto(b, dst []float64) []float64 {
	n, _ := c.l.Dims()
	if len(b) != n || len(dst) != n {
		panic("mat: Cholesky.SolveVecInto length mismatch")
	}
	ld := c.l.data
	// Forward substitution: L·y = b (y lands in dst).
	for i := 0; i < n; i++ {
		s := b[i]
		lrow := ld[i*n : i*n+i+1]
		for k := 0; k < i; k++ {
			s -= lrow[k] * dst[k]
		}
		dst[i] = s / lrow[i]
	}
	// Back substitution: Lᵀ·x = y (x overwrites y in dst).
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= ld[k*n+i] * dst[k]
		}
		dst[i] = s / ld[i*n+i]
	}
	return dst
}

// SolveLowerVec solves L·y = b (forward substitution only) and returns y.
// Used for computing predictive variances: v = L⁻¹·k*.
func (c *Cholesky) SolveLowerVec(b []float64) []float64 {
	n, _ := c.l.Dims()
	return c.SolveLowerVecInto(b, make([]float64, n))
}

// SolveLowerVecInto solves L·y = b into dst and returns dst. dst may alias
// b (the substitution only reads b[i] before writing dst[i]), which is what
// lets batch prediction overwrite cross-kernel rows in place instead of
// allocating a scratch vector per candidate.
func (c *Cholesky) SolveLowerVecInto(b, dst []float64) []float64 {
	n, _ := c.l.Dims()
	if len(b) != n || len(dst) != n {
		panic("mat: Cholesky.SolveLowerVecInto length mismatch")
	}
	ld := c.l.data
	for i := 0; i < n; i++ {
		s := b[i]
		lrow := ld[i*n : i*n+i+1]
		for k := 0; k < i; k++ {
			s -= lrow[k] * dst[k]
		}
		dst[i] = s / lrow[i]
	}
	return dst
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n, _ := c.l.Dims()
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}
