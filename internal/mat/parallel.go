package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parBlock is the row-claim granularity of ParRange: small enough to balance
// ragged work (triangular Gram assembly, variable-length substitutions),
// large enough that the atomic claim is amortized.
const parBlock = 8

// ParRange runs fn over disjoint sub-ranges covering [0,n) on up to workers
// goroutines (workers ≤ 0 selects GOMAXPROCS). Blocks are claimed from an
// atomic counter, so load balances even when per-row cost varies; every
// index is processed exactly once and ParRange returns after all of them
// finish. Results are deterministic whenever fn's writes are disjoint by
// index, which is how the batched kernel math keeps parallel output
// bit-identical to serial.
func ParRange(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > (n+parBlock-1)/parBlock {
		workers = (n + parBlock - 1) / parBlock
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(parBlock)) - parBlock
				if lo >= n {
					return
				}
				hi := lo + parBlock
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ParMulVecInto computes a·x into dst like MulVecInto, fanning row blocks
// over ParRange. Each row is reduced serially by one worker, so the result
// is bit-identical to the serial product.
func ParMulVecInto(a *Dense, x, dst []float64, workers int) []float64 {
	if a.cols != len(x) {
		panic("mat: ParMulVecInto shape mismatch")
	}
	if len(dst) != a.rows {
		panic("mat: ParMulVecInto dst length mismatch")
	}
	ParRange(a.rows, workers, func(lo, hi int) { mulVecRange(a, x, dst, lo, hi) })
	return dst
}
