package mat

import (
	"errors"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A·v_i = λ_i·v_i.
// Eigenvalues are sorted in descending order; Vectors column i corresponds to
// Values[i].
type Eigen struct {
	Values  []float64
	Vectors *Dense // n×n, columns are unit eigenvectors
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a.
// Only the lower triangle is read.
//
// The method is the classic two-stage dense solver: Householder reduction to
// tridiagonal form with accumulation of the orthogonal transform (O(n³) once),
// followed by the implicit-shift QL iteration on the tridiagonal matrix
// (O(n²) per eigenvalue). For the Gram matrices kernel PCA feeds it (n up to
// a few hundred) this runs an order of magnitude faster than the cyclic
// Jacobi sweeps it replaced; SymEigenJacobi remains available as a reference
// implementation for cross-checking.
func SymEigen(a *Dense) (*Eigen, error) {
	w, err := symCopy(a)
	if err != nil {
		return nil, err
	}
	n, _ := w.Dims()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(w, d, e)
	if err := tqli(d, e, w); err != nil {
		return nil, err
	}
	return sortEigen(d, w), nil
}

// symCopy returns a full symmetric copy of a's lower triangle.
func symCopy(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, errors.New("mat: SymEigen of non-square matrix")
	}
	w := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.At(i, j)
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	return w, nil
}

// sortEigen orders the spectrum descending, permuting eigenvector columns to
// match. Columns move through one reusable buffer (ColInto) instead of a
// fresh slice per column.
func sortEigen(vals []float64, vecs *Dense) *Eigen {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n, nil)
	col := make([]float64, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		vecs.ColInto(oldCol, col)
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newCol, col[i])
		}
	}
	return &Eigen{Values: sortedVals, Vectors: sortedVecs}
}

// tred2 reduces the symmetric matrix z to tridiagonal form by Householder
// reflections, accumulating the orthogonal transform into z. On return d
// holds the diagonal, e[1..n-1] the subdiagonal (e[0] = 0), and z·T·zᵀ
// reconstructs the input. Standard EISPACK/Numerical-Recipes recurrences,
// zero-indexed.
func tred2(z *Dense, d, e []float64) {
	n, _ := z.Dims()
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tqli diagonalizes the tridiagonal matrix (d, e) by QL iterations with
// implicit Wilkinson shifts, rotating the eigenvector columns of z along.
// On return d holds the (unsorted) eigenvalues.
func tqli(d, e []float64, z *Dense) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	const eps = 2.220446049250313e-16 // double-precision machine epsilon
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first split point: a subdiagonal negligible against
			// its neighbouring diagonal entries.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= eps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				return errors.New("mat: SymEigen QL iteration did not converge")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c, p := 1.0, 1.0, 0.0
			i := m - 1
			for ; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && i >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// SymEigenJacobi computes the eigendecomposition by the cyclic Jacobi
// rotation method — the reference implementation SymEigen's QL path is
// cross-checked against. Only the lower triangle is read. O(n³) per sweep
// with quadratic convergence; convergence is judged relative to the matrix's
// Frobenius norm, so uniformly scaling the input (large Gram matrices, tiny
// kernels) changes neither the sweep count nor the relative accuracy.
func SymEigenJacobi(a *Dense) (*Eigen, error) {
	w, err := symCopy(a)
	if err != nil {
		return nil, err
	}
	n, _ := w.Dims()
	v := Identity(n)

	fro := frobeniusNorm(w)
	if fro == 0 {
		// The zero matrix: spectrum is all zeros, vectors the identity.
		return sortEigen(make([]float64, n), v), nil
	}
	offTol := 1e-12 * fro // convergence: off-diagonal mass negligible vs A
	rotTol := 1e-15 * fro // skip rotations on relatively negligible entries

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < offTol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < rotTol {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cc := 1 / math.Sqrt(1+t*t)
				s := t * cc
				tau := s / (1 + cc)

				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip, aiq := w.At(i, p), w.At(i, q)
						w.Set(i, p, aip-s*(aiq+tau*aip))
						w.Set(p, i, w.At(i, p))
						w.Set(i, q, aiq+s*(aip-tau*aiq))
						w.Set(q, i, w.At(i, q))
					}
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	return sortEigen(vals, v), nil
}

func frobeniusNorm(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

func offDiagNorm(a *Dense) float64 {
	n, _ := a.Dims()
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
