package mat

import (
	"errors"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A·v_i = λ_i·v_i.
// Eigenvalues are sorted in descending order; Vectors column i corresponds to
// Values[i].
type Eigen struct {
	Values  []float64
	Vectors *Dense // n×n, columns are unit eigenvectors
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi rotation method. Only the lower triangle is read.
// The method is O(n³) per sweep and converges quadratically; it is more than
// fast enough for the Gram matrices (n ≤ a few hundred) used by kernel PCA.
func SymEigen(a *Dense) (*Eigen, error) {
	n, c := a.Dims()
	if n != c {
		return nil, errors.New("mat: SymEigen of non-square matrix")
	}
	// Work on a symmetric copy.
	w := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.At(i, j)
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cc := 1 / math.Sqrt(1+t*t)
				s := t * cc
				tau := s / (1 + cc)

				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip, aiq := w.At(i, p), w.At(i, q)
						w.Set(i, p, aip-s*(aiq+tau*aip))
						w.Set(p, i, w.At(i, p))
						w.Set(i, q, aiq+s*(aip-tau*aiq))
						w.Set(q, i, w.At(i, q))
					}
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort descending by eigenvalue, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n, nil)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return &Eigen{Values: sortedVals, Vectors: sortedVecs}, nil
}

func offDiagNorm(a *Dense) float64 {
	n, _ := a.Dims()
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
