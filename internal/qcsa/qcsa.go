// Package qcsa implements Query Configuration Sensitivity Analysis — the
// first of LOCAT's three techniques (paper Section 3.2). Given the per-query
// latencies of N_QCSA executions of an application under different
// configurations, it computes each query's coefficient of variation
// (equation 3), splits the CV range into three equal partitions
// (equation 4), classifies the queries in the lowest partition as
// configuration-insensitive (CIQ), and produces the reduced query
// application (RQA) containing only the configuration-sensitive queries
// (CSQ).
package qcsa

import (
	"errors"
	"fmt"
	"sort"

	"locat/internal/sparksim"
	"locat/internal/stat"
)

// QueryCV is one query's sensitivity record.
type QueryCV struct {
	// Name is the query name.
	Name string
	// CV is the coefficient of variation of the query's latency across the
	// analyzed runs (equation 3).
	CV float64
	// MeanSec is the query's mean latency across the runs.
	MeanSec float64
	// Sensitive reports whether the query is classified CSQ.
	Sensitive bool
}

// Result is the outcome of the analysis.
type Result struct {
	// Queries holds every query's CV in descending-CV order.
	Queries []QueryCV
	// MinCV, MaxCV and Cut describe the three-partition rule: queries with
	// CV < Cut = MinCV + (MaxCV-MinCV)/3 are configuration-insensitive.
	MinCV, MaxCV, Cut float64
	// Sensitive lists CSQ names in descending-CV order.
	Sensitive []string
	// Insensitive lists CIQ names in descending-CV order.
	Insensitive []string
	// RQA is the reduced query application (CSQ only, original order).
	RQA *sparksim.Application
	// RQATimeFrac is the mean fraction of total application time spent in
	// the retained queries — the expected per-run saving from using the RQA
	// during sample collection.
	RQATimeFrac float64
}

// Analyze classifies the queries of app from the per-query latencies of the
// given runs. Every run must contain a result for every query of app.
// The paper determines N_QCSA = 30 empirically (Section 5.1); Analyze
// accepts any count ≥ 2 so that the N_QCSA calibration experiment itself
// can use it.
func Analyze(app *sparksim.Application, runs []sparksim.AppResult) (*Result, error) {
	if len(runs) < 2 {
		return nil, errors.New("qcsa: need at least 2 runs")
	}
	m := len(app.Queries)
	times := make(map[string][]float64, m)
	for ri, run := range runs {
		if len(run.Queries) != m {
			return nil, fmt.Errorf("qcsa: run %d has %d query results, want %d", ri, len(run.Queries), m)
		}
		for _, qr := range run.Queries {
			times[qr.Name] = append(times[qr.Name], qr.Sec)
		}
	}

	res := &Result{}
	for _, q := range app.Queries {
		ts, ok := times[q.Name]
		if !ok || len(ts) != len(runs) {
			return nil, fmt.Errorf("qcsa: query %s missing from some runs", q.Name)
		}
		res.Queries = append(res.Queries, QueryCV{
			Name:    q.Name,
			CV:      stat.CV(ts),
			MeanSec: stat.Mean(ts),
		})
	}
	sort.SliceStable(res.Queries, func(i, j int) bool { return res.Queries[i].CV > res.Queries[j].CV })

	res.MaxCV = res.Queries[0].CV
	res.MinCV = res.Queries[len(res.Queries)-1].CV
	// Equation 4: three equal partitions of the CV range; the lowest
	// partition is insensitive.
	res.Cut = res.MinCV + (res.MaxCV-res.MinCV)/3

	keep := make(map[string]bool, m)
	for i := range res.Queries {
		q := &res.Queries[i]
		q.Sensitive = q.CV >= res.Cut
		if q.Sensitive {
			keep[q.Name] = true
			res.Sensitive = append(res.Sensitive, q.Name)
		} else {
			res.Insensitive = append(res.Insensitive, q.Name)
		}
	}
	res.RQA = app.Subset(keep)

	// Fraction of application time retained by the RQA.
	var kept, total float64
	for _, q := range res.Queries {
		total += q.MeanSec
		if q.Sensitive {
			kept += q.MeanSec
		}
	}
	if total > 0 {
		res.RQATimeFrac = kept / total
	}
	return res, nil
}

// CVOf returns the CV of the named query, or ok=false.
func (r *Result) CVOf(name string) (float64, bool) {
	for _, q := range r.Queries {
		if q.Name == name {
			return q.CV, true
		}
	}
	return 0, false
}

// MeanCV returns the mean CV across all queries — the convergence metric
// the paper tracks when calibrating N_QCSA (Figure 7).
func (r *Result) MeanCV() float64 {
	var s float64
	for _, q := range r.Queries {
		s += q.CV
	}
	return s / float64(len(r.Queries))
}
