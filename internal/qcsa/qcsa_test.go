package qcsa

import (
	"math/rand"
	"testing"

	"locat/internal/sparksim"
	"locat/internal/workloads"
)

func collectRuns(t *testing.T, n int, seed int64) (*sparksim.Application, []sparksim.AppResult) {
	t.Helper()
	cl := sparksim.ARM()
	sim := sparksim.New(cl, seed)
	space := cl.Space()
	app := workloads.TPCDS()
	rng := rand.New(rand.NewSource(seed))
	runs := make([]sparksim.AppResult, 0, n)
	for i := 0; i < n; i++ {
		runs = append(runs, sim.RunApp(app, space.Random(rng), 100))
	}
	return app, runs
}

func TestAnalyzeErrors(t *testing.T) {
	app, runs := collectRuns(t, 3, 1)
	if _, err := Analyze(app, runs[:1]); err == nil {
		t.Fatal("single run accepted")
	}
	bad := []sparksim.AppResult{runs[0], {Queries: runs[1].Queries[:5]}}
	if _, err := Analyze(app, bad); err == nil {
		t.Fatal("short run accepted")
	}
}

func TestAnalyzeClassification(t *testing.T) {
	app, runs := collectRuns(t, 30, 7)
	res, err := Analyze(app, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 104 {
		t.Fatalf("got %d query CVs", len(res.Queries))
	}
	// CVs sorted descending.
	for i := 1; i < len(res.Queries); i++ {
		if res.Queries[i].CV > res.Queries[i-1].CV {
			t.Fatal("CVs not sorted")
		}
	}
	// Partition rule.
	wantCut := res.MinCV + (res.MaxCV-res.MinCV)/3
	if res.Cut != wantCut {
		t.Fatalf("Cut = %v; want %v", res.Cut, wantCut)
	}
	if len(res.Sensitive)+len(res.Insensitive) != 104 {
		t.Fatal("classification does not partition the queries")
	}
	for _, q := range res.Queries {
		if q.Sensitive != (q.CV >= res.Cut) {
			t.Fatalf("query %s misclassified", q.Name)
		}
	}
	// The paper's Section 5.2 result: ≈23 of 104 queries kept, dominated by
	// the known sensitive set.
	if n := len(res.Sensitive); n < 18 || n > 28 {
		t.Fatalf("kept %d queries; want ≈23", n)
	}
	inPaper := map[string]bool{}
	for _, n := range workloads.SensitiveTPCDS {
		inPaper[n] = true
	}
	match := 0
	for _, n := range res.Sensitive {
		if inPaper[n] {
			match++
		}
	}
	if match < 20 {
		t.Fatalf("only %d kept queries are in the paper's sensitive set", match)
	}
}

func TestRQAConsistency(t *testing.T) {
	app, runs := collectRuns(t, 30, 8)
	res, err := Analyze(app, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RQA.Queries) != len(res.Sensitive) {
		t.Fatalf("RQA has %d queries; Sensitive lists %d", len(res.RQA.Queries), len(res.Sensitive))
	}
	// RQA preserves application order and keeps only sensitive queries.
	sens := map[string]bool{}
	for _, n := range res.Sensitive {
		sens[n] = true
	}
	pos := 0
	for _, q := range app.Queries {
		if sens[q.Name] {
			if res.RQA.Queries[pos].Name != q.Name {
				t.Fatal("RQA order broken")
			}
			pos++
		}
	}
	// The RQA must be meaningfully cheaper than the full application, but
	// still carry a substantial share (the CSQs are the long shuffle-heavy
	// queries).
	if res.RQATimeFrac <= 0.15 || res.RQATimeFrac >= 0.95 {
		t.Fatalf("RQATimeFrac = %v; want in (0.15, 0.95)", res.RQATimeFrac)
	}
}

func TestCVOfAndMeanCV(t *testing.T) {
	app, runs := collectRuns(t, 10, 9)
	res, err := Analyze(app, runs)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := res.CVOf("Q72")
	if !ok || cv <= 0 {
		t.Fatalf("CVOf(Q72) = %v, %v", cv, ok)
	}
	if _, ok := res.CVOf("nope"); ok {
		t.Fatal("CVOf found unknown query")
	}
	if m := res.MeanCV(); m <= 0 || m > res.MaxCV {
		t.Fatalf("MeanCV = %v", m)
	}
}

// TestMeanCVConverges reproduces the Figure 7 phenomenon: the mean CV rises
// with the sample count and flattens around N_QCSA = 30.
func TestMeanCVConverges(t *testing.T) {
	app, runs := collectRuns(t, 55, 10)
	cvAt := func(n int) float64 {
		res, err := Analyze(app, runs[:n])
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanCV()
	}
	cv10, cv30, cv50 := cvAt(10), cvAt(30), cvAt(50)
	if cv10 >= cv30 {
		t.Fatalf("mean CV did not grow from 10 (%v) to 30 (%v) samples", cv10, cv30)
	}
	// Beyond 30 the change must be small relative to the 10→30 growth.
	growth := cv30 - cv10
	tail := cv50 - cv30
	if tail < 0 {
		tail = -tail
	}
	if tail > growth {
		t.Fatalf("CV not converged: 10→30 grew %v but 30→50 moved %v", growth, tail)
	}
}
