package qcsa

import (
	"math/rand"

	"locat/internal/conf"
	"locat/internal/runner"
	"locat/internal/sparksim"
)

// Collect executes the application once per configuration on the execution
// backend — the sample-collection runs QCSA's CV statistics are computed
// from — and returns the results in configuration order. Backends with a
// native batch path (the simulator's bounded worker pool) are used
// directly; any other backend is transparently wrapped by runner.RunBatch's
// pool. On index-deterministic backends the results are identical to a
// serial loop for any worker count (workers ≤ 0 selects GOMAXPROCS), so
// the calibration experiments can saturate the hardware without changing
// their figures.
func Collect(r runner.Runner, app *sparksim.Application, cs []conf.Config, dataGB float64, workers int) []sparksim.AppResult {
	runs, _ := runner.RunBatch(r, app, cs, func(int) float64 { return dataGB }, workers, nil)
	return runs
}

// CollectRandom draws n random configurations from the space (serially, so
// the draw sequence is reproducible) and collects their runs with Collect.
func CollectRandom(r runner.Runner, app *sparksim.Application, space *conf.Space, n int, dataGB float64, workers int, rng *rand.Rand) []sparksim.AppResult {
	cs := make([]conf.Config, n)
	for i := range cs {
		cs[i] = space.Random(rng)
	}
	return Collect(r, app, cs, dataGB, workers)
}
