package qcsa

import (
	"math/rand"

	"locat/internal/conf"
	"locat/internal/sparksim"
)

// Collect executes the application once per configuration over a bounded
// worker pool — the sample-collection runs QCSA's CV statistics are computed
// from — and returns the results in configuration order. Thanks to the
// simulator's per-run noise streams the results are identical to a serial
// loop for any worker count (workers ≤ 0 selects GOMAXPROCS), so the
// calibration experiments can saturate the hardware without changing their
// figures.
func Collect(sim *sparksim.Simulator, app *sparksim.Application, cs []conf.Config, dataGB float64, workers int) []sparksim.AppResult {
	runs, _ := sim.RunBatch(app, cs, func(int) float64 { return dataGB }, workers, nil)
	return runs
}

// CollectRandom draws n random configurations from the space (serially, so
// the draw sequence is reproducible) and collects their runs with Collect.
func CollectRandom(sim *sparksim.Simulator, app *sparksim.Application, space *conf.Space, n int, dataGB float64, workers int, rng *rand.Rand) []sparksim.AppResult {
	cs := make([]conf.Config, n)
	for i := range cs {
		cs[i] = space.Random(rng)
	}
	return Collect(sim, app, cs, dataGB, workers)
}
