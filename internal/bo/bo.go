// Package bo implements the Bayesian-optimization loop LOCAT and its
// GP-based baselines run: Latin-Hypercube warm start, an Expected
// Improvement acquisition with MCMC hyperparameter marginalization (EI-MCMC,
// Snoek et al. 2012), and the CherryPick-style stop condition the paper
// adopts (at least MinIter iterations and EI below a fraction of the
// current best; Section 3.4, "Stop condition").
//
// The optimizer works on the unit cube [0,1]^Dim; callers map points to
// configurations (conf.Space / conf.Subspace handle that). An optional
// context vector can be appended to every model input — LOCAT's DAGP passes
// the input data size this way, so observations taken at different data
// sizes share one surrogate (Section 3.4).
package bo

import (
	"math"
	"math/rand"
	"sort"

	"locat/internal/gp"
	"locat/internal/obs"
	"locat/internal/stat"
)

// Step is one evaluated sample: decision point, optional context, observed
// objective, and the acquisition value that selected it (0 for warm-start
// points).
type Step struct {
	X   []float64
	Ctx []float64
	Y   float64
	EI  float64
}

// Problem defines the objective to minimize.
type Problem struct {
	// Dim is the decision dimensionality (unit cube).
	Dim int
	// Eval evaluates the objective at x under the given context.
	Eval func(x, ctx []float64) float64
	// Context, if non-nil, returns the context vector for iteration it
	// (0-based, counting every evaluation including warm start — injected
	// Options.Init steps count, so a run seeded with k prior observations
	// sees its first fresh evaluation at it = k). LOCAT's DAGP supplies the
	// current input data size here. The returned slice must have a fixed
	// length across iterations.
	Context func(it int) []float64
}

// Options control the optimization loop.
type Options struct {
	// InitPoints is the number of LHS warm-start evaluations (paper: 3).
	InitPoints int
	// MinIter is the minimum number of iterations before the stop condition
	// may fire (paper: 10).
	MinIter int
	// MaxIter caps total evaluations (warm start included).
	MaxIter int
	// EIStopFrac stops the loop when max EI < EIStopFrac × |best|
	// (paper: 0.10).
	EIStopFrac float64
	// MCMCSamples is the number of GP hyperparameter posterior samples
	// marginalized by EI-MCMC. 1 uses a single MAP-ish sample (plain EI).
	MCMCSamples int
	// Candidates is the size of the random candidate pool scored by EI.
	Candidates int
	// Init seeds the model with previously observed steps (warm restarts;
	// LOCAT reuses full-application observations when it switches to the
	// reduced-query application).
	Init []Step
	// Seed drives all randomness.
	Seed int64
	// MaxModelPoints caps the GP training-set size; when history exceeds
	// it, the incumbent-best half and the most recent half are kept
	// (0 = unlimited). Long-budget baselines use this to keep the cubic
	// Cholesky cost bounded. The trim is applied when hyperparameters are
	// (re)sampled, so between HyperEvery refreshes the live models may grow
	// up to HyperEvery-1 points past the cap.
	MaxModelPoints int
	// HyperEvery re-samples GP hyperparameters only every k-th iteration
	// (0 or 1 = every iteration). Between resamples the posterior samples
	// AND their fitted GPs are kept alive: each new observation is appended
	// to the live models with an O(n²) incremental Cholesky extension
	// (gp.Append) instead of the O(n³) refit a resample pays, so values
	// above 1 make the per-iteration surrogate cost quadratic.
	HyperEvery int
	// Workers bounds the goroutines used for the optimizer's internal math —
	// today that is the hyperparameter resample, which runs its MCMC chains
	// on a worker pool over one shared distance cache (gp.TrainSet). 0
	// selects GOMAXPROCS, 1 runs serially. Results are bit-identical for
	// every worker count; the knob only changes wall-clock time.
	Workers int
	// Stop, if non-nil, is polled before every evaluation; returning true
	// aborts the loop immediately (the partial Result is still valid).
	// LOCAT's tuning service uses it for cooperative job cancellation.
	Stop func() bool
	// EvalBatch, if non-nil, evaluates a whole batch of points — LOCAT's
	// tuner fans the batch over concurrent simulated cluster slots — and is
	// used for the LHS warm-start block, whose points are independent. It
	// must return objective values for a prefix of xs in index order; a
	// short return means evaluation was cut off (Stop) after that prefix.
	// The recorded history is identical to the serial Eval loop, whatever
	// the evaluator's internal parallelism.
	EvalBatch func(xs, ctxs [][]float64) []float64
	// Tracer, if non-nil, receives one span per GP hyperparameter resample
	// ("gp/hyper-resample"), recording how much wall time the surrogate
	// refits cost relative to the evaluations they steer. Nil traces nothing
	// and adds no allocations.
	Tracer obs.Tracer
}

// DefaultOptions mirror the paper's settings.
func DefaultOptions() Options {
	return Options{
		InitPoints:  3,
		MinIter:     10,
		MaxIter:     60,
		EIStopFrac:  0.10,
		MCMCSamples: 6,
		Candidates:  512,
	}
}

// Result is the outcome of an optimization run.
type Result struct {
	// BestX and BestY are the incumbent decision point and objective.
	BestX []float64
	BestY float64
	// History holds every evaluation in order (including warm start and
	// any Init steps provided, which appear first).
	History []Step
	// Evals is the number of objective evaluations performed by this run
	// (excludes Init steps).
	Evals int
	// StoppedEarly reports whether the EI stop condition fired before
	// MaxIter.
	StoppedEarly bool
}

// Minimize runs Bayesian optimization on p and returns the best point found.
func Minimize(p Problem, opts Options) Result {
	if opts.InitPoints <= 0 {
		opts.InitPoints = 3
	}
	if opts.MaxIter < opts.InitPoints {
		opts.MaxIter = opts.InitPoints
	}
	if opts.Candidates <= 0 {
		opts.Candidates = 512
	}
	if opts.MCMCSamples <= 0 {
		opts.MCMCSamples = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := obs.OrNop(opts.Tracer)

	var res Result
	res.BestY = math.Inf(1)
	res.History = append(res.History, opts.Init...)
	for _, s := range opts.Init {
		if s.Y < res.BestY {
			res.BestY = s.Y
			res.BestX = append([]float64(nil), s.X...)
		}
	}

	ctxAt := func(it int) []float64 {
		if p.Context == nil {
			return nil
		}
		return p.Context(it)
	}

	observe := func(x, ctx []float64, y, ei float64) {
		res.History = append(res.History, Step{X: x, Ctx: ctx, Y: y, EI: ei})
		res.Evals++
		if y < res.BestY {
			res.BestY = y
			res.BestX = append([]float64(nil), x...)
		}
	}
	record := func(x, ctx []float64, ei float64) {
		observe(x, ctx, p.Eval(x, ctx), ei)
	}

	stopped := func() bool { return opts.Stop != nil && opts.Stop() }

	// Context indices count every evaluation, including the injected Init
	// steps (see Problem.Context).
	ctxBase := len(opts.Init)

	// Warm start: LHS over the decision cube. The points are mutually
	// independent, so when a batch evaluator is available the whole block is
	// handed over at once (contexts depend only on the iteration index and
	// are precomputed); the index-ordered results are recorded exactly as
	// the serial loop would record them.
	lhs := stat.LatinHypercube(opts.InitPoints, p.Dim, rng)
	if opts.EvalBatch != nil {
		if m := opts.MaxIter - res.Evals; len(lhs) > m {
			lhs = lhs[:m]
		}
		if len(lhs) > 0 && !stopped() {
			ctxs := make([][]float64, len(lhs))
			for i := range lhs {
				ctxs[i] = ctxAt(ctxBase + res.Evals + i)
			}
			ys := opts.EvalBatch(lhs, ctxs)
			for i, y := range ys {
				observe(lhs[i], ctxs[i], y, 0)
			}
		}
	} else {
		for _, x := range lhs {
			if res.Evals >= opts.MaxIter || stopped() {
				break
			}
			record(x, ctxAt(ctxBase+res.Evals), 0)
		}
	}

	// BO iterations. Between hyperparameter resamples the fitted GPs stay
	// live: each fresh observation is appended incrementally (O(n²) per
	// model) instead of refitting every model from scratch (O(n³)). A
	// resample — where the training set is also re-trimmed — pays the full
	// refit, amortized over HyperEvery iterations.
	var (
		models    []*gp.GP    // live surrogates, one per usable hyper sample
		xs        [][]float64 // training inputs the live models hold
		ys        []float64   // training targets the live models hold
		modelMark int         // len(res.History) already folded into models
		predWS    gp.PredictWorkspace
	)
	iterSinceSample := 0
	for res.Evals < opts.MaxIter && !stopped() {
		if len(models) == 0 || opts.HyperEvery <= 1 || iterSinceSample >= opts.HyperEvery {
			// Hyperparameter resample. The distance cache is built once and
			// shared by every MCMC chain (each slice step is then an
			// allocation-free refit in a per-chain workspace) and by the
			// per-sample model fits that follow.
			hs := tr.Start("gp/hyper-resample")
			xs, ys = modelData(trimHistory(res.History, opts.MaxModelPoints))
			iterSinceSample = 0
			models = models[:0]
			if ts, err := gp.NewTrainSet(xs, ys, opts.Workers); err == nil {
				for _, h := range ts.SampleHyper(opts.MCMCSamples, rng, opts.Workers) {
					if m, err := ts.Fit(h); err == nil {
						models = append(models, m)
					}
				}
			}
			modelMark = len(res.History)
			hs.End()
		} else if modelMark < len(res.History) {
			newXs, newYs := modelData(res.History[modelMark:])
			xs = append(xs, newXs...)
			ys = append(ys, newYs...)
			kept := models[:0]
			for _, m := range models {
				if err := m.AppendBatch(newXs, newYs); err == nil {
					kept = append(kept, m)
					continue
				}
				// Exact-refit fallback: the extension can fail on a
				// near-singular border; the hyper sample itself may still
				// support a direct factorization.
				if m2, err := gp.Fit(xs, ys, m.Hyper()); err == nil {
					kept = append(kept, m2)
				}
			}
			models = kept
			modelMark = len(res.History)
		}
		iterSinceSample++
		ctx := ctxAt(ctxBase + res.Evals)
		var bestCand []float64
		bestEI := math.Inf(-1)
		if len(models) > 0 {
			bestCand, bestEI = proposeEI(models, res, p.Dim, ctx, opts, rng, &predWS)
		}
		if bestCand == nil {
			// Model failure: fall back to random search for this step.
			bestCand = randomPoint(p.Dim, rng)
			bestEI = 0
		}
		// Stop condition (paper Section 3.4): at least MinIter iterations
		// and expected improvement below EIStopFrac of the incumbent.
		if res.Evals >= opts.MinIter && opts.EIStopFrac > 0 &&
			bestEI < opts.EIStopFrac*math.Abs(res.BestY) {
			res.StoppedEarly = true
			break
		}
		record(bestCand, ctx, bestEI)
	}
	return res
}

// trimHistory bounds the GP training set: the best half (by objective) plus
// the most recent half of the history survive.
func trimHistory(hist []Step, cap int) []Step {
	if cap <= 0 || len(hist) <= cap {
		return hist
	}
	half := cap / 2
	idx := make([]int, len(hist))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return hist[idx[a]].Y < hist[idx[b]].Y })
	keep := make(map[int]bool, cap)
	for i := 0; i < half; i++ {
		keep[idx[i]] = true
	}
	for i := len(hist) - 1; i >= 0 && len(keep) < cap; i-- {
		keep[i] = true
	}
	out := make([]Step, 0, len(keep))
	for i := range hist {
		if keep[i] {
			out = append(out, hist[i])
		}
	}
	return out
}

// modelData assembles GP training data from history: inputs are decision
// points with context appended.
func modelData(hist []Step) (xs [][]float64, ys []float64) {
	for _, s := range hist {
		x := make([]float64, 0, len(s.X)+len(s.Ctx))
		x = append(x, s.X...)
		x = append(x, s.Ctx...)
		xs = append(xs, x)
		ys = append(ys, s.Y)
	}
	return xs, ys
}

// proposeEI scores a candidate pool by EI averaged over the hyperparameter
// posterior samples (EI-MCMC) and returns the best candidate and its EI.
func proposeEI(models []*gp.GP, res Result, dim int, ctx []float64, opts Options, rng *rand.Rand, ws *gp.PredictWorkspace) ([]float64, float64) {
	// The exploration pool is stratified (Latin Hypercube) rather than iid
	// uniform: every dimension's range is covered evenly at identical cost
	// and rng discipline, so the EI argmax never misses a whole stratum the
	// way an unlucky uniform draw can.
	cands := make([][]float64, 0, opts.Candidates+64)
	cands = append(cands, stat.LatinHypercube(opts.Candidates, dim, rng)...)
	// Local refinement around the incumbent.
	if res.BestX != nil {
		for i := 0; i < 64; i++ {
			x := make([]float64, dim)
			scale := 0.05
			if i%2 == 1 {
				scale = 0.15
			}
			for j := range x {
				x[j] = clamp01(res.BestX[j] + rng.NormFloat64()*scale)
			}
			cands = append(cands, x)
		}
	}

	eis := scoreEI(models, cands, dim, ctx, res.BestY, ws)
	var bestX []float64
	bestEI := math.Inf(-1)
	for i, ei := range eis {
		if ei > bestEI {
			bestEI = ei
			bestX = cands[i]
		}
	}
	return append([]float64(nil), bestX...), bestEI
}

// scoreEI evaluates the EI-MCMC acquisition (EI averaged over the
// hyperparameter posterior samples) for every candidate through the batched
// prediction path: per model, one gp.PredictBatch call assembles the
// cross-kernel matrix once and produces all means and variances with
// row-parallel batch math and zero per-candidate allocations (the workspace
// is reused across models and iterations). Candidate order is preserved and
// every floating-point reduction matches the per-candidate Predict loop, so
// the scores — and therefore the argmax and the optimizer trajectory — are
// identical to the serial scan this replaces.
func scoreEI(models []*gp.GP, cands [][]float64, dim int, ctx []float64, best float64, ws *gp.PredictWorkspace) []float64 {
	out := make([]float64, len(cands))
	xin := ws.Inputs(len(cands), dim+len(ctx))
	for i, c := range cands {
		copy(xin[i], c)
		copy(xin[i][dim:], ctx)
	}
	for _, m := range models {
		mus, vars := m.PredictBatch(xin, ws)
		for i := range out {
			out[i] += expectedImprovement(mus[i], vars[i], best)
		}
	}
	for i := range out {
		out[i] /= float64(len(models))
	}
	return out
}

// expectedImprovement is EI(x) = (f* - μ)Φ(z) + σφ(z), z = (f* - μ)/σ, for
// minimization, from a predicted posterior mean and variance. A tiny
// negative variance — floating-point cancellation in a predictive-variance
// subtraction — must clamp to zero here: math.Sqrt would turn it into a NaN
// that skips the sigma guard below and poisons the whole EI average.
func expectedImprovement(mu, v, best float64) float64 {
	if v < 0 {
		v = 0
	}
	sigma := math.Sqrt(v)
	if sigma < 1e-12 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sigma
	return (best-mu)*stat.NormCDF(z) + sigma*stat.NormPDF(z)
}

func randomPoint(dim int, rng *rand.Rand) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
